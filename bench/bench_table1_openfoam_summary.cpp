// Table 1: OpenFOAM experiment summary (paper §3.1).
//
// Prints the two experiment configurations (tuning / overload) exactly as
// Table 1 lays them out, then runs both and reports the realized counts so
// the configuration is demonstrably what executed.

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Table 1", "OpenFOAM experiment summary");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // `--publish-batch N` coalesces client publishes; off by default.
  const core::BatchingConfig batching = bench::parse_publish_batch(argc, argv);

  // `--fault-seed N` reruns both configurations on a lossy fabric (1% drops,
  // 2% latency spikes) with client retry + buffer-and-replay enabled — the
  // Fig. 10 fault profile. Absent, the fabric is perfect and the output is
  // byte-identical to earlier builds.
  const bench::FaultSeedArg fault = bench::parse_fault_seed(argc, argv);
  auto apply_faults = [&](OpenFoamExperimentConfig& config) {
    if (!fault.enabled) return;
    config.faults.enabled = true;
    config.faults.fault_seed = fault.seed;
    config.faults.drop_probability = 0.01;
    config.faults.spike_probability = 0.02;
    config.reliability.retry.max_attempts = 4;
    config.reliability.retry.timeout = Duration::milliseconds(100);
    config.reliability.buffer_on_failure = true;
    config.reliability.probe_period = Duration::seconds(5);
  };

  auto tuning = OpenFoamExperimentConfig::tuning();
  tuning.storage = storage;
  tuning.batching = batching;
  apply_faults(tuning);
  auto overload = OpenFoamExperimentConfig::overloaded();
  overload.storage = storage;
  overload.batching = batching;
  apply_faults(overload);

  TextTable table({"Experiment", "Tuning", "Overload"});
  table.add_row({"Number of Tasks",
                 std::to_string(tuning.instances_per_config *
                                tuning.rank_configs.size()),
                 std::to_string(overload.instances_per_config *
                                overload.rank_configs.size())});
  table.add_row({"Number of Nodes", std::to_string(tuning.worker_nodes),
                 std::to_string(overload.worker_nodes)});
  table.add_row({"Number of MPI Ranks", "20, 41, 82, 164", "20, 41, 82, 164"});
  table.add_row({"Monitors", "proc, rp, tau", "proc, rp, tau"});
  table.add_row({"SOMA Ranks Per Namespace",
                 std::to_string(tuning.soma_ranks_per_namespace),
                 std::to_string(overload.soma_ranks_per_namespace)});
  std::printf("%s", table.to_string().c_str());

  bench::section("realized runs (tasks completed, monitors active)");
  const OpenFoamResult tuning_result = run_openfoam_experiment(tuning);
  const OpenFoamResult overload_result = run_openfoam_experiment(overload);

  TextTable realized({"run", "tasks done", "SOMA publishes", "TAU profiles",
                      "hosts monitored", "makespan (s)"});
  realized.add_row({"tuning", std::to_string(tuning_result.tasks.size()),
                    std::to_string(tuning_result.soma_publishes),
                    std::to_string(tuning_result.tau_profiles),
                    std::to_string(tuning_result.node_utilization.size()),
                    bench::fmt(tuning_result.makespan_seconds)});
  realized.add_row({"overload", std::to_string(overload_result.tasks.size()),
                    std::to_string(overload_result.soma_publishes),
                    std::to_string(overload_result.tau_profiles),
                    std::to_string(overload_result.node_utilization.size()),
                    bench::fmt(overload_result.makespan_seconds)});
  std::printf("%s", realized.to_string().c_str());

  bench::section("store shard balance (records routed per service rank)");
  TextTable shards({"run", "shards", "records/shard min", "max", "imbalance"});
  const std::pair<const char*, const OpenFoamResult*> shard_runs[] = {
      {"tuning", &tuning_result}, {"overload", &overload_result}};
  for (const auto& [name, r] : shard_runs) {
    const double imbalance =
        r->shard_records_min == 0
            ? 0.0
            : static_cast<double>(r->shard_records_max) /
                  static_cast<double>(r->shard_records_min);
    shards.add_row({name, std::to_string(r->store_shards),
                    std::to_string(r->shard_records_min),
                    std::to_string(r->shard_records_max),
                    r->store_shards > 1 ? bench::fmt(imbalance, 2) + "x"
                                        : "n/a"});
  }
  std::printf("%s", shards.to_string().c_str());

  if (fault.enabled) {
    bench::section(
        ("fault injection (seed " + std::to_string(fault.seed) + ")").c_str());
    TextTable faults({"run", "net drops", "rpc retries", "publish failures",
                      "replayed", "failovers"});
    const std::pair<const char*, const OpenFoamResult*> fault_runs[] = {
        {"tuning", &tuning_result}, {"overload", &overload_result}};
    for (const auto& [name, r] : fault_runs) {
      faults.add_row({name, std::to_string(r->net_drops),
                      std::to_string(r->rpc_retries),
                      std::to_string(r->publish_failures),
                      std::to_string(r->replayed_publishes),
                      std::to_string(r->failovers)});
    }
    std::printf("%s", faults.to_string().c_str());
  }

  bench::paper_vs_measured("tuning tasks", "4",
                           std::to_string(tuning_result.tasks.size()));
  bench::paper_vs_measured("overload tasks", "80",
                           std::to_string(overload_result.tasks.size()));
  bench::paper_vs_measured(
      "monitored sources (overload: 10 workers + 1 agent/SOMA node)", "11",
      std::to_string(overload_result.node_utilization.size()));
  return 0;
}
