// Fig. 9: CPU utilization across the DDMD mini-app tuning phases
// (paper §4.3).
//
// Six phases sweep cores/simulation-task over {1, 3, 7} with 7 then 3 cores
// per training task. The paper's finding: "even when changing the number of
// cores that can be used per task, CPU utilization remains low" because the
// two longest stages do their work on the GPU.

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 9", "DDMD mini-app tuning: CPU utilization per phase");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  auto config = DdmdExperimentConfig::tuning();
  config.storage = storage;
  const DdmdResult result = run_ddmd_experiment(config);

  TextTable table({"phase", "cores/sim", "cores/train", "span (s)",
                   "mean CPU util", "mean GPU util", "CPU bar"});
  for (const auto& phase : result.phase_utilization) {
    table.add_row({std::to_string(phase.phase),
                   std::to_string(phase.config.cores_per_sim_task),
                   std::to_string(phase.config.cores_per_train_task),
                   bench::fmt(phase.span_seconds),
                   bench::fmt_pct(phase.mean_utilization),
                   bench::fmt_pct(phase.mean_gpu_utilization),
                   ascii_bar(phase.mean_utilization, 1.0, 40)});
  }
  std::printf("%s", table.to_string().c_str());

  bench::section(
      "per-node CPU utilization series (all monitored nodes, sampled @60s;\n"
      "   first host = RP agent node, last = SOMA service node)");
  for (const auto& [host, series] : result.node_utilization) {
    std::printf("  %s:", host.c_str());
    for (const auto& [t, u, g] : series) {
      (void)t;
      (void)g;
      std::printf(" %4.0f%%", u * 100.0);
    }
    std::printf("\n");
  }

  double max_utilization = 0.0;
  for (const auto& phase : result.phase_utilization) {
    max_utilization = std::max(max_utilization, phase.mean_utilization);
  }
  const auto& first = result.phase_utilization.front();
  const auto& third = result.phase_utilization[2];

  double mean_gpu = 0.0;
  for (const auto& phase : result.phase_utilization) {
    mean_gpu += phase.mean_gpu_utilization;
  }
  mean_gpu /= static_cast<double>(result.phase_utilization.size());

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured(
      "the work is on the GPU (low CPU, busy GPUs)",
      "GPU-bound stages",
      mean_gpu > 3.0 * max_utilization
          ? "yes (mean GPU util " + bench::fmt_pct(mean_gpu) +
                " vs CPU <= " + bench::fmt_pct(max_utilization) + ")"
          : "NO (GPU " + bench::fmt_pct(mean_gpu) + ")");
  bench::paper_vs_measured(
      "CPU utilization remains low in every phase", "low",
      max_utilization < 0.5
          ? "yes (max phase mean " + bench::fmt_pct(max_utilization) + ")"
          : "NO (max " + bench::fmt_pct(max_utilization) + ")");
  bench::paper_vs_measured(
      "more cores/sim raises utilization only mildly (shading trend)",
      "light-to-dark shading",
      third.mean_utilization > first.mean_utilization
          ? "yes (" + bench::fmt_pct(first.mean_utilization) + " @1 core -> " +
                bench::fmt_pct(third.mean_utilization) + " @7 cores)"
          : "NO");
  // The paper's conclusion from this figure: since the GPU stages barely
  // use the CPUs, giving tasks FEWER host cores costs (almost) nothing —
  // which then frees cores/GPUs for parallel training. Check exactly that:
  // the 1-core phases are no slower than the 7-core phases (at 7 cores the
  // 12 simulation tasks oversubscribe the 2 nodes' cores and queue).
  bench::paper_vs_measured(
      "using fewer CPU cores per task costs nothing", "minimal effect",
      [&] {
        const double span_1core = result.phase_utilization[0].span_seconds;
        const double span_7core = result.phase_utilization[2].span_seconds;
        return span_1core <= span_7core * 1.05
                   ? "yes (1-core phase " + bench::fmt(span_1core) +
                         "s vs 7-core phase " + bench::fmt(span_7core) + "s)"
                   : "NO (" + bench::fmt(span_1core) + "s vs " +
                         bench::fmt(span_7core) + "s)";
      }());
  return 0;
}
