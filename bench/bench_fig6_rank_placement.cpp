// Fig. 6: execution time vs the number of nodes a task's ranks landed on
// (paper §4.1).
//
// During the overloaded run the RP scheduler splits 20- and 41-rank tasks
// across 1..5 nodes "based on what was available". The paper observes an
// execution-time improvement for 20-rank tasks as ranks spread over more
// nodes (smaller runs tended to execute later, when nodes were less
// contended), with a weaker effect at 41 ranks.

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 6",
                "OpenFOAM execution time by node spread (20 / 41 ranks)");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // Aggregate several seeds: one overloaded run yields few distinct spread
  // groups, and the figure is a distribution.
  std::map<std::pair<int, int>, std::vector<double>> by_spread;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto config = OpenFoamExperimentConfig::overloaded(seed);
    config.storage = storage;
    const OpenFoamResult result = run_openfoam_experiment(config);
    for (const auto& [key, times] : result.by_spread) {
      auto& bucket = by_spread[key];
      bucket.insert(bucket.end(), times.begin(), times.end());
    }
  }

  for (int ranks : {20, 41}) {
    bench::section((std::to_string(ranks) + " MPI ranks").c_str());
    TextTable table({"nodes spanned", "tasks", "exec time (s)", "bar"});
    double max_mean = 0.0;
    for (const auto& [key, times] : by_spread) {
      if (key.first == ranks) {
        max_mean = std::max(max_mean, summarize(times).mean);
      }
    }
    for (const auto& [key, times] : by_spread) {
      if (key.first != ranks) continue;
      const Summary s = summarize(times);
      table.add_row({std::to_string(key.second), std::to_string(s.count),
                     bench::fmt_summary(s), ascii_bar(s.mean, max_mean, 36)});
    }
    std::printf("%s", table.to_string().c_str());
  }

  // Shape checks: compare the single-node group against the most-spread
  // group for each rank count.
  auto group_mean = [&](int ranks, bool spread) {
    double best = -1.0;
    int best_nodes = spread ? -1 : 1000;
    for (const auto& [key, times] : by_spread) {
      if (key.first != ranks || times.empty()) continue;
      const bool better = spread ? key.second > best_nodes
                                 : key.second < best_nodes;
      if (better) {
        best_nodes = key.second;
        best = summarize(times).mean;
      }
    }
    return best;
  };

  const double packed20 = group_mean(20, false);
  const double spread20 = group_mean(20, true);
  const double packed41 = group_mean(41, false);
  const double spread41 = group_mean(41, true);

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured(
      "20-rank: spreading across nodes improves exec time", "yes",
      spread20 > 0 && spread20 < packed20
          ? "yes (" + bench::fmt(packed20) + "s -> " + bench::fmt(spread20) +
                "s)"
          : "weaker (" + bench::fmt(packed20) + "s -> " +
                bench::fmt(spread20) + "s)");
  if (packed41 > 0 && spread41 > 0) {
    const double improvement20 = (packed20 - spread20) / packed20;
    const double improvement41 = (packed41 - spread41) / packed41;
    bench::paper_vs_measured(
        "41-rank improvement less remarkable than 20-rank", "yes",
        improvement41 < improvement20
            ? "yes (" + bench::fmt_pct(improvement41) + " vs " +
                  bench::fmt_pct(improvement20) + ")"
            : "NO (" + bench::fmt_pct(improvement41) + " vs " +
                  bench::fmt_pct(improvement20) + ")");
  }
  return 0;
}
