// Overhead analysis (paper §4.3, last paragraphs; also §3.2 thrust 3).
//
// Decomposes where SOMA's cost goes at each scale of the Scaling B sweep:
// monitoring traffic (publishes, bytes), service-side queueing, client ack
// latency ("is SOMA keeping pace"), and the end-to-end runtime overhead
// relative to the unmonitored baseline.

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Overhead analysis",
                "cost decomposition of SOMA monitoring (Scaling B axis)");

  int max_scale = 512;
  if (argc > 1) max_scale = std::atoi(argv[1]);

  TextTable table({"app nodes", "freq (s)", "publishes", "mean ack (ms)",
                   "max ack (ms)", "svc max queue (ms)",
                   "pipeline overhead vs none"});
  for (int scale : {64, 128, 256, 512}) {
    if (scale > max_scale) break;
    const DdmdResult baseline = run_ddmd_experiment(
        DdmdExperimentConfig::scaling_b(scale, SomaMode::kNone,
                                        Duration::seconds(60.0)));
    for (double period : {60.0, 10.0}) {
      const DdmdResult monitored = run_ddmd_experiment(
          DdmdExperimentConfig::scaling_b(scale, SomaMode::kExclusive,
                                          Duration::seconds(period)));
      const double overhead =
          (monitored.pipeline_summary.mean / baseline.pipeline_summary.mean -
           1.0) *
          100.0;
      table.add_row({std::to_string(scale), bench::fmt(period, 0),
                     std::to_string(monitored.soma_publishes),
                     bench::fmt(monitored.mean_ack_latency_ms, 3),
                     bench::fmt(monitored.max_ack_latency_ms, 3),
                     bench::fmt(monitored.soma_max_queue_delay_ms, 3),
                     (overhead >= 0 ? "+" : "") + bench::fmt(overhead) + "%"});
    }
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("notes");
  std::printf(
      "  * publishes scale with nodes x frequency; the 1:1 rank:pipeline\n"
      "    provisioning keeps per-rank load flat, so ack latency stays low\n"
      "    and the service never saturates (max queue delay ~0) — SOMA\n"
      "    'keeps pace' as the paper reports for Scaling B.\n"
      "  * the runtime overhead instead comes from host-side interference:\n"
      "    the RP monitor competing with the agent scheduler, plus per-node\n"
      "    /proc scraping noise (see DESIGN.md, overhead model).\n");
  return 0;
}
