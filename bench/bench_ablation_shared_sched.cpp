// Ablation X2 (DESIGN.md): shared-mode scheduling benefit vs GPU
// oversubscription.
//
// The shared configuration lets RP place application tasks on the SOMA
// nodes' leftover cores/GPUs. Its benefit depends on how oversubscribed the
// GPUs are: this ablation sweeps the number of SOMA nodes (i.e. the spare
// GPU pool) at a fixed workload and reports the shared-vs-exclusive gap.

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main() {
  bench::header("Ablation X2",
                "shared-mode benefit vs spare SOMA-node capacity");

  const int pipelines = 32;
  TextTable table({"SOMA nodes", "spare GPUs", "mode", "pipeline time (s)",
                   "shared gain"});
  for (int soma_nodes : {1, 2, 4, 8}) {
    DdmdExperimentConfig exclusive;
    exclusive.pipelines = pipelines;
    exclusive.phases = 1;
    exclusive.app_nodes = pipelines;
    exclusive.soma_nodes = soma_nodes;
    // Modest rank count so the SOMA nodes keep spare cores for app tasks.
    exclusive.soma_ranks_per_namespace = 8;
    exclusive.mode = SomaMode::kExclusive;
    DdmdExperimentConfig shared = exclusive;
    shared.mode = SomaMode::kShared;

    const DdmdResult excl_result = run_ddmd_experiment(exclusive);
    const DdmdResult shared_result = run_ddmd_experiment(shared);
    const double gain = (1.0 - shared_result.pipeline_summary.mean /
                                   excl_result.pipeline_summary.mean) *
                        100.0;
    table.add_row({std::to_string(soma_nodes),
                   std::to_string(soma_nodes * 6), "exclusive",
                   bench::fmt_summary(excl_result.pipeline_summary), ""});
    table.add_row({std::to_string(soma_nodes),
                   std::to_string(soma_nodes * 6), "shared",
                   bench::fmt_summary(shared_result.pipeline_summary),
                   bench::fmt(gain) + "%"});
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("reading");
  std::printf(
      "  * every pipeline's simulation stage wants 12 GPUs with only 6 per\n"
      "    node: the spare GPUs on shared SOMA nodes relieve the second\n"
      "    wave, and the relief grows with the spare pool — the Fig. 10/11\n"
      "    shared-vs-exclusive gap is this mechanism.\n");
  return 0;
}
