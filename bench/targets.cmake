# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains ONLY the bench binaries — `for b in build/bench/*`
# then runs clean.
function(soma_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

soma_add_bench(bench_table1_openfoam_summary soma_experiments)
soma_add_bench(bench_fig4_openfoam_scaling soma_experiments)
soma_add_bench(bench_fig5_tau_mpi_breakdown soma_experiments)
soma_add_bench(bench_fig6_rank_placement soma_experiments)
soma_add_bench(bench_fig7_cpu_utilization soma_experiments)
soma_add_bench(bench_fig8_rp_utilization soma_experiments)
soma_add_bench(bench_table2_ddmd_summary soma_experiments)
soma_add_bench(bench_fig9_ddmd_tuning soma_experiments)
soma_add_bench(bench_fig10_scaling_a soma_experiments)
soma_add_bench(bench_fig11_scaling_b soma_experiments)
soma_add_bench(bench_overhead_analysis soma_experiments)
soma_add_bench(bench_ablation_publish_cost soma_core soma_sim)
soma_add_bench(bench_ablation_batch_publish soma_core soma_sim)
soma_add_bench(bench_ablation_shared_sched soma_experiments)
soma_add_bench(bench_micro_datamodel soma_datamodel benchmark::benchmark)
soma_add_bench(bench_micro_rpc soma_core soma_net benchmark::benchmark)
soma_add_bench(bench_ablation_placement_policy soma_experiments)
soma_add_bench(bench_raptor_throughput soma_raptor)
