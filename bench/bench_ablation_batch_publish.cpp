// Ablation X4: batched publish pipeline.
//
// Sweeps the client-side coalescing window (off, 2 .. 64 records per batch
// frame) against a fixed monitoring load on a deliberately heavy single-rank
// service, and reports the publish RPC frame count, the mean per-record ack
// latency, and how the batches were flushed (size vs delay bound).
// Demonstrates the amortization the batch wire path buys: the per-frame
// ingest base cost is paid once per batch instead of once per record, so
// frames drop ~linearly with the window while stored records stay identical.

#include <memory>

#include "bench_util.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"
#include "soma/service.hpp"

using namespace soma;

namespace {

struct Outcome {
  std::uint64_t frames = 0;          ///< publish RPC requests sent
  std::uint64_t records = 0;         ///< records the service stored
  std::uint64_t batches = 0;         ///< batch frames the service absorbed
  std::uint64_t size_flushes = 0;
  std::uint64_t delay_flushes = 0;
  double mean_ack_ms = 0.0;          ///< per record, send -> ack
  double max_queue_ms = 0.0;
};

Outcome run(std::size_t batch_records) {
  const int clients = 64;
  const int burst = 8;              // records per monitor tick
  const double period_s = 0.5;
  const double horizon_s = 60.0;

  sim::Simulation simulation;
  net::Network network(simulation, net::NetworkConfig{});

  core::ServiceConfig config;
  config.namespaces = {core::Namespace::kHardware};
  config.cost.base = Duration::microseconds(400);  // deliberately heavy
  config.cost.per_kib = Duration::microseconds(50);
  core::SomaService service(network, {0}, config);

  core::BatchingConfig batching;
  batching.max_records = batch_records;  // 0 = batching off
  batching.max_delay = Duration::seconds(1.0);

  std::vector<std::unique_ptr<core::SomaClient>> stubs;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tickers;
  for (int c = 0; c < clients; ++c) {
    stubs.push_back(std::make_unique<core::SomaClient>(
        network, 1 + c % 8, 7000 + c, core::Namespace::kHardware,
        service.instance(core::Namespace::kHardware).ranks,
        core::ClientReliability{}, batching));
    core::SomaClient* stub = stubs.back().get();
    const std::string source = "cn" + std::to_string(c);
    tickers.push_back(std::make_unique<sim::PeriodicTask>(
        simulation, Duration::seconds(period_s), [stub, source] {
          for (int r = 0; r < burst; ++r) {
            datamodel::Node data;
            data["Uptime"].set(std::int64_t{1});
            data["stat"]["cpu"].set(
                std::vector<std::int64_t>{1, 2, 3, 4, 5, 6});
            stub->publish(source, std::move(data));
          }
        }));
    // Stagger starts to avoid a synthetic synchronized burst.
    tickers.back()->start(Duration::seconds(period_s * c / clients));
  }

  simulation.run_until(SimTime::from_seconds(horizon_s));
  for (auto& ticker : tickers) ticker->stop();
  for (auto& stub : stubs) stub->flush_batches();
  simulation.run();

  Outcome outcome;
  Duration total_ack;
  std::uint64_t acked = 0;
  for (const auto& stub : stubs) {
    outcome.frames += stub->engine_stats().requests_sent;
    outcome.size_flushes += stub->batcher_stats().size_flushes;
    outcome.delay_flushes += stub->batcher_stats().delay_flushes;
    total_ack += stub->stats().total_ack_latency;
    acked += stub->stats().acked;
  }
  outcome.records = service.publishes_received();
  outcome.batches = service.batches_received();
  outcome.mean_ack_ms =
      acked ? total_ack.to_seconds() * 1e3 / double(acked) : 0.0;
  outcome.max_queue_ms = service.max_queue_delay().to_seconds() * 1e3;
  return outcome;
}

}  // namespace

int main() {
  bench::header("Ablation X4",
                "batched publish: frames and ack latency vs batch window");

  TextTable table({"batch", "frames", "vs off", "records", "batches",
                   "size/delay flushes", "mean ack (ms)", "max queue (ms)"});
  Outcome off;
  for (std::size_t batch : {0, 2, 4, 8, 16, 32, 64}) {
    const Outcome o = run(batch);
    if (batch == 0) off = o;
    const double reduction =
        o.frames ? double(off.frames) / double(o.frames) : 0.0;
    table.add_row({batch == 0 ? "off" : std::to_string(batch),
                   std::to_string(o.frames),
                   batch == 0 ? "1.0x" : bench::fmt(reduction, 1) + "x",
                   std::to_string(o.records), std::to_string(o.batches),
                   std::to_string(o.size_flushes) + "/" +
                       std::to_string(o.delay_flushes),
                   bench::fmt(o.mean_ack_ms, 3),
                   bench::fmt(o.max_queue_ms, 3)});
  }
  std::printf("%s", table.to_string().c_str());

  const Outcome sixteen = run(16);
  bench::section("acceptance checks (batch window 16 vs off)");
  bench::paper_vs_measured(
      "publish RPC frames reduced >= 5x", ">= 5x",
      off.frames >= 5 * sixteen.frames
          ? "yes (" +
                bench::fmt(double(off.frames) / double(sixteen.frames), 1) +
                "x: " + std::to_string(off.frames) + " -> " +
                std::to_string(sixteen.frames) + ")"
          : "NO (" + std::to_string(off.frames) + " -> " +
                std::to_string(sixteen.frames) + ")");
  bench::paper_vs_measured(
      "mean ack latency per record drops", "lower",
      sixteen.mean_ack_ms < off.mean_ack_ms
          ? "yes (" + bench::fmt(off.mean_ack_ms, 3) + "ms -> " +
                bench::fmt(sixteen.mean_ack_ms, 3) + "ms)"
          : "NO (" + bench::fmt(off.mean_ack_ms, 3) + "ms -> " +
                bench::fmt(sixteen.mean_ack_ms, 3) + "ms)");
  bench::paper_vs_measured(
      "stored record count unchanged", "identical",
      sixteen.records == off.records
          ? "yes (" + std::to_string(off.records) + ")"
          : "NO (" + std::to_string(off.records) + " vs " +
                std::to_string(sixteen.records) + ")");
  return 0;
}
