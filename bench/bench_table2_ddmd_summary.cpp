// Table 2: DeepDriveMD mini-app experiment summary (paper §3.2).
//
// Prints the four experiment configurations (Tuning / Adaptive / Scaling A /
// Scaling B) as Table 2 lays them out, then executes the two small ones
// (Tuning, Adaptive) end to end to show the configuration is runnable.

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Table 2", "DeepDriveMD mini-app experiment summary");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // `--publish-batch N` coalesces client publishes; off by default.
  const core::BatchingConfig batching = bench::parse_publish_batch(argc, argv);

  // `--fault-seed N` reruns the two executed configurations on a lossy
  // fabric (1% drops, 2% latency spikes) with client retry +
  // buffer-and-replay — the Fig. 10 fault profile. Absent, the fabric is
  // perfect and the output is byte-identical to earlier builds.
  const bench::FaultSeedArg fault = bench::parse_fault_seed(argc, argv);
  auto apply_faults = [&](DdmdExperimentConfig& config) {
    if (!fault.enabled) return;
    config.faults.enabled = true;
    config.faults.fault_seed = fault.seed;
    config.faults.drop_probability = 0.01;
    config.faults.spike_probability = 0.02;
    config.reliability.retry.max_attempts = 4;
    config.reliability.retry.timeout = Duration::milliseconds(100);
    config.reliability.buffer_on_failure = true;
    config.reliability.probe_period = Duration::seconds(5);
  };

  TextTable table({"Experiment", "Phases (n)", "Pipelines (m)", "App Nodes",
                   "SOMA Nodes", "Cores/Sim", "Train Tasks", "Cores/Train",
                   "Ranks/Namespace", "Freq (s)"});
  table.add_row({"Tuning", "6", "1", "2", "1", "1,3,7", "1", "1,3,7", "1",
                 "60"});
  table.add_row({"Adaptive", "4", "1", "2", "1", "6", "1,2,4,6", "1", "1",
                 "60"});
  table.add_row({"Scaling A", "1", "64", "64", "1,2,4", "3", "1", "7",
                 "16,32,64", "60"});
  table.add_row({"Scaling B", "1", "64,128,256,512", "64,128,256,512",
                 "4,7,13,25", "3", "1", "7", "64,128,256,512", "60,10"});
  std::printf("%s", table.to_string().c_str());

  bench::section("realized runs (Tuning and Adaptive executed end-to-end)");
  auto tuning_config = DdmdExperimentConfig::tuning();
  tuning_config.storage = storage;
  tuning_config.batching = batching;
  apply_faults(tuning_config);
  auto adaptive_config = DdmdExperimentConfig::adaptive();
  adaptive_config.storage = storage;
  adaptive_config.batching = batching;
  apply_faults(adaptive_config);
  const DdmdResult tuning = run_ddmd_experiment(tuning_config);
  const DdmdResult adaptive = run_ddmd_experiment(adaptive_config);

  TextTable realized({"run", "phases", "pipeline time (s)", "SOMA publishes",
                      "advice recorded"});
  realized.add_row({"tuning",
                    std::to_string(tuning.phase_utilization.size()),
                    bench::fmt(tuning.pipeline_seconds.front()),
                    std::to_string(tuning.soma_publishes),
                    std::to_string(tuning.adaptive_advice.size())});
  realized.add_row({"adaptive",
                    std::to_string(adaptive.phase_utilization.size()),
                    bench::fmt(adaptive.pipeline_seconds.front()),
                    std::to_string(adaptive.soma_publishes),
                    std::to_string(adaptive.adaptive_advice.size())});
  std::printf("%s", realized.to_string().c_str());

  bench::section("store shard balance (records routed per service rank)");
  TextTable shards({"run", "shards", "records/shard min", "max", "imbalance"});
  const std::pair<const char*, const DdmdResult*> shard_runs[] = {
      {"tuning", &tuning}, {"adaptive", &adaptive}};
  for (const auto& [name, r] : shard_runs) {
    const double imbalance =
        r->shard_records_min == 0
            ? 0.0
            : static_cast<double>(r->shard_records_max) /
                  static_cast<double>(r->shard_records_min);
    shards.add_row({name, std::to_string(r->store_shards),
                    std::to_string(r->shard_records_min),
                    std::to_string(r->shard_records_max),
                    r->store_shards > 1 ? bench::fmt(imbalance, 2) + "x"
                                        : "n/a"});
  }
  std::printf("%s", shards.to_string().c_str());

  if (fault.enabled) {
    bench::section(
        ("fault injection (seed " + std::to_string(fault.seed) + ")").c_str());
    TextTable faults({"run", "net drops", "rpc retries", "publish failures",
                      "replayed", "failovers"});
    for (const auto& [name, r] : shard_runs) {
      faults.add_row({name, std::to_string(r->net_drops),
                      std::to_string(r->rpc_retries),
                      std::to_string(r->publish_failures),
                      std::to_string(r->replayed_publishes),
                      std::to_string(r->failovers)});
    }
    std::printf("%s", faults.to_string().c_str());
  }

  bench::section("adaptive analysis between phases (paper Table 2, Adaptive)");
  for (const auto& advice : adaptive.adaptive_advice) {
    std::printf("  %s\n", advice.c_str());
  }

  bench::paper_vs_measured("tuning phases", "6",
                           std::to_string(tuning.phase_utilization.size()));
  bench::paper_vs_measured("adaptive phases", "4",
                           std::to_string(adaptive.phase_utilization.size()));
  bench::paper_vs_measured("SOMA analysis available between phases", "yes",
                           adaptive.adaptive_advice.empty() ? "NO" : "yes");
  return 0;
}
