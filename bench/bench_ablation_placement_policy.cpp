// Ablation X3: utilization-aware task placement (paper §4.2).
//
// "Based on the online information about overall CPU (or GPU) utilization,
// RP could adapt its scheduling decisions, prioritizing the use of the free
// CPUs on a node with comparably lower overall CPU utilization."
//
// This bench implements exactly that and quantifies it: a machine whose
// nodes carry uneven background load runs a stream of identical
// memory-bandwidth-sensitive tasks under (a) RP's default continuous
// policy, (b) the least-utilized policy fed by platform truth, and (c) the
// least-utilized policy fed by *SOMA-observed* utilization (the closed
// loop the paper proposes).

#include <numeric>

#include "bench_util.hpp"
#include "experiments/deployment.hpp"
#include "workloads/openfoam.hpp"

using namespace soma;

namespace {

struct Outcome {
  Summary exec;
  double makespan = 0.0;
};

Outcome run(rp::PlacementPolicy policy, bool soma_fed) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(7);  // agent + 6 workers
  session_config.pilot.nodes = 7;
  session_config.seed = 31;
  session_config.scheduler.policy = policy;
  rp::Session session(session_config);

  workloads::OpenFoamParams params;
  params.work_core_seconds = 600.0;  // small tasks
  auto model = workloads::make_openfoam_model(&session.platform(), params);

  std::unique_ptr<experiments::SomaDeployment> deployment;
  std::vector<double> exec_times;
  std::optional<SimTime> first_submit, last_done;
  int outstanding = 0;

  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().label != "openfoam-probe") return;
        exec_times.push_back(task->rank_duration()->to_seconds());
        last_done = session.simulation().now();
        if (--outstanding == 0) {
          if (deployment) deployment->shutdown();
          session.finalize();
        }
      });

  session.start([&] {
    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = session.agent_node_ids();
    config.hw_monitor.period = Duration::seconds(10.0);
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);
    deployment->deploy([&] {
      if (soma_fed) {
        // Close the loop: the scheduler ranks nodes by the utilization the
        // SOMA hardware namespace last reported, not by platform truth.
        session.scheduler().set_utilization_source([&](NodeId node) {
          const std::string host =
              session.platform().node(node).hostname();
          const auto* record = deployment->service().store().latest(
              core::Namespace::kHardware, host);
          if (record == nullptr) return 0.0;
          if (const auto* host_node = record->data.find_child(host)) {
            if (const auto* util = host_node->find_child("cpu_utilization")) {
              return util->to_float64();
            }
          }
          return 0.0;
        });
      }

      // Uneven background load, heaviest on the LOW-index nodes that the
      // continuous policy considers first: worker k carries (N-1-k)
      // background tasks of 6 cores each (30, 24, ..., 0 busy cores).
      const auto workers = session.worker_node_ids();
      for (std::size_t k = 0; k < workers.size(); ++k) {
        const std::size_t load = workers.size() - 1 - k;
        for (std::size_t j = 0; j < load; ++j) {
          rp::TaskDescription filler;
          filler.uid = "bg." + std::to_string(k) + "." + std::to_string(j);
          filler.label = "background";
          filler.ranks = 1;
          filler.cores_per_rank = 6;
          filler.pinned_node = workers[k];
          filler.cpu_activity = 1.0;
          filler.fixed_duration = Duration::minutes(60.0);
          session.submit(filler);
        }
      }

      // Probe stream: identical 8-rank bandwidth-sensitive tasks arriving
      // every 20 s (so the machine never saturates and placement matters).
      first_submit = session.simulation().now();
      for (int i = 0; i < 24; ++i) {
        session.simulation().schedule(
            Duration::seconds(20.0 * i), [&, i] {
              rp::TaskDescription probe;
              probe.uid = "probe." + std::to_string(i);
              probe.label = "openfoam-probe";
              probe.ranks = 8;
              probe.model = model;
              ++outstanding;
              session.submit(probe);
            });
      }
    });
  });
  session.run();

  Outcome outcome;
  outcome.exec = summarize(exec_times);
  outcome.makespan = first_submit && last_done
                         ? (*last_done - *first_submit).to_seconds()
                         : 0.0;
  return outcome;
}

}  // namespace

int main() {
  bench::header("Ablation X3",
                "utilization-aware placement (paper §4.2 proposal)");

  const Outcome continuous = run(rp::PlacementPolicy::kContinuous, false);
  const Outcome oracle = run(rp::PlacementPolicy::kLeastUtilized, false);
  const Outcome soma_fed = run(rp::PlacementPolicy::kLeastUtilized, true);

  TextTable table({"policy", "utilization source", "probe exec time (s)",
                   "vs continuous"});
  auto gain = [&](const Outcome& o) {
    return format_seconds((1.0 - o.exec.mean / continuous.exec.mean) * 100.0,
                          1) +
           "%";
  };
  table.add_row({"continuous (RP default)", "-",
                 bench::fmt_summary(continuous.exec), ""});
  table.add_row({"least-utilized", "platform truth",
                 bench::fmt_summary(oracle.exec), gain(oracle)});
  table.add_row({"least-utilized", "SOMA hardware namespace",
                 bench::fmt_summary(soma_fed.exec), gain(soma_fed)});
  std::printf("%s", table.to_string().c_str());

  bench::section("reading");
  std::printf(
      "  * under uneven background load, steering tasks to the least-\n"
      "    utilized nodes cuts memory-bandwidth contention; feeding the\n"
      "    decision from SOMA's 10s-period observations captures most of\n"
      "    the oracle's benefit — the paper's §4.2 proposal, quantified.\n");
  return 0;
}
