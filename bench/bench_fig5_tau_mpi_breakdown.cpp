// Fig. 5: per-rank MPI time from the TAU SOMA plugin (paper §4.1).
//
// Zooms in on one 164-rank OpenFOAM task: for each rank, the time spent in
// MPI_Recv / MPI_Waitall / MPI_Allreduce vs compute, as recovered *from the
// SOMA performance namespace* (the profile travelled client -> RPC ->
// service store -> analysis). The paper's observation: "a large portion of
// time for each rank is spent in MPI_Recv() and MPI_Waitall()".

#include <map>

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 5",
                "TAU profile: per-rank MPI time of one 164-rank task");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // The tuning run is enough: it publishes one 164-rank profile.
  auto config = OpenFoamExperimentConfig::tuning();
  config.storage = storage;
  const OpenFoamResult result = run_openfoam_experiment(config);
  const profiler::TauProfile& profile = result.sample_profile;
  if (profile.ranks.empty()) {
    std::printf("ERROR: no TAU profile captured\n");
    return 1;
  }

  std::printf("task %s: %zu ranks\n", profile.task_uid.c_str(),
              profile.ranks.size());

  // Print a subsample of ranks (every 16th) like the figure's x-axis.
  TextTable table({"rank", "host", "compute (s)", "MPI_Recv", "MPI_Waitall",
                   "MPI_Allreduce", "MPI %"});
  for (std::size_t r = 0; r < profile.ranks.size(); r += 16) {
    const auto& rank = profile.ranks[r];
    const double compute = rank.inclusive_seconds.at("compute");
    const double recv = rank.inclusive_seconds.at("MPI_Recv");
    const double waitall = rank.inclusive_seconds.at("MPI_Waitall");
    const double allreduce = rank.inclusive_seconds.at("MPI_Allreduce");
    const double mpi_fraction =
        (recv + waitall + allreduce) / rank.total_seconds();
    table.add_row({std::to_string(rank.rank), rank.hostname,
                   bench::fmt(compute), bench::fmt(recv), bench::fmt(waitall),
                   bench::fmt(allreduce), bench::fmt_pct(mpi_fraction)});
  }
  std::printf("%s", table.to_string().c_str());

  // Aggregate shape checks.
  double recv_total = 0.0, waitall_total = 0.0, allreduce_total = 0.0,
         wall_total = 0.0;
  for (const auto& rank : profile.ranks) {
    recv_total += rank.inclusive_seconds.at("MPI_Recv");
    waitall_total += rank.inclusive_seconds.at("MPI_Waitall");
    allreduce_total += rank.inclusive_seconds.at("MPI_Allreduce");
    wall_total += rank.total_seconds();
  }
  const auto mpi = profile.mpi_seconds_per_rank();
  const double imbalance = load_imbalance(mpi);

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured(
      "large share of time in MPI_Recv + MPI_Waitall", "yes",
      (recv_total + waitall_total) / wall_total > 0.3
          ? "yes (" + bench::fmt_pct((recv_total + waitall_total) / wall_total) +
                " of wall time)"
          : "NO");
  bench::paper_vs_measured("MPI_Recv dominates MPI_Allreduce", "yes",
                           recv_total > allreduce_total ? "yes" : "NO");
  bench::paper_vs_measured(
      "per-rank MPI-time imbalance observable", "yes",
      imbalance > 0.02 ? "yes (max/mean - 1 = " + bench::fmt(imbalance, 3) + ")"
                       : "NO");
  return 0;
}
