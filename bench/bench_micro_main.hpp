// Custom google-benchmark main for the micro benches: runs the registered
// benchmarks with the normal console output AND captures per-benchmark
// results (ns/op, items/s, bytes/s) into BENCH_micro.json via
// bench_util.hpp's record_bench_json. Each micro binary records under its
// own suite key, so the two binaries share one file.
//
// Only the bench_micro_* targets include this header — it pulls in
// <benchmark/benchmark.h>, which the figure benches do not link.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace soma::bench {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;  // skip aggregates
      datamodel::Node& entry = results_.child(run.benchmark_name());
      entry["ns_per_op"].set(run.GetAdjustedRealTime());
      entry["iterations"].set(static_cast<std::int64_t>(run.iterations));
      // SetItemsProcessed / SetBytesProcessed surface as rate counters; for
      // the event-loop benches items/s is events/s.
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        entry["items_per_second"].set(static_cast<double>(items->second));
      }
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        entry["bytes_per_second"].set(static_cast<double>(bytes->second));
        // bytes/op is the steadier cross-machine number.
        entry["bytes_per_op"].set(static_cast<double>(bytes->second) *
                                  run.GetAdjustedRealTime() * 1e-9);
      }
    }
  }

  [[nodiscard]] const datamodel::Node& results() const { return results_; }

 private:
  datamodel::Node results_;
};

/// Shared main body: run everything, then record under `suite`.
inline int run_micro_benchmarks(int argc, char** argv, const char* suite) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  record_bench_json("BENCH_micro.json", suite, reporter.results());
  return 0;
}

}  // namespace soma::bench
