// Micro-benchmarks (google-benchmark): the Conduit-like data model.
//
// The data model sits on every publish path; these measure the operations
// the monitors perform per tick: building a /proc-style snapshot, packing it
// for the wire, unpacking at the service, and path lookups.

#include <benchmark/benchmark.h>

#include "bench_micro_main.hpp"
#include "common/rng.hpp"
#include "datamodel/node.hpp"

using namespace soma;
using namespace soma::datamodel;

namespace {

Node make_proc_like(int cores) {
  Node node;
  Node& at = node["cn0001"]["1698435412606003000"];
  at["Uptime"].set(std::int64_t{49902});
  at["Num Processes"].set(std::int64_t{3});
  at["Available RAM"].set(std::int64_t{8422});
  Node& stat = at["stat"];
  for (int c = -1; c < cores; ++c) {
    const std::string key = c < 0 ? "cpu" : "cpu" + std::to_string(c);
    stat[key].set(std::vector<std::int64_t>{10749, 865, 685, 9293, 999, 745});
  }
  return node;
}

void BM_BuildProcSnapshot(benchmark::State& state) {
  for (auto _ : state) {
    Node node = make_proc_like(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_BuildProcSnapshot)->Arg(8)->Arg(42);

void BM_Pack(benchmark::State& state) {
  const Node node = make_proc_like(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto wire = node.pack();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(node.packed_size()));
}
BENCHMARK(BM_Pack)->Arg(8)->Arg(42);

void BM_Unpack(benchmark::State& state) {
  const Node node = make_proc_like(static_cast<int>(state.range(0)));
  const auto wire = node.pack();
  for (auto _ : state) {
    Node back = Node::unpack(wire);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_Unpack)->Arg(8)->Arg(42);

void BM_PathFetch(benchmark::State& state) {
  Node node = make_proc_like(42);
  for (auto _ : state) {
    const Node& leaf =
        node.fetch_existing("cn0001/1698435412606003000/stat/cpu17");
    benchmark::DoNotOptimize(&leaf);
  }
}
BENCHMARK(BM_PathFetch);

void BM_DeepCopy(benchmark::State& state) {
  const Node node = make_proc_like(42);
  for (auto _ : state) {
    Node copy = node;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_DeepCopy);

void BM_Update(benchmark::State& state) {
  const Node base = make_proc_like(42);
  const Node patch = make_proc_like(42);
  for (auto _ : state) {
    Node merged = base;
    merged.update(patch);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_Update);

void BM_ToJson(benchmark::State& state) {
  const Node node = make_proc_like(42);
  for (auto _ : state) {
    std::string json = node.to_json();
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_ToJson);

}  // namespace

int main(int argc, char** argv) {
  return soma::bench::run_micro_benchmarks(argc, argv, "micro_datamodel");
}
