// Micro-benchmarks (google-benchmark): the RPC engine and event loop.
//
// Measures simulator throughput: how many simulated RPC round-trips and raw
// events the host machine processes per second. This bounds the wall-clock
// cost of the large Scaling B sweeps.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_micro_main.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"
#include "soma/service.hpp"

using namespace soma;

namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simulation;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      simulation.schedule(Duration::microseconds(i), [] {});
    }
    state.ResumeTiming();
    simulation.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_RpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simulation;
    net::Network network(simulation, net::NetworkConfig{});
    net::Engine server(network, net::make_address(0, 1));
    net::Engine client(network, net::make_address(1, 1));
    server.define("echo",
                  [](const net::Address&, const datamodel::Node& args) {
                    return args;
                  });
    datamodel::Node payload;
    payload["stat"].set(std::vector<std::int64_t>{1, 2, 3, 4, 5, 6});
    const int n = static_cast<int>(state.range(0));
    state.ResumeTiming();

    for (int i = 0; i < n; ++i) {
      client.call(server.address(), "echo", payload);
    }
    simulation.run();
    benchmark::DoNotOptimize(server.stats().requests_handled);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RpcRoundTrip)->Arg(1000)->Arg(10000);

void BM_PeriodicTasks(benchmark::State& state) {
  // Many concurrent periodic monitors ticking over a long horizon — the
  // hot loop of the 512-node runs.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simulation;
    std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
    int ticks = 0;
    for (int i = 0; i < state.range(0); ++i) {
      tasks.push_back(std::make_unique<sim::PeriodicTask>(
          simulation, Duration::seconds(10.0), [&ticks] { ++ticks; }));
      tasks.back()->start(Duration::milliseconds(i));
    }
    state.ResumeTiming();
    simulation.run_until(SimTime::from_seconds(600.0));
    for (auto& task : tasks) task->stop();
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 60);
}
BENCHMARK(BM_PeriodicTasks)->Arg(64)->Arg(512);

void BM_BatchPublish(benchmark::State& state) {
  // End-to-end batched publish path: client-side coalescing into 16-record
  // batch frames, the raw soma.publish_batch RPC, and the per-shard
  // append_batch ingest.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simulation;
    net::Network network(simulation, net::NetworkConfig{});
    core::ServiceConfig service_config;
    service_config.namespaces = {core::Namespace::kHardware};
    core::SomaService service(network, {0}, service_config);
    core::BatchingConfig batching;
    batching.max_records = 16;
    core::SomaClient client(network, 1, 7000, core::Namespace::kHardware,
                            service.instance(core::Namespace::kHardware).ranks,
                            {}, batching);
    datamodel::Node payload;
    payload["cpu_utilization"].set(0.5);
    const int n = static_cast<int>(state.range(0));
    state.ResumeTiming();

    for (int i = 0; i < n; ++i) {
      client.publish("host0", payload);
    }
    client.flush_batches();
    simulation.run();
    benchmark::DoNotOptimize(service.publishes_received());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchPublish)->Arg(1000)->Arg(10000);

void BM_ReplicatedPublish(benchmark::State& state) {
  // Publish path with factor-2 shard replication: every append also flows
  // through the replication log and ships to the successor rank in batch
  // frames, plus the heartbeat traffic between the two ranks.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simulation;
    net::Network network(simulation, net::NetworkConfig{});
    core::ServiceConfig service_config;
    service_config.namespaces = {core::Namespace::kHardware};
    service_config.ranks_per_namespace = 2;
    service_config.replication.factor = 2;
    core::SomaService service(network, {0}, service_config);
    core::SomaClient client(network, 1, 7000, core::Namespace::kHardware,
                            service.instance(core::Namespace::kHardware).ranks);
    datamodel::Node payload;
    payload["cpu_utilization"].set(0.5);
    const int n = static_cast<int>(state.range(0));
    char source[16];
    state.ResumeTiming();

    for (int i = 0; i < n; ++i) {
      std::snprintf(source, sizeof(source), "host%d", i % 8);
      client.publish(source, payload);
    }
    // Publishes and replication frames all land within the first simulated
    // seconds; stopping the heartbeats afterwards lets the run drain.
    simulation.run_until(SimTime::from_seconds(30.0));
    service.replication()->stop();
    simulation.run();
    benchmark::DoNotOptimize(service.publishes_received());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReplicatedPublish)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  return soma::bench::run_micro_benchmarks(argc, argv, "micro_rpc");
}
