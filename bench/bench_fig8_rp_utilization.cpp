// Fig. 8: RP resource-utilization maps for the OpenFOAM workflows
// (paper §4.2). Top: overload run; bottom: tuning run.
//
// Light blue = RP bootstrap (here 'b'), purple = task scheduling ('s'),
// green = task running ('#'), white = unused ('.'). The paper's tuning-run
// observation: the 164-rank task first occupies every core, then the other
// three tasks run simultaneously.

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

namespace {

void report(const char* name, const OpenFoamResult& result) {
  bench::section(name);
  std::printf("%s", result.timeline_render.c_str());
  TextTable table({"state", "fraction of core-time"});
  table.add_row({"bootstrap (light blue)", bench::fmt_pct(result.frac_bootstrap)});
  table.add_row({"scheduling (purple)", bench::fmt_pct(result.frac_scheduling)});
  table.add_row({"running (green)", bench::fmt_pct(result.frac_running)});
  table.add_row({"unused (white)", bench::fmt_pct(result.frac_idle)});
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Figure 8", "RP resource utilization maps (OpenFOAM)");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  auto overload_config = OpenFoamExperimentConfig::overloaded();
  overload_config.storage = storage;
  auto tuning_config = OpenFoamExperimentConfig::tuning();
  tuning_config.storage = storage;
  const OpenFoamResult overload = run_openfoam_experiment(overload_config);
  const OpenFoamResult tuning = run_openfoam_experiment(tuning_config);

  report("top: overload workflow (10 worker nodes, 80 tasks)", overload);
  report("bottom: tuning workflow (4 worker nodes, 4 tasks)", tuning);

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured(
      "overload run keeps resources well used", "resources well used",
      overload.frac_running > 0.6
          ? "yes (running " + bench::fmt_pct(overload.frac_running) + ")"
          : "NO (running " + bench::fmt_pct(overload.frac_running) + ")");
  bench::paper_vs_measured(
      "tuning run shows unused white space", "visible white space",
      tuning.frac_idle > 0.1
          ? "yes (idle " + bench::fmt_pct(tuning.frac_idle) + ")"
          : "NO (idle " + bench::fmt_pct(tuning.frac_idle) + ")");
  bench::paper_vs_measured("bootstrap band present at the left edge", "yes",
                           tuning.frac_bootstrap > 0.0 ? "yes" : "NO");
  bench::paper_vs_measured("scheduling (purple) slivers before tasks", "yes",
                           overload.frac_scheduling > 0.0 ? "yes" : "NO");
  return 0;
}
