// Shared helpers for the reproduction benches. Every bench prints a header
// naming the paper artifact it regenerates, the table/series data, and a
// "paper vs measured" comparison where the paper states numbers.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace soma::bench {

inline void header(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

inline void section(const char* title) { std::printf("\n-- %s --\n", title); }

inline std::string fmt(double value, int precision = 1) {
  return format_seconds(value, precision);
}

inline std::string fmt_pct(double fraction, int precision = 1) {
  return format_seconds(fraction * 100.0, precision) + "%";
}

/// One row of a summary distribution: mean ± σ [min, max].
inline std::string fmt_summary(const Summary& s) {
  return fmt(s.mean) + " ± " + fmt(s.stddev) + "  [" + fmt(s.min) + ", " +
         fmt(s.max) + "]";
}

inline void paper_vs_measured(const char* what, const std::string& paper,
                              const std::string& measured) {
  std::printf("  paper: %-34s measured: %s  (%s)\n", paper.c_str(),
              measured.c_str(), what);
}

}  // namespace soma::bench
