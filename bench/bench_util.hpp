// Shared helpers for the reproduction benches. Every bench prints a header
// naming the paper artifact it regenerates, the table/series data, and a
// "paper vs measured" comparison where the paper states numbers. Micro
// benches additionally record machine-readable results via
// record_bench_json, seeding the perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "datamodel/node.hpp"
#include "soma/batcher.hpp"
#include "soma/replication.hpp"
#include "soma/storage_backend.hpp"

namespace soma::bench {

/// Consume a `--store-backend <map|log>` argument pair from argv, if
/// present, and return the selected storage config (defaults otherwise).
/// The matched pair is removed from argv so positional parsing stays
/// simple. Announces a non-default backend on stdout — benches that must
/// stay byte-identical to their calibrated baselines print nothing extra
/// when the flag is absent.
inline core::StorageConfig parse_store_backend(int& argc, char** argv) {
  core::StorageConfig storage;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--store-backend") continue;
    check(i + 1 < argc, "--store-backend needs a value (map|log)");
    storage.backend = core::parse_backend_kind(argv[i + 1]);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    std::printf("store backend: %s\n",
                std::string(core::to_string(storage.backend)).c_str());
    break;
  }
  return storage;
}

/// Consume `--publish-batch <N>` (records per batch; 0 = off) and
/// `--batch-delay <ms>` (flush-age bound) argument pairs from argv, if
/// present, and return the resulting coalescing config. Matched pairs are
/// removed from argv; like parse_store_backend, nothing is printed when the
/// flags are absent so calibrated default outputs stay byte-identical.
inline core::BatchingConfig parse_publish_batch(int& argc, char** argv) {
  core::BatchingConfig batching;
  auto consume = [&](const char* flag, auto apply) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) != flag) continue;
      check(i + 1 < argc, "--publish-batch/--batch-delay needs a value");
      apply(argv[i + 1]);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return true;
    }
    return false;
  };
  const bool batch_set = consume("--publish-batch", [&](const char* value) {
    batching.max_records =
        static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
  });
  const bool delay_set = consume("--batch-delay", [&](const char* value) {
    const double ms = std::strtod(value, nullptr);
    check(ms > 0.0, "--batch-delay needs a positive millisecond value");
    batching.max_delay = Duration::seconds(ms * 1e-3);
  });
  if (batch_set || delay_set) {
    std::printf("publish batching: max_records=%zu max_delay=%.1fms\n",
                batching.max_records,
                batching.max_delay.to_seconds() * 1e3);
  }
  return batching;
}

/// Result of `parse_fault_seed`: whether `--fault-seed <N>` was present, and
/// the seed if so. The caller picks the fault profile (drop/spike rates,
/// retry policy) and prints its own fault section — the profiles differ per
/// bench and benches that must stay byte-identical to calibrated baselines
/// print nothing when the flag is absent, so this helper stays silent.
struct FaultSeedArg {
  bool enabled = false;
  std::uint64_t seed = 1;
};

/// Consume a `--fault-seed <N>` argument pair from argv, if present.
inline FaultSeedArg parse_fault_seed(int& argc, char** argv) {
  FaultSeedArg arg;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--fault-seed") continue;
    check(i + 1 < argc, "--fault-seed needs a value");
    arg.enabled = true;
    arg.seed = std::strtoull(argv[i + 1], nullptr, 10);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    break;
  }
  return arg;
}

/// Consume a `--replication <factor>` argument pair from argv, if present,
/// and return the resulting replication config (factor 1 = off, the
/// default). Announces the factor when present; silent otherwise so the
/// calibrated unreplicated outputs stay byte-identical.
inline core::ReplicationConfig parse_replication(int& argc, char** argv) {
  core::ReplicationConfig replication;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--replication") continue;
    check(i + 1 < argc, "--replication needs a value (factor >= 2)");
    replication.factor =
        static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    check(replication.factor >= 2, "--replication needs a factor >= 2");
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    std::printf("replication: factor=%d\n", replication.factor);
    break;
  }
  return replication;
}

inline void header(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

inline void section(const char* title) { std::printf("\n-- %s --\n", title); }

inline std::string fmt(double value, int precision = 1) {
  return format_seconds(value, precision);
}

inline std::string fmt_pct(double fraction, int precision = 1) {
  return format_seconds(fraction * 100.0, precision) + "%";
}

/// One row of a summary distribution: mean ± σ [min, max].
inline std::string fmt_summary(const Summary& s) {
  return fmt(s.mean) + " ± " + fmt(s.stddev) + "  [" + fmt(s.min) + ", " +
         fmt(s.max) + "]";
}

inline void paper_vs_measured(const char* what, const std::string& paper,
                              const std::string& measured) {
  std::printf("  paper: %-34s measured: %s  (%s)\n", paper.c_str(),
              measured.c_str(), what);
}

/// Merge `results` into the JSON document at `path` under key `suite`,
/// preserving any other suites already recorded there (the two micro benches
/// share one BENCH_micro.json). Unparseable or missing files start fresh.
inline void record_bench_json(const std::string& path,
                              const std::string& suite,
                              const datamodel::Node& results) {
  datamodel::Node root;
  if (std::ifstream in{path}) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      root = datamodel::Node::parse_json(buffer.str());
    } catch (const Error&) {
      root.reset();  // corrupt file: rewrite from scratch
    }
  }
  root.child(suite) = results;
  std::ofstream out(path, std::ios::trunc);
  out << root.to_json(2) << "\n";
  std::printf("\nrecorded %zu results under '%s' in %s\n",
              results.number_of_children(), suite.c_str(), path.c_str());
}

}  // namespace soma::bench
