// Fig. 7: per-node CPU utilization for the OpenFOAM tuning workflow
// (paper §4.2).
//
// Each compute node's utilization is measured every 30 s by the SOMA
// hardware monitoring client; the orange dots of the figure — task starts
// observed by the SOMA RP monitor — are printed as markers. The paper's
// observations: a spike in utilization as ranks start, and an imbalance
// across nodes in the latter half of the run.

#include <algorithm>

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 7",
                "per-node CPU utilization, OpenFOAM tuning workflow");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  auto config = OpenFoamExperimentConfig::tuning();
  config.storage = storage;
  const OpenFoamResult result = run_openfoam_experiment(config);

  // Time-bucketed utilization chart, one row per sample time, one column
  // per host (agent/SOMA node first, then workers).
  std::vector<std::string> hosts;
  for (const auto& [host, series] : result.node_utilization) {
    hosts.push_back(host);
  }
  std::sort(hosts.begin(), hosts.end());

  std::vector<std::string> headers = {"t (s)"};
  for (const auto& host : hosts) headers.push_back(host);
  headers.push_back("task starts observed by RP monitor");
  TextTable table(headers);

  // Align rows on the first host's sample times; the monitors tick with a
  // deterministic stagger, so match by nearest sample within half a period.
  const auto& reference = result.node_utilization.at(hosts.front());
  for (const auto& [t, u0] : reference) {
    std::vector<std::string> row{bench::fmt(t, 0)};
    for (const auto& host : hosts) {
      const auto& series = result.node_utilization.at(host);
      double nearest = -1.0, best_dt = 16.0;
      for (const auto& [st, su] : series) {
        const double dt = std::abs(st - t);
        if (dt < best_dt) {
          best_dt = dt;
          nearest = su;
        }
      }
      row.push_back(nearest < 0 ? "-" : bench::fmt_pct(nearest, 0));
    }
    std::string marks;
    for (const auto& [start, uid] : result.observed_task_starts) {
      if (start >= t - 30.0 && start < t) {
        if (!marks.empty()) marks += ", ";
        marks += "* " + uid;
      }
    }
    row.push_back(marks);
    table.add_row(std::move(row));
    (void)u0;
  }
  std::printf("%s", table.to_string().c_str());

  // Shape checks.
  double peak = 0.0;
  for (const auto& host : hosts) {
    for (const auto& [t, u] : result.node_utilization.at(host)) {
      peak = std::max(peak, u);
    }
  }
  // Imbalance in the latter half: spread of per-node mean utilization over
  // the second half of the run.
  double t_end = 0.0;
  for (const auto& [t, u] : reference) t_end = std::max(t_end, t);
  std::vector<double> late_means;
  for (const auto& host : hosts) {
    if (host == hosts.front()) continue;  // skip agent/SOMA node
    double sum = 0.0;
    int count = 0;
    for (const auto& [t, u] : result.node_utilization.at(host)) {
      if (t > t_end / 2.0) {
        sum += u;
        ++count;
      }
    }
    if (count > 0) late_means.push_back(sum / count);
  }
  const double late_spread =
      late_means.empty()
          ? 0.0
          : *std::max_element(late_means.begin(), late_means.end()) -
                *std::min_element(late_means.begin(), late_means.end());

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured("utilization spikes as ranks start", "yes",
                           peak > 0.8 ? "yes (peak " + bench::fmt_pct(peak) +
                                            ")"
                                      : "NO (peak " + bench::fmt_pct(peak) +
                                            ")");
  bench::paper_vs_measured(
      "imbalance across nodes in the latter half", "yes",
      late_spread > 0.1
          ? "yes (mean-utilization spread " + bench::fmt_pct(late_spread) + ")"
          : "NO (spread " + bench::fmt_pct(late_spread) + ")");
  bench::paper_vs_measured(
      "task starts observed online by the RP monitor", "orange dots",
      std::to_string(result.observed_task_starts.size()) + " markers");
  return 0;
}
