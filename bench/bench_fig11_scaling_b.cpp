// Fig. 11: DDMD mini-app Scaling B — pipelines = application nodes in
// {64, 128, 256, 512}, SOMA ranks : pipelines fixed at 1:1, across five
// configurations: none (baseline), shared, exclusive, frequent-shared, and
// frequent-exclusive ("frequent" = publish every 10 s instead of 60 s).
// (paper §4.3; x-axis of the figure is log-scaled application nodes.)
//
// Pass a maximum scale as argv[1] (e.g. "128") to truncate the sweep.

#include <cstdlib>

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 11",
                "DDMD Scaling B: pipeline-runtime distributions per config");

  int max_scale = 512;
  if (argc > 1) max_scale = std::atoi(argv[1]);

  struct Config {
    const char* name;
    SomaMode mode;
    double period_s;
  };
  const std::vector<Config> configs = {
      {"none", SomaMode::kNone, 60.0},
      {"shared", SomaMode::kShared, 60.0},
      {"exclusive", SomaMode::kExclusive, 60.0},
      {"frequent-shared", SomaMode::kShared, 10.0},
      {"frequent-exclusive", SomaMode::kExclusive, 10.0},
  };

  std::map<std::pair<int, std::string>, Summary> results;
  TextTable table({"app nodes", "config", "pipeline time (s)", "median",
                   "p95", "vs none"});
  for (int scale : {64, 128, 256, 512}) {
    if (scale > max_scale) break;
    double none_mean = 0.0;
    for (const auto& config : configs) {
      auto experiment = DdmdExperimentConfig::scaling_b(
          scale, config.mode, Duration::seconds(config.period_s));
      const DdmdResult result = run_ddmd_experiment(experiment);
      const Summary summary = summarize(result.pipeline_seconds);
      results[{scale, config.name}] = summary;
      if (std::string(config.name) == "none") none_mean = summary.mean;
      const double delta = (summary.mean / none_mean - 1.0) * 100.0;
      table.add_row({std::to_string(scale), config.name,
                     bench::fmt_summary(summary), bench::fmt(summary.median),
                     bench::fmt(summary.p95),
                     (delta >= 0 ? "+" : "") + bench::fmt(delta) + "%"});
    }
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("paper-vs-measured: frequent-exclusive overhead vs baseline");
  const std::map<int, double> paper_freq_excl = {
      {64, 1.4}, {128, 3.4}, {256, 3.2}, {512, 4.6}};
  for (const auto& [scale, paper] : paper_freq_excl) {
    const auto it = results.find({scale, "frequent-exclusive"});
    const auto none = results.find({scale, "none"});
    if (it == results.end() || none == results.end()) continue;
    const double measured =
        (it->second.mean / none->second.mean - 1.0) * 100.0;
    bench::paper_vs_measured(
        (std::to_string(scale) + " nodes").c_str(),
        "+" + bench::fmt(paper) + "%",
        (measured >= 0 ? "+" : "") + bench::fmt(measured) + "%");
  }

  bench::section("paper-vs-measured: frequent-shared vs baseline");
  const std::map<int, double> paper_freq_shared = {
      {64, -6.5}, {128, -3.8}, {256, -1.1}, {512, +1.8}};
  for (const auto& [scale, paper] : paper_freq_shared) {
    const auto it = results.find({scale, "frequent-shared"});
    const auto none = results.find({scale, "none"});
    if (it == results.end() || none == results.end()) continue;
    const double measured =
        (it->second.mean / none->second.mean - 1.0) * 100.0;
    bench::paper_vs_measured(
        (std::to_string(scale) + " nodes").c_str(),
        (paper >= 0 ? "+" : "") + bench::fmt(paper) + "%",
        (measured >= 0 ? "+" : "") + bench::fmt(measured) + "%");
  }

  bench::section("shape checks");
  if (max_scale >= 128) {
    // Overhead grows with scale.
    const double small =
        results.at({64, "frequent-exclusive"}).mean / results.at({64, "none"}).mean;
    const double large = results.at({std::min(512, max_scale),
                                     "frequent-exclusive"})
                             .mean /
                         results.at({std::min(512, max_scale), "none"}).mean;
    bench::paper_vs_measured("frequent overhead grows with scale", "yes",
                             large > small ? "yes" : "NO");
    // Shared benefit shrinks (and flips) with scale.
    const double shared_small = results.at({64, "frequent-shared"}).mean /
                                results.at({64, "none"}).mean;
    const double shared_large =
        results.at({std::min(512, max_scale), "frequent-shared"}).mean /
        results.at({std::min(512, max_scale), "none"}).mean;
    bench::paper_vs_measured("shared benefit shrinks as SOMA nodes fill up",
                             "yes", shared_large > shared_small ? "yes" : "NO");
  }
  return 0;
}
