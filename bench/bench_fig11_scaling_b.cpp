// Fig. 11: DDMD mini-app Scaling B — pipelines = application nodes in
// {64, 128, 256, 512}, SOMA ranks : pipelines fixed at 1:1, across five
// configurations: none (baseline), shared, exclusive, frequent-shared, and
// frequent-exclusive ("frequent" = publish every 10 s instead of 60 s).
// (paper §4.3; x-axis of the figure is log-scaled application nodes.)
//
// Pass a maximum scale as argv[1] (e.g. "128") to truncate the sweep.
// `--fault-seed N` reruns the sweep on a lossy fabric (1% drops, 2% latency
// spikes) with client retry + buffer-and-replay enabled; without the flag
// the output is byte-identical to earlier builds.

#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 11",
                "DDMD Scaling B: pipeline-runtime distributions per config");

  // `--store-backend log` swaps the storage backend under the sharded
  // store; the default map backend keeps output byte-identical.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // `--publish-batch N` coalesces client publishes into N-record batch
  // frames; absent, batching is off and output stays byte-identical.
  const core::BatchingConfig batching = bench::parse_publish_batch(argc, argv);

  // `--replication F` replicates every shard to F-1 successor ranks; absent,
  // replication is off and output stays byte-identical. Spliced out before
  // the positional max-scale parse below.
  const core::ReplicationConfig replication =
      bench::parse_replication(argc, argv);

  int max_scale = 512;
  std::uint64_t fault_seed = 0;
  bool faults_enabled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
      faults_enabled = true;
    } else {
      max_scale = std::atoi(argv[i]);
    }
  }

  struct Config {
    const char* name;
    SomaMode mode;
    double period_s;
  };
  const std::vector<Config> configs = {
      {"none", SomaMode::kNone, 60.0},
      {"shared", SomaMode::kShared, 60.0},
      {"exclusive", SomaMode::kExclusive, 60.0},
      {"frequent-shared", SomaMode::kShared, 10.0},
      {"frequent-exclusive", SomaMode::kExclusive, 10.0},
  };

  std::uint64_t net_drops = 0, rpc_retries = 0, publish_failures = 0;
  std::uint64_t replayed = 0, failovers = 0;
  std::uint64_t records_replicated = 0, resync_records = 0, crash_wipes = 0;
  std::uint64_t ranks_recovered = 0;

  std::map<std::pair<int, std::string>, Summary> results;
  TextTable table({"app nodes", "config", "pipeline time (s)", "median",
                   "p95", "vs none"});
  for (int scale : {64, 128, 256, 512}) {
    if (scale > max_scale) break;
    double none_mean = 0.0;
    for (const auto& config : configs) {
      auto experiment = DdmdExperimentConfig::scaling_b(
          scale, config.mode, Duration::seconds(config.period_s));
      experiment.storage = storage;
      experiment.batching = batching;
      experiment.replication = replication;
      if (faults_enabled) {
        experiment.faults.enabled = true;
        experiment.faults.fault_seed = fault_seed;
        experiment.faults.drop_probability = 0.01;
        experiment.faults.spike_probability = 0.02;
        experiment.reliability.retry.max_attempts = 4;
        experiment.reliability.retry.timeout = Duration::milliseconds(100);
        experiment.reliability.buffer_on_failure = true;
        experiment.reliability.probe_period = Duration::seconds(5);
      }
      const DdmdResult result = run_ddmd_experiment(experiment);
      net_drops += result.net_drops;
      rpc_retries += result.rpc_retries;
      publish_failures += result.publish_failures;
      replayed += result.replayed_publishes;
      failovers += result.failovers;
      records_replicated += result.records_replicated;
      resync_records += result.resync_records;
      crash_wipes += result.crash_wipes;
      ranks_recovered += result.ranks_recovered;
      const Summary summary = summarize(result.pipeline_seconds);
      results[{scale, config.name}] = summary;
      if (std::string(config.name) == "none") none_mean = summary.mean;
      const double delta = (summary.mean / none_mean - 1.0) * 100.0;
      table.add_row({std::to_string(scale), config.name,
                     bench::fmt_summary(summary), bench::fmt(summary.median),
                     bench::fmt(summary.p95),
                     (delta >= 0 ? "+" : "") + bench::fmt(delta) + "%"});
    }
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("paper-vs-measured: frequent-exclusive overhead vs baseline");
  const std::map<int, double> paper_freq_excl = {
      {64, 1.4}, {128, 3.4}, {256, 3.2}, {512, 4.6}};
  for (const auto& [scale, paper] : paper_freq_excl) {
    const auto it = results.find({scale, "frequent-exclusive"});
    const auto none = results.find({scale, "none"});
    if (it == results.end() || none == results.end()) continue;
    const double measured =
        (it->second.mean / none->second.mean - 1.0) * 100.0;
    bench::paper_vs_measured(
        (std::to_string(scale) + " nodes").c_str(),
        "+" + bench::fmt(paper) + "%",
        (measured >= 0 ? "+" : "") + bench::fmt(measured) + "%");
  }

  bench::section("paper-vs-measured: frequent-shared vs baseline");
  const std::map<int, double> paper_freq_shared = {
      {64, -6.5}, {128, -3.8}, {256, -1.1}, {512, +1.8}};
  for (const auto& [scale, paper] : paper_freq_shared) {
    const auto it = results.find({scale, "frequent-shared"});
    const auto none = results.find({scale, "none"});
    if (it == results.end() || none == results.end()) continue;
    const double measured =
        (it->second.mean / none->second.mean - 1.0) * 100.0;
    bench::paper_vs_measured(
        (std::to_string(scale) + " nodes").c_str(),
        (paper >= 0 ? "+" : "") + bench::fmt(paper) + "%",
        (measured >= 0 ? "+" : "") + bench::fmt(measured) + "%");
  }

  bench::section("shape checks");
  if (max_scale >= 128) {
    // Overhead grows with scale.
    const double small =
        results.at({64, "frequent-exclusive"}).mean / results.at({64, "none"}).mean;
    const double large = results.at({std::min(512, max_scale),
                                     "frequent-exclusive"})
                             .mean /
                         results.at({std::min(512, max_scale), "none"}).mean;
    bench::paper_vs_measured("frequent overhead grows with scale", "yes",
                             large > small ? "yes" : "NO");
    // Shared benefit shrinks (and flips) with scale.
    const double shared_small = results.at({64, "frequent-shared"}).mean /
                                results.at({64, "none"}).mean;
    const double shared_large =
        results.at({std::min(512, max_scale), "frequent-shared"}).mean /
        results.at({std::min(512, max_scale), "none"}).mean;
    bench::paper_vs_measured("shared benefit shrinks as SOMA nodes fill up",
                             "yes", shared_large > shared_small ? "yes" : "NO");
  }

  if (faults_enabled) {
    bench::section(("fault injection (seed " + std::to_string(fault_seed) +
                    ")")
                       .c_str());
    std::printf("  network drops:    %llu\n",
                static_cast<unsigned long long>(net_drops));
    std::printf("  rpc retries:      %llu\n",
                static_cast<unsigned long long>(rpc_retries));
    std::printf("  publish failures: %llu\n",
                static_cast<unsigned long long>(publish_failures));
    std::printf("  replayed:         %llu\n",
                static_cast<unsigned long long>(replayed));
    std::printf("  failovers:        %llu\n",
                static_cast<unsigned long long>(failovers));
  }
  if (replication.enabled()) {
    bench::section(
        ("replication (factor " + std::to_string(replication.factor) + ")")
            .c_str());
    std::printf("  records replicated: %llu\n",
                static_cast<unsigned long long>(records_replicated));
    std::printf("  resync records:     %llu\n",
                static_cast<unsigned long long>(resync_records));
    std::printf("  crash wipes:        %llu\n",
                static_cast<unsigned long long>(crash_wipes));
    std::printf("  ranks recovered:    %llu\n",
                static_cast<unsigned long long>(ranks_recovered));
  }
  return 0;
}
