// Fig. 4: OpenFOAM strong-scaling study (paper §4.1).
//
// The overloaded run executes 20 instances of each rank configuration
// {20, 41, 82, 164} inside one RP-managed workflow and reports per-config
// execution-time distributions. The paper's finding: "there is limited
// benefit to scaling the OpenFOAM tasks beyond two nodes" (82 ranks).

#include "bench_util.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 4", "OpenFOAM task strong scaling (overloaded run)");

  // `--store-backend log` swaps the storage backend under the sharded store.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  auto config = OpenFoamExperimentConfig::overloaded();
  config.storage = storage;
  const OpenFoamResult result = run_openfoam_experiment(config);

  TextTable table({"MPI ranks", "nodes", "instances", "exec time (s)",
                   "speedup vs 20", "bar"});
  const double base = result.scaling.at(20).mean;
  double max_mean = 0.0;
  for (const auto& [ranks, summary] : result.scaling) {
    max_mean = std::max(max_mean, summary.mean);
  }
  for (const auto& [ranks, summary] : result.scaling) {
    table.add_row({std::to_string(ranks),
                   bench::fmt(static_cast<double>(ranks) / 41.0, 1),
                   std::to_string(summary.count), bench::fmt_summary(summary),
                   bench::fmt(base / summary.mean, 2) + "x",
                   ascii_bar(summary.mean, max_mean, 40)});
  }
  std::printf("%s", table.to_string().c_str());

  const double gain_41_82 =
      result.scaling.at(41).mean - result.scaling.at(82).mean;
  const double gain_82_164 =
      result.scaling.at(82).mean - result.scaling.at(164).mean;

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured("20 -> 41 ranks improves", "yes",
                           result.scaling.at(20).mean >
                                   result.scaling.at(41).mean
                               ? "yes"
                               : "NO");
  bench::paper_vs_measured("41 -> 82 ranks improves", "yes",
                           gain_41_82 > 0 ? "yes" : "NO");
  bench::paper_vs_measured(
      "limited benefit beyond 82 ranks (2 nodes)", "yes",
      gain_82_164 < 0.35 * gain_41_82 ? "yes (gain " +
              bench::fmt(gain_82_164) + "s vs " + bench::fmt(gain_41_82) + "s)"
                                      : "NO");
  bench::paper_vs_measured(
      "variation across 20 instances visible", "yes",
      result.scaling.at(82).stddev > 0.0 ? "yes (sigma " +
              bench::fmt(result.scaling.at(82).stddev) + "s at 82 ranks)"
                                         : "NO");
  return 0;
}
