// Fig. 10: DDMD mini-app Scaling A — 64 pipelines, varying the ratio of
// SOMA ranks to pipelines (1:1 .. 4:1) in shared and exclusive
// configurations (paper §4.3).
//
// Paper findings: GPU oversubscription causes more variability in the
// shared configuration but reduces execution time for many pipelines, and
// "the ratio of SOMA ranks to pipelines does not have much effect".

#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "experiments/ddmd_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  bench::header("Figure 10",
                "DDMD Scaling A: 64 pipelines, SOMA rank ratio x shared/excl");

  // `--store-backend log` swaps the storage backend under the sharded store.
  // Absent, the default map backend keeps output byte-identical to earlier
  // builds.
  const core::StorageConfig storage = bench::parse_store_backend(argc, argv);

  // `--publish-batch N` coalesces client publishes into N-record batch
  // frames (`--batch-delay` bounds their age). Absent, batching stays off
  // and output is byte-identical to earlier builds.
  const core::BatchingConfig batching = bench::parse_publish_batch(argc, argv);

  // `--replication F` replicates every shard to F-1 successor ranks with
  // heartbeat failure detection. Absent, replication stays off and output is
  // byte-identical to earlier builds.
  const core::ReplicationConfig replication =
      bench::parse_replication(argc, argv);

  // `--fault-seed N` reruns the sweep on a lossy fabric (1% drops, 2% latency
  // spikes) with client retry + buffer-and-replay enabled. Without the flag
  // the fabric is perfect and the output is byte-identical to earlier builds.
  std::uint64_t fault_seed = 0;
  bool faults_enabled = false;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-seed") == 0) {
      fault_seed = std::strtoull(argv[i + 1], nullptr, 10);
      faults_enabled = true;
    }
  }

  struct Row {
    int soma_nodes;
    int ranks;
    SomaMode mode;
    Summary summary;
  };
  std::vector<Row> rows;

  std::uint64_t net_drops = 0, rpc_retries = 0, publish_failures = 0;
  std::uint64_t replayed = 0, failovers = 0;
  std::uint64_t records_replicated = 0, resync_records = 0, crash_wipes = 0;
  std::uint64_t ranks_recovered = 0;

  // Table 2, Scaling A: SOMA nodes {1,2,4} with ranks/namespace {16,32,64}.
  const std::vector<std::pair<int, int>> setups = {{1, 16}, {2, 32}, {4, 64}};
  for (const auto& [nodes, ranks] : setups) {
    for (SomaMode mode : {SomaMode::kExclusive, SomaMode::kShared}) {
      auto config = DdmdExperimentConfig::scaling_a(nodes, ranks, mode);
      config.storage = storage;
      config.batching = batching;
      config.replication = replication;
      if (faults_enabled) {
        config.faults.enabled = true;
        config.faults.fault_seed = fault_seed;
        config.faults.drop_probability = 0.01;
        config.faults.spike_probability = 0.02;
        config.reliability.retry.max_attempts = 4;
        config.reliability.retry.timeout = Duration::milliseconds(100);
        config.reliability.buffer_on_failure = true;
        config.reliability.probe_period = Duration::seconds(5);
      }
      const DdmdResult result = run_ddmd_experiment(config);
      net_drops += result.net_drops;
      rpc_retries += result.rpc_retries;
      publish_failures += result.publish_failures;
      replayed += result.replayed_publishes;
      failovers += result.failovers;
      records_replicated += result.records_replicated;
      resync_records += result.resync_records;
      crash_wipes += result.crash_wipes;
      ranks_recovered += result.ranks_recovered;
      rows.push_back(Row{nodes, ranks, mode,
                         summarize(result.pipeline_seconds)});
    }
  }

  TextTable table({"SOMA nodes", "ranks/ns", "pipelines:ranks", "mode",
                   "pipeline time (s)", "p95", "spread (max-min)"});
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.soma_nodes), std::to_string(row.ranks),
                   "1:" + bench::fmt(row.ranks / 64.0, 2),
                   std::string(to_string(row.mode)),
                   bench::fmt_summary(row.summary), bench::fmt(row.summary.p95),
                   bench::fmt(row.summary.max - row.summary.min)});
  }
  std::printf("%s", table.to_string().c_str());

  // Shape checks.
  auto mean_over = [&](SomaMode mode) {
    double sum = 0.0;
    int n = 0;
    for (const auto& row : rows) {
      if (row.mode == mode) {
        sum += row.summary.mean;
        ++n;
      }
    }
    return sum / n;
  };
  auto spread_over = [&](SomaMode mode) {
    double sum = 0.0;
    int n = 0;
    for (const auto& row : rows) {
      if (row.mode == mode) {
        sum += row.summary.max - row.summary.min;
        ++n;
      }
    }
    return sum / n;
  };
  // Ratio effect within exclusive rows.
  double ratio_min = 1e18, ratio_max = 0.0;
  for (const auto& row : rows) {
    if (row.mode != SomaMode::kExclusive) continue;
    ratio_min = std::min(ratio_min, row.summary.mean);
    ratio_max = std::max(ratio_max, row.summary.mean);
  }

  bench::section("paper-vs-measured (shape)");
  bench::paper_vs_measured(
      "shared reduces execution time for many pipelines", "yes",
      mean_over(SomaMode::kShared) < mean_over(SomaMode::kExclusive)
          ? "yes (mean " + bench::fmt(mean_over(SomaMode::kShared)) + "s vs " +
                bench::fmt(mean_over(SomaMode::kExclusive)) + "s)"
          : "NO");
  bench::paper_vs_measured(
      "shared has more variance than exclusive", "yes",
      spread_over(SomaMode::kShared) > spread_over(SomaMode::kExclusive)
          ? "yes (spread " + bench::fmt(spread_over(SomaMode::kShared)) +
                "s vs " + bench::fmt(spread_over(SomaMode::kExclusive)) + "s)"
          : "NO");
  bench::paper_vs_measured(
      "SOMA rank ratio has little effect", "little effect",
      (ratio_max - ratio_min) / ratio_min < 0.05
          ? "yes (exclusive means within " +
                bench::fmt_pct((ratio_max - ratio_min) / ratio_min) + ")"
          : "NO (" + bench::fmt_pct((ratio_max - ratio_min) / ratio_min) + ")");

  if (faults_enabled) {
    bench::section(("fault injection (seed " + std::to_string(fault_seed) +
                    ")")
                       .c_str());
    std::printf("  network drops:    %llu\n",
                static_cast<unsigned long long>(net_drops));
    std::printf("  rpc retries:      %llu\n",
                static_cast<unsigned long long>(rpc_retries));
    std::printf("  publish failures: %llu\n",
                static_cast<unsigned long long>(publish_failures));
    std::printf("  replayed:         %llu\n",
                static_cast<unsigned long long>(replayed));
    std::printf("  failovers:        %llu\n",
                static_cast<unsigned long long>(failovers));
  }
  if (replication.enabled()) {
    bench::section(
        ("replication (factor " + std::to_string(replication.factor) + ")")
            .c_str());
    std::printf("  records replicated: %llu\n",
                static_cast<unsigned long long>(records_replicated));
    std::printf("  resync records:     %llu\n",
                static_cast<unsigned long long>(resync_records));
    std::printf("  crash wipes:        %llu\n",
                static_cast<unsigned long long>(crash_wipes));
    std::printf("  ranks recovered:    %llu\n",
                static_cast<unsigned long long>(ranks_recovered));
  }
  return 0;
}
