// Ablation X1 (DESIGN.md): SOMA publish cost decomposition.
//
// Sweeps publish rate and service rank count against a fixed client
// population and reports where the time goes: network transfer, service
// queueing, and ingest. Demonstrates the queueing-theoretic knee that makes
// under-provisioned SOMA instances fall behind at high monitoring frequency
// — the mechanism DESIGN.md §3.3 cites for Fig. 11.

#include <memory>

#include "bench_util.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"
#include "soma/service.hpp"

using namespace soma;

namespace {

struct Outcome {
  double mean_ack_ms = 0.0;
  double max_queue_ms = 0.0;
  double service_busy_fraction = 0.0;
};

Outcome run(int clients, double period_s, int ranks, double horizon_s) {
  sim::Simulation simulation;
  net::Network network(simulation, net::NetworkConfig{});

  core::ServiceConfig config;
  config.ranks_per_namespace = ranks;
  config.namespaces = {core::Namespace::kHardware};
  config.cost.base = Duration::microseconds(500);  // deliberately heavy
  config.cost.per_kib = Duration::microseconds(50);
  core::SomaService service(network, {0}, config);

  std::vector<std::unique_ptr<core::SomaClient>> stubs;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tickers;
  for (int c = 0; c < clients; ++c) {
    stubs.push_back(std::make_unique<core::SomaClient>(
        network, 1 + c % 8, 7000 + c, core::Namespace::kHardware,
        service.instance(core::Namespace::kHardware).ranks));
    core::SomaClient* stub = stubs.back().get();
    const std::string source = "cn" + std::to_string(c);
    tickers.push_back(std::make_unique<sim::PeriodicTask>(
        simulation, Duration::seconds(period_s), [stub, source] {
          datamodel::Node data;
          data["Uptime"].set(std::int64_t{1});
          data["stat"]["cpu"].set(
              std::vector<std::int64_t>{1, 2, 3, 4, 5, 6});
          stub->publish(source, std::move(data));
        }));
    // Stagger starts to avoid a synthetic synchronized burst.
    tickers.back()->start(Duration::seconds(period_s * c / clients));
  }

  simulation.run_until(SimTime::from_seconds(horizon_s));
  for (auto& ticker : tickers) ticker->stop();
  simulation.run();

  Outcome outcome;
  Duration total_ack;
  std::uint64_t acked = 0;
  for (const auto& stub : stubs) {
    total_ack += stub->stats().total_ack_latency;
    acked += stub->stats().acked;
  }
  outcome.mean_ack_ms =
      acked ? total_ack.to_seconds() * 1e3 / double(acked) : 0.0;
  outcome.max_queue_ms = service.max_queue_delay().to_seconds() * 1e3;
  const net::EngineStats stats =
      service.instance_stats(core::Namespace::kHardware);
  outcome.service_busy_fraction =
      stats.total_service_time.to_seconds() / (horizon_s * ranks);
  return outcome;
}

}  // namespace

int main() {
  bench::header("Ablation X1", "SOMA publish cost vs frequency and ranks");

  const int clients = 128;
  const double horizon = 120.0;

  TextTable table({"clients", "period (s)", "service ranks", "mean ack (ms)",
                   "max queue (ms)", "rank busy fraction"});
  for (double period : {60.0, 10.0, 1.0, 0.1, 0.05}) {
    for (int ranks : {1, 4, 16}) {
      const Outcome o = run(clients, period, ranks, horizon);
      table.add_row({std::to_string(clients), bench::fmt(period, 2),
                     std::to_string(ranks), bench::fmt(o.mean_ack_ms, 3),
                     bench::fmt(o.max_queue_ms, 3),
                     bench::fmt_pct(o.service_busy_fraction, 2)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("reading");
  std::printf(
      "  * at 60s/10s the service idles regardless of rank count (the\n"
      "    Scaling B regime: SOMA keeps pace);\n"
      "  * at 0.05s a single rank saturates (busy fraction -> 1) and queue\n"
      "    delay explodes, while 16 ranks absorb the same load — the\n"
      "    namespace-instance partitioning knob the paper provisions via\n"
      "    'SOMA Ranks Per Namespace'.\n");
  return 0;
}
