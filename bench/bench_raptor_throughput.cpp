// RAPTOR function-task throughput (paper §2.1).
//
// RP "utilizes a dedicated subsystem called RAPTOR to execute Python
// functions at a very large scale". This bench quantifies why: the same
// stream of small work units executed (a) as individual RP executable tasks
// (scheduler decision + launcher spawn each) and (b) as RAPTOR function
// calls through a persistent worker pool.

#include "bench_util.hpp"
#include "raptor/raptor.hpp"

using namespace soma;

namespace {

rp::SessionConfig session_config() {
  rp::SessionConfig config;
  config.platform = cluster::summit(5);
  config.pilot.nodes = 5;
  config.seed = 41;
  return config;
}

double run_raptor(int units, Duration unit, int workers, int slots) {
  rp::Session session(session_config());
  raptor::RaptorMaster master(
      session,
      raptor::RaptorConfig{.workers = workers, .cores_per_worker = slots});
  int done = 0;
  std::optional<SimTime> begin;
  SimTime end;
  session.start([&] {
    master.start([&] { begin = session.simulation().now(); });
    master.submit_many(units, unit, [&](const raptor::FunctionResult&) {
      if (++done == units) {
        end = session.simulation().now();
        master.shutdown();
        session.finalize();
      }
    });
  });
  session.run();
  return (end - *begin).to_seconds();
}

double run_tasks(int units, Duration unit) {
  rp::Session session(session_config());
  int done = 0;
  std::optional<SimTime> begin;
  SimTime end;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>&) {
        if (++done == units) {
          end = session.simulation().now();
          session.finalize();
        }
      });
  session.start([&] {
    begin = session.simulation().now();
    for (int i = 0; i < units; ++i) {
      rp::TaskDescription d;
      d.ranks = 1;
      d.fixed_duration = unit;
      session.submit(d);
    }
  });
  session.run();
  return (end - *begin).to_seconds();
}

}  // namespace

int main() {
  bench::header("RAPTOR throughput",
                "function-call path vs executable-task path");

  TextTable table({"units", "unit time", "RP tasks (s)",
                   "RAPTOR 4x8 (s)", "RAPTOR 8x16 (s)", "best speedup"});
  for (const auto& [units, unit_ms] :
       std::vector<std::pair<int, int>>{{200, 100}, {1000, 100}, {1000, 10}}) {
    const Duration unit = Duration::milliseconds(unit_ms);
    const double tasks = run_tasks(units, unit);
    const double raptor_small = run_raptor(units, unit, 4, 8);
    const double raptor_large = run_raptor(units, unit, 8, 16);
    const double best = std::min(raptor_small, raptor_large);
    table.add_row({std::to_string(units), std::to_string(unit_ms) + " ms",
                   bench::fmt(tasks), bench::fmt(raptor_small),
                   bench::fmt(raptor_large),
                   bench::fmt(tasks / best, 1) + "x"});
  }
  std::printf("%s", table.to_string().c_str());

  bench::section("reading");
  std::printf(
      "  * every executable task pays a serial scheduler decision plus a\n"
      "    launcher spawn/teardown; function calls through the persistent\n"
      "    worker pool pay only a dispatch overhead — the smaller the unit\n"
      "    of work, the larger RAPTOR's advantage.\n");
  return 0;
}
