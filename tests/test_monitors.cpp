// Unit tests for the RP workflow monitor and the hardware monitor.
#include <gtest/gtest.h>

#include "monitors/hw_monitor.hpp"
#include "monitors/rp_monitor.hpp"
#include "soma/service.hpp"

namespace soma::monitors {
namespace {

rp::SessionConfig session_config() {
  rp::SessionConfig config;
  config.platform = cluster::summit(3);
  config.pilot.nodes = 3;
  config.seed = 33;
  return config;
}

// ---------- RpMonitor ----------

class RpMonitorTest : public ::testing::Test {
 protected:
  RpMonitorTest() : session(session_config()) {}

  void start_with_service() {
    service = std::make_unique<core::SomaService>(session.network(),
                                                  std::vector<NodeId>{0});
    client = std::make_unique<core::SomaClient>(
        session.network(), 0, 6000, core::Namespace::kWorkflow,
        service->instance(core::Namespace::kWorkflow).ranks);
  }

  rp::Session session;
  std::unique_ptr<core::SomaService> service;
  std::unique_ptr<core::SomaClient> client;
};

TEST_F(RpMonitorTest, PublishesSummaries) {
  RpMonitorConfig config;
  config.period = Duration::seconds(10.0);
  std::unique_ptr<RpMonitor> monitor;
  session.start([&] {
    start_with_service();
    monitor = std::make_unique<RpMonitor>(session, *client, config);
    monitor->start();
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 4, .fixed_duration = Duration::seconds(25.0)});
    session.simulation().schedule(Duration::seconds(60.0), [&] {
      monitor->stop();
      session.finalize();
    });
  });
  session.run();

  EXPECT_GE(monitor->ticks(), 6u);
  const auto series =
      service->store().series(core::Namespace::kWorkflow, "rp_monitor");
  ASSERT_GE(series.size(), 6u);

  // Early tick: the task is pending or executing; late tick: done.
  const auto& early = series[1]->data.fetch_existing("summary");
  const auto& late = series.back()->data.fetch_existing("summary");
  EXPECT_EQ(late.fetch_existing("tasks_done").as_int64(), 1);
  EXPECT_EQ(early.fetch_existing("tasks_done").as_int64() +
                early.fetch_existing("tasks_executing").as_int64() +
                early.fetch_existing("tasks_pending").as_int64(),
            1);
  EXPECT_NEAR(late.fetch_existing("mean_exec_seconds").to_float64(), 25.0,
              1.0);
}

TEST_F(RpMonitorTest, EventsPublishedIncrementally) {
  RpMonitorConfig config;
  config.period = Duration::seconds(10.0);
  std::unique_ptr<RpMonitor> monitor;
  session.start([&] {
    start_with_service();
    monitor = std::make_unique<RpMonitor>(session, *client, config);
    monitor->start();
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 1, .fixed_duration = Duration::seconds(5.0)});
    session.simulation().schedule(Duration::seconds(30.0), [&] {
      monitor->stop();
      session.finalize();
    });
  });
  session.run();

  const auto series =
      service->store().series(core::Namespace::kWorkflow, "rp_monitor");
  // rank_start for task "t" appears in exactly one tick's event block.
  int ticks_with_rank_start = 0;
  for (const auto* record : series) {
    const auto* events = record->data.find_child("events");
    if (events == nullptr) continue;
    const auto* task_events = events->find_child("t");
    if (task_events == nullptr) continue;
    for (std::size_t i = 0; i < task_events->number_of_children(); ++i) {
      if (task_events->child_at(i).as_string() == rp::events::kRankStart) {
        ++ticks_with_rank_start;
      }
    }
  }
  EXPECT_EQ(ticks_with_rank_start, 1);
}

TEST_F(RpMonitorTest, CpuShareGrowsWithTasksAndSaturates) {
  RpMonitorConfig config;
  config.period = Duration::seconds(10.0);
  std::unique_ptr<RpMonitor> monitor;
  double share_empty = 0.0;
  session.start([&] {
    start_with_service();
    monitor = std::make_unique<RpMonitor>(session, *client, config);
    share_empty = monitor->cpu_share();
    for (int i = 0; i < 50; ++i) {
      session.submit(rp::TaskDescription{
          .ranks = 1, .fixed_duration = Duration::seconds(1.0)});
    }
    session.finalize();
  });
  session.run();
  EXPECT_GT(monitor->cpu_share(), share_empty);
  EXPECT_LE(monitor->cpu_share(), config.cpu_share_cap);
}

TEST_F(RpMonitorTest, RequiresWorkflowNamespaceClient) {
  session.start([&] {
    service = std::make_unique<core::SomaService>(session.network(),
                                                  std::vector<NodeId>{0});
    core::SomaClient wrong(
        session.network(), 0, 6000, core::Namespace::kHardware,
        service->instance(core::Namespace::kHardware).ranks);
    EXPECT_THROW(RpMonitor(session, wrong), InternalError);
    session.finalize();
  });
  session.run();
}

// ---------- HwMonitor ----------

class HwMonitorTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  cluster::Platform platform{simulation, cluster::summit(2)};
};

TEST_F(HwMonitorTest, PublishesSnapshotsWithUtilization) {
  core::SomaService service(network, {0});
  core::SomaClient client(network, 1, 6000, core::Namespace::kHardware,
                          service.instance(core::Namespace::kHardware).ranks);
  HwMonitorConfig config;
  config.period = Duration::seconds(30.0);
  HwMonitor monitor(simulation, platform.node(1), client, Rng{3}, config);

  // Busy the node at 50% for the whole window.
  platform.node(1).allocate_cores(21, "t", 1.0);
  monitor.start(Duration::seconds(30.0));
  simulation.run_until(SimTime::from_seconds(125.0));
  monitor.stop();
  simulation.run();

  EXPECT_EQ(monitor.ticks(), 4u);  // 30, 60, 90, 120
  ASSERT_EQ(monitor.samples().size(), 4u);
  // Window utilization close to 0.5 (plus ~1% background activity).
  for (const auto& sample : monitor.samples()) {
    EXPECT_NEAR(sample.utilization, 0.5, 0.05);
  }

  const auto series =
      service.store().series(core::Namespace::kHardware, "cn0001");
  ASSERT_EQ(series.size(), 4u);
  const auto& last = series.back()->data;
  EXPECT_TRUE(last.has_path("cn0001/cpu_utilization"));
  EXPECT_NEAR(last.fetch_existing("cn0001/cpu_utilization").as_float64(), 0.5,
              0.05);
}

TEST_F(HwMonitorTest, UtilizationTracksChanges) {
  core::SomaService service(network, {0});
  core::SomaClient client(network, 1, 6000, core::Namespace::kHardware,
                          service.instance(core::Namespace::kHardware).ranks);
  HwMonitorConfig config;
  config.period = Duration::seconds(10.0);
  HwMonitor monitor(simulation, platform.node(1), client, Rng{3}, config);
  monitor.start(Duration::seconds(10.0));

  // Idle for 30 s, then fully busy.
  std::optional<std::vector<CoreId>> cores;
  simulation.schedule(Duration::seconds(30.0), [&] {
    cores = platform.node(1).allocate_cores(42, "t", 1.0);
  });
  simulation.run_until(SimTime::from_seconds(65.0));
  monitor.stop();

  const auto& samples = monitor.samples();
  ASSERT_GE(samples.size(), 6u);
  EXPECT_LT(samples[1].utilization, 0.1);   // idle window
  EXPECT_GT(samples[4].utilization, 0.85);  // busy window (30-40 s)
}

TEST_F(HwMonitorTest, GpuUtilizationSampled) {
  core::SomaService service(network, {0});
  core::SomaClient client(network, 1, 6000, core::Namespace::kHardware,
                          service.instance(core::Namespace::kHardware).ranks);
  HwMonitorConfig config;
  config.period = Duration::seconds(10.0);
  HwMonitor monitor(simulation, platform.node(1), client, Rng{3}, config);
  monitor.start(Duration::seconds(10.0));

  // 3 of 6 GPUs busy for the whole run.
  platform.node(1).allocate_gpus(3, "t");
  simulation.run_until(SimTime::from_seconds(35.0));
  monitor.stop();

  ASSERT_GE(monitor.samples().size(), 3u);
  for (const auto& sample : monitor.samples()) {
    EXPECT_NEAR(sample.gpu_utilization, 0.5, 1e-9);
  }
  const auto* record =
      service.store().latest(core::Namespace::kHardware, "cn0001");
  // The last publish may still be in flight at stop(); drain first.
  simulation.run();
  record = service.store().latest(core::Namespace::kHardware, "cn0001");
  ASSERT_NE(record, nullptr);
  EXPECT_NEAR(
      record->data.fetch_existing("cn0001/gpu_utilization").as_float64(), 0.5,
      1e-9);
}

TEST_F(RpMonitorTest, DwellTimesReported) {
  RpMonitorConfig config;
  config.period = Duration::seconds(10.0);
  std::unique_ptr<RpMonitor> monitor;
  session.start([&] {
    start_with_service();
    monitor = std::make_unique<RpMonitor>(session, *client, config);
    monitor->start();
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 4, .fixed_duration = Duration::seconds(20.0)});
    session.simulation().schedule(Duration::seconds(40.0), [&] {
      monitor->stop();
      session.finalize();
    });
  });
  session.run();

  const auto& summary = monitor->last_summary();
  // TMGR dwell = tmgr_cost + channel latency (~7 ms).
  EXPECT_GT(summary.mean_tmgr_wait_seconds, 0.0);
  EXPECT_LT(summary.mean_tmgr_wait_seconds, 0.1);
  // Agent dwell includes the scheduler decision (~15 ms median).
  EXPECT_GT(summary.mean_agent_wait_seconds, 0.0);
  EXPECT_LT(summary.mean_agent_wait_seconds, 1.0);
  // Launch overhead: jsrun spawn ~0.36 s + prologue.
  EXPECT_GT(summary.mean_launch_overhead_seconds, 0.1);
  EXPECT_LT(summary.mean_launch_overhead_seconds, 2.0);
}

TEST_F(HwMonitorTest, NoiseFractionFollowsFrequency) {
  core::SomaService service(network, {0});
  core::SomaClient client(network, 1, 6000, core::Namespace::kHardware,
                          service.instance(core::Namespace::kHardware).ranks);
  HwMonitorConfig slow;
  slow.period = Duration::seconds(60.0);
  HwMonitorConfig fast;
  fast.period = Duration::seconds(10.0);
  HwMonitor slow_monitor(simulation, platform.node(0), client, Rng{1}, slow);
  HwMonitor fast_monitor(simulation, platform.node(1), client, Rng{1}, fast);
  EXPECT_NEAR(fast_monitor.noise_fraction(),
              6.0 * slow_monitor.noise_fraction(), 1e-12);
  EXPECT_LT(fast_monitor.noise_fraction(), 0.02);  // small perturbation
}

TEST_F(HwMonitorTest, RequiresHardwareNamespaceClient) {
  core::SomaService service(network, {0});
  core::SomaClient wrong(network, 1, 6000, core::Namespace::kWorkflow,
                         service.instance(core::Namespace::kWorkflow).ranks);
  EXPECT_THROW(HwMonitor(simulation, platform.node(0), wrong, Rng{1}),
               InternalError);
}

}  // namespace
}  // namespace soma::monitors
