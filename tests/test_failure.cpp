// Failure-injection tests: crashing tasks, walltime kills, and the
// observability stack's view of failures.
#include <gtest/gtest.h>

#include "experiments/deployment.hpp"
#include "monitors/rp_monitor.hpp"
#include "rp/session.hpp"

namespace soma::rp {
namespace {

SessionConfig session_config(std::uint64_t seed = 77) {
  SessionConfig config;
  config.platform = cluster::summit(3);
  config.pilot.nodes = 3;
  config.seed = seed;
  return config;
}

TEST(FailureTest, CrashingTaskEndsFailed) {
  Session session(session_config());
  std::shared_ptr<Task> task;
  session.start([&] {
    TaskDescription d;
    d.uid = "doomed";
    d.ranks = 4;
    d.fixed_duration = Duration::seconds(100.0);
    d.failure_probability = 1.0;
    task = session.submit(d);
  });
  session.run();

  EXPECT_EQ(task->state(), TaskState::kFailed);
  // Crash happens strictly inside the nominal duration.
  const Duration ran = *task->rank_duration();
  EXPECT_GT(ran, Duration::zero());
  EXPECT_LT(ran, Duration::seconds(100.0));
  // The event sequence still closes out (launcher teardown observed).
  EXPECT_TRUE(task->event_time(events::kExecStop).has_value());
  EXPECT_TRUE(task->event_time(events::kLaunchStop).has_value());
}

TEST(FailureTest, FailedTaskReleasesResources) {
  Session session(session_config());
  session.start([&] {
    TaskDescription d;
    d.uid = "doomed";
    d.ranks = 8;
    d.gpus_per_rank = 0;
    d.cores_per_rank = 2;
    d.fixed_duration = Duration::seconds(50.0);
    d.failure_probability = 1.0;
    session.submit(d);
  });
  session.run();

  for (NodeId node : session.worker_node_ids()) {
    EXPECT_EQ(session.platform().node(node).busy_cores(), 0);
    EXPECT_EQ(session.platform().node(node).busy_gpus(), 0);
  }
}

TEST(FailureTest, FailureUnblocksWaitlistedTasks) {
  Session session(session_config());
  std::shared_ptr<Task> blocked;
  session.start([&] {
    TaskDescription hog;
    hog.uid = "hog";
    hog.ranks = 84;  // both worker nodes
    hog.fixed_duration = Duration::seconds(1000.0);
    hog.failure_probability = 1.0;
    session.submit(hog);

    TaskDescription next;
    next.uid = "next";
    next.ranks = 84;
    next.fixed_duration = Duration::seconds(10.0);
    blocked = session.submit(next);
  });
  session.run();
  // The crash freed the machine; the waitlisted task ran to completion.
  EXPECT_EQ(blocked->state(), TaskState::kDone);
}

TEST(FailureTest, CompletionListenerSeesFailures) {
  Session session(session_config());
  int done = 0, failed = 0;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<Task>& task) {
        if (task->state() == TaskState::kFailed) ++failed;
        if (task->state() == TaskState::kDone) ++done;
      });
  session.start([&] {
    for (int i = 0; i < 4; ++i) {
      TaskDescription d;
      d.ranks = 4;
      d.fixed_duration = Duration::seconds(20.0);
      d.failure_probability = i % 2 == 0 ? 1.0 : 0.0;
      session.submit(d);
    }
  });
  session.run();
  EXPECT_EQ(failed, 2);
  EXPECT_EQ(done, 2);
}

TEST(FailureTest, FailureRateIsStatistical) {
  Session session(session_config());
  int failed = 0;
  const int total = 200;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<Task>& task) {
        if (task->state() == TaskState::kFailed) ++failed;
      });
  session.start([&] {
    for (int i = 0; i < total; ++i) {
      TaskDescription d;
      d.ranks = 1;
      d.fixed_duration = Duration::seconds(1.0);
      d.failure_probability = 0.3;
      session.submit(d);
    }
  });
  session.run();
  EXPECT_NEAR(static_cast<double>(failed) / total, 0.3, 0.1);
}

TEST(FailureTest, RpMonitorCountsFailures) {
  Session session(session_config());
  std::unique_ptr<core::SomaService> service;
  std::unique_ptr<core::SomaClient> client;
  std::unique_ptr<monitors::RpMonitor> monitor;
  session.start([&] {
    service = std::make_unique<core::SomaService>(session.network(),
                                                  std::vector<NodeId>{0});
    client = std::make_unique<core::SomaClient>(
        session.network(), 0, 6000, core::Namespace::kWorkflow,
        service->instance(core::Namespace::kWorkflow).ranks);
    monitors::RpMonitorConfig config;
    config.period = Duration::seconds(10.0);
    monitor = std::make_unique<monitors::RpMonitor>(session, *client, config);
    monitor->start();

    TaskDescription d;
    d.uid = "doomed";
    d.ranks = 2;
    d.fixed_duration = Duration::seconds(30.0);
    d.failure_probability = 1.0;
    session.submit(d);
    session.simulation().schedule(Duration::seconds(60.0), [&] {
      monitor->stop();
      session.finalize();
    });
  });
  session.run();
  EXPECT_EQ(monitor->last_summary().tasks_failed, 1);
  EXPECT_EQ(monitor->last_summary().tasks_done, 0);
}

TEST(FailureTest, ExperimentSurvivesFailures) {
  // A full deployment where a quarter of the app tasks crash: the workflow
  // must still drain, monitors must still shut down cleanly.
  Session session(session_config());
  std::unique_ptr<experiments::SomaDeployment> deployment;
  int outstanding = 0;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<Task>& task) {
        if (task->description().kind != TaskKind::kApplication) return;
        if (--outstanding == 0) {
          deployment->shutdown();
          session.finalize();
        }
      });
  session.start([&] {
    experiments::DeploymentConfig config;
    config.service_nodes = session.agent_node_ids();
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);
    deployment->deploy([&] {
      for (int i = 0; i < 12; ++i) {
        TaskDescription d;
        d.ranks = 8;
        d.fixed_duration = Duration::seconds(30.0);
        d.failure_probability = 0.25;
        ++outstanding;
        session.submit(d);
      }
    });
  });
  session.run();
  EXPECT_EQ(outstanding, 0);
  // Every worker core released at the end.
  for (NodeId node : session.worker_node_ids()) {
    EXPECT_EQ(session.platform().node(node).busy_cores(), 0);
  }
}

TEST(FailureTest, WalltimeKillFinalizesSession) {
  SessionConfig config = session_config();
  config.pilot.runtime = Duration::seconds(120.0);  // very short walltime
  Session session(config);
  std::shared_ptr<Task> task;
  session.start([&] {
    TaskDescription d;
    d.uid = "long";
    d.ranks = 1;
    d.fixed_duration = Duration::seconds(10000.0);
    task = session.submit(d);
  });
  session.run();
  // The pilot hit its walltime; the session drained without hanging and the
  // long task never completed.
  EXPECT_NE(task->state(), TaskState::kDone);
}

}  // namespace
}  // namespace soma::rp
