// Unit tests for the analysis layer: utilization timelines, the hardware
// report, workflow progress extraction, and the adaptive advisor.
#include <gtest/gtest.h>

#include "analysis/advisor.hpp"
#include "analysis/timeline.hpp"

namespace soma::analysis {
namespace {

// ---------- UtilizationTimeline ----------

rp::SessionConfig session_config() {
  rp::SessionConfig config;
  config.platform = cluster::summit(3);
  config.pilot.nodes = 3;
  config.seed = 55;
  return config;
}

TEST(TimelineTest, FractionsSumToOne) {
  rp::Session session(session_config());
  session.start([&] {
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 42, .fixed_duration = Duration::seconds(60.0)});
  });
  session.run();

  auto timeline =
      UtilizationTimeline::build(session, session.worker_node_ids());
  const double total = timeline.fraction(CoreState::kIdle) +
                       timeline.fraction(CoreState::kBootstrap) +
                       timeline.fraction(CoreState::kScheduling) +
                       timeline.fraction(CoreState::kRunning);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(timeline.core_count(), 84);  // 2 worker nodes
  EXPECT_GT(timeline.fraction(CoreState::kBootstrap), 0.0);
  EXPECT_GT(timeline.fraction(CoreState::kRunning), 0.0);
}

TEST(TimelineTest, FullyPackedRunHasLittleIdle) {
  rp::Session session(session_config());
  session.start([&] {
    // 84 ranks = both worker nodes completely full.
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 84, .fixed_duration = Duration::seconds(300.0)});
  });
  session.run();
  auto timeline =
      UtilizationTimeline::build(session, session.worker_node_ids());
  EXPECT_GT(timeline.fraction(CoreState::kRunning), 0.80);
  EXPECT_LT(timeline.fraction(CoreState::kIdle), 0.10);
}

TEST(TimelineTest, StateAtSamplesCorrectBands) {
  rp::Session session(session_config());
  std::shared_ptr<rp::Task> task;
  session.start([&] {
    task = session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 84, .fixed_duration = Duration::seconds(100.0)});
  });
  session.run();

  auto timeline =
      UtilizationTimeline::build(session, session.worker_node_ids());
  // During bootstrap.
  const SimTime mid_bootstrap =
      session.pilot_granted_at() +
      (session.agent_ready_at() - session.pilot_granted_at()) / 2.0;
  EXPECT_EQ(timeline.state_at(0, mid_bootstrap), CoreState::kBootstrap);
  // Mid-execution.
  const SimTime mid_run = *task->event_time(rp::events::kRankStart) +
                          Duration::seconds(50.0);
  EXPECT_EQ(timeline.state_at(0, mid_run), CoreState::kRunning);
  // Between slots_claimed and rank_start: scheduling (purple).
  const SimTime mid_sched =
      *task->event_time(rp::events::kSlotsClaimed) +
      (*task->event_time(rp::events::kRankStart) -
       *task->event_time(rp::events::kSlotsClaimed)) /
          2.0;
  EXPECT_EQ(timeline.state_at(0, mid_sched), CoreState::kScheduling);
}

TEST(TimelineTest, RenderShape) {
  rp::Session session(session_config());
  session.start([&] {
    session.submit(rp::TaskDescription{
        .uid = "t", .ranks = 10, .fixed_duration = Duration::seconds(30.0)});
  });
  session.run();
  auto timeline =
      UtilizationTimeline::build(session, session.worker_node_ids());
  const std::string render = timeline.render(40, 8);
  EXPECT_NE(render.find('b'), std::string::npos);
  EXPECT_NE(render.find('#'), std::string::npos);
  // 8 rows + header.
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 9);
}

TEST(TimelineTest, GlyphMapping) {
  EXPECT_EQ(state_glyph(CoreState::kIdle), '.');
  EXPECT_EQ(state_glyph(CoreState::kBootstrap), 'b');
  EXPECT_EQ(state_glyph(CoreState::kScheduling), 's');
  EXPECT_EQ(state_glyph(CoreState::kRunning), '#');
}

// ---------- hardware report ----------

datamodel::Node hw_record(const std::string& host, double utilization,
                          std::int64_t ram) {
  datamodel::Node node;
  datamodel::Node& h = node[host];
  h["cpu_utilization"].set(utilization);
  h["123456789"]["Available RAM"].set(ram);
  return node;
}

TEST(AdvisorTest, AnalyzeHardware) {
  core::DataStore store;
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(1.0), hw_record("cn0001", 0.2, 1000));
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(2.0), hw_record("cn0001", 0.4, 900));
  store.append(core::Namespace::kHardware, "cn0002",
               SimTime::from_seconds(1.0), hw_record("cn0002", 0.9, 500));

  const FreeResourceReport report = analyze_hardware(store.view());
  ASSERT_EQ(report.nodes.size(), 2u);
  EXPECT_EQ(report.nodes[0].hostname, "cn0001");
  EXPECT_NEAR(report.nodes[0].mean_utilization, 0.3, 1e-12);
  EXPECT_NEAR(report.nodes[0].last_utilization, 0.4, 1e-12);
  EXPECT_EQ(report.nodes[0].available_ram_mib, 900);
  EXPECT_NEAR(report.mean_utilization(), (0.3 + 0.9) / 2.0, 1e-12);
  EXPECT_EQ(report.underutilized(0.5),
            (std::vector<std::string>{"cn0001"}));
}

TEST(AdvisorTest, AnalyzeHardwareGpuFields) {
  core::DataStore store;
  datamodel::Node record;
  record["cn0001"]["cpu_utilization"].set(0.1);
  record["cn0001"]["gpu_utilization"].set(0.8);
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(1.0), std::move(record));
  datamodel::Node record2;
  record2["cn0001"]["cpu_utilization"].set(0.1);
  record2["cn0001"]["gpu_utilization"].set(0.6);
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(2.0), std::move(record2));

  const FreeResourceReport report = analyze_hardware(store.view());
  ASSERT_EQ(report.nodes.size(), 1u);
  EXPECT_NEAR(report.nodes[0].mean_gpu_utilization, 0.7, 1e-12);
  EXPECT_NEAR(report.nodes[0].last_gpu_utilization, 0.6, 1e-12);
  EXPECT_NEAR(report.mean_gpu_utilization(), 0.7, 1e-12);
}

TEST(AdvisorTest, EmptyStoreReport) {
  core::DataStore store;
  const FreeResourceReport report = analyze_hardware(store.view());
  EXPECT_TRUE(report.nodes.empty());
  EXPECT_DOUBLE_EQ(report.mean_utilization(), 0.0);
}

// ---------- workflow progress ----------

datamodel::Node wf_record(std::int64_t done, std::int64_t executing,
                          std::int64_t pending, double throughput) {
  datamodel::Node node;
  datamodel::Node& s = node["summary"];
  s["tasks_total"].set(done + executing + pending);
  s["tasks_pending"].set(pending);
  s["tasks_executing"].set(executing);
  s["tasks_done"].set(done);
  s["tasks_failed"].set(std::int64_t{0});
  s["throughput_per_min"].set(throughput);
  s["mean_exec_seconds"].set(10.0);
  return node;
}

TEST(AdvisorTest, WorkflowProgressSeries) {
  core::DataStore store;
  store.append(core::Namespace::kWorkflow, "rp_monitor",
               SimTime::from_seconds(60.0), wf_record(0, 5, 10, 0.0));
  store.append(core::Namespace::kWorkflow, "rp_monitor",
               SimTime::from_seconds(120.0), wf_record(5, 5, 5, 5.0));
  const auto progress = workflow_progress(store.view());
  ASSERT_EQ(progress.size(), 2u);
  EXPECT_EQ(progress[0].pending, 10);
  EXPECT_EQ(progress[1].done, 5);
  EXPECT_DOUBLE_EQ(progress[1].throughput_per_min, 5.0);
}

TEST(AdvisorTest, ObservedTaskStartsSortedByTime) {
  core::DataStore store;
  datamodel::Node record;
  record["events"]["task.b"]["2000000000"].set("rank_start");
  record["events"]["task.a"]["1000000000"].set("rank_start");
  record["events"]["task.a"]["1500000000"].set("rank_stop");  // ignored
  store.append(core::Namespace::kWorkflow, "rp_monitor",
               SimTime::from_seconds(60.0), std::move(record));

  const auto starts = observed_task_starts(store.view());
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0].second, "task.a");
  EXPECT_EQ(starts[0].first, SimTime::from_seconds(1.0));
  EXPECT_EQ(starts[1].second, "task.b");
}

// ---------- config scaling ----------

TEST(AdvisorTest, ConfigScalingBestChoices) {
  ConfigScaling scaling;
  scaling.by_label["of-20"] = summarize({400.0, 410.0});
  scaling.by_label["of-82"] = summarize({160.0, 165.0});
  scaling.by_label["of-164"] = summarize({155.0, 160.0});
  const std::map<std::string, int> ranks{
      {"of-20", 20}, {"of-82", 82}, {"of-164", 164}};

  // Fastest is 164, but 82 wins on resource-time product: the paper's
  // "run more tasks, each at a smaller scale".
  EXPECT_EQ(scaling.fastest().value(), "of-164");
  EXPECT_EQ(scaling.best_efficiency(ranks).value(), "of-20");
}

TEST(AdvisorTest, ConfigScalingEmpty) {
  ConfigScaling scaling;
  EXPECT_FALSE(scaling.fastest().has_value());
  EXPECT_FALSE(scaling.best_efficiency({}).has_value());
}

// ---------- DDMD advice ----------

FreeResourceReport report_with_utilization(double utilization) {
  FreeResourceReport report;
  report.nodes.push_back(
      {.hostname = "cn0001", .mean_utilization = utilization,
       .last_utilization = utilization, .available_ram_mib = 1000});
  return report;
}

TEST(AdvisorTest, LowUtilizationWithGpuHeadroomParallelizesTraining) {
  const DdmdAdvice advice =
      advise_ddmd(report_with_utilization(0.1), /*gpus_free=*/4,
                  /*current_train_tasks=*/2);
  EXPECT_GT(advice.train_tasks, 2);
  EXPECT_EQ(advice.cores_per_sim_task, 1);
  EXPECT_NE(advice.rationale.find("parallelize training"),
            std::string::npos);
}

TEST(AdvisorTest, LowUtilizationNoGpuHeadroomKeepsTraining) {
  const DdmdAdvice advice =
      advise_ddmd(report_with_utilization(0.1), 0, 2);
  EXPECT_EQ(advice.train_tasks, 2);
}

TEST(AdvisorTest, HighUtilizationAddsCores) {
  const DdmdAdvice advice =
      advise_ddmd(report_with_utilization(0.9), 0, 1);
  EXPECT_EQ(advice.cores_per_sim_task, 7);
}

TEST(AdvisorTest, ModerateUtilizationKeepsConfig) {
  const DdmdAdvice advice =
      advise_ddmd(report_with_utilization(0.5), 2, 3);
  EXPECT_EQ(advice.train_tasks, 3);
  EXPECT_EQ(advice.cores_per_sim_task, 3);
}

}  // namespace
}  // namespace soma::analysis
