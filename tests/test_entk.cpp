// Unit tests for the EnTK layer: pipelines, stage barriers, concurrency.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "entk/entk.hpp"

namespace soma::entk {
namespace {

rp::SessionConfig session_config(int nodes = 3) {
  rp::SessionConfig config;
  config.platform = cluster::summit(nodes);
  config.pilot.nodes = nodes;
  config.seed = 21;
  return config;
}

rp::TaskDescription simple_task(const std::string& uid, double seconds) {
  rp::TaskDescription d;
  d.uid = uid;
  d.ranks = 1;
  d.fixed_duration = Duration::seconds(seconds);
  return d;
}

TEST(EnTkTest, StagesRunInOrder) {
  rp::Session session(session_config());
  AppManager manager(session);

  Pipeline pipeline;
  pipeline.name = "p0";
  pipeline.stages.push_back(Stage{"s0", {simple_task("a", 10.0)}});
  pipeline.stages.push_back(Stage{"s1", {simple_task("b", 10.0)}});
  manager.add_pipeline(std::move(pipeline));

  bool done = false;
  session.start([&] {
    manager.run([&] {
      done = true;
      session.finalize();
    });
  });
  session.run();

  ASSERT_TRUE(done);
  const auto a = session.find_task("a");
  const auto b = session.find_task("b");
  // Stage barrier: b's launch only after a fully completed.
  EXPECT_GT(*b->event_time(rp::events::kLaunchStart),
            *a->event_time(rp::events::kLaunchStop));
}

TEST(EnTkTest, StageBarrierWaitsForAllTasks) {
  rp::Session session(session_config());
  AppManager manager(session);

  Pipeline pipeline;
  pipeline.name = "p0";
  // Stage with a fast and a slow task; next stage must wait for the slow one.
  pipeline.stages.push_back(
      Stage{"s0", {simple_task("fast", 5.0), simple_task("slow", 50.0)}});
  pipeline.stages.push_back(Stage{"s1", {simple_task("next", 1.0)}});
  manager.add_pipeline(std::move(pipeline));

  session.start([&] { manager.run([&] { session.finalize(); }); });
  session.run();

  EXPECT_GT(*session.find_task("next")->event_time(rp::events::kLaunchStart),
            *session.find_task("slow")->event_time(rp::events::kRankStop));
}

TEST(EnTkTest, PipelinesRunConcurrently) {
  rp::Session session(session_config());
  AppManager manager(session);
  for (int p = 0; p < 2; ++p) {
    Pipeline pipeline;
    pipeline.name = "p" + std::to_string(p);
    pipeline.stages.push_back(Stage{
        "s0", {simple_task("t" + std::to_string(p), 30.0)}});
    manager.add_pipeline(std::move(pipeline));
  }
  session.start([&] { manager.run([&] { session.finalize(); }); });
  session.run();

  const auto t0 = session.find_task("t0");
  const auto t1 = session.find_task("t1");
  // Both executing at the same time (overlap).
  EXPECT_LT(*t1->event_time(rp::events::kRankStart),
            *t0->event_time(rp::events::kRankStop));
}

TEST(EnTkTest, ResultsRecordStageSpans) {
  rp::Session session(session_config());
  AppManager manager(session);
  Pipeline pipeline;
  pipeline.name = "p0";
  pipeline.stages.push_back(Stage{"s0", {simple_task("a", 10.0)}});
  pipeline.stages.push_back(Stage{"s1", {simple_task("b", 20.0)}});
  manager.add_pipeline(std::move(pipeline));
  session.start([&] { manager.run([&] { session.finalize(); }); });
  session.run();

  ASSERT_EQ(manager.results().size(), 1u);
  const PipelineResult& result = manager.results().front();
  EXPECT_EQ(result.name, "p0");
  ASSERT_EQ(result.stage_spans.size(), 2u);
  EXPECT_LT(result.stage_spans[0].second, result.stage_spans[1].second);
  EXPECT_GT(result.duration_seconds(), 30.0);
  EXPECT_TRUE(manager.finished());
}

TEST(EnTkTest, StageCallbackFiresBetweenStages) {
  rp::Session session(session_config());
  AppManager manager(session);
  Pipeline pipeline;
  pipeline.name = "p0";
  pipeline.stages.push_back(Stage{"s0", {simple_task("a", 5.0)}});
  pipeline.stages.push_back(Stage{"s1", {simple_task("b", 5.0)}});
  manager.add_pipeline(std::move(pipeline));

  std::vector<std::pair<std::size_t, std::size_t>> callbacks;
  manager.set_stage_callback([&](std::size_t p, std::size_t s) {
    callbacks.emplace_back(p, s);
  });
  session.start([&] { manager.run([&] { session.finalize(); }); });
  session.run();

  ASSERT_EQ(callbacks.size(), 2u);
  const std::pair<std::size_t, std::size_t> first{0, 0};
  const std::pair<std::size_t, std::size_t> second{0, 1};
  EXPECT_EQ(callbacks[0], first);
  EXPECT_EQ(callbacks[1], second);
}

TEST(EnTkTest, NonEntkTasksIgnored) {
  rp::Session session(session_config());
  AppManager manager(session);
  Pipeline pipeline;
  pipeline.name = "p0";
  pipeline.stages.push_back(Stage{"s0", {simple_task("managed", 30.0)}});
  manager.add_pipeline(std::move(pipeline));

  session.start([&] {
    // An unmanaged task completing must not advance the pipeline.
    session.submit(simple_task("unmanaged", 1.0));
    manager.run([&] { session.finalize(); });
  });
  session.run();
  EXPECT_TRUE(manager.finished());
  EXPECT_EQ(manager.results().front().stage_spans.size(), 1u);
}

TEST(EnTkTest, ValidationErrors) {
  rp::Session session(session_config());
  AppManager manager(session);
  EXPECT_THROW(manager.add_pipeline(Pipeline{"empty", {}}), InternalError);
  Pipeline bad;
  bad.name = "bad";
  bad.stages.push_back(Stage{"s0", {}});
  EXPECT_THROW(manager.add_pipeline(std::move(bad)), InternalError);
  EXPECT_THROW(manager.run([] {}), InternalError);  // no pipelines
}

TEST(EnTkTest, ManyPipelinesAllComplete) {
  rp::Session session(session_config(4));
  AppManager manager(session);
  for (int p = 0; p < 10; ++p) {
    Pipeline pipeline;
    pipeline.name = "p" + std::to_string(p);
    for (int s = 0; s < 3; ++s) {
      pipeline.stages.push_back(
          Stage{"s" + std::to_string(s),
                {simple_task("t" + std::to_string(p) + "." + std::to_string(s),
                             5.0 + p)}});
    }
    manager.add_pipeline(std::move(pipeline));
  }
  session.start([&] { manager.run([&] { session.finalize(); }); });
  session.run();
  EXPECT_EQ(manager.results().size(), 10u);
  for (const auto& result : manager.results()) {
    EXPECT_EQ(result.stage_spans.size(), 3u);
    EXPECT_GT(result.duration_seconds(), 15.0);
  }
}

}  // namespace
}  // namespace soma::entk
