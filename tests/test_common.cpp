// Unit tests for src/common: time types, RNG, statistics, tables, callables.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace soma {
namespace {

// ---------- Duration / SimTime ----------

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Duration::zero().nanos(), 0);
  EXPECT_EQ(Duration::nanoseconds(5).nanos(), 5);
  EXPECT_EQ(Duration::microseconds(2).nanos(), 2000);
  EXPECT_EQ(Duration::milliseconds(3).nanos(), 3'000'000);
  EXPECT_EQ(Duration::seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::minutes(2).nanos(), 120'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(2.5).to_seconds(), 2.5);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::seconds(2.0);
  const Duration b = Duration::seconds(0.5);
  EXPECT_EQ((a + b).nanos(), 2'500'000'000);
  EXPECT_EQ((a - b).nanos(), 1'500'000'000);
  EXPECT_EQ((a * 2.0).nanos(), 4'000'000'000);
  EXPECT_EQ((a / 4.0).nanos(), 500'000'000);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.nanos(), 2'500'000'000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(Duration::seconds(1.0), Duration::seconds(2.0));
  EXPECT_EQ(Duration::seconds(1.0), Duration::milliseconds(1000));
  EXPECT_GT(Duration::seconds(-1.0), Duration::seconds(-2.0));
}

TEST(SimTimeTest, ArithmeticWithDuration) {
  const SimTime t0 = SimTime::from_seconds(10.0);
  const SimTime t1 = t0 + Duration::seconds(5.0);
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 15.0);
  EXPECT_EQ(t1 - t0, Duration::seconds(5.0));
  EXPECT_EQ((t1 - Duration::seconds(5.0)), t0);
  SimTime t2 = t0;
  t2 += Duration::seconds(1.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 11.0);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::zero(), SimTime::from_seconds(1.0));
  EXPECT_LT(SimTime::from_seconds(1.0), SimTime::max());
}

TEST(FormatTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.23456, 3), "1.235");
  EXPECT_EQ(format_seconds(0.0, 1), "0.0");
  EXPECT_EQ(format_time(SimTime::from_seconds(2.5), 2), "2.50");
}

// ---------- Rng ----------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.lognormal(100.0, 0.2));
  EXPECT_NEAR(percentile(samples, 50.0), 100.0, 1.5);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng parent(31);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitByStringDeterministic) {
  Rng parent(31);
  Rng a = parent.split("task.000001");
  Rng b = parent.split("task.000001");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = parent.split("task.000002");
  Rng d = parent.split("task.000001");
  EXPECT_NE(c.next_u64(), d.next_u64());
}

TEST(RngTest, SplitDoesNotPerturbParent) {
  Rng a(37), b(37);
  (void)a.split(99);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ---------- stats ----------

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarizeSingle) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.median, 42.0);
}

TEST(StatsTest, SummarizeKnownValues) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile({10.0, 20.0}, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({30.0, 10.0, 20.0}, 50.0), 20.0);
}

TEST(StatsTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5.0, 5.0, 5.0}), 0.0);
  EXPECT_GT(coefficient_of_variation({1.0, 9.0}), 0.5);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
}

TEST(StatsTest, LoadImbalance) {
  EXPECT_DOUBLE_EQ(load_imbalance({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(load_imbalance({1.0, 3.0}), 0.5, 1e-12);  // max 3 / mean 2 - 1
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance({0.0, 0.0}), 0.0);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const std::vector<double> samples = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  RunningStats running;
  for (double s : samples) running.add(s);
  const Summary batch = summarize(samples);
  EXPECT_EQ(running.count(), samples.size());
  EXPECT_NEAR(running.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(running.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(running.min(), 1.0);
  EXPECT_DOUBLE_EQ(running.max(), 9.0);
}

TEST(StatsTest, RunningStatsEdgeCases) {
  RunningStats r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  r.add(7.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean(), 7.0);
}

// ---------- table ----------

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NE(table.to_string().find("| x |"), std::string::npos);
}

TEST(TableTest, AsciiBar) {
  EXPECT_EQ(ascii_bar(50.0, 100.0, 10), "#####");
  EXPECT_EQ(ascii_bar(100.0, 100.0, 10), "##########");
  EXPECT_EQ(ascii_bar(200.0, 100.0, 10), "##########");  // clamped
  EXPECT_EQ(ascii_bar(0.0, 100.0, 10), "");
  EXPECT_EQ(ascii_bar(50.0, 0.0, 10), "");
}

// ---------- UniqueFunction ----------

TEST(UniqueFunctionTest, EmptyAndBool) {
  common::UniqueFunction<void()> fn;
  EXPECT_FALSE(fn);
  EXPECT_THROW(fn(), InternalError);
  fn = [] {};
  EXPECT_TRUE(fn);
}

TEST(UniqueFunctionTest, InvokesWithArgsAndResult) {
  common::UniqueFunction<int(int, int)> add = [](int a, int b) {
    return a + b;
  };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunctionTest, AcceptsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(42);
  common::UniqueFunction<int()> fn = [owned = std::move(owned)] {
    return *owned;
  };
  EXPECT_EQ(fn(), 42);
}

TEST(UniqueFunctionTest, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  common::UniqueFunction<void()> a = [&calls] { ++calls; };
  common::UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);

  common::UniqueFunction<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunctionTest, OversizedCaptureUsesHeapPathCorrectly) {
  // A capture larger than kInlineSize exercises the heap fallback; the
  // shared_ptr tracks that the target is destroyed exactly once.
  auto tracker = std::make_shared<int>(7);
  std::weak_ptr<int> weak = tracker;
  std::array<char, 128> big{};
  big[0] = 'x';
  {
    common::UniqueFunction<int()> fn = [tracker, big] {
      return *tracker + (big[0] == 'x' ? 1 : 0);
    };
    tracker.reset();
    common::UniqueFunction<int()> moved = std::move(fn);
    EXPECT_EQ(moved(), 8);
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunctionTest, InlineCaptureDestroyedExactlyOnce) {
  auto tracker = std::make_shared<int>(1);
  std::weak_ptr<int> weak = tracker;
  {
    common::UniqueFunction<void()> fn = [tracker] { (void)tracker; };
    tracker.reset();
    common::UniqueFunction<void()> moved = std::move(fn);
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(UniqueFunctionTest, AssignmentReplacesExistingTarget) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> weak = first;
  common::UniqueFunction<int()> fn = [first] { return *first; };
  first.reset();
  fn = [] { return 99; };  // must destroy the previous capture
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(fn(), 99);
}

}  // namespace
}  // namespace soma
