// Unit tests for the platform/occupancy model and /proc synthesis.
#include <gtest/gtest.h>

#include "cluster/platform.hpp"
#include "cluster/proc.hpp"
#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace soma::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
};

TEST_F(ClusterTest, SummitPreset) {
  const PlatformConfig config = summit(10);
  EXPECT_EQ(config.nodes, 10);
  EXPECT_EQ(config.node.total_cores, 44);
  EXPECT_EQ(config.node.usable_cores(), 42);
  EXPECT_EQ(config.node.gpus, 6);
}

TEST_F(ClusterTest, PlatformNodeAccess) {
  Platform platform(simulation, summit(3));
  EXPECT_EQ(platform.node_count(), 3);
  EXPECT_EQ(platform.node(0).hostname(), "cn0000");
  EXPECT_EQ(platform.node(2).hostname(), "cn0002");
  EXPECT_THROW(platform.node(3), InternalError);
  EXPECT_THROW(platform.node(-1), InternalError);
}

TEST_F(ClusterTest, CoreAllocationAndRelease) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  EXPECT_EQ(node.free_cores(), 42);

  auto cores = node.allocate_cores(10, "task.a");
  ASSERT_TRUE(cores.has_value());
  EXPECT_EQ(cores->size(), 10u);
  EXPECT_EQ(node.busy_cores(), 10);
  EXPECT_EQ(node.free_cores(), 32);

  node.release_cores(*cores, "task.a");
  EXPECT_EQ(node.free_cores(), 42);
}

TEST_F(ClusterTest, OverAllocationRefusedAtomically) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  auto a = node.allocate_cores(40, "a");
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(node.allocate_cores(3, "b").has_value());
  EXPECT_EQ(node.busy_cores(), 40);  // nothing partially claimed
}

TEST_F(ClusterTest, WrongOwnerReleaseThrows) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  auto cores = node.allocate_cores(2, "owner");
  EXPECT_THROW(node.release_cores(*cores, "intruder"), InternalError);
}

TEST_F(ClusterTest, GpuAllocation) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  auto gpus = node.allocate_gpus(4, "task.g");
  ASSERT_TRUE(gpus.has_value());
  EXPECT_EQ(node.free_gpus(), 2);
  EXPECT_FALSE(node.allocate_gpus(3, "x").has_value());
  node.release_gpus(*gpus, "task.g");
  EXPECT_EQ(node.free_gpus(), 6);
}

TEST_F(ClusterTest, RamTracking) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  const double total = node.available_ram_mib();
  node.claim_ram(1024.0);
  EXPECT_DOUBLE_EQ(node.available_ram_mib(), total - 1024.0);
  node.release_ram(1024.0);
  EXPECT_DOUBLE_EQ(node.available_ram_mib(), total);
}

TEST_F(ClusterTest, UtilizationIntegratesActivity) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);

  // 21 cores at full activity = 50% of 42 cores.
  auto cores = node.allocate_cores(21, "t", 1.0);
  EXPECT_DOUBLE_EQ(node.utilization_now(), 0.5);

  simulation.schedule(Duration::seconds(10.0), [&] {
    node.release_cores(*cores, "t");
  });
  simulation.run();
  // 21 cores * 10 s = 210 busy core-seconds.
  EXPECT_NEAR(node.busy_core_seconds(), 210.0, 1e-9);
}

TEST_F(ClusterTest, ActivityWeightsUtilization) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  node.allocate_cores(42, "gpu-task", 0.2);  // all cores, barely used
  EXPECT_NEAR(node.utilization_now(), 0.2, 1e-12);
}

TEST_F(ClusterTest, SetCoreActivity) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  auto cores = node.allocate_cores(10, "t", 1.0);
  simulation.schedule(Duration::seconds(5.0), [&] {
    node.set_core_activity(*cores, "t", 0.0);
  });
  simulation.schedule(Duration::seconds(10.0), [&] {
    node.release_cores(*cores, "t");
  });
  simulation.run();
  // Busy only for the first 5 seconds.
  EXPECT_NEAR(node.busy_core_seconds(), 50.0, 1e-9);
  EXPECT_THROW(node.set_core_activity({0}, "t", 2.0), InternalError);
}

TEST_F(ClusterTest, PerCoreBusySeconds) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  auto cores = node.allocate_cores(1, "t", 1.0);
  simulation.schedule(Duration::seconds(3.0), [&] {
    node.release_cores(*cores, "t");
  });
  simulation.run();
  EXPECT_NEAR(node.core_busy_seconds((*cores)[0]), 3.0, 1e-9);
  // An unused core stays at zero.
  EXPECT_DOUBLE_EQ(node.core_busy_seconds(41), 0.0);
}

TEST_F(ClusterTest, UtilizationSinceWindow) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  const SimTime t0 = simulation.now();
  const double busy0 = node.busy_core_seconds();

  node.allocate_cores(42, "t", 1.0);
  simulation.schedule(Duration::seconds(10.0), [] {});
  simulation.run();
  EXPECT_NEAR(node.utilization_since(t0, busy0), 1.0, 1e-9);
}

TEST_F(ClusterTest, TotalsAcrossPlatform) {
  Platform platform(simulation, summit(2));
  platform.node(0).allocate_cores(10, "a");
  platform.node(1).allocate_gpus(2, "b");
  EXPECT_EQ(platform.total_free_cores(), 42 * 2 - 10);
  EXPECT_EQ(platform.total_free_gpus(), 12 - 2);
}

TEST_F(ClusterTest, GpuBusySecondsIntegrate) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  EXPECT_DOUBLE_EQ(node.gpu_utilization_now(), 0.0);

  auto gpus = node.allocate_gpus(3, "t");
  EXPECT_DOUBLE_EQ(node.gpu_utilization_now(), 0.5);
  simulation.schedule(Duration::seconds(10.0), [&] {
    node.release_gpus(*gpus, "t");
  });
  simulation.run();
  // 3 GPUs x 10 s.
  EXPECT_NEAR(node.busy_gpu_seconds(), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(node.gpu_utilization_now(), 0.0);
  // Integral frozen after release.
  simulation.schedule(Duration::seconds(5.0), [] {});
  simulation.run();
  EXPECT_NEAR(node.busy_gpu_seconds(), 30.0, 1e-9);
}

// ---------- /proc synthesis ----------

TEST_F(ClusterTest, ProcSnapshotShape) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  node.process_started();
  Rng rng(1);
  const datamodel::Node snapshot =
      make_proc_snapshot(node, SimTime::from_seconds(100.0), rng);

  ASSERT_TRUE(snapshot.has_child("cn0000"));
  const auto& host = snapshot.fetch_existing("cn0000");
  ASSERT_EQ(host.number_of_children(), 1u);  // one timestamp block
  const auto& at = host.child_at(0);
  EXPECT_EQ(at.fetch_existing("Uptime").as_int64(), 100);
  EXPECT_EQ(at.fetch_existing("Num Processes").as_int64(), 3);  // 2 base + 1
  EXPECT_GT(at.fetch_existing("Available RAM").as_int64(), 0);
  // Aggregate + per-core stat rows.
  const auto& stat = at.fetch_existing("stat");
  EXPECT_TRUE(stat.has_child("cpu"));
  EXPECT_TRUE(stat.has_child("cpu0"));
  EXPECT_TRUE(stat.has_child("cpu41"));
  EXPECT_EQ(stat.fetch_existing("cpu").as_int64_array().size(), 6u);
}

TEST_F(ClusterTest, ProcJiffiesReflectOccupancy) {
  Platform platform(simulation, summit(1));
  auto& node = platform.node(0);
  Rng rng(1);

  node.allocate_cores(21, "t", 1.0);  // 50% busy
  simulation.schedule(Duration::seconds(100.0), [] {});
  simulation.run();

  const datamodel::Node before = make_proc_snapshot(
      node, SimTime::zero(), rng);  // boot-time zeros equivalent
  const datamodel::Node after =
      make_proc_snapshot(node, simulation.now(), rng);
  const auto& cpu =
      after.fetch_existing("cn0000").child_at(0).fetch_existing("stat/cpu");
  (void)before;
  const double utilization = utilization_from_stat(
      std::vector<std::int64_t>(6, 0), cpu.as_int64_array());
  EXPECT_NEAR(utilization, 0.5, 0.03);
}

TEST_F(ClusterTest, UtilizationFromStatDiffs) {
  // busy delta 30, idle delta 70 -> 30%.
  const std::vector<std::int64_t> before{100, 0, 50, 1000, 10, 5};
  const std::vector<std::int64_t> after{120, 0, 55, 1070, 13, 7};
  EXPECT_NEAR(utilization_from_stat(before, after), 0.30, 1e-12);
  // No elapsed time -> 0.
  EXPECT_DOUBLE_EQ(utilization_from_stat(before, before), 0.0);
  EXPECT_THROW(utilization_from_stat({1, 2}, {3, 4}), InternalError);
}

}  // namespace
}  // namespace soma::cluster
