// Unit tests for the batch-system model.
#include <gtest/gtest.h>

#include <optional>

#include "batch/batch.hpp"
#include "common/error.hpp"

namespace soma::batch {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  Rng rng{7};
};

TEST_F(BatchTest, GrantsAfterQueueWait) {
  BatchSystem batch(simulation, 10, rng);
  std::optional<Allocation> granted;
  batch.submit(JobRequest{.nodes = 4},
               [&](const Allocation& a) { granted = a; });
  simulation.run_until(SimTime::from_seconds(60.0));
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(granted->nodes.size(), 4u);
  EXPECT_GT(granted->granted_at, SimTime::zero());
  EXPECT_EQ(batch.free_nodes(), 6);
}

TEST_F(BatchTest, ImpossibleRequestThrows) {
  BatchSystem batch(simulation, 4, rng);
  EXPECT_THROW(batch.submit(JobRequest{.nodes = 5}, [](const Allocation&) {}),
               ConfigError);
  EXPECT_THROW(batch.submit(JobRequest{.nodes = 0}, [](const Allocation&) {}),
               ConfigError);
}

TEST_F(BatchTest, FifoBlocksUntilRelease) {
  BatchSystem batch(simulation, 4, rng);
  std::optional<Allocation> first, second;
  const JobId job1 = batch.submit(JobRequest{.nodes = 3},
                                  [&](const Allocation& a) { first = a; });
  batch.submit(JobRequest{.nodes = 3},
               [&](const Allocation& a) { second = a; });
  simulation.run_until(SimTime::from_seconds(60.0));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(second.has_value());  // only 1 node free
  EXPECT_EQ(batch.queued_jobs(), 1u);

  batch.release(job1);
  simulation.run_until(SimTime::from_seconds(120.0));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->nodes.size(), 3u);
}

TEST_F(BatchTest, NodesReusedAfterRelease) {
  BatchSystem batch(simulation, 2, rng);
  std::optional<Allocation> a1, a2;
  const JobId job1 =
      batch.submit(JobRequest{.nodes = 2}, [&](const Allocation& a) { a1 = a; });
  simulation.run_until(SimTime::from_seconds(60.0));
  batch.release(job1);
  batch.submit(JobRequest{.nodes = 2}, [&](const Allocation& a) { a2 = a; });
  simulation.run_until(SimTime::from_seconds(120.0));
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->nodes, a1->nodes);
}

TEST_F(BatchTest, WalltimeCallbackFires) {
  BatchSystem batch(simulation, 2, rng);
  bool expired = false;
  batch.submit(
      JobRequest{.nodes = 2, .walltime = Duration::seconds(100.0)},
      [](const Allocation&) {},
      [&](JobId) { expired = true; });
  simulation.run();
  EXPECT_TRUE(expired);
  EXPECT_EQ(batch.free_nodes(), 2);  // nodes reclaimed
}

TEST_F(BatchTest, ReleaseBeforeWalltimeCancelsIt) {
  BatchSystem batch(simulation, 2, rng);
  bool expired = false;
  std::optional<JobId> job;
  job = batch.submit(
      JobRequest{.nodes = 2, .walltime = Duration::seconds(100.0)},
      [&](const Allocation& a) {
        // Release shortly after the grant.
        simulation.schedule(Duration::seconds(10.0),
                            [&, id = a.job] { batch.release(id); });
      },
      [&](JobId) { expired = true; });
  simulation.run();
  EXPECT_FALSE(expired);
  EXPECT_LT(simulation.now().to_seconds(), 100.0);
}

TEST_F(BatchTest, ReleaseIsIdempotent) {
  BatchSystem batch(simulation, 2, rng);
  JobId job = batch.submit(JobRequest{.nodes = 1}, [](const Allocation&) {});
  simulation.run_until(SimTime::from_seconds(60.0));
  batch.release(job);
  batch.release(job);  // no-op
  batch.release(999);  // unknown id, no-op
  EXPECT_EQ(batch.free_nodes(), 2);
}

TEST_F(BatchTest, AllocationDeadlineMatchesWalltime) {
  BatchSystem batch(simulation, 1, rng);
  std::optional<Allocation> granted;
  batch.submit(JobRequest{.nodes = 1, .walltime = Duration::minutes(30)},
               [&](const Allocation& a) { granted = a; });
  simulation.run_until(SimTime::from_seconds(3600.0));
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(granted->deadline - granted->granted_at, Duration::minutes(30));
}

TEST_F(BatchTest, QueueWaitIsSeeded) {
  sim::Simulation sim_a, sim_b;
  BatchSystem batch_a(sim_a, 1, Rng{42});
  BatchSystem batch_b(sim_b, 1, Rng{42});
  SimTime grant_a, grant_b;
  batch_a.submit(JobRequest{.nodes = 1},
                 [&](const Allocation& a) { grant_a = a.granted_at; });
  batch_b.submit(JobRequest{.nodes = 1},
                 [&](const Allocation& a) { grant_b = a.granted_at; });
  sim_a.run_until(SimTime::from_seconds(60.0));
  sim_b.run_until(SimTime::from_seconds(60.0));
  EXPECT_EQ(grant_a, grant_b);
}

}  // namespace
}  // namespace soma::batch
