// Unit tests for the ZeroMQ-like component channels.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comm/channel.hpp"

namespace soma::comm {
namespace {

TEST(ChannelTest, DeliversAfterLatency) {
  sim::Simulation simulation;
  Channel<int> channel(simulation, "test", Duration::milliseconds(5));
  std::vector<std::pair<double, int>> received;
  channel.set_consumer([&](int value) {
    received.emplace_back(simulation.now().to_seconds(), value);
  });
  channel.put(42);
  simulation.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].second, 42);
  EXPECT_NEAR(received[0].first, 0.005, 1e-9);
}

TEST(ChannelTest, PreservesOrder) {
  sim::Simulation simulation;
  Channel<int> channel(simulation, "test");
  std::vector<int> received;
  channel.set_consumer([&](int value) { received.push_back(value); });
  for (int i = 0; i < 10; ++i) channel.put(i);
  simulation.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(ChannelTest, BuffersUntilConsumerRegisters) {
  sim::Simulation simulation;
  Channel<std::string> channel(simulation, "late-joiner");
  channel.put("early");
  channel.put("bird");
  simulation.run();  // deliveries fire, no consumer: buffered
  EXPECT_EQ(channel.buffered(), 2u);
  EXPECT_EQ(channel.delivered(), 0u);

  std::vector<std::string> received;
  channel.set_consumer(
      [&](std::string value) { received.push_back(std::move(value)); });
  // Flushed synchronously on registration, in order.
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "early");
  EXPECT_EQ(received[1], "bird");
  EXPECT_EQ(channel.buffered(), 0u);
  EXPECT_EQ(channel.delivered(), 2u);
}

TEST(ChannelTest, ClearConsumerBuffersAgain) {
  sim::Simulation simulation;
  Channel<int> channel(simulation, "test");
  int received = 0;
  channel.set_consumer([&](int) { ++received; });
  channel.put(1);
  simulation.run();
  EXPECT_EQ(received, 1);

  channel.clear_consumer();
  channel.put(2);
  simulation.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(channel.buffered(), 1u);
}

TEST(ChannelTest, MoveOnlyPayloads) {
  sim::Simulation simulation;
  Channel<std::unique_ptr<int>> channel(simulation, "move-only");
  int value = 0;
  channel.set_consumer(
      [&](std::unique_ptr<int> payload) { value = *payload; });
  channel.put(std::make_unique<int>(7));
  simulation.run();
  EXPECT_EQ(value, 7);
}

TEST(ChannelTest, ConsumerMaySendOnOtherChannel) {
  // The RP pattern: each component consumes from one queue and pushes to
  // the next component's queue.
  sim::Simulation simulation;
  Channel<int> first(simulation, "a", Duration::milliseconds(1));
  Channel<int> second(simulation, "b", Duration::milliseconds(1));
  std::vector<double> arrival;
  first.set_consumer([&](int value) { second.put(value + 1); });
  second.set_consumer([&](int value) {
    arrival.push_back(simulation.now().to_seconds());
    EXPECT_EQ(value, 11);
  });
  first.put(10);
  simulation.run();
  ASSERT_EQ(arrival.size(), 1u);
  EXPECT_NEAR(arrival[0], 0.002, 1e-9);  // two hops
}

TEST(ChannelTest, NameAndLatencyAccessors) {
  sim::Simulation simulation;
  Channel<int> channel(simulation, "tmgr->agent", Duration::microseconds(50));
  EXPECT_EQ(channel.name(), "tmgr->agent");
  EXPECT_EQ(channel.latency(), Duration::microseconds(50));
}

}  // namespace
}  // namespace soma::comm
