// Unit + property tests for the Conduit-like hierarchical data model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "datamodel/node.hpp"

namespace soma::datamodel {
namespace {

TEST(NodeTest, DefaultIsEmpty) {
  Node node;
  EXPECT_TRUE(node.is_empty());
  EXPECT_FALSE(node.is_object());
  EXPECT_FALSE(node.is_leaf());
  EXPECT_EQ(node.type(), Node::Type::kEmpty);
}

TEST(NodeTest, LeafTypesRoundTrip) {
  Node node;
  node.set(std::int64_t{42});
  EXPECT_EQ(node.type(), Node::Type::kInt64);
  EXPECT_EQ(node.as_int64(), 42);

  node.set(3.5);
  EXPECT_EQ(node.type(), Node::Type::kFloat64);
  EXPECT_DOUBLE_EQ(node.as_float64(), 3.5);

  node.set(std::string("hello"));
  EXPECT_EQ(node.type(), Node::Type::kString);
  EXPECT_EQ(node.as_string(), "hello");

  node.set(std::vector<std::int64_t>{1, 2, 3});
  EXPECT_EQ(node.type(), Node::Type::kInt64Array);
  EXPECT_EQ(node.as_int64_array().size(), 3u);

  node.set(std::vector<double>{1.5, 2.5});
  EXPECT_EQ(node.type(), Node::Type::kFloat64Array);
  EXPECT_EQ(node.as_float64_array()[1], 2.5);
}

TEST(NodeTest, CStringSetter) {
  Node node;
  node.set("literal");
  EXPECT_EQ(node.as_string(), "literal");
}

TEST(NodeTest, TypeMismatchThrows) {
  Node node;
  node.set(std::int64_t{1});
  EXPECT_THROW(node.as_string(), LookupError);
  EXPECT_THROW(node.as_float64(), LookupError);
  EXPECT_THROW(node.as_int64_array(), LookupError);
  Node empty;
  EXPECT_THROW(empty.as_int64(), LookupError);
}

TEST(NodeTest, NumericCoercion) {
  Node node;
  node.set(std::int64_t{7});
  EXPECT_DOUBLE_EQ(node.to_float64(), 7.0);
  node.set(2.25);
  EXPECT_DOUBLE_EQ(node.to_float64(), 2.25);
  node.set("nope");
  EXPECT_THROW(node.to_float64(), LookupError);
}

TEST(NodeTest, ChildCreationMakesObject) {
  Node node;
  node.set(std::int64_t{1});  // leaf first
  node.child("a").set(std::int64_t{2});
  EXPECT_TRUE(node.is_object());          // leaf value discarded
  EXPECT_EQ(node.number_of_children(), 1u);
  EXPECT_EQ(node.child("a").as_int64(), 2);
}

TEST(NodeTest, ChildOrderPreserved) {
  Node node;
  node["zebra"].set(std::int64_t{1});
  node["alpha"].set(std::int64_t{2});
  node["mid"].set(std::int64_t{3});
  ASSERT_EQ(node.child_names().size(), 3u);
  EXPECT_EQ(node.child_names()[0], "zebra");
  EXPECT_EQ(node.child_names()[1], "alpha");
  EXPECT_EQ(node.child_names()[2], "mid");
  EXPECT_EQ(node.child_at(2).as_int64(), 3);
}

TEST(NodeTest, FindChildConstness) {
  Node node;
  node["x"].set(std::int64_t{5});
  const Node& const_ref = node;
  ASSERT_NE(const_ref.find_child("x"), nullptr);
  EXPECT_EQ(const_ref.find_child("y"), nullptr);
}

TEST(NodeTest, FetchCreatesPath) {
  Node node;
  node.fetch("a/b/c").set(std::int64_t{9});
  EXPECT_TRUE(node.has_path("a/b/c"));
  EXPECT_TRUE(node.has_path("a/b"));
  EXPECT_FALSE(node.has_path("a/x"));
  EXPECT_EQ(node.fetch_existing("a/b/c").as_int64(), 9);
}

TEST(NodeTest, FetchExistingThrowsOnMissing) {
  Node node;
  node.fetch("a/b").set(std::int64_t{1});
  EXPECT_THROW(node.fetch_existing("a/c"), LookupError);
  EXPECT_THROW(node.fetch_existing("x"), LookupError);
}

TEST(NodeTest, KeysMayContainDots) {
  // Task uids like "task.000000" are path components (Listing 1).
  Node node;
  node.fetch("RP/task.000000/1698435412.606").set("launch_start");
  EXPECT_EQ(node.fetch_existing("RP/task.000000/1698435412.606").as_string(),
            "launch_start");
}

TEST(NodeTest, RemoveChild) {
  Node node;
  node["a"].set(std::int64_t{1});
  node["b"].set(std::int64_t{2});
  node["c"].set(std::int64_t{3});
  EXPECT_TRUE(node.remove_child("b"));
  EXPECT_FALSE(node.remove_child("b"));
  EXPECT_EQ(node.number_of_children(), 2u);
  // Index integrity after removal.
  EXPECT_EQ(node.find_child("c")->as_int64(), 3);
  EXPECT_EQ(node.child_names()[1], "c");
}

TEST(NodeTest, ResetClearsEverything) {
  Node node;
  node["a"]["b"].set(std::int64_t{1});
  node.reset();
  EXPECT_TRUE(node.is_empty());
  EXPECT_EQ(node.number_of_children(), 0u);
}

TEST(NodeTest, DeepCopy) {
  Node a;
  a.fetch("x/y").set(std::int64_t{1});
  Node b = a;
  b.fetch("x/y").set(std::int64_t{2});
  EXPECT_EQ(a.fetch_existing("x/y").as_int64(), 1);
  EXPECT_EQ(b.fetch_existing("x/y").as_int64(), 2);
}

TEST(NodeTest, SelfAssignmentSafe) {
  Node a;
  a["k"].set(std::int64_t{3});
  a = *&a;
  EXPECT_EQ(a.fetch_existing("k").as_int64(), 3);
}

TEST(NodeTest, Equality) {
  Node a, b;
  a.fetch("x/y").set(1.5);
  b.fetch("x/y").set(1.5);
  EXPECT_TRUE(a == b);
  b.fetch("x/z").set(std::int64_t{1});
  EXPECT_FALSE(a == b);
}

TEST(NodeTest, EqualityIsOrderSensitive) {
  Node a, b;
  a["p"].set(std::int64_t{1});
  a["q"].set(std::int64_t{2});
  b["q"].set(std::int64_t{2});
  b["p"].set(std::int64_t{1});
  EXPECT_FALSE(a == b);  // Conduit nodes are ordered
}

TEST(NodeTest, UpdateMergesObjects) {
  Node base;
  base.fetch("a/x").set(std::int64_t{1});
  base.fetch("a/y").set(std::int64_t{2});
  Node patch;
  patch.fetch("a/y").set(std::int64_t{20});
  patch.fetch("a/z").set(std::int64_t{30});
  base.update(patch);
  EXPECT_EQ(base.fetch_existing("a/x").as_int64(), 1);
  EXPECT_EQ(base.fetch_existing("a/y").as_int64(), 20);
  EXPECT_EQ(base.fetch_existing("a/z").as_int64(), 30);
}

TEST(NodeTest, UpdateLeafOverwritesSubtree) {
  Node base;
  base.fetch("a/x").set(std::int64_t{1});
  Node patch;
  patch["a"].set("flat");
  base.update(patch);
  EXPECT_EQ(base.fetch_existing("a").as_string(), "flat");
}

TEST(NodeTest, UpdateEmptyIsNoop) {
  Node base;
  base["k"].set(std::int64_t{1});
  Node empty;
  base.update(empty);
  EXPECT_EQ(base.fetch_existing("k").as_int64(), 1);
}

TEST(NodeTest, LeafCount) {
  Node node;
  EXPECT_EQ(node.leaf_count(), 0u);
  node.fetch("a/b").set(std::int64_t{1});
  node.fetch("a/c").set(std::int64_t{2});
  node.fetch("d").set("x");
  EXPECT_EQ(node.leaf_count(), 3u);
}

TEST(NodeTest, ChildAtOutOfRangeThrows) {
  Node node;
  node["only"].set(std::int64_t{1});
  EXPECT_THROW(node.child_at(1), InternalError);
}

// ---------- JSON ----------

TEST(NodeJsonTest, Scalars) {
  Node node;
  node.set(std::int64_t{42});
  EXPECT_EQ(node.to_json(), "42");
  node.set("hi");
  EXPECT_EQ(node.to_json(), "\"hi\"");
  Node empty;
  EXPECT_EQ(empty.to_json(), "null");
}

TEST(NodeJsonTest, ObjectCompact) {
  Node node;
  node["a"].set(std::int64_t{1});
  node["b"].set(std::vector<std::int64_t>{1, 2});
  EXPECT_EQ(node.to_json(), "{\"a\":1,\"b\":[1,2]}");
}

TEST(NodeJsonTest, StringEscaping) {
  Node node;
  node.set("a\"b\\c\nd");
  EXPECT_EQ(node.to_json(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(NodeJsonTest, PrettyPrintContainsNewlines) {
  Node node;
  node.fetch("a/b").set(std::int64_t{1});
  const std::string pretty = node.to_json(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"a\""), std::string::npos);
}

// ---------- binary serde ----------

TEST(NodeSerdeTest, RoundTripScalars) {
  Node node;
  node.set(std::int64_t{-17});
  EXPECT_TRUE(Node::unpack(node.pack()) == node);
  node.set(2.71828);
  EXPECT_TRUE(Node::unpack(node.pack()) == node);
  node.set("string value");
  EXPECT_TRUE(Node::unpack(node.pack()) == node);
  Node empty;
  EXPECT_TRUE(Node::unpack(empty.pack()) == empty);
}

TEST(NodeSerdeTest, RoundTripNested) {
  Node node;
  node.fetch("PROC/cn4302/stat/cpu")
      .set(std::vector<std::int64_t>{10749, 865, 685, 9293, 999, 745});
  node.fetch("PROC/cn4302/Uptime").set(std::int64_t{49902});
  node.fetch("PROC/cn4302/ratio").set(0.25);
  const Node copy = Node::unpack(node.pack());
  EXPECT_TRUE(copy == node);
}

TEST(NodeSerdeTest, PackedSizeMatchesPack) {
  Node node;
  node.fetch("a/b/c").set(std::vector<double>{1.0, 2.0, 3.0});
  node.fetch("a/s").set("hello world");
  node.fetch("n").set(std::int64_t{1});
  EXPECT_EQ(node.pack().size(), node.packed_size());
}

TEST(NodeSerdeTest, PackedSizeCacheTracksMutation) {
  // packed_size() is memoized; every mutation path must invalidate the cache
  // so the memoized value never disagrees with the actual encoding.
  Node node;
  node.fetch("a/b").set(std::int64_t{1});
  EXPECT_EQ(node.packed_size(), node.pack().size());  // prime the cache

  node.fetch("a/b").set("a much longer string value");  // resize a leaf
  EXPECT_EQ(node.packed_size(), node.pack().size());

  node.fetch("c/d").set(3.5);  // add a subtree
  EXPECT_EQ(node.packed_size(), node.pack().size());

  node["a"]["b"].set(std::vector<std::int64_t>{1, 2, 3});  // via operator[]
  EXPECT_EQ(node.packed_size(), node.pack().size());

  node.find_child("a")->remove_child("b");  // via mutable find_child
  EXPECT_EQ(node.packed_size(), node.pack().size());

  node.remove_child("c");
  EXPECT_EQ(node.packed_size(), node.pack().size());

  node.reset();
  EXPECT_EQ(node.packed_size(), node.pack().size());
}

TEST(NodeSerdeTest, PackedSizeCacheSurvivesCopyAndMove) {
  Node node;
  node.fetch("a").set("payload");
  const std::size_t size = node.packed_size();  // prime the cache

  Node copy = node;
  EXPECT_EQ(copy.packed_size(), size);
  copy.fetch("b").set(std::int64_t{2});
  EXPECT_EQ(copy.packed_size(), copy.pack().size());
  EXPECT_EQ(node.packed_size(), size);  // source untouched by copy's mutation

  Node moved = std::move(node);
  EXPECT_EQ(moved.packed_size(), size);
  // The moved-from node is reusable and must not report the stale size.
  node.fetch("x").set(std::int64_t{1});
  EXPECT_EQ(node.packed_size(), node.pack().size());
}

TEST(NodeSerdeTest, TruncatedBufferThrows) {
  Node node;
  node.fetch("a/b").set("payload");
  std::vector<std::byte> wire = node.pack();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(Node::unpack(wire), LookupError);
}

TEST(NodeSerdeTest, TrailingBytesThrow) {
  Node node;
  node.set(std::int64_t{1});
  std::vector<std::byte> wire = node.pack();
  wire.push_back(std::byte{0});
  EXPECT_THROW(Node::unpack(wire), LookupError);
}

TEST(NodeSerdeTest, UnknownTagThrows) {
  std::vector<std::byte> wire{std::byte{0xee}};
  EXPECT_THROW(Node::unpack(wire), LookupError);
}

// ---------- property test: random trees round-trip ----------

Node random_tree(Rng& rng, int depth) {
  Node node;
  const double roll = rng.uniform();
  if (depth <= 0 || roll < 0.35) {
    switch (rng.uniform_index(5)) {
      case 0: node.set(static_cast<std::int64_t>(rng.next_u64() >> 1)); break;
      case 1: node.set(rng.uniform(-1e6, 1e6)); break;
      case 2: node.set("s" + std::to_string(rng.next_u64() % 1000)); break;
      case 3: {
        std::vector<std::int64_t> v(rng.uniform_index(8));
        for (auto& x : v) x = static_cast<std::int64_t>(rng.next_u64() >> 1);
        node.set(std::move(v));
        break;
      }
      default: {
        std::vector<double> v(rng.uniform_index(8));
        for (auto& x : v) x = rng.uniform(-1.0, 1.0);
        node.set(std::move(v));
        break;
      }
    }
    return node;
  }
  const std::size_t children = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < children; ++i) {
    node.child("k" + std::to_string(i)) = random_tree(rng, depth - 1);
  }
  return node;
}

class NodeRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(NodeRoundTripProperty, PackUnpackIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 20; ++i) {
    const Node tree = random_tree(rng, 4);
    const Node back = Node::unpack(tree.pack());
    EXPECT_TRUE(back == tree);
    EXPECT_EQ(tree.pack().size(), tree.packed_size());
    // Copy is also an identity.
    const Node copy = tree;
    EXPECT_TRUE(copy == tree);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, NodeRoundTripProperty,
                         ::testing::Range(0, 10));

// JSON round-trip property. JSON canonicalizes two representable-but-
// ambiguous cases (integral doubles parse back as int64; empty float64
// arrays parse back as int64 arrays), so the generator avoids them — the
// binary format above covers those exactly.
Node random_json_safe_tree(Rng& rng, int depth) {
  Node node;
  if (depth <= 0 || rng.uniform() < 0.35) {
    switch (rng.uniform_index(4)) {
      case 0: node.set(static_cast<std::int64_t>(rng.next_u64() >> 1)); break;
      case 1: node.set(rng.uniform(0.0, 1.0) + 0.5e-7); break;
      case 2: node.set("s" + std::to_string(rng.next_u64() % 1000)); break;
      default: {
        std::vector<std::int64_t> v(rng.uniform_index(6));
        for (auto& x : v) x = static_cast<std::int64_t>(rng.next_u64() >> 1);
        node.set(std::move(v));
        break;
      }
    }
    return node;
  }
  const std::size_t children = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < children; ++i) {
    node.child("k" + std::to_string(i)) = random_json_safe_tree(rng, depth - 1);
  }
  return node;
}

class JsonRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripProperty, ToJsonParseJsonIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (int i = 0; i < 20; ++i) {
    const Node tree = random_json_safe_tree(rng, 4);
    EXPECT_TRUE(Node::parse_json(tree.to_json()) == tree);
    EXPECT_TRUE(Node::parse_json(tree.to_json(2)) == tree);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, JsonRoundTripProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace soma::datamodel
