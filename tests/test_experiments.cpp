// Integration tests: the full SOMA-on-RP deployment (paper Fig. 2) and the
// experiment runners at reduced scale. These exercise every module together:
// batch -> session -> service task -> monitors -> workload -> analysis.
#include <gtest/gtest.h>

#include "analysis/advisor.hpp"
#include "experiments/ddmd_experiment.hpp"
#include "experiments/deployment.hpp"
#include "experiments/openfoam_experiment.hpp"

namespace soma::experiments {
namespace {

// ---------- SomaDeployment ----------

TEST(DeploymentTest, BootstrapOrderMatchesFig2) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(4);
  session_config.pilot.nodes = 4;
  session_config.seed = 3;
  rp::Session session(session_config);

  std::unique_ptr<SomaDeployment> deployment;
  bool ready = false;
  session.start([&] {
    DeploymentConfig config;
    config.mode = SomaMode::kExclusive;
    config.service_nodes = session.agent_node_ids();
    deployment = std::make_unique<SomaDeployment>(session, config);
    deployment->deploy([&] {
      ready = true;
      deployment->shutdown();
      session.finalize();
    });
  });
  session.run();
  ASSERT_TRUE(ready);

  // Ordering: service task starts before the RP monitor, which starts
  // before (or with) the hardware monitors; all before any app task.
  const auto service = session.find_task("soma.service");
  const auto rp_monitor = session.find_task("monitor.rp");
  ASSERT_NE(service, nullptr);
  ASSERT_NE(rp_monitor, nullptr);
  EXPECT_LE(*service->event_time(rp::events::kRankStart),
            *rp_monitor->event_time(rp::events::kRankStart));
  for (NodeId node : session.pilot_nodes()) {
    const auto hw = session.find_task("monitor.hw." + std::to_string(node));
    ASSERT_NE(hw, nullptr) << "missing hw monitor on node " << node;
    EXPECT_LE(*service->event_time(rp::events::kRankStart),
              *hw->event_time(rp::events::kRankStart));
  }
}

TEST(DeploymentTest, NoneModeDeploysNothing) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  rp::Session session(session_config);
  std::unique_ptr<SomaDeployment> deployment;
  bool ready = false;
  session.start([&] {
    DeploymentConfig config;
    config.mode = SomaMode::kNone;
    deployment = std::make_unique<SomaDeployment>(session, config);
    deployment->deploy([&] {
      ready = true;
      session.finalize();
    });
  });
  session.run();
  EXPECT_TRUE(ready);
  EXPECT_FALSE(deployment->deployed());
  EXPECT_EQ(session.find_task("soma.service"), nullptr);
}

TEST(DeploymentTest, MonitorsPublishDuringWorkflow) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  rp::Session session(session_config);
  std::unique_ptr<SomaDeployment> deployment;

  int outstanding = 0;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().kind != rp::TaskKind::kApplication) return;
        if (--outstanding == 0) {
          deployment->shutdown();
          session.finalize();
        }
      });
  session.start([&] {
    DeploymentConfig config;
    config.service_nodes = session.agent_node_ids();
    config.rp_monitor.period = Duration::seconds(15.0);
    config.hw_monitor.period = Duration::seconds(15.0);
    deployment = std::make_unique<SomaDeployment>(session, config);
    deployment->deploy([&] {
      outstanding = 2;
      session.submit(rp::TaskDescription{
          .uid = "a", .ranks = 20, .fixed_duration = Duration::seconds(90.0)});
      session.submit(rp::TaskDescription{
          .uid = "b", .ranks = 20, .fixed_duration = Duration::seconds(90.0)});
    });
  });
  session.run();

  const core::StoreView store = deployment->service().store_view();
  EXPECT_GT(store.record_count(core::Namespace::kWorkflow), 3u);
  EXPECT_GT(store.record_count(core::Namespace::kHardware), 6u);
  // The hardware report sees all three nodes.
  const auto report = analysis::analyze_hardware(store);
  EXPECT_EQ(report.nodes.size(), 3u);
  // Progress series shows the two tasks completing.
  const auto progress = analysis::workflow_progress(store);
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.back().done, 2);
  EXPECT_GT(deployment->mean_client_ack_latency_ms(), 0.0);
  EXPECT_GE(deployment->max_client_ack_latency_ms(),
            deployment->mean_client_ack_latency_ms());
}

TEST(DeploymentTest, SharedModeAllowsAppTasksOnServiceNodes) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  rp::Session session(session_config);
  std::unique_ptr<SomaDeployment> deployment;
  std::shared_ptr<rp::Task> big;
  session.start([&] {
    DeploymentConfig config;
    config.mode = SomaMode::kShared;
    config.service_nodes = {session.pilot_nodes().back()};
    deployment = std::make_unique<SomaDeployment>(session, config);
    deployment->deploy([&] {
      // 80 ranks: needs both the worker node (41 free) and spare capacity
      // on the shared service node.
      big = session.submit(rp::TaskDescription{
          .uid = "big", .ranks = 80,
          .fixed_duration = Duration::seconds(30.0)});
      session.add_task_completion_listener(
          [&](const std::shared_ptr<rp::Task>& task) {
            if (task == big) {
              deployment->shutdown();
              session.finalize();
            }
          });
    });
  });
  session.run();
  ASSERT_TRUE(big->placement().has_value());
  std::vector<NodeId> nodes = big->placement()->nodes();
  EXPECT_NE(std::find(nodes.begin(), nodes.end(),
                      session.pilot_nodes().back()),
            nodes.end());
}

TEST(DeploymentTest, StandardAnalyzersAnswerRemoteQueries) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  session_config.seed = 13;
  rp::Session session(session_config);
  std::unique_ptr<SomaDeployment> deployment;
  std::shared_ptr<core::SomaClient> consumer;
  datamodel::Node hardware_reply, progress_reply;

  int outstanding = 0;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().kind != rp::TaskKind::kApplication) return;
        if (--outstanding > 0) return;
        // The workflow just finished: query the in-situ analyzers remotely.
        consumer = deployment->make_client(core::Namespace::kWorkflow,
                                           session.worker_node_ids().front());
        datamodel::Node hw_request;
        hw_request["kind"].set("analyze");
        hw_request["analyzer"].set("hardware_report");
        consumer->query(std::move(hw_request), [&](datamodel::Node r) {
          hardware_reply = std::move(r);
        });
        datamodel::Node progress_request;
        progress_request["kind"].set("analyze");
        progress_request["analyzer"].set("progress");
        consumer->query(std::move(progress_request), [&](datamodel::Node r) {
          progress_reply = std::move(r);
          deployment->shutdown();
          session.finalize();
        });
      });

  session.start([&] {
    DeploymentConfig config;
    config.service_nodes = session.agent_node_ids();
    config.rp_monitor.period = Duration::seconds(15.0);
    config.hw_monitor.period = Duration::seconds(15.0);
    deployment = std::make_unique<SomaDeployment>(session, config);
    deployment->deploy([&] {
      outstanding = 2;
      session.submit(rp::TaskDescription{
          .uid = "a", .ranks = 20, .fixed_duration = Duration::seconds(60.0)});
      session.submit(rp::TaskDescription{
          .uid = "b", .ranks = 20, .fixed_duration = Duration::seconds(60.0)});
    });
  });
  session.run();

  // Hardware analyzer saw all three hosts with sane values.
  ASSERT_TRUE(hardware_reply.has_child("result"));
  const auto& hw = hardware_reply.fetch_existing("result");
  EXPECT_EQ(hw.fetch_existing("hosts").number_of_children(), 3u);
  EXPECT_GT(hw.fetch_existing("mean_cpu_utilization").as_float64(), 0.0);
  // Progress analyzer reports on the workflow.
  ASSERT_TRUE(progress_reply.has_child("result"));
  EXPECT_GT(
      progress_reply.fetch_existing("result/samples").as_int64(), 0);
}

// ---------- OpenFOAM experiment (reduced) ----------

TEST(OpenFoamExperimentTest, TuningRunProducesAllFigureData) {
  OpenFoamExperimentConfig config = OpenFoamExperimentConfig::tuning(7);
  const OpenFoamResult result = run_openfoam_experiment(config);

  // 4 tasks, one per rank configuration.
  EXPECT_EQ(result.tasks.size(), 4u);
  ASSERT_EQ(result.scaling.size(), 4u);
  // Fig. 4 shape: monotone improvement up to 82, little after.
  EXPECT_GT(result.scaling.at(20).mean, result.scaling.at(41).mean);
  EXPECT_GT(result.scaling.at(41).mean, result.scaling.at(82).mean);

  // Fig. 8 fractions and render present.
  EXPECT_GT(result.frac_bootstrap, 0.0);
  EXPECT_GT(result.frac_running, 0.3);
  EXPECT_FALSE(result.timeline_render.empty());

  // Fig. 7 data: per-node utilization series from the SOMA store.
  EXPECT_EQ(result.node_utilization.size(), 5u);  // 4 workers + agent node
  EXPECT_FALSE(result.observed_task_starts.empty());

  // Fig. 5: a 164-rank TAU profile made it into the performance namespace.
  EXPECT_EQ(result.sample_profile.ranks.size(), 164u);
  EXPECT_EQ(result.tau_profiles, 4u);
  EXPECT_GT(result.soma_publishes, 0u);
  EXPECT_GT(result.makespan_seconds, 0.0);
}

TEST(OpenFoamExperimentTest, MonitoringOffStillRuns) {
  OpenFoamExperimentConfig config = OpenFoamExperimentConfig::tuning(7);
  config.monitoring = false;
  const OpenFoamResult result = run_openfoam_experiment(config);
  EXPECT_EQ(result.tasks.size(), 4u);
  EXPECT_EQ(result.soma_publishes, 0u);
  EXPECT_TRUE(result.node_utilization.empty());
}

TEST(OpenFoamExperimentTest, ReducedOverloadSpreadsTasks) {
  OpenFoamExperimentConfig config = OpenFoamExperimentConfig::overloaded(7);
  config.instances_per_config = 5;  // keep the test quick
  config.worker_nodes = 6;
  const OpenFoamResult result = run_openfoam_experiment(config);
  EXPECT_EQ(result.tasks.size(), 20u);

  // With contention, some small tasks span >1 node (Fig. 6 x-axis exists).
  bool any_spread = false;
  for (const auto& [key, times] : result.by_spread) {
    if (key.second > 1 && key.first <= 41) any_spread = true;
  }
  EXPECT_TRUE(any_spread);
}

TEST(OpenFoamExperimentTest, DeterministicForSeed) {
  OpenFoamExperimentConfig config = OpenFoamExperimentConfig::tuning(99);
  const OpenFoamResult a = run_openfoam_experiment(config);
  const OpenFoamResult b = run_openfoam_experiment(config);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].exec_seconds, b.tasks[i].exec_seconds);
  }
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
}

// ---------- DDMD experiment (reduced) ----------

TEST(DdmdExperimentTest, TuningRunShowsLowUtilization) {
  DdmdExperimentConfig config = DdmdExperimentConfig::tuning(5);
  config.phases = 3;  // first three phase configs, keeps the test quick
  const DdmdResult result = run_ddmd_experiment(config);

  ASSERT_EQ(result.pipeline_seconds.size(), 1u);
  ASSERT_EQ(result.phase_utilization.size(), 3u);
  for (const auto& phase : result.phase_utilization) {
    // Fig. 9 finding: GPU-bound phases keep CPU utilization low.
    EXPECT_LT(phase.mean_utilization, 0.5);
    EXPECT_GT(phase.span_seconds, 0.0);
  }
  // More cores per sim task -> somewhat higher utilization (shading trend).
  EXPECT_GT(result.phase_utilization[2].mean_utilization,
            result.phase_utilization[0].mean_utilization);
}

TEST(DdmdExperimentTest, AdaptiveRunRecordsAdvice) {
  DdmdExperimentConfig config = DdmdExperimentConfig::adaptive(5);
  config.phases = 2;
  config.phase_configs.resize(2);
  const DdmdResult result = run_ddmd_experiment(config);
  EXPECT_EQ(result.adaptive_advice.size(), 2u);
  for (const auto& advice : result.adaptive_advice) {
    EXPECT_NE(advice.find("after phase"), std::string::npos);
  }
}

TEST(DdmdExperimentTest, SharedFasterThanExclusiveUnderOversubscription) {
  auto shared_config = DdmdExperimentConfig::scaling_b(
      8, SomaMode::kShared, Duration::seconds(60.0), 5);
  auto exclusive_config = DdmdExperimentConfig::scaling_b(
      8, SomaMode::kExclusive, Duration::seconds(60.0), 5);
  const DdmdResult shared = run_ddmd_experiment(shared_config);
  const DdmdResult exclusive = run_ddmd_experiment(exclusive_config);
  ASSERT_EQ(shared.pipeline_seconds.size(), 8u);
  // Paper Fig. 10/11: shared reduces execution time for many pipelines.
  EXPECT_LT(shared.pipeline_summary.mean, exclusive.pipeline_summary.mean);
}

TEST(DdmdExperimentTest, FrequentMonitoringCostsMore) {
  auto slow = DdmdExperimentConfig::scaling_b(8, SomaMode::kExclusive,
                                              Duration::seconds(60.0), 5);
  auto fast = DdmdExperimentConfig::scaling_b(8, SomaMode::kExclusive,
                                              Duration::seconds(10.0), 5);
  const DdmdResult slow_result = run_ddmd_experiment(slow);
  const DdmdResult fast_result = run_ddmd_experiment(fast);
  EXPECT_GT(fast_result.soma_publishes, slow_result.soma_publishes * 3);
  EXPECT_GE(fast_result.pipeline_summary.mean,
            slow_result.pipeline_summary.mean);
}

TEST(DdmdExperimentTest, NoneBaselineHasNoSomaTraffic) {
  auto config = DdmdExperimentConfig::scaling_b(4, SomaMode::kNone,
                                                Duration::seconds(60.0), 5);
  const DdmdResult result = run_ddmd_experiment(config);
  EXPECT_EQ(result.soma_publishes, 0u);
  EXPECT_EQ(result.pipeline_seconds.size(), 4u);
  EXPECT_TRUE(result.node_utilization.empty());
}

TEST(DdmdExperimentTest, InvalidConfigRejected) {
  DdmdExperimentConfig config;
  config.mode = SomaMode::kNone;
  config.soma_nodes = 1;
  EXPECT_THROW(run_ddmd_experiment(config), InternalError);
}

}  // namespace
}  // namespace soma::experiments
