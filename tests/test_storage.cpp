// Storage-layer tests: StorageBackend implementations (map + log), range
// boundary semantics, the log backend's LRU latest-snapshot cache, shard
// routing, and StoreView scatter-gather merges. Backend-behavior tests are
// parameterized over every StorageBackendKind so a new backend inherits the
// whole contract suite by adding one enum value below.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "soma/export.hpp"
#include "soma/log_backend.hpp"
#include "soma/map_backend.hpp"
#include "soma/store.hpp"
#include "soma/storage_backend.hpp"

namespace soma::core {
namespace {

constexpr StorageBackendKind kAllBackends[] = {StorageBackendKind::kMap,
                                               StorageBackendKind::kLog};

datamodel::Node value_node(double v) {
  datamodel::Node node;
  node["v"].set(v);
  return node;
}

std::unique_ptr<StorageBackend> make_backend(StorageBackendKind kind) {
  StorageConfig config;
  config.backend = kind;
  return make_storage_backend(config);
}

// ---------- kind parsing / factory ----------

TEST(BackendKindTest, RoundTrip) {
  EXPECT_EQ(to_string(StorageBackendKind::kMap), "map");
  EXPECT_EQ(to_string(StorageBackendKind::kLog), "log");
  EXPECT_EQ(parse_backend_kind("map"), StorageBackendKind::kMap);
  EXPECT_EQ(parse_backend_kind("log"), StorageBackendKind::kLog);
  EXPECT_THROW(parse_backend_kind("lsm"), ConfigError);
  EXPECT_THROW(parse_backend_kind(""), ConfigError);
}

TEST(BackendKindTest, FactoryBuildsRequestedKind) {
  for (StorageBackendKind kind : kAllBackends) {
    EXPECT_EQ(make_backend(kind)->kind(), kind);
  }
}

// ---------- contract suite, parameterized over every backend ----------

class BackendContractTest
    : public ::testing::TestWithParam<StorageBackendKind> {};

TEST_P(BackendContractTest, EmptyBackend) {
  const auto backend = make_backend(GetParam());
  EXPECT_EQ(backend->latest("missing"), nullptr);
  EXPECT_TRUE(backend->series("missing").empty());
  EXPECT_TRUE(backend->sources().empty());
  EXPECT_EQ(backend->record_count(), 0u);
  EXPECT_EQ(backend->ingested_bytes(), 0u);
}

TEST_P(BackendContractTest, AppendLatestAndCounters) {
  const auto backend = make_backend(GetParam());
  backend->append("cn0001", SimTime::from_seconds(1.0), value_node(0.1));
  backend->append("cn0001", SimTime::from_seconds(2.0), value_node(0.2));
  backend->append("cn0002", SimTime::from_seconds(1.5), value_node(0.3));

  const TimedRecord* latest = backend->latest("cn0001");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->time, SimTime::from_seconds(2.0));
  EXPECT_DOUBLE_EQ(latest->data.fetch_existing("v").as_float64(), 0.2);
  EXPECT_EQ(backend->record_count(), 3u);
  EXPECT_GT(backend->ingested_bytes(), 0u);
  EXPECT_EQ(backend->sources(),
            (std::vector<std::string>{"cn0001", "cn0002"}));
}

TEST_P(BackendContractTest, LateArrivalKeepsSeriesSorted) {
  const auto backend = make_backend(GetParam());
  backend->append("m", SimTime::from_seconds(1.0), value_node(1.0));
  backend->append("m", SimTime::from_seconds(3.0), value_node(3.0));
  // Replay paths deliver a record out of order.
  backend->append("m", SimTime::from_seconds(2.0), value_node(2.0));

  const auto series = backend->series("m");
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i]->time, SimTime::from_seconds(1.0 + i));
    EXPECT_DOUBLE_EQ(series[i]->data.fetch_existing("v").as_float64(), 1.0 + i);
  }
  // Latest is still the newest by time, not the last appended.
  ASSERT_NE(backend->latest("m"), nullptr);
  EXPECT_EQ(backend->latest("m")->time, SimTime::from_seconds(3.0));
}

// Range boundary semantics: [from, to] inclusive on both ends.

TEST_P(BackendContractTest, RangeExactEndpointsInclusive) {
  const auto backend = make_backend(GetParam());
  for (int i = 0; i <= 4; ++i) {
    backend->append("m", SimTime::from_seconds(i), value_node(i));
  }
  const auto hits = backend->range("m", SimTime::from_seconds(1.0),
                                   SimTime::from_seconds(3.0));
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits.front()->time, SimTime::from_seconds(1.0));
  EXPECT_EQ(hits.back()->time, SimTime::from_seconds(3.0));
}

TEST_P(BackendContractTest, RangeFromEqualsTo) {
  const auto backend = make_backend(GetParam());
  for (int i = 0; i <= 4; ++i) {
    backend->append("m", SimTime::from_seconds(i), value_node(i));
  }
  // Degenerate window sitting exactly on a sample: that one record.
  const auto on_sample = backend->range("m", SimTime::from_seconds(2.0),
                                        SimTime::from_seconds(2.0));
  ASSERT_EQ(on_sample.size(), 1u);
  EXPECT_EQ(on_sample.front()->time, SimTime::from_seconds(2.0));
  // Degenerate window between samples: nothing.
  EXPECT_TRUE(backend->range("m", SimTime::from_seconds(2.5),
                             SimTime::from_seconds(2.5))
                  .empty());
}

TEST_P(BackendContractTest, RangeEmptyWindowAndReversedBounds) {
  const auto backend = make_backend(GetParam());
  backend->append("m", SimTime::from_seconds(1.0), value_node(1.0));
  backend->append("m", SimTime::from_seconds(5.0), value_node(5.0));
  // Window strictly between two samples.
  EXPECT_TRUE(backend->range("m", SimTime::from_seconds(2.0),
                             SimTime::from_seconds(4.0))
                  .empty());
  // Window entirely before / after the series.
  EXPECT_TRUE(backend->range("m", SimTime::zero(),
                             SimTime::from_seconds(0.5))
                  .empty());
  EXPECT_TRUE(backend->range("m", SimTime::from_seconds(6.0),
                             SimTime::from_seconds(9.0))
                  .empty());
  // Reversed bounds are an empty interval, not a crash or a wrap-around.
  EXPECT_TRUE(backend->range("m", SimTime::from_seconds(5.0),
                             SimTime::from_seconds(1.0))
                  .empty());
  // Unknown source.
  EXPECT_TRUE(backend->range("ghost", SimTime::zero(), SimTime::max())
                  .empty());
}

// ---------- batch append: equivalent to in-order single appends ----------

TEST_P(BackendContractTest, AppendBatchMatchesSequentialAppends) {
  const auto batched = make_backend(GetParam());
  const auto sequential = make_backend(GetParam());

  std::vector<BatchItem> items;
  items.push_back({"cn0001", SimTime::from_seconds(1.0), value_node(1.0)});
  items.push_back({"cn0001", SimTime::from_seconds(2.0), value_node(2.0)});
  items.push_back({"cn0002", SimTime::from_seconds(1.5), value_node(3.0)});
  items.push_back({"cn0001", SimTime::from_seconds(3.0), value_node(4.0)});
  for (const auto& item : items) {
    sequential->append(item.source, item.time, item.data);
  }
  batched->append_batch(std::move(items));

  EXPECT_EQ(batched->record_count(), sequential->record_count());
  EXPECT_EQ(batched->ingested_bytes(), sequential->ingested_bytes());
  EXPECT_EQ(batched->sources(), sequential->sources());
  for (const auto& source : sequential->sources()) {
    const auto a = batched->series(source);
    const auto b = sequential->series(source);
    ASSERT_EQ(a.size(), b.size()) << source;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i]->time, b[i]->time) << source;
      EXPECT_DOUBLE_EQ(a[i]->data.fetch_existing("v").as_float64(),
                       b[i]->data.fetch_existing("v").as_float64())
          << source;
    }
    ASSERT_NE(batched->latest(source), nullptr);
    EXPECT_EQ(batched->latest(source)->time, sequential->latest(source)->time);
  }
  // One batch frame absorbed; the sequential backend saw none.
  EXPECT_EQ(batched->batch_count(), 1u);
  EXPECT_EQ(sequential->batch_count(), 0u);
}

TEST_P(BackendContractTest, AppendBatchWithLateArrivalsKeepsSeriesSorted) {
  const auto backend = make_backend(GetParam());
  backend->append("m", SimTime::from_seconds(2.0), value_node(2.0));
  // A replayed batch can carry original (older) timestamps.
  std::vector<BatchItem> items;
  items.push_back({"m", SimTime::from_seconds(3.0), value_node(3.0)});
  items.push_back({"m", SimTime::from_seconds(1.0), value_node(1.0)});
  backend->append_batch(std::move(items));

  const auto series = backend->series("m");
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i]->time, SimTime::from_seconds(1.0 + i));
  }
  ASSERT_NE(backend->latest("m"), nullptr);
  EXPECT_EQ(backend->latest("m")->time, SimTime::from_seconds(3.0));
}

TEST_P(BackendContractTest, EmptyBatchIsNotCounted) {
  const auto backend = make_backend(GetParam());
  backend->append_batch({});
  EXPECT_EQ(backend->record_count(), 0u);
  EXPECT_EQ(backend->batch_count(), 0u);
}

// ---------- clear: the crash model of the replication layer ----------

TEST_P(BackendContractTest, ClearEmptiesAndStaysReusable) {
  const auto backend = make_backend(GetParam());
  backend->append("cn0001", SimTime::from_seconds(1.0), value_node(0.1));
  backend->append("cn0002", SimTime::from_seconds(2.0), value_node(0.2));
  backend->append_batch({{"cn0001", SimTime::from_seconds(3.0),
                          value_node(0.3)},
                         {"cn0003", SimTime::from_seconds(3.5),
                          value_node(0.4)}});
  ASSERT_EQ(backend->record_count(), 4u);

  backend->clear();

  // Indistinguishable from freshly built: no records, sources, or counters.
  EXPECT_EQ(backend->record_count(), 0u);
  EXPECT_EQ(backend->ingested_bytes(), 0u);
  EXPECT_EQ(backend->batch_count(), 0u);
  EXPECT_TRUE(backend->sources().empty());
  EXPECT_EQ(backend->latest("cn0001"), nullptr);
  EXPECT_TRUE(backend->series("cn0002").empty());
  EXPECT_TRUE(backend->range("cn0001", SimTime::zero(),
                             SimTime::from_seconds(10.0))
                  .empty());

  // Reusable afterwards (a recovering rank re-ingests into it).
  backend->append("cn0001", SimTime::from_seconds(5.0), value_node(0.5));
  EXPECT_EQ(backend->record_count(), 1u);
  ASSERT_NE(backend->latest("cn0001"), nullptr);
  EXPECT_EQ(backend->latest("cn0001")->time, SimTime::from_seconds(5.0));
  EXPECT_EQ(backend->sources(), (std::vector<std::string>{"cn0001"}));
}

TEST(LogBackendCacheTest, ClearDropsCachedSnapshots) {
  // The cache points into the log; clear() must drop both together or the
  // next latest() would dereference freed records.
  LogBackend backend(/*latest_cache_capacity=*/4);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  (void)backend.latest("a");  // populate the cache
  backend.clear();
  EXPECT_EQ(backend.latest("a"), nullptr);
  backend.append("a", SimTime::from_seconds(2.0), value_node(2.0));
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest("a")->time, SimTime::from_seconds(2.0));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------- log backend LRU latest-snapshot cache ----------

TEST(LogBackendCacheTest, HitsAndMisses) {
  LogBackend backend(/*latest_cache_capacity=*/4);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  EXPECT_EQ(backend.latest_cache_hits(), 0u);

  // Append primes the cache, so the first read already hits.
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest_cache_hits(), 1u);
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest_cache_hits(), 2u);
  EXPECT_EQ(backend.latest("missing"), nullptr);
  EXPECT_EQ(backend.latest_cache_misses(), 1u);
}

TEST(LogBackendCacheTest, EvictsLeastRecentlyUsed) {
  LogBackend backend(/*latest_cache_capacity=*/2);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  backend.append("b", SimTime::from_seconds(1.0), value_node(2.0));
  backend.append("c", SimTime::from_seconds(1.0), value_node(3.0));
  EXPECT_EQ(backend.latest_cache_size(), 2u);

  // "a" was evicted by "c": reading it is a miss (then re-cached, evicting
  // the now-least-recent "b").
  const auto misses_before = backend.latest_cache_misses();
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest_cache_misses(), misses_before + 1);
  ASSERT_NE(backend.latest("c"), nullptr);  // still cached: a hit
  const auto hits_after_c = backend.latest_cache_hits();
  ASSERT_NE(backend.latest("b"), nullptr);  // evicted: a miss
  EXPECT_EQ(backend.latest_cache_hits(), hits_after_c);
  EXPECT_EQ(backend.latest_cache_size(), 2u);
}

TEST(LogBackendCacheTest, StaysCoherentAcrossAppends) {
  LogBackend backend(/*latest_cache_capacity=*/4);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  ASSERT_NE(backend.latest("a"), nullptr);

  // A newer record must supersede the cached snapshot...
  backend.append("a", SimTime::from_seconds(2.0), value_node(2.0));
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest("a")->time, SimTime::from_seconds(2.0));

  // ...and a late (replayed) older record must NOT.
  backend.append("a", SimTime::from_seconds(1.5), value_node(1.5));
  ASSERT_NE(backend.latest("a"), nullptr);
  EXPECT_EQ(backend.latest("a")->time, SimTime::from_seconds(2.0));
  EXPECT_EQ(backend.series("a").size(), 3u);
}

TEST(LogBackendCacheTest, StaysCoherentAcrossBatchAppends) {
  LogBackend backend(/*latest_cache_capacity=*/4);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  ASSERT_NE(backend.latest("a"), nullptr);

  // A batch carrying a newer record plus a late (replayed) older one must
  // leave the cached snapshot pointing at the true newest — same as the
  // sequential-append path.
  std::vector<BatchItem> items;
  items.push_back({"a", SimTime::from_seconds(3.0), value_node(3.0)});
  items.push_back({"a", SimTime::from_seconds(2.0), value_node(2.0)});
  items.push_back({"b", SimTime::from_seconds(1.0), value_node(9.0)});
  backend.append_batch(std::move(items));

  const auto hits_before = backend.latest_cache_hits();
  const TimedRecord* newest_a = backend.latest("a");
  ASSERT_NE(newest_a, nullptr);
  EXPECT_EQ(newest_a->time, SimTime::from_seconds(3.0));
  EXPECT_EQ(backend.latest_cache_hits(), hits_before + 1);  // still cached
  ASSERT_NE(backend.latest("b"), nullptr);  // batch primed the new source
  EXPECT_EQ(backend.latest_cache_hits(), hits_before + 2);
  EXPECT_EQ(backend.series("a").size(), 3u);
  EXPECT_EQ(backend.batch_count(), 1u);
}

TEST(LogBackendCacheTest, CapacityClampedToOne) {
  LogBackend backend(/*latest_cache_capacity=*/0);
  EXPECT_EQ(backend.latest_cache_capacity(), 1u);
  backend.append("a", SimTime::from_seconds(1.0), value_node(1.0));
  ASSERT_NE(backend.latest("a"), nullptr);
}

// ---------- shard routing ----------

TEST(ShardRoutingTest, StableHashIsStable) {
  // Fixed constants (inherited from the original client-side hash): the
  // values must never change across runs or refactors, or persisted routing
  // assumptions break.
  EXPECT_EQ(stable_source_hash(""), 1469598103934665603ULL);
  EXPECT_EQ(stable_source_hash("cn0001"),
            stable_source_hash(std::string("cn0001")));
  EXPECT_NE(stable_source_hash("cn0001"), stable_source_hash("cn0002"));
  EXPECT_EQ(route_source("anything", 0), 0u);
  EXPECT_EQ(route_source("anything", 1), 0u);
}

TEST(ShardRoutingTest, DataStoreRoutesByTheSharedHash) {
  StorageConfig config;
  config.shards_per_namespace = 4;
  DataStore store(config);
  ASSERT_EQ(store.shard_count(), 4);

  const std::vector<std::string> sources = {"cn0001", "cn0002", "task.0001",
                                            "task.0002", "pipeline.7"};
  for (const auto& source : sources) {
    const int expected = static_cast<int>(route_source(source, 4));
    EXPECT_EQ(store.shard_index_for(source), expected) << source;
    store.append(Namespace::kHardware, source, SimTime::from_seconds(1.0),
                 value_node(1.0));
    // The record landed in exactly the shard the hash names.
    EXPECT_EQ(
        store.shard(Namespace::kHardware, expected).series(source).size(), 1u)
        << source;
  }
}

// ---------- StoreView scatter-gather ----------

class StoreViewTest : public ::testing::TestWithParam<StorageBackendKind> {
 protected:
  static DataStore sharded_store(StorageBackendKind kind, int shards) {
    StorageConfig config;
    config.backend = kind;
    config.shards_per_namespace = shards;
    return DataStore(config);
  }
};

TEST_P(StoreViewTest, MergesSeriesAcrossShardsTimeSorted) {
  DataStore store = sharded_store(GetParam(), 3);
  // Simulate a source that failed over between ranks: its records are
  // split across shards (bypassing hash routing via direct shard access).
  store.shard(Namespace::kWorkflow, 0)
      .append("task.1", SimTime::from_seconds(1.0), value_node(1.0));
  store.shard(Namespace::kWorkflow, 2)
      .append("task.1", SimTime::from_seconds(2.0), value_node(2.0));
  store.shard(Namespace::kWorkflow, 1)
      .append("task.1", SimTime::from_seconds(3.0), value_node(3.0));

  const StoreView view = store.view();
  const auto series = view.series(Namespace::kWorkflow, "task.1");
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i]->time, SimTime::from_seconds(1.0 + i));
  }
  const auto window = view.range(Namespace::kWorkflow, "task.1",
                                 SimTime::from_seconds(2.0),
                                 SimTime::from_seconds(3.0));
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window.front()->time, SimTime::from_seconds(2.0));
}

TEST_P(StoreViewTest, LatestTieResolvesToLowestShard) {
  DataStore store = sharded_store(GetParam(), 3);
  store.shard(Namespace::kWorkflow, 2)
      .append("task.1", SimTime::from_seconds(5.0), value_node(22.0));
  store.shard(Namespace::kWorkflow, 1)
      .append("task.1", SimTime::from_seconds(5.0), value_node(11.0));

  const TimedRecord* latest =
      store.view().latest(Namespace::kWorkflow, "task.1");
  ASSERT_NE(latest, nullptr);
  EXPECT_DOUBLE_EQ(latest->data.fetch_existing("v").as_float64(), 11.0);
}

TEST_P(StoreViewTest, TimeTiesKeepShardOrder) {
  DataStore store = sharded_store(GetParam(), 2);
  store.shard(Namespace::kWorkflow, 1)
      .append("m", SimTime::from_seconds(1.0), value_node(1.0));
  store.shard(Namespace::kWorkflow, 0)
      .append("m", SimTime::from_seconds(1.0), value_node(0.0));

  const auto series = store.view().series(Namespace::kWorkflow, "m");
  ASSERT_EQ(series.size(), 2u);
  // Equal timestamps: shard 0's record sorts first, deterministically.
  EXPECT_DOUBLE_EQ(series[0]->data.fetch_existing("v").as_float64(), 0.0);
  EXPECT_DOUBLE_EQ(series[1]->data.fetch_existing("v").as_float64(), 1.0);
}

TEST_P(StoreViewTest, SourcesUnionSortedDeduplicated) {
  DataStore store = sharded_store(GetParam(), 2);
  store.shard(Namespace::kHardware, 0)
      .append("cn0002", SimTime::from_seconds(1.0), value_node(1.0));
  store.shard(Namespace::kHardware, 1)
      .append("cn0001", SimTime::from_seconds(1.0), value_node(1.0));
  store.shard(Namespace::kHardware, 1)
      .append("cn0002", SimTime::from_seconds(2.0), value_node(2.0));

  EXPECT_EQ(store.view().sources(Namespace::kHardware),
            (std::vector<std::string>{"cn0001", "cn0002"}));
  EXPECT_EQ(store.view().record_count(Namespace::kHardware), 3u);
}

TEST_P(StoreViewTest, InterleavedBatchAndSingleAppendsMergeIdentically) {
  // Two stores fed the same logical records — one mixing batch frames and
  // single appends across shards, one using only single appends — must
  // merge bit-identically: same order, same tie resolution.
  DataStore mixed = sharded_store(GetParam(), 3);
  DataStore plain = sharded_store(GetParam(), 3);

  // Shard 1 ingests a batch; shards 0 and 2 ingest singles, with time ties
  // against the batched records.
  std::vector<BatchItem> items;
  items.push_back({"m", SimTime::from_seconds(1.0), value_node(11.0)});
  items.push_back({"m", SimTime::from_seconds(2.0), value_node(12.0)});
  items.push_back({"m", SimTime::from_seconds(4.0), value_node(14.0)});
  mixed.shard(Namespace::kWorkflow, 1).append_batch(std::move(items));
  mixed.shard(Namespace::kWorkflow, 0)
      .append("m", SimTime::from_seconds(2.0), value_node(2.0));
  mixed.shard(Namespace::kWorkflow, 2)
      .append("m", SimTime::from_seconds(4.0), value_node(24.0));

  plain.shard(Namespace::kWorkflow, 1)
      .append("m", SimTime::from_seconds(1.0), value_node(11.0));
  plain.shard(Namespace::kWorkflow, 1)
      .append("m", SimTime::from_seconds(2.0), value_node(12.0));
  plain.shard(Namespace::kWorkflow, 1)
      .append("m", SimTime::from_seconds(4.0), value_node(14.0));
  plain.shard(Namespace::kWorkflow, 0)
      .append("m", SimTime::from_seconds(2.0), value_node(2.0));
  plain.shard(Namespace::kWorkflow, 2)
      .append("m", SimTime::from_seconds(4.0), value_node(24.0));

  const auto a = mixed.view().series(Namespace::kWorkflow, "m");
  const auto b = plain.view().series(Namespace::kWorkflow, "m");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->time, b[i]->time) << i;
    EXPECT_DOUBLE_EQ(a[i]->data.fetch_existing("v").as_float64(),
                     b[i]->data.fetch_existing("v").as_float64())
        << i;
  }
  // Time tie at 2.0: shard 0's record first. Latest tie at 4.0: lowest
  // shard (1) wins — the batched record.
  EXPECT_DOUBLE_EQ(a[1]->data.fetch_existing("v").as_float64(), 2.0);
  const TimedRecord* latest = mixed.view().latest(Namespace::kWorkflow, "m");
  ASSERT_NE(latest, nullptr);
  EXPECT_DOUBLE_EQ(latest->data.fetch_existing("v").as_float64(), 14.0);

  // The serialized export is likewise identical.
  std::ostringstream mixed_out, plain_out;
  EXPECT_EQ(export_store(mixed, mixed_out), export_store(plain, plain_out));
  EXPECT_EQ(mixed_out.str(), plain_out.str());
}

TEST_P(StoreViewTest, ExportIsShardCountInvariant) {
  // The exported stream is defined by the logical contents, not the
  // physical sharding: 1 shard and 5 shards must serialize identically.
  const auto fill = [](DataStore& store) {
    const std::vector<std::string> sources = {"cn0001", "cn0002", "task.1",
                                              "task.2", "pipeline.9"};
    for (int t = 1; t <= 4; ++t) {
      for (const auto& source : sources) {
        store.append(Namespace::kHardware, source, SimTime::from_seconds(t),
                     value_node(t));
      }
    }
  };
  DataStore single = sharded_store(GetParam(), 1);
  DataStore sharded = sharded_store(GetParam(), 5);
  fill(single);
  fill(sharded);

  std::ostringstream single_out, sharded_out;
  EXPECT_EQ(export_store(single, single_out),
            export_store(sharded, sharded_out));
  EXPECT_EQ(single_out.str(), sharded_out.str());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreViewTest,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------- shard counters / report ----------

TEST(ShardCountersTest, CountersFollowRouting) {
  StorageConfig config;
  config.shards_per_namespace = 2;
  DataStore store(config);
  store.append(Namespace::kWorkflow, "task.1", SimTime::from_seconds(1.0),
               value_node(1.0));
  store.append(Namespace::kHardware, "cn0001", SimTime::from_seconds(1.0),
               value_node(1.0));

  std::uint64_t total_records = 0;
  for (const auto& counter : store.shard_counters()) {
    total_records += counter.records;
    if (counter.records > 0) EXPECT_GT(counter.bytes, 0u);
  }
  EXPECT_EQ(total_records, store.total_records());
  // namespace-major, shard-minor: 4 namespaces x 2 shards.
  EXPECT_EQ(store.shard_counters().size(), 8u);
}

TEST(ShardCountersTest, ExportShardReportShape) {
  StorageConfig config;
  config.backend = StorageBackendKind::kLog;
  config.shards_per_namespace = 2;
  DataStore store(config);
  store.append(Namespace::kWorkflow, "task.1", SimTime::from_seconds(1.0),
               value_node(1.0));

  const datamodel::Node report = export_shard_report(store);
  EXPECT_EQ(report.fetch_existing("backend").as_string(), "log");
  EXPECT_EQ(report.fetch_existing("shard_count").as_int64(), 2);
  std::uint64_t records = 0;
  for (int shard = 0; shard < 2; ++shard) {
    records += static_cast<std::uint64_t>(
        report.fetch_existing("workflow/shard_" + std::to_string(shard) +
                             "/records")
            .as_int64());
  }
  EXPECT_EQ(records, 1u);
}

}  // namespace
}  // namespace soma::core
