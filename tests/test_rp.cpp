// Unit tests for the RADICAL-Pilot substrate: state machine, task records,
// profiles, the agent scheduler, the executor, and the session lifecycle.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rp/execution_model.hpp"
#include "rp/profile.hpp"
#include "rp/scheduler.hpp"
#include "rp/session.hpp"
#include "rp/states.hpp"
#include "rp/task.hpp"

namespace soma::rp {
namespace {

// ---------- states ----------

TEST(StatesTest, Names) {
  EXPECT_EQ(to_string(TaskState::kNew), "NEW");
  EXPECT_EQ(to_string(TaskState::kExecuting), "EXECUTING");
  EXPECT_EQ(to_string(TaskState::kDone), "DONE");
  EXPECT_EQ(to_string(PilotState::kActive), "ACTIVE");
}

TEST(StatesTest, ValidTransitions) {
  EXPECT_TRUE(is_valid_transition(TaskState::kNew, TaskState::kTmgrScheduling));
  EXPECT_TRUE(is_valid_transition(TaskState::kTmgrScheduling,
                                  TaskState::kAgentScheduling));
  EXPECT_TRUE(
      is_valid_transition(TaskState::kAgentScheduling, TaskState::kExecuting));
  EXPECT_TRUE(is_valid_transition(TaskState::kExecuting, TaskState::kDone));
  EXPECT_TRUE(is_valid_transition(TaskState::kExecuting, TaskState::kFailed));
  EXPECT_TRUE(is_valid_transition(TaskState::kNew, TaskState::kCanceled));
}

TEST(StatesTest, InvalidTransitions) {
  EXPECT_FALSE(is_valid_transition(TaskState::kNew, TaskState::kExecuting));
  EXPECT_FALSE(is_valid_transition(TaskState::kNew, TaskState::kDone));
  EXPECT_FALSE(is_valid_transition(TaskState::kDone, TaskState::kExecuting));
  EXPECT_FALSE(is_valid_transition(TaskState::kDone, TaskState::kCanceled));
  EXPECT_FALSE(
      is_valid_transition(TaskState::kExecuting, TaskState::kExecuting));
}

TEST(StatesTest, FinalStates) {
  EXPECT_TRUE(is_final(TaskState::kDone));
  EXPECT_TRUE(is_final(TaskState::kFailed));
  EXPECT_TRUE(is_final(TaskState::kCanceled));
  EXPECT_FALSE(is_final(TaskState::kExecuting));
}

// ---------- Task ----------

TEST(TaskTest, AdvanceRecordsHistory) {
  Task task(TaskDescription{.uid = "t"});
  EXPECT_EQ(task.state(), TaskState::kNew);
  task.advance(TaskState::kTmgrScheduling, SimTime::from_seconds(1.0));
  task.advance(TaskState::kAgentScheduling, SimTime::from_seconds(2.0));
  EXPECT_EQ(task.state(), TaskState::kAgentScheduling);
  EXPECT_EQ(task.state_entered(TaskState::kTmgrScheduling),
            SimTime::from_seconds(1.0));
  EXPECT_FALSE(task.state_entered(TaskState::kDone).has_value());
}

TEST(TaskTest, IllegalAdvanceThrows) {
  Task task(TaskDescription{.uid = "t"});
  EXPECT_THROW(task.advance(TaskState::kDone, SimTime::zero()), InternalError);
}

TEST(TaskTest, EventLog) {
  Task task(TaskDescription{.uid = "t"});
  task.record_event(events::kLaunchStart, SimTime::from_seconds(1.0));
  task.record_event(events::kRankStart, SimTime::from_seconds(2.0));
  task.record_event(events::kRankStop, SimTime::from_seconds(17.0));
  EXPECT_EQ(task.event_time(events::kRankStart), SimTime::from_seconds(2.0));
  EXPECT_FALSE(task.event_time(events::kExecStop).has_value());
  ASSERT_TRUE(task.rank_duration().has_value());
  EXPECT_EQ(*task.rank_duration(), Duration::seconds(15.0));
  EXPECT_FALSE(task.launch_duration().has_value());
}

TEST(TaskTest, ProfileMirroring) {
  ProfileStore store;
  Task task(TaskDescription{.uid = "task.x"});
  task.attach_profile(&store);
  task.advance(TaskState::kTmgrScheduling, SimTime::from_seconds(1.0));
  task.record_event(events::kLaunchStart, SimTime::from_seconds(2.0));
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).uid, "task.x");
  EXPECT_EQ(store.at(0).event, "TMGR_SCHEDULING");
  EXPECT_EQ(store.at(1).event, "launch_start");
}

TEST(PlacementTest, NodesSpanned) {
  Placement placement;
  placement.ranks = {RankPlacement{.node = 2, .cores = {0}},
                     RankPlacement{.node = 0, .cores = {1}},
                     RankPlacement{.node = 2, .cores = {2}}};
  EXPECT_EQ(placement.nodes_spanned(), 2);
  EXPECT_EQ(placement.nodes(), (std::vector<NodeId>{0, 2}));
}

// ---------- ProfileStore ----------

TEST(ProfileStoreTest, CursorReads) {
  ProfileStore store;
  store.record(SimTime::from_seconds(1.0), "a", "x");
  store.record(SimTime::from_seconds(2.0), "b", "y");
  std::size_t cursor = 0;
  auto first = store.read_since(cursor);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(cursor, 2u);
  EXPECT_TRUE(store.read_since(cursor).empty());
  store.record(SimTime::from_seconds(3.0), "a", "z");
  auto second = store.read_since(cursor);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].event, "z");
}

TEST(ProfileStoreTest, ForUid) {
  ProfileStore store;
  store.record(SimTime::from_seconds(1.0), "a", "x");
  store.record(SimTime::from_seconds(2.0), "b", "y");
  store.record(SimTime::from_seconds(3.0), "a", "z");
  const auto records = store.for_uid("a");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].event, "z");
  EXPECT_THROW(store.at(99), InternalError);
}

// ---------- AgentScheduler ----------

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : platform(simulation, cluster::summit(4)),
        scheduler(simulation, platform, {0, 1, 2, 3}, Rng{5}) {
    scheduler.set_on_placed(
        [this](const std::shared_ptr<Task>& task) { placed.push_back(task); });
  }

  std::shared_ptr<Task> submit(TaskDescription description) {
    auto task = std::make_shared<Task>(std::move(description));
    task->advance(TaskState::kTmgrScheduling, simulation.now());
    task->advance(TaskState::kAgentScheduling, simulation.now());
    scheduler.submit(task);
    return task;
  }

  sim::Simulation simulation;
  cluster::Platform platform;
  AgentScheduler scheduler;
  std::vector<std::shared_ptr<Task>> placed;
};

TEST_F(SchedulerTest, SingleNodePlacement) {
  auto task = submit(TaskDescription{.uid = "t", .ranks = 10});
  simulation.run();
  ASSERT_EQ(placed.size(), 1u);
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks.size(), 10u);
  EXPECT_EQ(task->placement()->nodes_spanned(), 1);
  EXPECT_EQ(platform.node(0).busy_cores(), 10);
}

TEST_F(SchedulerTest, MultiNodeSplit) {
  // 100 ranks cannot fit on one 42-core node: continuous policy splits.
  auto task = submit(TaskDescription{.uid = "t", .ranks = 100});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->nodes_spanned(), 3);  // 42+42+16
  EXPECT_EQ(platform.node(0).busy_cores(), 42);
  EXPECT_EQ(platform.node(2).busy_cores(), 16);
}

TEST_F(SchedulerTest, CoresPerRankRespected) {
  auto task = submit(
      TaskDescription{.uid = "t", .ranks = 10, .cores_per_rank = 4});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  int total_cores = 0;
  for (const auto& rank : task->placement()->ranks) {
    total_cores += static_cast<int>(rank.cores.size());
  }
  EXPECT_EQ(total_cores, 40);
  EXPECT_EQ(task->placement()->nodes_spanned(), 1);  // 10*4=40 <= 42
}

TEST_F(SchedulerTest, GpuConstraintForcesSpread) {
  // 8 ranks x 1 GPU: only 6 GPUs per node.
  auto task = submit(TaskDescription{
      .uid = "t", .ranks = 8, .cores_per_rank = 1, .gpus_per_rank = 1});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->nodes_spanned(), 2);
  EXPECT_EQ(platform.node(0).busy_gpus(), 6);
  EXPECT_EQ(platform.node(1).busy_gpus(), 2);
}

TEST_F(SchedulerTest, WaitlistedUntilResourcesFree) {
  auto big = submit(TaskDescription{.uid = "big", .ranks = 168});  // 4 nodes
  auto second = submit(TaskDescription{.uid = "second", .ranks = 10});
  simulation.run();
  // Big fills the machine; second waits.
  EXPECT_EQ(placed.size(), 1u);
  EXPECT_EQ(scheduler.waitlist_size(), 1u);

  scheduler.task_completed(*big);
  simulation.run();
  EXPECT_EQ(placed.size(), 2u);
  EXPECT_TRUE(second->placement().has_value());
}

TEST_F(SchedulerTest, SmallTaskNotBlockedByHeadOfLine) {
  submit(TaskDescription{.uid = "huge", .ranks = 160});
  simulation.run();
  submit(TaskDescription{.uid = "wont-fit", .ranks = 160});
  auto small = submit(TaskDescription{.uid = "small", .ranks = 4});
  simulation.run();
  // "RP schedules a task as soon as there are enough free resources."
  EXPECT_TRUE(small->placement().has_value());
}

TEST_F(SchedulerTest, PinnedTaskGoesToItsNode) {
  auto task = submit(TaskDescription{
      .uid = "mon", .kind = TaskKind::kMonitor, .ranks = 1, .pinned_node = 2});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 2);
}

TEST_F(SchedulerTest, PinnedToFullNodeWaits) {
  submit(TaskDescription{.uid = "filler", .ranks = 42});  // fills node 0
  simulation.run();
  auto pinned = submit(TaskDescription{
      .uid = "mon", .kind = TaskKind::kMonitor, .ranks = 1, .pinned_node = 0});
  simulation.run();
  EXPECT_FALSE(pinned->placement().has_value());
}

TEST_F(SchedulerTest, ExclusiveServiceNodesRefuseAppTasks) {
  scheduler.set_service_nodes({0, 1}, /*shared=*/false);
  auto task = submit(TaskDescription{.uid = "t", .ranks = 42});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 2);  // skipped 0 and 1
}

TEST_F(SchedulerTest, SharedServiceNodesAcceptAppTasks) {
  scheduler.set_service_nodes({0, 1}, /*shared=*/true);
  auto task = submit(TaskDescription{.uid = "t", .ranks = 42});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 0);
}

TEST_F(SchedulerTest, AgentNodesNeverRunAppTasksEvenShared) {
  scheduler.set_agent_nodes({0});
  scheduler.set_service_nodes({1}, /*shared=*/true);
  auto task = submit(TaskDescription{.uid = "t", .ranks = 42});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 1);  // shared service node OK
}

TEST_F(SchedulerTest, ServiceTaskSpreadsAcrossServiceNodes) {
  scheduler.set_service_nodes({1, 2}, /*shared=*/false);
  auto service = submit(TaskDescription{
      .uid = "svc", .kind = TaskKind::kService, .ranks = 20});
  simulation.run();
  ASSERT_TRUE(service->placement().has_value());
  EXPECT_EQ(service->placement()->nodes_spanned(), 2);  // balanced, not packed
  EXPECT_EQ(platform.node(1).busy_cores(), 10);
  EXPECT_EQ(platform.node(2).busy_cores(), 10);
}

TEST_F(SchedulerTest, ServiceTaskTooLargeStaysQueued) {
  scheduler.set_service_nodes({1}, false);
  auto service = submit(TaskDescription{
      .uid = "svc", .kind = TaskKind::kService, .ranks = 60});
  simulation.run();
  EXPECT_FALSE(service->placement().has_value());
}

TEST_F(SchedulerTest, DecisionCostIsSerial) {
  // Two tasks placed back to back: second schedule_ok strictly after first.
  auto a = submit(TaskDescription{.uid = "a", .ranks = 1});
  auto b = submit(TaskDescription{.uid = "b", .ranks = 1});
  simulation.run();
  const auto ok_a = a->event_time(events::kScheduleOk);
  const auto ok_b = b->event_time(events::kScheduleOk);
  ASSERT_TRUE(ok_a && ok_b);
  EXPECT_GT(*ok_b, *ok_a);
}

TEST_F(SchedulerTest, SlowdownInflatesDecisionTime) {
  sim::Simulation sim2;
  cluster::Platform platform2(sim2, cluster::summit(4));
  AgentScheduler slow(sim2, platform2, {0, 1, 2, 3}, Rng{5});
  std::vector<std::shared_ptr<Task>> placed2;
  slow.set_on_placed(
      [&](const std::shared_ptr<Task>& t) { placed2.push_back(t); });
  slow.set_decision_slowdown([] { return 5.0; });

  auto fast_task = submit(TaskDescription{.uid = "f", .ranks = 1});
  auto slow_task = std::make_shared<Task>(TaskDescription{.uid = "s", .ranks = 1});
  slow_task->advance(TaskState::kTmgrScheduling, sim2.now());
  slow_task->advance(TaskState::kAgentScheduling, sim2.now());
  slow.submit(slow_task);

  simulation.run();
  sim2.run();
  const Duration fast_decision =
      *fast_task->event_time(events::kScheduleOk) -
      *fast_task->event_time(events::kSlotsClaimed);
  const Duration slow_decision =
      *slow_task->event_time(events::kScheduleOk) -
      *slow_task->event_time(events::kSlotsClaimed);
  EXPECT_GT(slow_decision.to_seconds(), 3.0 * fast_decision.to_seconds());
}

TEST_F(SchedulerTest, FreeAppResourcesExcludeExclusiveServiceNodes) {
  scheduler.set_service_nodes({3}, false);
  EXPECT_EQ(scheduler.free_app_cores(), 42 * 3);
  EXPECT_EQ(scheduler.free_app_gpus(), 6 * 3);
  scheduler.set_service_nodes({3}, true);
  EXPECT_EQ(scheduler.free_app_cores(), 42 * 4);
}

TEST_F(SchedulerTest, CompletionReleasesEverything) {
  auto task = submit(TaskDescription{.uid = "t",
                                     .ranks = 4,
                                     .cores_per_rank = 2,
                                     .gpus_per_rank = 1,
                                     .mem_per_rank_mib = 100.0});
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  const double ram_before = platform.node(0).available_ram_mib();
  scheduler.task_completed(*task);
  EXPECT_EQ(platform.node(0).busy_cores(), 0);
  EXPECT_EQ(platform.node(0).busy_gpus(), 0);
  EXPECT_GT(platform.node(0).available_ram_mib(), ram_before);
}

// ---------- Session (integration of client/agent/executor) ----------

rp::SessionConfig small_session_config() {
  rp::SessionConfig config;
  config.platform = cluster::summit(3);
  config.pilot.nodes = 3;
  config.seed = 11;
  return config;
}

TEST(SessionTest, BootstrapSequence) {
  Session session(small_session_config());
  EXPECT_FALSE(session.agent_ready());
  bool ready = false;
  session.start([&] { ready = true; });
  session.run();
  EXPECT_TRUE(ready);
  EXPECT_TRUE(session.agent_ready());
  EXPECT_GT(session.agent_ready_at(), session.pilot_granted_at());
  EXPECT_EQ(session.pilot_nodes().size(), 3u);
  EXPECT_EQ(session.agent_node_ids(), (std::vector<NodeId>{0}));
  EXPECT_EQ(session.worker_node_ids(), (std::vector<NodeId>{1, 2}));
}

TEST(SessionTest, AgentOccupiesCoresOnAgentNode) {
  Session session(small_session_config());
  session.start([] {});
  session.run();
  EXPECT_EQ(session.platform().node(0).busy_cores(),
            session.config().agent_cores);
}

TEST(SessionTest, TaskLifecycleEventsInListingOrder) {
  Session session(small_session_config());
  std::shared_ptr<Task> task;
  session.start([&] {
    task = session.submit(TaskDescription{
        .uid = "t", .ranks = 4, .fixed_duration = Duration::seconds(15.0)});
  });
  session.run();

  ASSERT_EQ(task->state(), TaskState::kDone);
  // Listing 1 order within EXECUTING.
  const char* expected[] = {"launch_start", "exec_start", "rank_start",
                            "rank_stop",    "exec_stop",  "launch_stop"};
  SimTime previous = SimTime::zero();
  for (const char* name : expected) {
    const auto at = task->event_time(name);
    ASSERT_TRUE(at.has_value()) << name;
    EXPECT_GE(*at, previous) << name;
    previous = *at;
  }
  EXPECT_NEAR(task->rank_duration()->to_seconds(), 15.0, 0.1);
}

TEST(SessionTest, StateMachineProgression) {
  Session session(small_session_config());
  std::shared_ptr<Task> task;
  session.start([&] {
    task = session.submit(TaskDescription{.uid = "t", .ranks = 1});
  });
  session.run();
  ASSERT_TRUE(task->state_entered(TaskState::kTmgrScheduling).has_value());
  ASSERT_TRUE(task->state_entered(TaskState::kAgentScheduling).has_value());
  ASSERT_TRUE(task->state_entered(TaskState::kExecuting).has_value());
  ASSERT_TRUE(task->state_entered(TaskState::kDone).has_value());
  EXPECT_LT(*task->state_entered(TaskState::kTmgrScheduling),
            *task->state_entered(TaskState::kAgentScheduling));
  EXPECT_LT(*task->state_entered(TaskState::kAgentScheduling),
            *task->state_entered(TaskState::kExecuting));
}

TEST(SessionTest, ServiceTaskRunsUntilStopped) {
  Session session(small_session_config());
  std::shared_ptr<Task> service;
  session.start([&] {
    service = session.submit(TaskDescription{
        .uid = "svc", .kind = TaskKind::kService, .ranks = 2});
    // Stop it after 100 s.
    session.simulation().schedule(Duration::seconds(100.0), [&] {
      session.stop_task("svc");
      session.finalize();
    });
  });
  session.run();
  EXPECT_EQ(service->state(), TaskState::kDone);
  EXPECT_GT(service->rank_duration()->to_seconds(), 90.0);
}

TEST(SessionTest, CompletionListenersAllFire) {
  Session session(small_session_config());
  int calls = 0;
  session.add_task_completion_listener(
      [&](const std::shared_ptr<Task>&) { ++calls; });
  session.add_task_completion_listener(
      [&](const std::shared_ptr<Task>&) { ++calls; });
  session.start([&] {
    session.submit(TaskDescription{.uid = "t", .ranks = 1});
  });
  session.run();
  EXPECT_EQ(calls, 2);
}

TEST(SessionTest, StartListenerFiresAtRankStart) {
  Session session(small_session_config());
  SimTime started;
  std::shared_ptr<Task> task;
  session.add_task_start_listener([&](const std::shared_ptr<Task>& t) {
    started = session.simulation().now();
    (void)t;
  });
  session.start([&] {
    task = session.submit(TaskDescription{.uid = "t", .ranks = 1});
  });
  session.run();
  EXPECT_EQ(started, *task->event_time(events::kRankStart));
}

TEST(SessionTest, DuplicateUidRejected) {
  Session session(small_session_config());
  session.start([&] {
    session.submit(TaskDescription{.uid = "dup", .ranks = 1});
    EXPECT_THROW(session.submit(TaskDescription{.uid = "dup", .ranks = 1}),
                 ConfigError);
  });
  session.run();
}

TEST(SessionTest, AutoUidAssigned) {
  Session session(small_session_config());
  std::shared_ptr<Task> task;
  session.start([&] { task = session.submit(TaskDescription{.ranks = 1}); });
  session.run();
  EXPECT_EQ(task->uid(), "task.000000");
}

TEST(SessionTest, SubmitBeforeReadyThrows) {
  Session session(small_session_config());
  EXPECT_THROW(session.submit(TaskDescription{.ranks = 1}), InternalError);
}

TEST(SessionTest, InvalidConfigsRejected) {
  rp::SessionConfig config = small_session_config();
  config.pilot.nodes = 5;  // platform has 3
  EXPECT_THROW(Session{config}, ConfigError);
  config = small_session_config();
  config.agent_nodes = 3;  // no worker nodes left
  EXPECT_THROW(Session{config}, ConfigError);
}

TEST(SessionTest, NodeNoiseStretchesExecution) {
  Session fast_session(small_session_config());
  Session slow_session(small_session_config());
  std::shared_ptr<Task> fast_task, slow_task;
  fast_session.start([&] {
    fast_task = fast_session.submit(TaskDescription{
        .uid = "t", .ranks = 1, .fixed_duration = Duration::seconds(100.0)});
  });
  slow_session.start([&] {
    for (NodeId node : slow_session.worker_node_ids()) {
      slow_session.executor().set_node_noise(node, 0.10);
    }
    slow_task = slow_session.submit(TaskDescription{
        .uid = "t", .ranks = 1, .fixed_duration = Duration::seconds(100.0)});
  });
  fast_session.run();
  slow_session.run();
  EXPECT_NEAR(slow_task->rank_duration()->to_seconds(),
              fast_task->rank_duration()->to_seconds() * 1.10, 1e-6);
}

TEST(SessionTest, DataStagingPhases) {
  Session session(small_session_config());
  std::shared_ptr<Task> task;
  session.start([&] {
    TaskDescription d;
    d.uid = "staged";
    d.ranks = 2;
    d.fixed_duration = Duration::seconds(10.0);
    d.input_staging_mib = 1000.0;   // 2 s at 500 MiB/s + latency
    d.output_staging_mib = 250.0;   // 0.5 s
    task = session.submit(d);
  });
  session.run();

  ASSERT_EQ(task->state(), TaskState::kDone);
  const auto in_start = task->event_time(events::kStageInStart);
  const auto in_stop = task->event_time(events::kStageInStop);
  const auto out_start = task->event_time(events::kStageOutStart);
  const auto out_stop = task->event_time(events::kStageOutStop);
  ASSERT_TRUE(in_start && in_stop && out_start && out_stop);
  EXPECT_NEAR((*in_stop - *in_start).to_seconds(), 2.05, 1e-6);
  EXPECT_NEAR((*out_stop - *out_start).to_seconds(), 0.55, 1e-6);
  // Ordering: stage-in fully precedes the launch; stage-out follows
  // launch_stop; DONE only after stage-out.
  EXPECT_LE(*in_stop, *task->event_time(events::kLaunchStart));
  EXPECT_GE(*out_start, *task->event_time(events::kLaunchStop));
  EXPECT_EQ(*task->state_entered(TaskState::kDone), *out_stop);
}

TEST(SessionTest, NoStagingSkipsPhases) {
  Session session(small_session_config());
  std::shared_ptr<Task> task;
  session.start([&] {
    task = session.submit(TaskDescription{.uid = "t", .ranks = 1});
  });
  session.run();
  EXPECT_FALSE(task->event_time(events::kStageInStart).has_value());
  EXPECT_FALSE(task->event_time(events::kStageOutStart).has_value());
}

TEST(SessionTest, StagingHoldsResources) {
  // The slots are claimed during stage-in (the node is reserved while data
  // moves), so a second task must wait for staging + execution.
  Session session(small_session_config());
  std::shared_ptr<Task> staged, second;
  session.start([&] {
    TaskDescription d;
    d.uid = "staged";
    d.ranks = 84;  // whole machine
    d.fixed_duration = Duration::seconds(10.0);
    d.input_staging_mib = 5000.0;  // 10 s
    staged = session.submit(d);
    second = session.submit(TaskDescription{.uid = "second", .ranks = 84});
  });
  session.run();
  EXPECT_GE(*second->event_time(events::kLaunchStart),
            *staged->event_time(events::kLaunchStop));
}

TEST(SessionTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Session session(small_session_config());
    std::vector<std::shared_ptr<Task>> tasks;
    session.start([&] {
      for (int i = 0; i < 5; ++i) {
        tasks.push_back(session.submit(TaskDescription{
            .ranks = 8, .fixed_duration = Duration::seconds(20.0)}));
      }
    });
    session.run();
    std::vector<std::int64_t> stamps;
    for (const auto& task : tasks) {
      stamps.push_back(task->event_time(events::kRankStop)->nanos());
    }
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace soma::rp
