// Tests for the RAPTOR-like function-task subsystem.
#include <gtest/gtest.h>

#include "raptor/raptor.hpp"

namespace soma::raptor {
namespace {

rp::SessionConfig session_config() {
  rp::SessionConfig config;
  config.platform = cluster::summit(3);
  config.pilot.nodes = 3;
  config.seed = 123;
  return config;
}

TEST(RaptorTest, ExecutesSubmittedFunctions) {
  rp::Session session(session_config());
  RaptorMaster master(session, RaptorConfig{.workers = 2,
                                            .cores_per_worker = 4});
  std::vector<FunctionResult> results;
  session.start([&] {
    master.start([&] {
      master.submit_many(20, Duration::milliseconds(500),
                         [&](const FunctionResult& result) {
                           results.push_back(result);
                         });
      session.simulation().schedule(Duration::seconds(60.0), [&] {
        master.shutdown();
        session.finalize();
      });
    });
  });
  session.run();

  ASSERT_EQ(results.size(), 20u);
  EXPECT_EQ(master.completed(), 20u);
  // Both workers participated.
  bool saw_worker0 = false, saw_worker1 = false;
  for (const auto& result : results) {
    if (result.worker == 0) saw_worker0 = true;
    if (result.worker == 1) saw_worker1 = true;
    EXPECT_NEAR((result.finished - result.started).to_seconds(), 0.5, 1e-9);
  }
  EXPECT_TRUE(saw_worker0);
  EXPECT_TRUE(saw_worker1);
}

TEST(RaptorTest, ConcurrencyBoundedBySlots) {
  rp::Session session(session_config());
  // 1 worker x 2 slots, 6 functions of 10 s each -> 3 serial waves = ~30 s.
  RaptorMaster master(session,
                      RaptorConfig{.workers = 1, .cores_per_worker = 2});
  SimTime first_start, last_finish;
  int count = 0;
  session.start([&] {
    master.start([&] {
      master.submit_many(6, Duration::seconds(10.0),
                         [&](const FunctionResult& result) {
                           if (count == 0) first_start = result.started;
                           last_finish = result.finished;
                           if (++count == 6) {
                             master.shutdown();
                             session.finalize();
                           }
                         });
    });
  });
  session.run();
  EXPECT_EQ(count, 6);
  EXPECT_NEAR((last_finish - first_start).to_seconds(), 30.0, 0.5);
}

TEST(RaptorTest, SubmitBeforeReadyIsBuffered) {
  rp::Session session(session_config());
  RaptorMaster master(session, RaptorConfig{.workers = 1});
  int done = 0;
  session.start([&] {
    master.start(nullptr);
    // Submit immediately: workers are still being scheduled.
    master.submit_many(3, Duration::seconds(1.0),
                       [&](const FunctionResult&) {
                         if (++done == 3) {
                           master.shutdown();
                           session.finalize();
                         }
                       });
  });
  session.run();
  EXPECT_EQ(done, 3);
}

TEST(RaptorTest, WorkersOccupyRpResources) {
  rp::Session session(session_config());
  RaptorConfig config{.workers = 2, .cores_per_worker = 8};
  RaptorMaster master(session, config);
  int busy_during = 0;
  session.start([&] {
    master.start([&] {
      int total = 0;
      for (NodeId node : session.worker_node_ids()) {
        total += session.platform().node(node).busy_cores();
      }
      busy_during = total;
      master.shutdown();
      session.finalize();
    });
  });
  session.run();
  // 2 workers x 8 cores + 1 master core.
  EXPECT_EQ(busy_during, 17);
  // Shutdown released everything.
  for (NodeId node : session.worker_node_ids()) {
    EXPECT_EQ(session.platform().node(node).busy_cores(), 0);
  }
}

TEST(RaptorTest, ThroughputBeatsExecutableTaskPath) {
  // The subsystem's reason to exist: many small "function" units through
  // RAPTOR vs the same units as individual RP tasks.
  const int units = 200;
  const Duration unit = Duration::milliseconds(100);

  // RAPTOR path.
  rp::Session raptor_session(session_config());
  RaptorMaster master(raptor_session,
                      RaptorConfig{.workers = 4, .cores_per_worker = 8});
  int raptor_done = 0;
  master.submit_many(units, unit, [&](const FunctionResult&) {
    if (++raptor_done == units) {
      master.shutdown();
      raptor_session.finalize();
    }
  });
  SimTime raptor_begin, raptor_end;
  raptor_session.start([&] {
    raptor_begin = raptor_session.simulation().now();
    master.start(nullptr);
  });
  raptor_session.run();
  raptor_end = raptor_session.simulation().now();

  // Executable-task path: same units as RP tasks.
  rp::Session task_session(session_config());
  int tasks_done = 0;
  SimTime tasks_begin, tasks_end;
  task_session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>&) {
        if (++tasks_done == units) task_session.finalize();
      });
  task_session.start([&] {
    tasks_begin = task_session.simulation().now();
    for (int i = 0; i < units; ++i) {
      rp::TaskDescription d;
      d.ranks = 1;
      d.fixed_duration = unit;
      task_session.submit(d);
    }
  });
  task_session.run();
  tasks_end = task_session.simulation().now();

  const double raptor_span = (raptor_end - raptor_begin).to_seconds();
  const double task_span = (tasks_end - tasks_begin).to_seconds();
  EXPECT_EQ(raptor_done, units);
  EXPECT_EQ(tasks_done, units);
  // "Ravenous throughput": well over 2x faster end to end.
  EXPECT_LT(raptor_span * 2.0, task_span);
  EXPECT_GT(master.throughput_per_second(), 10.0);
}

TEST(RaptorTest, InvalidConfigRejected) {
  rp::Session session(session_config());
  EXPECT_THROW(RaptorMaster(session, RaptorConfig{.workers = 0}),
               InternalError);
  EXPECT_THROW(
      RaptorMaster(session, RaptorConfig{.workers = 1, .cores_per_worker = 0}),
      InternalError);
}

}  // namespace
}  // namespace soma::raptor
