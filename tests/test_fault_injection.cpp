// Failure-matrix tests for deterministic fault injection and the RPC/client
// reliability layer: injector semantics, retry/timeout edge cases,
// buffer-and-replay, failover, and a {drop rate x crash schedule x retry
// policy} matrix asserting same-seed runs are bit-identical.
//
// The matrix seed can be overridden with SOMA_FAULT_SEED (CI runs three fixed
// seeds under ASan/UBSan); every suite name contains "Fault" so the CI leg
// can select the lot with `ctest --tests-regex Fault`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"
#include "soma/export.hpp"
#include "soma/namespaces.hpp"
#include "soma/service.hpp"
#include "soma/store.hpp"

namespace soma {
namespace {

using core::ClientReliability;
using core::Namespace;
using core::ServiceConfig;
using core::SomaClient;
using core::SomaService;
using core::TimedRecord;

datamodel::Node value_node(double v) {
  datamodel::Node node;
  node["v"].set(v);
  return node;
}

std::uint64_t matrix_seed() {
  if (const char* env = std::getenv("SOMA_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1234;
}

// ---------- FaultInjector semantics ----------

std::vector<int> drop_verdicts(net::FaultInjector& injector, int n) {
  const net::Address a = net::make_address(0, 1);
  const net::Address b = net::make_address(1, 1);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const SimTime at = SimTime::from_seconds(static_cast<double>(i));
    const auto verdict =
        injector.decide(0, 1, a, b, at, at + Duration::microseconds(2));
    out.push_back(verdict.drop ? 1 : 0);
  }
  return out;
}

TEST(FaultInjectorTest, SameSeedSameVerdicts) {
  net::FaultConfig config;
  config.seed = 42;
  config.default_link.drop_probability = 0.3;
  net::FaultInjector a(config);
  net::FaultInjector b(config);
  EXPECT_EQ(drop_verdicts(a, 300), drop_verdicts(b, 300));
  EXPECT_EQ(a.stats().random_drops, b.stats().random_drops);
  EXPECT_GT(a.stats().random_drops, 0u);
  EXPECT_LT(a.stats().random_drops, 300u);
}

TEST(FaultInjectorTest, DifferentSeedDifferentVerdicts) {
  net::FaultConfig config;
  config.default_link.drop_probability = 0.5;
  config.seed = 1;
  net::FaultInjector a(config);
  config.seed = 2;
  net::FaultInjector b(config);
  EXPECT_NE(drop_verdicts(a, 300), drop_verdicts(b, 300));
}

TEST(FaultInjectorTest, SchedulesConsumeNoRandomness) {
  // Adding crash windows and partitions for endpoints/nodes a link never
  // touches must not perturb that link's random drop pattern.
  net::FaultConfig config;
  config.seed = 7;
  config.default_link.drop_probability = 0.25;
  net::FaultInjector plain(config);
  net::FaultInjector scheduled(config);
  scheduled.crash_endpoint(net::make_address(9, 1), SimTime::zero(),
                           SimTime::from_seconds(1e6));
  scheduled.partition({7, 8}, SimTime::zero(), SimTime::from_seconds(1e6));
  EXPECT_EQ(drop_verdicts(plain, 300), drop_verdicts(scheduled, 300));
}

TEST(FaultInjectorTest, CrashWindowDropsBothDirections) {
  net::FaultInjector injector;
  const net::Address a = net::make_address(0, 1);
  const net::Address b = net::make_address(1, 1);
  injector.crash_endpoint(b, SimTime::from_seconds(5.0),
                          SimTime::from_seconds(10.0));

  auto at = [&](double send_s, double arrive_s) {
    return injector.decide(0, 1, a, b, SimTime::from_seconds(send_s),
                           SimTime::from_seconds(arrive_s));
  };
  // Arrival before the window: delivered.
  EXPECT_FALSE(at(4.9, 4.99).drop);
  // Arrival inside the window: receiver is down.
  const auto dropped = at(4.9, 5.0);
  EXPECT_TRUE(dropped.drop);
  EXPECT_EQ(dropped.cause, net::FaultInjector::Decision::Cause::kCrash);
  // `until` is exclusive: arrival at 10.0 is delivered again.
  EXPECT_FALSE(at(9.9, 10.0).drop);

  // Messages *sent by* a crashed endpoint are lost too.
  const auto from_down =
      injector.decide(1, 0, b, a, SimTime::from_seconds(6.0),
                      SimTime::from_seconds(6.1));
  EXPECT_TRUE(from_down.drop);
  EXPECT_EQ(injector.stats().crash_drops, 2u);
  EXPECT_EQ(injector.stats().random_drops, 0u);
}

TEST(FaultInjectorTest, PartitionCutsIslandBothWays) {
  net::FaultInjector injector;
  injector.partition({1}, SimTime::from_seconds(5.0),
                     SimTime::from_seconds(10.0));
  const net::Address n0 = net::make_address(0, 1);
  const net::Address n1 = net::make_address(1, 1);
  const net::Address n2 = net::make_address(2, 1);
  const SimTime inside = SimTime::from_seconds(6.0);

  EXPECT_TRUE(injector.decide(0, 1, n0, n1, inside, inside).drop);
  EXPECT_TRUE(injector.decide(1, 0, n1, n0, inside, inside).drop);
  // Links entirely outside the island are unaffected.
  EXPECT_FALSE(injector.decide(0, 2, n0, n2, inside, inside).drop);
  // The window end is exclusive (checked at send time).
  const SimTime after = SimTime::from_seconds(10.0);
  EXPECT_FALSE(injector.decide(0, 1, n0, n1, after, after).drop);
  EXPECT_EQ(injector.stats().partition_drops, 2u);
}

TEST(FaultInjectorTest, LoopbackExemptFromLinkFaultsButNotCrashes) {
  net::FaultConfig config;
  config.default_link.drop_probability = 1.0;
  net::FaultInjector injector(config);
  const net::Address a = net::make_address(3, 1);
  const net::Address b = net::make_address(3, 2);

  // Intra-node traffic never touches the wire: no random drops.
  EXPECT_FALSE(injector.decide(3, 3, a, b, SimTime::zero(), SimTime::zero())
                   .drop);

  // ... but a crashed process is dead to its neighbours too.
  injector.crash_endpoint(b, SimTime::zero(), SimTime::from_seconds(1.0));
  const auto verdict =
      injector.decide(3, 3, a, b, SimTime::zero(), SimTime::zero());
  EXPECT_TRUE(verdict.drop);
  EXPECT_EQ(verdict.cause, net::FaultInjector::Decision::Cause::kCrash);
}

TEST(FaultInjectorTest, SpikeDelaysWithoutDropping) {
  net::FaultConfig config;
  config.default_link.spike_probability = 1.0;
  config.default_link.spike_latency = Duration::milliseconds(1);
  net::FaultInjector injector(config);
  const auto verdict = injector.decide(0, 1, net::make_address(0, 1),
                                       net::make_address(1, 1),
                                       SimTime::zero(), SimTime::zero());
  EXPECT_FALSE(verdict.drop);
  EXPECT_EQ(verdict.extra_latency, Duration::milliseconds(1));
  EXPECT_EQ(injector.stats().latency_spikes, 1u);
  EXPECT_EQ(injector.stats().total_drops(), 0u);
}

// ---------- Network integration ----------

class FaultNetworkTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
};

TEST_F(FaultNetworkTest, DropsCountedPerEndpoint) {
  net::FaultConfig config;
  config.default_link.drop_probability = 1.0;
  net::FaultInjector& injector = network.install_faults(config);

  const net::Address src = net::make_address(0, 1);
  const net::Address dst = net::make_address(1, 1);
  int received = 0;
  network.bind(src, [](const net::Address&, std::vector<std::byte>) {});
  network.bind(dst, [&](const net::Address&, std::vector<std::byte>) {
    ++received;
  });
  network.send(src, dst, std::vector<std::byte>(64));
  network.send(src, dst, std::vector<std::byte>(64));
  simulation.run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.messages_dropped(), 2u);
  EXPECT_EQ(injector.stats().random_drops, 2u);
  const auto& drops = network.drops_by_endpoint();
  ASSERT_TRUE(drops.contains(dst));
  EXPECT_EQ(drops.at(dst), 2u);
}

TEST_F(FaultNetworkTest, SpikeDelaysDelivery) {
  net::FaultConfig config;
  config.default_link.spike_probability = 1.0;
  config.default_link.spike_latency = Duration::milliseconds(1);
  network.install_faults(config);

  const net::Address src = net::make_address(0, 1);
  const net::Address dst = net::make_address(1, 1);
  SimTime arrival;
  network.bind(src, [](const net::Address&, std::vector<std::byte>) {});
  network.bind(dst, [&](const net::Address&, std::vector<std::byte>) {
    arrival = simulation.now();
  });
  network.send(src, dst, {});
  simulation.run();
  // Base cross-node latency (2us for an empty payload) plus the spike.
  EXPECT_NEAR(arrival.to_seconds(), 1.002e-3, 1e-9);
}

TEST_F(FaultNetworkTest, LoopbackDeliveredThroughLinkFaultsAndPartitions) {
  // End-to-end pin of the fault.hpp contract: "Intra-node (loopback)
  // messages are exempt from link faults and partitions but not from
  // endpoint crashes." A service co-located with its client must keep
  // working through 100% cross-node loss AND a partition of its own node —
  // until the peer process itself crashes.
  net::FaultConfig config;
  config.default_link.drop_probability = 1.0;
  net::FaultInjector& injector = network.install_faults(config);
  injector.partition({3}, SimTime::zero(), SimTime::from_seconds(1e6));

  const net::Address a = net::make_address(3, 1);
  const net::Address b = net::make_address(3, 2);
  int received = 0;
  network.bind(a, [](const net::Address&, std::vector<std::byte>) {});
  network.bind(b, [&](const net::Address&, std::vector<std::byte>) {
    ++received;
  });
  network.send(a, b, std::vector<std::byte>(32));
  simulation.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.messages_dropped(), 0u);

  // The crashed endpoint is dead to its node-local neighbours too.
  injector.crash_endpoint(b, simulation.now(),
                          simulation.now() + Duration::seconds(1));
  network.send(a, b, std::vector<std::byte>(32));
  simulation.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.messages_dropped(), 1u);
  EXPECT_EQ(injector.stats().crash_drops, 1u);
}

struct NetRunOutcome {
  std::uint64_t events = 0;
  std::int64_t final_nanos = 0;
  std::uint64_t sent = 0;
  std::uint64_t dropped = 0;
  std::int64_t arrival_nanos = 0;
  bool operator==(const NetRunOutcome&) const = default;
};

NetRunOutcome run_plain_exchange(bool install_zero_injector) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  if (install_zero_injector) {
    network.install_faults(net::FaultConfig{});
  }
  const net::Address src = net::make_address(0, 1);
  const net::Address dst = net::make_address(1, 1);
  NetRunOutcome outcome;
  network.bind(src, [](const net::Address&, std::vector<std::byte>) {});
  network.bind(dst, [&](const net::Address&, std::vector<std::byte>) {
    outcome.arrival_nanos = simulation.now().nanos();
  });
  for (int i = 0; i < 4; ++i) {
    network.send(src, dst, std::vector<std::byte>(1000));
  }
  outcome.final_nanos = simulation.run().nanos();
  outcome.events = simulation.events_dispatched();
  outcome.sent = network.messages_sent();
  outcome.dropped = network.messages_dropped();
  return outcome;
}

TEST_F(FaultNetworkTest, ZeroProbabilityInjectorMatchesNoInjector) {
  // An installed injector with no probabilities and no schedules must leave
  // the run bit-identical to an uninjected network (the fig10/fig11
  // calibration contract).
  EXPECT_EQ(run_plain_exchange(false), run_plain_exchange(true));
}

// ---------- RPC retry / timeout edge cases ----------

class FaultRetryTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  static datamodel::Node payload(std::int64_t v) {
    datamodel::Node node;
    node["value"].set(v);
    return node;
  }
};

TEST_F(FaultRetryTest, BackoffIsBoundedByMaxTimeout) {
  net::RetryPolicy policy;
  policy.timeout = Duration::milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.max_timeout = Duration::milliseconds(25);
  EXPECT_EQ(policy.timeout_for(0), Duration::milliseconds(10));
  EXPECT_EQ(policy.timeout_for(1), Duration::milliseconds(20));
  EXPECT_EQ(policy.timeout_for(2), Duration::milliseconds(25));
  EXPECT_EQ(policy.timeout_for(3), Duration::milliseconds(25));

  policy.max_timeout = Duration::zero();  // uncapped
  EXPECT_EQ(policy.timeout_for(3), Duration::milliseconds(80));
}

TEST_F(FaultRetryTest, RetryExhaustionSurfacesError) {
  net::Engine client(network, net::make_address(1, 100));
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout = Duration::milliseconds(1);

  std::string error;
  int responses = 0;
  // Nothing is bound at the destination: every transmission vanishes.
  client.call(net::make_address(0, 100), "echo", payload(1),
              [&](datamodel::Node) { ++responses; }, policy,
              [&](const std::string& e) { error = e; });
  simulation.run();

  EXPECT_EQ(responses, 0);
  EXPECT_NE(error.find("timed out"), std::string::npos);
  EXPECT_EQ(client.stats().timeouts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().calls_failed, 1u);
  EXPECT_EQ(client.stats().responses_received, 0u);
}

TEST_F(FaultRetryTest, RetrySucceedsAfterTransientCrash) {
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  net::Engine server(network, net::make_address(0, 100));
  net::Engine client(network, net::make_address(1, 100));
  server.define("echo", [](const net::Address&, const datamodel::Node& args) {
    return args;
  });
  // Server unreachable for the first 5 ms: attempts 0 (t=0) and 1 (t=2ms)
  // are lost; attempt 2 (t=6ms) lands after recovery.
  injector.crash_endpoint(server.address(), SimTime::zero(),
                          SimTime::from_seconds(0.005));

  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.timeout = Duration::milliseconds(2);

  int responses = 0;
  int errors = 0;
  client.call(server.address(), "echo", payload(7),
              [&](datamodel::Node) { ++responses; }, policy,
              [&](const std::string&) { ++errors; });
  simulation.run();

  EXPECT_EQ(responses, 1);
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().calls_failed, 0u);
  EXPECT_EQ(injector.stats().crash_drops, 2u);
  EXPECT_EQ(server.stats().requests_handled, 1u);
}

TEST_F(FaultRetryTest, DuplicateResponsesSuppressedAndCounted) {
  // A slow (5 ms) server against a 1 ms timeout: all three attempts arrive
  // and are answered, but the caller must see exactly one completion and the
  // two late replies must be counted as duplicates.
  net::ServiceCost cost;
  cost.base = Duration::milliseconds(5);
  cost.per_kib = Duration::zero();
  net::Engine server(network, net::make_address(0, 100), cost);
  net::Engine client(network, net::make_address(1, 100));
  server.define("slow", [](const net::Address&, const datamodel::Node& args) {
    return args;
  });

  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout = Duration::milliseconds(1);

  int responses = 0;
  int errors = 0;
  client.call(server.address(), "slow", payload(9),
              [&](datamodel::Node) { ++responses; }, policy,
              [&](const std::string&) { ++errors; });
  simulation.run();

  EXPECT_EQ(responses, 1);
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(server.stats().requests_handled, 3u);
  EXPECT_EQ(server.stats().retried_requests, 2u);
  EXPECT_EQ(client.stats().duplicate_responses, 2u);
  EXPECT_EQ(client.stats().calls_failed, 0u);
}

struct EchoRunOutcome {
  std::uint64_t events = 0;
  std::int64_t final_nanos = 0;
  std::uint64_t client_bytes_out = 0;
  std::uint64_t server_bytes_in = 0;
  std::uint64_t server_bytes_out = 0;
  std::uint64_t responses = 0;
  std::uint64_t handled = 0;
  bool operator==(const EchoRunOutcome&) const = default;
};

EchoRunOutcome run_echo_burst(bool via_default_policy) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  net::Engine server(network, net::make_address(0, 100));
  net::Engine client(network, net::make_address(1, 100));
  server.define("echo", [](const net::Address&, const datamodel::Node& args) {
    return args;
  });
  for (int i = 0; i < 5; ++i) {
    datamodel::Node args;
    args["value"].set(std::int64_t{i});
    auto on_response = [](datamodel::Node) {};
    if (via_default_policy) {
      client.call(server.address(), "echo", std::move(args), on_response,
                  net::RetryPolicy{}, nullptr);
    } else {
      client.call(server.address(), "echo", std::move(args), on_response);
    }
  }
  EchoRunOutcome outcome;
  outcome.final_nanos = simulation.run().nanos();
  outcome.events = simulation.events_dispatched();
  outcome.client_bytes_out = client.stats().bytes_out;
  outcome.server_bytes_in = server.stats().bytes_in;
  outcome.server_bytes_out = server.stats().bytes_out;
  outcome.responses = client.stats().responses_received;
  outcome.handled = server.stats().requests_handled;
  return outcome;
}

TEST_F(FaultRetryTest, ZeroRetryPolicyMatchesLegacyBitForBit) {
  // The reliable call with the default (disabled) policy must produce the
  // exact same event count, timing and byte accounting as the legacy call:
  // frames stay byte-identical (attempt counter 0 = all-zero reserved byte)
  // and no timers are armed.
  const EchoRunOutcome legacy = run_echo_burst(false);
  const EchoRunOutcome reliable = run_echo_burst(true);
  EXPECT_EQ(legacy, reliable);
  EXPECT_EQ(legacy.responses, 5u);
}

// ---------- Client buffer-and-replay / failover ----------

struct ReplayRunOutcome {
  std::vector<double> values;       // per-record payload, series order
  std::vector<std::int64_t> times;  // per-record ingest time (ns)
  std::uint64_t publishes = 0;
  std::uint64_t replayed_at_service = 0;
  std::size_t records_in_window = 0;
  SomaClient::ClientStats client{};
};

ReplayRunOutcome run_replay_scenario(bool crash_collector) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 1;
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  if (crash_collector) {
    net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
    injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                            SimTime::from_seconds(25.0));
  }

  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability);

  // One publish every 2 s for 40 s; the outage swallows the 8 publishes at
  // t = 10, 12, ..., 24 s.
  for (int i = 0; i < 20; ++i) {
    simulation.schedule_at(SimTime::from_seconds(2.0 * (i + 1)),
                           [&client, i] {
                             client.publish("cn0001", value_node(i));
                           });
  }
  simulation.run();

  ReplayRunOutcome outcome;
  for (const TimedRecord* record :
       service.store().series(Namespace::kHardware, "cn0001")) {
    outcome.values.push_back(record->data.fetch_existing("v").as_float64());
    outcome.times.push_back(record->time.nanos());
  }
  outcome.publishes = service.publishes_received();
  outcome.replayed_at_service = service.replayed_publishes();
  outcome.records_in_window =
      service.store()
          .range(Namespace::kHardware, "cn0001", SimTime::from_seconds(9.5),
                 SimTime::from_seconds(25.5))
          .size();
  outcome.client = client.stats();
  return outcome;
}

TEST(FaultReplayTest, OutagePublishesReplayedInOrderWithOriginalTimestamps) {
  const ReplayRunOutcome faulty = run_replay_scenario(true);
  const ReplayRunOutcome clean = run_replay_scenario(false);

  // Nothing is lost: every publish reaches the store, in publish order.
  EXPECT_EQ(faulty.publishes, 20u);
  EXPECT_EQ(faulty.values, clean.values);

  // The 8 outage-window publishes arrived via replay and kept their
  // original publish timestamps exactly.
  EXPECT_EQ(faulty.replayed_at_service, 8u);
  EXPECT_EQ(clean.replayed_at_service, 0u);
  EXPECT_EQ(faulty.client.replayed, 8u);
  EXPECT_EQ(faulty.client.buffered, 8u);
  EXPECT_EQ(faulty.client.publish_failures, 1u);
  ASSERT_EQ(faulty.times.size(), 20u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(faulty.times[4 + i],
              SimTime::from_seconds(10.0 + 2.0 * i).nanos())
        << "replayed record " << i;
  }

  // Replay preserves the per-source sorted-time invariant DataStore::range
  // relies on, and ingest times stay within network latency of the no-fault
  // run (replayed records carry publish time; live ones add microseconds).
  for (std::size_t i = 1; i < faulty.times.size(); ++i) {
    EXPECT_LE(faulty.times[i - 1], faulty.times[i]);
  }
  for (std::size_t i = 0; i < faulty.times.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(faulty.times[i]),
                static_cast<double>(clean.times[i]), 1e6);  // 1 ms
  }

  // A range query over the outage window sees the same records either way.
  EXPECT_EQ(faulty.records_in_window, clean.records_in_window);
  EXPECT_EQ(faulty.records_in_window, 8u);
}

TEST(FaultReplayTest, BufferOverflowEvictsOldest) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  injector.crash_endpoint(ranks[0], SimTime::zero(),
                          SimTime::from_seconds(1e6));

  ClientReliability reliability;
  reliability.retry.max_attempts = 1;
  reliability.retry.timeout = Duration::milliseconds(10);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  reliability.max_buffered = 4;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability);

  for (int i = 0; i < 6; ++i) {
    simulation.schedule_at(SimTime::from_seconds(1.0 * (i + 1)),
                           [&client, i] {
                             client.publish("cn0001", value_node(i));
                           });
  }
  // The collector never recovers; cut the run short of the probe loop.
  simulation.run_until(SimTime::from_seconds(10.0));

  EXPECT_TRUE(client.degraded());
  EXPECT_EQ(client.buffered_pending(), 4u);
  EXPECT_EQ(client.stats().buffered, 6u);
  EXPECT_EQ(client.stats().dropped_overflow, 2u);
  EXPECT_EQ(service.publishes_received(), 0u);
}

TEST(FaultFailoverTest, PublishesRedirectToLiveRank) {
  // Two ranks; crash one of them and publish twice. In the run where the
  // crashed rank owns the source, the first publish exhausts its retries and
  // the second fails over to the surviving rank; in the other run nothing is
  // affected. Source affinity hashing is platform-stable, so exactly one of
  // the two runs fails over.
  std::uint64_t failovers = 0;
  std::uint64_t failures = 0;
  std::uint64_t stored = 0;
  for (int crashed_rank = 0; crashed_rank < 2; ++crashed_rank) {
    sim::Simulation simulation;
    net::Network network{simulation, net::NetworkConfig{}};
    ServiceConfig service_config;
    service_config.namespaces = {Namespace::kHardware};
    service_config.ranks_per_namespace = 2;
    SomaService service(network, {0}, service_config);
    const auto& ranks = service.instance(Namespace::kHardware).ranks;
    net::FaultInjector& injector =
        network.install_faults(net::FaultConfig{});
    injector.crash_endpoint(ranks[static_cast<std::size_t>(crashed_rank)],
                            SimTime::zero(), SimTime::from_seconds(1e6));

    ClientReliability reliability;
    reliability.retry.max_attempts = 2;
    reliability.retry.timeout = Duration::milliseconds(10);
    reliability.failover = true;
    SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                      reliability);

    client.publish("cn0042", value_node(1.0));
    simulation.schedule_at(SimTime::from_seconds(1.0), [&client] {
      client.publish("cn0042", value_node(2.0));
    });
    simulation.run_until(SimTime::from_seconds(3.0));

    failovers += client.stats().failovers;
    failures += client.stats().publish_failures;
    stored += service.publishes_received();
  }
  EXPECT_EQ(failovers, 1u);
  EXPECT_EQ(failures, 1u);
  // 2 publishes in the clean run + the failed-over one in the crashed run.
  EXPECT_EQ(stored, 3u);
}

// ---------- Record conservation under crash-and-replay ----------

// With crash windows only (no random drops, so no at-least-once duplicates),
// every published record is exactly one of: stored on the service, evicted
// from the client's replay buffer, or still parked in it. The per-shard
// export totals must agree with the store.

class FaultConservationTest
    : public ::testing::TestWithParam<core::StorageBackendKind> {};

void expect_export_matches_store(const SomaService& service) {
  const datamodel::Node report = core::export_shard_report(service.store());
  std::uint64_t exported = 0;
  const datamodel::Node& ns_entry = report.fetch_existing("hardware");
  for (int i = 0; i < service.store().shard_count(); ++i) {
    exported += static_cast<std::uint64_t>(
        ns_entry.fetch_existing("shard_" + std::to_string(i))
            .fetch_existing("records")
            .as_int64());
  }
  EXPECT_EQ(exported, service.store().total_records());
}

TEST_P(FaultConservationTest, SinglePublishesConservedAcrossCrash) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.storage.backend = GetParam();
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  // Down for 15 s; the 4-slot buffer cannot hold the ~15 window publishes.
  injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                          SimTime::from_seconds(25.0));

  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  reliability.max_buffered = 4;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability);

  for (int i = 0; i < 40; ++i) {
    simulation.schedule_at(SimTime::from_seconds(1.0 * (i + 1)),
                           [&client, i] {
                             client.publish("cn0001", value_node(i));
                           });
  }
  simulation.run();

  const SomaClient::ClientStats stats = client.stats();
  EXPECT_EQ(stats.published, 40u);
  EXPECT_GT(stats.dropped_overflow, 0u);
  EXPECT_EQ(stats.dropped_batch_records, 0u);
  EXPECT_EQ(client.buffered_pending(), 0u);  // outage ended; all replayed
  EXPECT_EQ(service.store().total_records() + stats.dropped_overflow, 40u);
  EXPECT_EQ(service.publishes_received(), service.store().total_records());
  expect_export_matches_store(service);
}

TEST_P(FaultConservationTest, BatchedPublishesConservedAcrossCrash) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.storage.backend = GetParam();
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                          SimTime::from_seconds(25.0));

  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  reliability.max_buffered = 6;
  core::BatchingConfig batching;
  batching.max_records = 4;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability, batching);

  for (int i = 0; i < 80; ++i) {
    simulation.schedule_at(SimTime::from_seconds(0.5 * (i + 1)),
                           [&client, i] {
                             client.publish("cn0001", value_node(i));
                           });
  }
  simulation.schedule_at(SimTime::from_seconds(41.0),
                         [&client] { client.flush_batches(); });
  simulation.run();

  // Failed batches disperse into the replay buffer record by record; buffer
  // eviction counts them separately from single-publish overflow.
  const SomaClient::ClientStats stats = client.stats();
  EXPECT_EQ(stats.published, 80u);
  EXPECT_GT(stats.batches_sent, 0u);
  EXPECT_GT(stats.dropped_batch_records, 0u);
  EXPECT_EQ(client.buffered_pending(), 0u);
  EXPECT_EQ(service.store().total_records() + stats.dropped_batch_records +
                stats.dropped_overflow,
            80u);
  EXPECT_EQ(service.publishes_received(), service.store().total_records());
  expect_export_matches_store(service);
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultConservationTest,
                         ::testing::Values(core::StorageBackendKind::kMap,
                                           core::StorageBackendKind::kLog),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

// ---------- Failure matrix: {drop rate x crash schedule x retry policy} ----

struct MatrixOutcome {
  std::uint64_t events = 0;
  std::int64_t final_nanos = 0;
  std::uint64_t publishes = 0;
  std::uint64_t replayed_at_service = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::map<net::Address, std::uint64_t> drops_by_endpoint;
  std::uint64_t injector_drops = 0;
  std::uint64_t spikes = 0;
  std::uint64_t published = 0;
  std::uint64_t acked = 0;
  std::uint64_t failures = 0;
  std::uint64_t buffered = 0;
  std::uint64_t replayed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  bool operator==(const MatrixOutcome&) const = default;
};

MatrixOutcome run_matrix_case(double drop_probability, bool crash_schedule,
                              bool retry_enabled, std::uint64_t seed) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  net::FaultConfig fault_config;
  fault_config.seed = seed;
  fault_config.default_link.drop_probability = drop_probability;
  fault_config.default_link.spike_probability =
      drop_probability > 0.0 ? 0.05 : 0.0;
  net::FaultInjector& injector = network.install_faults(fault_config);

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  if (crash_schedule) {
    injector.crash_endpoint(ranks[0], SimTime::from_seconds(5.0),
                            SimTime::from_seconds(8.0));
    injector.crash_endpoint(ranks[1], SimTime::from_seconds(15.0),
                            SimTime::from_seconds(17.0));
  }

  ClientReliability reliability;
  if (retry_enabled) {
    reliability.retry.max_attempts = 3;
    reliability.retry.timeout = Duration::milliseconds(20);
    reliability.buffer_on_failure = true;
    reliability.probe_period = Duration::seconds(1);
  }
  std::vector<std::unique_ptr<SomaClient>> clients;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(std::make_unique<SomaClient>(
        network, NodeId(c + 1), 6000, Namespace::kHardware, ranks,
        reliability));
  }
  for (int c = 0; c < 3; ++c) {
    const std::string source = "cn000" + std::to_string(c);
    SomaClient* client = clients[static_cast<std::size_t>(c)].get();
    for (int i = 0; i < 60; ++i) {
      simulation.schedule_at(SimTime::from_seconds(0.5 * (i + 1)),
                             [client, source, i] {
                               client->publish(source, value_node(i));
                             });
    }
  }

  MatrixOutcome outcome;
  outcome.final_nanos = simulation.run_until(SimTime::from_seconds(60.0))
                            .nanos();
  outcome.events = simulation.events_dispatched();
  outcome.publishes = service.publishes_received();
  outcome.replayed_at_service = service.replayed_publishes();
  outcome.messages_sent = network.messages_sent();
  outcome.messages_dropped = network.messages_dropped();
  outcome.drops_by_endpoint = network.drops_by_endpoint();
  outcome.injector_drops = injector.stats().total_drops();
  outcome.spikes = injector.stats().latency_spikes;
  for (const auto& client : clients) {
    outcome.published += client->stats().published;
    outcome.acked += client->stats().acked;
    outcome.failures += client->stats().publish_failures;
    outcome.buffered += client->stats().buffered;
    outcome.replayed += client->stats().replayed;
    outcome.failovers += client->stats().failovers;
    outcome.retries += client->engine_stats().retries;
  }
  return outcome;
}

using MatrixParam = std::tuple<double, int, int>;

class FaultMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

std::string matrix_case_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto [drop, crash, retry] = info.param;
  return "drop" + std::to_string(static_cast<int>(drop * 100)) +
         (crash ? "_crash" : "_nocrash") + (retry ? "_retry" : "_noretry");
}

TEST_P(FaultMatrixTest, SameSeedRunsAreBitIdentical) {
  const auto [drop, crash, retry] = GetParam();
  const std::uint64_t seed = matrix_seed() + static_cast<std::uint64_t>(
      crash * 2 + retry + static_cast<int>(drop * 100) * 4);

  const MatrixOutcome first =
      run_matrix_case(drop, crash != 0, retry != 0, seed);
  const MatrixOutcome second =
      run_matrix_case(drop, crash != 0, retry != 0, seed);

  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.final_nanos, second.final_nanos);
  EXPECT_EQ(first.publishes, second.publishes);
  EXPECT_EQ(first.drops_by_endpoint, second.drops_by_endpoint);
  EXPECT_EQ(first, second);

  // Sanity: every publish was attempted, and the fault knobs actually bit.
  EXPECT_EQ(first.published, 180u);
  if (drop == 0.0 && !crash) {
    EXPECT_EQ(first.acked, 180u);
    EXPECT_EQ(first.injector_drops, 0u);
  } else {
    EXPECT_GT(first.injector_drops, 0u);
    EXPECT_EQ(first.messages_dropped,
              first.injector_drops);  // no unbound-address drops here
  }
  if (retry != 0 && drop == 0.0) {
    // Buffer-and-replay recovers every crash-window publish. (With random
    // drops the service may ingest more than 180: a lost *ack* makes the
    // client retransmit an already-stored record — at-least-once semantics.)
    EXPECT_EQ(first.publishes, 180u);
  } else if (retry != 0) {
    EXPECT_GE(first.publishes, 178u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrixTest,
    ::testing::Combine(::testing::Values(0.0, 0.02, 0.1),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)),
    matrix_case_name);

}  // namespace
}  // namespace soma
