// Unit tests for the simulated fabric and the RPC engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "net/wire.hpp"
#include "sim/simulation.hpp"

namespace soma::net {
namespace {

TEST(AddressTest, RoundTrip) {
  const Address address = make_address(17, 9001);
  EXPECT_EQ(address, "sim://node17:9001");
  EXPECT_EQ(address_node(address), 17);
}

TEST(AddressTest, MalformedThrows) {
  EXPECT_THROW(address_node("tcp://node1:5"), ConfigError);
  EXPECT_THROW(address_node("sim://node1"), ConfigError);
  EXPECT_THROW(address_node("sim://nodeX:5"), ConfigError);
}

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  NetworkConfig config{};
  Network network{simulation, config};
};

TEST_F(NetworkTest, DeliversWithLatency) {
  std::vector<std::byte> received;
  SimTime arrival;
  network.bind(make_address(1, 1), [&](const Address&,
                                       std::vector<std::byte> payload) {
    received = std::move(payload);
    arrival = simulation.now();
  });
  std::vector<std::byte> payload(1000);
  network.bind(make_address(0, 1), [](const Address&,
                                      std::vector<std::byte>) {});
  network.send(make_address(0, 1), make_address(1, 1), payload);
  simulation.run();
  EXPECT_EQ(received.size(), 1000u);
  // latency 2us + 1000B / 12.5GB/s = 2us + 0.08us
  EXPECT_NEAR(arrival.to_seconds(), 2.08e-6, 1e-8);
}

TEST_F(NetworkTest, LoopbackIsFaster) {
  SimTime arrival;
  network.bind(make_address(0, 2), [&](const Address&,
                                       std::vector<std::byte>) {
    arrival = simulation.now();
  });
  network.bind(make_address(0, 1), [](const Address&,
                                      std::vector<std::byte>) {});
  network.send(make_address(0, 1), make_address(0, 2),
               std::vector<std::byte>(1 << 20));  // 1 MiB, free on loopback
  simulation.run();
  EXPECT_NEAR(arrival.to_seconds(), 0.5e-6, 1e-9);
}

TEST_F(NetworkTest, NicSerializesBackToBackSends) {
  std::vector<double> arrivals;
  network.bind(make_address(1, 1), [&](const Address&,
                                       std::vector<std::byte>) {
    arrivals.push_back(simulation.now().to_seconds());
  });
  network.bind(make_address(0, 1), [](const Address&,
                                      std::vector<std::byte>) {});
  // Two 12.5 KB messages: each takes 1us of wire time.
  const std::vector<std::byte> payload(12500);
  network.send(make_address(0, 1), make_address(1, 1), payload);
  network.send(make_address(0, 1), make_address(1, 1), payload);
  simulation.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second message starts only after the first's transfer finished.
  EXPECT_NEAR(arrivals[1] - arrivals[0], 1e-6, 1e-8);
}

TEST_F(NetworkTest, DoubleBindThrows) {
  network.bind(make_address(0, 1), [](const Address&, std::vector<std::byte>) {});
  EXPECT_THROW(
      network.bind(make_address(0, 1),
                   [](const Address&, std::vector<std::byte>) {}),
      ConfigError);
}

TEST_F(NetworkTest, UnboundDestinationDropsMessage) {
  network.bind(make_address(0, 1), [](const Address&, std::vector<std::byte>) {});
  network.send(make_address(0, 1), make_address(5, 5), {});
  simulation.run();
  EXPECT_EQ(network.messages_dropped(), 1u);
}

TEST_F(NetworkTest, UnbindStopsDelivery) {
  int received = 0;
  network.bind(make_address(1, 1), [&](const Address&,
                                       std::vector<std::byte>) { ++received; });
  network.bind(make_address(0, 1), [](const Address&, std::vector<std::byte>) {});
  network.send(make_address(0, 1), make_address(1, 1), {});
  network.unbind(make_address(1, 1));
  simulation.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DropsCountedPerDestination) {
  // In-flight messages lost to an unbind (or an unbound destination) are
  // attributed to the destination address, not just a global counter.
  const Address gone = make_address(1, 1);
  const Address alive = make_address(2, 1);
  network.bind(gone, [](const Address&, std::vector<std::byte>) {});
  network.bind(alive, [](const Address&, std::vector<std::byte>) {});
  network.bind(make_address(0, 1), [](const Address&, std::vector<std::byte>) {});
  network.send(make_address(0, 1), gone, {});
  network.send(make_address(0, 1), gone, {});
  network.send(make_address(0, 1), alive, {});
  network.unbind(gone);
  simulation.run();

  EXPECT_EQ(network.messages_dropped(), 2u);
  const auto& drops = network.drops_by_endpoint();
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops.at(gone), 2u);
}

TEST_F(NetworkTest, Accounting) {
  network.bind(make_address(1, 1), [](const Address&, std::vector<std::byte>) {});
  network.bind(make_address(0, 1), [](const Address&, std::vector<std::byte>) {});
  network.send(make_address(0, 1), make_address(1, 1),
               std::vector<std::byte>(100));
  network.send(make_address(0, 1), make_address(1, 1),
               std::vector<std::byte>(50));
  EXPECT_EQ(network.messages_sent(), 2u);
  EXPECT_EQ(network.bytes_sent(), 150u);
}

// ---------- Wire format ----------

std::vector<std::byte> encode_frame(wire::Kind kind, std::uint64_t id,
                                    std::string_view rpc,
                                    const datamodel::Node& body) {
  std::vector<std::byte> frame;
  frame.reserve(wire::frame_size(kind, rpc.size(), body.packed_size()));
  wire::append_header(frame, kind, id, rpc);
  body.pack(frame);
  return frame;
}

TEST(WireTest, RequestHeaderRoundTrip) {
  datamodel::Node body;
  body["value"].set(std::int64_t{42});
  body["name"].set("publish");
  const auto frame =
      encode_frame(wire::Kind::kRequest, 0xDEADBEEFCAFEULL, "soma.push", body);

  const wire::FrameHeader header = wire::decode_header(frame);
  EXPECT_EQ(header.kind, wire::Kind::kRequest);
  EXPECT_EQ(header.request_id, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(header.rpc, "soma.push");
  const datamodel::Node back = datamodel::Node::unpack(header.body);
  EXPECT_EQ(back.fetch_existing("value").as_int64(), 42);
  EXPECT_EQ(back.fetch_existing("name").as_string(), "publish");
}

TEST(WireTest, ResponseHeaderRoundTrip) {
  datamodel::Node body;
  body["ok"].set(std::int64_t{1});
  const auto frame = encode_frame(wire::Kind::kResponse, 7, {}, body);

  const wire::FrameHeader header = wire::decode_header(frame);
  EXPECT_EQ(header.kind, wire::Kind::kResponse);
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_TRUE(header.rpc.empty());
  EXPECT_EQ(datamodel::Node::unpack(header.body).fetch_existing("ok").as_int64(),
            1);
}

TEST(WireTest, FrameSizeMatchesLegacyEnvelopeBytes) {
  // The figure benches are calibrated on the legacy envelope byte counts:
  // 57 + rpc_len + body for requests, 45 + body for responses. The framed
  // format must occupy exactly the same number of simulated bytes.
  datamodel::Node body;
  body["stat"].set(std::vector<std::int64_t>{1, 2, 3, 4, 5, 6});
  const std::size_t body_bytes = body.packed_size();
  const std::string rpc = "soma.publish";

  const auto request = encode_frame(wire::Kind::kRequest, 1, rpc, body);
  EXPECT_EQ(request.size(), 57u + rpc.size() + body_bytes);
  EXPECT_EQ(request.size(),
            wire::frame_size(wire::Kind::kRequest, rpc.size(), body_bytes));

  const auto response = encode_frame(wire::Kind::kResponse, 1, {}, body);
  EXPECT_EQ(response.size(), 45u + body_bytes);
  EXPECT_EQ(response.size(),
            wire::frame_size(wire::Kind::kResponse, 0, body_bytes));
}

TEST(WireTest, TruncatedFramesThrow) {
  datamodel::Node body;
  body["value"].set(std::int64_t{9});
  const auto frame = encode_frame(wire::Kind::kRequest, 3, "echo", body);
  // Any strict header prefix must be rejected; truncating into the body is
  // caught by Node::unpack downstream, not by decode_header.
  const std::size_t header_bytes = wire::kFixedHeaderBytes + 4;  // + rpc len
  for (std::size_t n = 0; n < header_bytes; ++n) {
    EXPECT_THROW((void)wire::decode_header(
                     std::span<const std::byte>(frame.data(), n)),
                 LookupError)
        << "prefix of " << n << " bytes accepted";
  }
}

TEST(WireTest, BadMagicThrows) {
  datamodel::Node body;
  auto frame = encode_frame(wire::Kind::kRequest, 3, "echo", body);
  frame[0] = std::byte{'X'};
  EXPECT_THROW((void)wire::decode_header(frame), LookupError);
}

TEST(WireTest, UnknownKindThrows) {
  datamodel::Node body;
  auto frame = encode_frame(wire::Kind::kRequest, 3, "echo", body);
  frame[4] = std::byte{2};  // kind field: only 0 and 1 are defined
  EXPECT_THROW((void)wire::decode_header(frame), LookupError);
}

TEST(WireTest, OversizedRpcLengthThrows) {
  datamodel::Node body;
  auto frame = encode_frame(wire::Kind::kRequest, 3, "echo", body);
  // Corrupt the rpc length to point past the end of the frame.
  frame[13] = std::byte{0xFF};
  frame[14] = std::byte{0xFF};
  frame[15] = std::byte{0xFF};
  frame[16] = std::byte{0xFF};
  EXPECT_THROW((void)wire::decode_header(frame), LookupError);
}

TEST(WireTest, RandomGarbageNeverCrashes) {
  // decode_header on arbitrary bytes must either succeed or throw — never
  // read out of bounds. (Run under ASan/UBSan in CI via SOMA_SANITIZE.)
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> junk(rng.uniform_index(64));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniform_index(256));
    }
    try {
      (void)wire::decode_header(junk);
    } catch (const LookupError&) {
      // expected for almost all inputs
    }
  }
}

TEST(WireTest, RandomBodiesRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    datamodel::Node body;
    const int leaves = static_cast<int>(rng.uniform_index(8));
    for (int i = 0; i < leaves; ++i) {
      body["leaf" + std::to_string(i)].set(
          static_cast<std::int64_t>(rng.next_u64() >> 1));
    }
    const std::uint64_t id = rng.next_u64();
    const auto kind =
        rng.uniform_index(2) == 0 ? wire::Kind::kRequest : wire::Kind::kResponse;
    const std::string rpc =
        kind == wire::Kind::kRequest
            ? std::string(rng.uniform_index(24), 'r')
            : std::string{};

    const auto frame = encode_frame(kind, id, rpc, body);
    const wire::FrameHeader header = wire::decode_header(frame);
    ASSERT_EQ(header.kind, kind);
    ASSERT_EQ(header.request_id, id);
    ASSERT_EQ(header.rpc, rpc);
    ASSERT_TRUE(datamodel::Node::unpack(header.body) == body);
  }
}

// ---------- RPC engine ----------

class RpcTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  Network network{simulation, NetworkConfig{}};
};

datamodel::Node make_payload(std::int64_t value) {
  datamodel::Node node;
  node["value"].set(value);
  return node;
}

TEST_F(RpcTest, CallInvokesHandlerAndReturnsResponse) {
  Engine server(network, make_address(0, 100));
  Engine client(network, make_address(1, 100));

  server.define("echo", [](const Address&, const datamodel::Node& args) {
    datamodel::Node reply;
    reply["echoed"].set(args.fetch_existing("value").as_int64() * 2);
    return reply;
  });

  std::int64_t result = 0;
  client.call(server.address(), "echo", make_payload(21),
              [&](datamodel::Node reply) {
                result = reply.fetch_existing("echoed").as_int64();
              });
  simulation.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(server.stats().requests_handled, 1u);
  EXPECT_EQ(client.stats().responses_received, 1u);
}

TEST_F(RpcTest, CallerAddressPassedToHandler) {
  Engine server(network, make_address(0, 100));
  Engine client(network, make_address(3, 100));
  Address seen;
  server.define("who", [&](const Address& caller, const datamodel::Node&) {
    seen = caller;
    return datamodel::Node{};
  });
  client.call(server.address(), "who", {});
  simulation.run();
  EXPECT_EQ(seen, client.address());
}

TEST_F(RpcTest, UnknownRpcReturnsError) {
  Engine server(network, make_address(0, 100));
  Engine client(network, make_address(1, 100));
  datamodel::Node reply;
  client.call(server.address(), "nope", {},
              [&](datamodel::Node r) { reply = std::move(r); });
  simulation.run();
  EXPECT_TRUE(reply.has_child("error"));
}

TEST_F(RpcTest, DuplicateRpcNameThrows) {
  Engine server(network, make_address(0, 100));
  server.define("x", [](const Address&, const datamodel::Node&) {
    return datamodel::Node{};
  });
  EXPECT_THROW(server.define("x",
                             [](const Address&, const datamodel::Node&) {
                               return datamodel::Node{};
                             }),
               ConfigError);
}

TEST_F(RpcTest, FireAndForgetStillCountsAck) {
  Engine server(network, make_address(0, 100));
  Engine client(network, make_address(1, 100));
  server.define("noop", [](const Address&, const datamodel::Node&) {
    return datamodel::Node{};
  });
  client.call(server.address(), "noop", {});  // no callback
  simulation.run();
  EXPECT_EQ(server.stats().requests_handled, 1u);
  EXPECT_EQ(client.stats().responses_received, 1u);
}

TEST_F(RpcTest, SerialServiceQueuesRequests) {
  // With base cost 1ms, 5 near-simultaneous requests should finish ~5ms of
  // service time later, and queueing delay must accumulate.
  ServiceCost cost;
  cost.base = Duration::milliseconds(1);
  cost.per_kib = Duration::zero();
  Engine server(network, make_address(0, 100), cost);
  Engine client(network, make_address(1, 100));
  server.define("work", [](const Address&, const datamodel::Node&) {
    return datamodel::Node{};
  });

  int acks = 0;
  SimTime last_ack;
  for (int i = 0; i < 5; ++i) {
    client.call(server.address(), "work", make_payload(i),
                [&](datamodel::Node) {
                  ++acks;
                  last_ack = simulation.now();
                });
  }
  simulation.run();
  EXPECT_EQ(acks, 5);
  EXPECT_GE(last_ack.to_seconds(), 5e-3);
  EXPECT_GT(server.stats().total_queue_delay, Duration::zero());
  EXPECT_GE(server.stats().max_queue_delay, Duration::milliseconds(3));
}

TEST_F(RpcTest, ServiceCostScalesWithPayload) {
  ServiceCost cost;
  EXPECT_EQ(cost.cost_for(0), cost.base);
  EXPECT_GT(cost.cost_for(10240), cost.cost_for(1024));
  const Duration one_kib = cost.cost_for(1024);
  EXPECT_EQ(one_kib, cost.base + cost.per_kib);
}

TEST_F(RpcTest, ByteAccounting) {
  Engine server(network, make_address(0, 100));
  Engine client(network, make_address(1, 100));
  server.define("x", [](const Address&, const datamodel::Node&) {
    return datamodel::Node{};
  });
  client.call(server.address(), "x", make_payload(7));
  simulation.run();
  EXPECT_GT(client.stats().bytes_out, 0u);
  EXPECT_EQ(server.stats().bytes_in, client.stats().bytes_out);
  EXPECT_GT(server.stats().bytes_out, 0u);
}

TEST_F(RpcTest, EngineUnbindsOnDestruction) {
  {
    Engine server(network, make_address(0, 100));
  }
  // Address reusable after destruction.
  Engine again(network, make_address(0, 100));
  SUCCEED();
}

TEST_F(RpcTest, ManyConcurrentClients) {
  ServiceCost cost;
  cost.base = Duration::microseconds(100);
  Engine server(network, make_address(0, 100), cost);
  server.define("inc", [](const Address&, const datamodel::Node& args) {
    datamodel::Node reply;
    reply["v"].set(args.fetch_existing("value").as_int64() + 1);
    return reply;
  });

  std::vector<std::unique_ptr<Engine>> clients;
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    clients.push_back(
        std::make_unique<Engine>(network, make_address(i % 5 + 1, 200 + i)));
    clients.back()->call(server.address(), "inc", make_payload(i),
                         [&, i](datamodel::Node reply) {
                           if (reply.fetch_existing("v").as_int64() == i + 1) {
                             ++correct;
                           }
                         });
  }
  simulation.run();
  EXPECT_EQ(correct, 20);
  EXPECT_EQ(server.stats().requests_handled, 20u);
}

}  // namespace
}  // namespace soma::net
