// Tests for the extension features: JSON parsing, store export/import, the
// application-instrumentation API, bulk (RDMA) ingest, anomaly detection,
// and the least-utilized placement policy.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/anomaly.hpp"
#include "common/error.hpp"
#include "rp/scheduler.hpp"
#include "soma/app_instrument.hpp"
#include "soma/export.hpp"
#include "soma/service.hpp"

namespace soma {
namespace {

// ---------- JSON parsing ----------

TEST(JsonParseTest, Scalars) {
  using datamodel::Node;
  EXPECT_EQ(Node::parse_json("42").as_int64(), 42);
  EXPECT_EQ(Node::parse_json("-7").as_int64(), -7);
  EXPECT_DOUBLE_EQ(Node::parse_json("2.5").as_float64(), 2.5);
  EXPECT_DOUBLE_EQ(Node::parse_json("1e3").as_float64(), 1000.0);
  EXPECT_EQ(Node::parse_json("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(Node::parse_json("null").is_empty());
}

TEST(JsonParseTest, StringEscapes) {
  const auto node = datamodel::Node::parse_json(R"("a\"b\\c\nd")");
  EXPECT_EQ(node.as_string(), "a\"b\\c\nd");
}

TEST(JsonParseTest, Arrays) {
  using datamodel::Node;
  EXPECT_EQ(Node::parse_json("[1,2,3]").as_int64_array(),
            (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(Node::parse_json("[1, 2.5]").as_float64_array(),
            (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(Node::parse_json("[]").as_int64_array().size(), 0u);
}

TEST(JsonParseTest, NestedObjects) {
  const auto node = datamodel::Node::parse_json(
      R"({"a":{"b":1,"c":"x"},"d":[1,2]})");
  EXPECT_EQ(node.fetch_existing("a/b").as_int64(), 1);
  EXPECT_EQ(node.fetch_existing("a/c").as_string(), "x");
  EXPECT_EQ(node.fetch_existing("d").as_int64_array().size(), 2u);
}

TEST(JsonParseTest, RoundTripsToJson) {
  datamodel::Node original;
  original.fetch("PROC/cn0001/stat/cpu")
      .set(std::vector<std::int64_t>{1, 2, 3, 4, 5, 6});
  original.fetch("PROC/cn0001/util").set(0.25);
  original.fetch("PROC/cn0001/host").set("cn0001");
  const auto parsed = datamodel::Node::parse_json(original.to_json());
  EXPECT_TRUE(parsed == original);
  // Pretty-printed JSON parses too.
  const auto pretty = datamodel::Node::parse_json(original.to_json(2));
  EXPECT_TRUE(pretty == original);
}

TEST(JsonParseTest, MalformedInputThrows) {
  using datamodel::Node;
  EXPECT_THROW(Node::parse_json("{"), LookupError);
  EXPECT_THROW(Node::parse_json("{\"a\":}"), LookupError);
  EXPECT_THROW(Node::parse_json("[1,\"x\"]"), LookupError);
  EXPECT_THROW(Node::parse_json("42 junk"), LookupError);
  EXPECT_THROW(Node::parse_json("\"unterminated"), LookupError);
  EXPECT_THROW(Node::parse_json(""), LookupError);
}

// ---------- store export / import ----------

core::DataStore populated_store() {
  core::DataStore store;
  datamodel::Node hw;
  hw["cn0001"]["cpu_utilization"].set(0.5);
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(30.0), hw);
  datamodel::Node wf;
  wf["summary"]["tasks_done"].set(std::int64_t{3});
  store.append(core::Namespace::kWorkflow, "rp_monitor",
               SimTime::from_seconds(60.0), wf);
  datamodel::Node hw2;
  hw2["cn0001"]["cpu_utilization"].set(0.7);
  store.append(core::Namespace::kHardware, "cn0001",
               SimTime::from_seconds(60.0), hw2);
  return store;
}

TEST(ExportTest, RoundTrip) {
  const core::DataStore original = populated_store();
  std::stringstream stream;
  EXPECT_EQ(core::export_store(original, stream), 3u);

  core::DataStore restored;
  EXPECT_EQ(core::import_store(restored, stream), 3u);
  EXPECT_EQ(restored.total_records(), 3u);
  const auto series =
      restored.series(core::Namespace::kHardware, "cn0001");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0]->time, SimTime::from_seconds(30.0));
  EXPECT_DOUBLE_EQ(
      series[1]->data.fetch_existing("cn0001/cpu_utilization").as_float64(),
      0.7);
  EXPECT_EQ(restored
                .latest(core::Namespace::kWorkflow, "rp_monitor")
                ->data.fetch_existing("summary/tasks_done")
                .as_int64(),
            3);
}

TEST(ExportTest, TruncatedFinalLineTolerated) {
  const core::DataStore original = populated_store();
  std::stringstream stream;
  core::export_store(original, stream);
  std::string text = stream.str();
  text.resize(text.size() - 10);  // chop the end of the last record

  std::stringstream truncated(text);
  core::DataStore restored;
  EXPECT_EQ(core::import_store(restored, truncated), 2u);
}

TEST(ExportTest, MalformedLineThrows) {
  std::stringstream bad("{\"ns\":\"hardware\",\"source\":1}\n");
  core::DataStore store;
  EXPECT_THROW(core::import_store(store, bad), LookupError);
}

TEST(ExportTest, FileRoundTrip) {
  const core::DataStore original = populated_store();
  const std::string path = ::testing::TempDir() + "/soma_export_test.jsonl";
  EXPECT_EQ(core::export_store_to_file(original, path), 3u);
  core::DataStore restored;
  EXPECT_EQ(core::import_store_from_file(restored, path), 3u);
  EXPECT_THROW(core::import_store_from_file(restored, "/nonexistent/x"),
               ConfigError);
}

// ---------- application instrumentation ----------

class AppInstrumentTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  core::SomaService service{network, {0}};
};

TEST_F(AppInstrumentTest, CommitPublishesBufferedMetrics) {
  core::SomaClient client(
      network, 1, 5000, core::Namespace::kApplication,
      service.instance(core::Namespace::kApplication).ranks);
  core::AppInstrument app(client, "md.run42");

  app.report_metric("atom_timesteps_per_s", 1.25e9);
  app.report_metric("step", std::int64_t{100});
  app.report_progress(0.25);
  EXPECT_EQ(app.buffered(), 3u);
  EXPECT_TRUE(app.commit());
  EXPECT_EQ(app.buffered(), 0u);
  EXPECT_FALSE(app.commit());  // nothing new
  simulation.run();

  const auto* record =
      service.store().latest(core::Namespace::kApplication, "md.run42");
  ASSERT_NE(record, nullptr);
  const auto& by_time = record->data.fetch_existing("md.run42");
  ASSERT_EQ(by_time.number_of_children(), 1u);
  const auto& metrics = by_time.child_at(0);
  EXPECT_DOUBLE_EQ(
      metrics.fetch_existing("atom_timesteps_per_s").as_float64(), 1.25e9);
  EXPECT_EQ(metrics.fetch_existing("step").as_int64(), 100);
  EXPECT_DOUBLE_EQ(metrics.fetch_existing("progress").as_float64(), 0.25);
}

TEST_F(AppInstrumentTest, LatestValueWinsWithinBatch) {
  core::SomaClient client(
      network, 1, 5000, core::Namespace::kApplication,
      service.instance(core::Namespace::kApplication).ranks);
  core::AppInstrument app(client, "app");
  app.report_metric("fom", 1.0);
  app.report_metric("fom", 2.0);
  app.commit();
  simulation.run();
  const auto* record =
      service.store().latest(core::Namespace::kApplication, "app");
  EXPECT_DOUBLE_EQ(
      record->data.fetch_existing("app").child_at(0).fetch_existing("fom")
          .as_float64(),
      2.0);
}

TEST_F(AppInstrumentTest, AutoCommit) {
  core::SomaClient client(
      network, 1, 5000, core::Namespace::kApplication,
      service.instance(core::Namespace::kApplication).ranks);
  core::AppInstrument app(client, "app");
  app.set_auto_commit(2);
  app.report_metric("a", 1.0);
  EXPECT_EQ(app.commits(), 0u);
  app.report_metric("b", 2.0);
  EXPECT_EQ(app.commits(), 1u);
}

TEST_F(AppInstrumentTest, ProgressClamped) {
  core::SomaClient client(
      network, 1, 5000, core::Namespace::kApplication,
      service.instance(core::Namespace::kApplication).ranks);
  core::AppInstrument app(client, "app");
  app.report_progress(7.0);
  app.commit();
  simulation.run();
  const auto* record =
      service.store().latest(core::Namespace::kApplication, "app");
  EXPECT_DOUBLE_EQ(record->data.fetch_existing("app")
                       .child_at(0)
                       .fetch_existing("progress")
                       .as_float64(),
                   1.0);
}

TEST_F(AppInstrumentTest, WrongNamespaceRejected) {
  core::SomaClient wrong(network, 1, 5001, core::Namespace::kHardware,
                         service.instance(core::Namespace::kHardware).ranks);
  EXPECT_THROW(core::AppInstrument(wrong, "app"), InternalError);
  core::SomaClient right(
      network, 1, 5002, core::Namespace::kApplication,
      service.instance(core::Namespace::kApplication).ranks);
  EXPECT_THROW(core::AppInstrument(right, ""), InternalError);
}

// ---------- bulk transfer ----------

TEST(BulkTransferTest, CostModelSwitchesAtThreshold) {
  net::ServiceCost cost;
  EXPECT_FALSE(cost.is_bulk(1024));
  EXPECT_TRUE(cost.is_bulk(cost.bulk_threshold));
  // Small payloads pay the eager per-KiB rate.
  const Duration eager = cost.cost_for(32 * 1024);
  // A bulk payload of twice the size costs *less* CPU than the eager one.
  const Duration bulk = cost.cost_for(128 * 1024);
  EXPECT_LT(bulk, eager * 2.0);
  // And far less than the eager model would have charged.
  const Duration eager_extrapolated =
      cost.base + cost.per_kib * 128.0;
  EXPECT_LT(bulk, eager_extrapolated / 2.0);
}

TEST(BulkTransferTest, EngineCountsBulkIngests) {
  sim::Simulation simulation;
  net::Network network(simulation, net::NetworkConfig{});
  net::Engine server(network, net::make_address(0, 1));
  net::Engine client(network, net::make_address(1, 1));
  server.define("put", [](const net::Address&, const datamodel::Node&) {
    return datamodel::Node{};
  });

  datamodel::Node big;
  big["blob"].set(std::string(100 * 1024, 'x'));
  datamodel::Node small;
  small["v"].set(std::int64_t{1});
  client.call(server.address(), "put", big);
  client.call(server.address(), "put", small);
  simulation.run();
  EXPECT_EQ(server.stats().requests_handled, 2u);
  EXPECT_EQ(server.stats().bulk_transfers, 1u);
}

// ---------- anomaly detection ----------

TEST(AnomalyTest, MedianAbsoluteDeviation) {
  EXPECT_DOUBLE_EQ(analysis::median_absolute_deviation({1, 1, 2, 2, 4, 6, 9}),
                   1.0);
  EXPECT_DOUBLE_EQ(analysis::median_absolute_deviation({}), 0.0);
  EXPECT_DOUBLE_EQ(analysis::median_absolute_deviation({5, 5, 5}), 0.0);
}

TEST(AnomalyTest, DetectsStraggler) {
  std::vector<analysis::TaskSample> samples;
  for (int i = 0; i < 19; ++i) {
    samples.push_back({"t" + std::to_string(i), "of-82",
                       200.0 + (i % 5)});
  }
  samples.push_back({"slow", "of-82", 340.0});
  const auto anomalies = analysis::detect_task_anomalies(samples, 3.0);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].sample.uid, "slow");
  EXPECT_EQ(anomalies[0].kind, analysis::AnomalyKind::kStraggler);
  EXPECT_GT(anomalies[0].robust_z, 3.0);
}

TEST(AnomalyTest, DetectsUnexpectedlyFast) {
  std::vector<analysis::TaskSample> samples;
  for (int i = 0; i < 19; ++i) {
    samples.push_back({"t" + std::to_string(i), "g", 100.0 + (i % 7)});
  }
  samples.push_back({"fast", "g", 8.0});
  const auto anomalies = analysis::detect_task_anomalies(samples, 3.0);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, analysis::AnomalyKind::kUnexpectedFast);
}

TEST(AnomalyTest, GroupsIsolated) {
  // A value normal for one configuration must not be flagged because
  // another configuration is faster.
  std::vector<analysis::TaskSample> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({"a" + std::to_string(i), "of-20", 500.0 + i});
    samples.push_back({"b" + std::to_string(i), "of-164", 200.0 + i});
  }
  EXPECT_TRUE(analysis::detect_task_anomalies(samples, 3.0).empty());
}

TEST(AnomalyTest, SmallAndDegenerateGroupsSkipped) {
  std::vector<analysis::TaskSample> tiny{{"a", "g", 1.0}, {"b", "g", 99.0}};
  EXPECT_TRUE(analysis::detect_task_anomalies(tiny, 3.0).empty());
  std::vector<analysis::TaskSample> identical;
  for (int i = 0; i < 10; ++i) identical.push_back({"t", "g", 5.0});
  EXPECT_TRUE(analysis::detect_task_anomalies(identical, 3.0).empty());
}

TEST(AnomalyTest, HostAnomalies) {
  analysis::FreeResourceReport report;
  for (int i = 0; i < 9; ++i) {
    report.nodes.push_back({.hostname = "cn" + std::to_string(i),
                            .mean_utilization = 0.80 + 0.01 * (i % 3),
                            .last_utilization = 0.8,
                            .available_ram_mib = 1000});
  }
  report.nodes.push_back({.hostname = "sick",
                          .mean_utilization = 0.30,
                          .last_utilization = 0.3,
                          .available_ram_mib = 1000});
  const auto anomalies = analysis::detect_host_anomalies(report, 2.5);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].hostname, "sick");
  EXPECT_LT(anomalies[0].robust_z, -2.5);
}

// ---------- least-utilized placement policy ----------

TEST(PlacementPolicyTest, LeastUtilizedPrefersIdleNodes) {
  sim::Simulation simulation;
  cluster::Platform platform(simulation, cluster::summit(3));
  rp::SchedulerConfig config;
  config.policy = rp::PlacementPolicy::kLeastUtilized;
  rp::AgentScheduler scheduler(simulation, platform, {0, 1, 2}, Rng{5},
                               config);
  std::vector<std::shared_ptr<rp::Task>> placed;
  scheduler.set_on_placed(
      [&](const std::shared_ptr<rp::Task>& t) { placed.push_back(t); });

  // Node 0 is the busiest; node 2 idle.
  platform.node(0).allocate_cores(30, "other", 1.0);
  platform.node(1).allocate_cores(10, "other", 1.0);

  auto task = std::make_shared<rp::Task>(
      rp::TaskDescription{.uid = "t", .ranks = 8});
  task->advance(rp::TaskState::kTmgrScheduling, simulation.now());
  task->advance(rp::TaskState::kAgentScheduling, simulation.now());
  scheduler.submit(task);
  simulation.run();

  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 2);
}

TEST(PlacementPolicyTest, ExternalUtilizationSourceWins) {
  sim::Simulation simulation;
  cluster::Platform platform(simulation, cluster::summit(3));
  rp::SchedulerConfig config;
  config.policy = rp::PlacementPolicy::kLeastUtilized;
  rp::AgentScheduler scheduler(simulation, platform, {0, 1, 2}, Rng{5},
                               config);
  scheduler.set_on_placed([](const std::shared_ptr<rp::Task>&) {});
  // SOMA "observes" node 1 as the least utilized, whatever the platform
  // says right now.
  scheduler.set_utilization_source(
      [](NodeId node) { return node == 1 ? 0.0 : 0.9; });

  auto task = std::make_shared<rp::Task>(
      rp::TaskDescription{.uid = "t", .ranks = 4});
  task->advance(rp::TaskState::kTmgrScheduling, simulation.now());
  task->advance(rp::TaskState::kAgentScheduling, simulation.now());
  scheduler.submit(task);
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 1);
}

TEST(PlacementPolicyTest, ContinuousKeepsIndexOrder) {
  sim::Simulation simulation;
  cluster::Platform platform(simulation, cluster::summit(3));
  rp::AgentScheduler scheduler(simulation, platform, {0, 1, 2}, Rng{5});
  scheduler.set_on_placed([](const std::shared_ptr<rp::Task>&) {});
  platform.node(0).allocate_cores(30, "other", 1.0);  // busy but has room

  auto task = std::make_shared<rp::Task>(
      rp::TaskDescription{.uid = "t", .ranks = 4});
  task->advance(rp::TaskState::kTmgrScheduling, simulation.now());
  task->advance(rp::TaskState::kAgentScheduling, simulation.now());
  scheduler.submit(task);
  simulation.run();
  ASSERT_TRUE(task->placement().has_value());
  EXPECT_EQ(task->placement()->ranks[0].node, 0);  // index order, not idlest
}

}  // namespace
}  // namespace soma
