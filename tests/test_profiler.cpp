// Unit tests for the TAU profile model and the SOMA plugin.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "profiler/tau.hpp"
#include "soma/service.hpp"

namespace soma::profiler {
namespace {

TauProfile make_profile() {
  TauProfile profile;
  profile.task_uid = "task.000007";
  for (int r = 0; r < 4; ++r) {
    RankProfile rank;
    rank.rank = r;
    rank.hostname = r < 2 ? "cn0001" : "cn0002";
    rank.inclusive_seconds["compute"] = 10.0 + r;
    rank.inclusive_seconds["MPI_Recv"] = 3.0;
    rank.inclusive_seconds["MPI_Waitall"] = 2.0 - 0.25 * r;
    profile.ranks.push_back(std::move(rank));
  }
  return profile;
}

TEST(TauProfileTest, TotalsAndMpiExtraction) {
  const TauProfile profile = make_profile();
  EXPECT_DOUBLE_EQ(profile.ranks[0].total_seconds(), 15.0);
  const auto mpi = profile.mpi_seconds_per_rank();
  ASSERT_EQ(mpi.size(), 4u);
  EXPECT_DOUBLE_EQ(mpi[0], 5.0);
  EXPECT_DOUBLE_EQ(mpi[3], 3.0 + 1.25);
}

TEST(TauProfileTest, NodeRoundTrip) {
  const TauProfile profile = make_profile();
  const datamodel::Node node = profile.to_node();

  // Paper data-model layout: <uid>/<hostname>/rank_<k>/<function>.
  EXPECT_TRUE(node.has_path("task.000007/cn0001/rank_0000/MPI_Recv"));
  EXPECT_TRUE(node.has_path("task.000007/cn0002/rank_0003/compute"));

  const TauProfile back = TauProfile::from_node("task.000007", node);
  ASSERT_EQ(back.ranks.size(), 4u);
  // from_node groups by hostname; compare as sets of (rank, map).
  for (const auto& original : profile.ranks) {
    const auto it = std::find_if(back.ranks.begin(), back.ranks.end(),
                                 [&](const RankProfile& r) {
                                   return r.rank == original.rank;
                                 });
    ASSERT_NE(it, back.ranks.end());
    EXPECT_EQ(it->hostname, original.hostname);
    EXPECT_EQ(it->inclusive_seconds, original.inclusive_seconds);
  }
}

TEST(TauProfileTest, FromNodeRejectsGarbage) {
  datamodel::Node node;
  node.fetch("task.x/cn0001/bogus_key/fn").set(1.0);
  EXPECT_THROW(TauProfile::from_node("task.x", node), InternalError);
  EXPECT_THROW(TauProfile::from_node("missing", node), LookupError);
}

class TauIntegrationTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
};

TEST_F(TauIntegrationTest, ProfileOpenFoamTaskFromPlacement) {
  cluster::Platform platform(simulation, cluster::summit(2));
  workloads::OpenFoamModel model(&platform);

  rp::Task task(rp::TaskDescription{.uid = "of.0", .ranks = 4});
  rp::Placement placement;
  for (int r = 0; r < 4; ++r) {
    placement.ranks.push_back(rp::RankPlacement{
        .node = static_cast<NodeId>(r / 2), .cores = {static_cast<CoreId>(r)}});
  }
  task.set_placement(placement);
  task.record_event(rp::events::kRankStart, SimTime::from_seconds(10.0));
  task.record_event(rp::events::kRankStop, SimTime::from_seconds(110.0));

  const TauProfile profile = profile_openfoam_task(task, model, platform);
  ASSERT_EQ(profile.ranks.size(), 4u);
  EXPECT_EQ(profile.ranks[0].hostname, "cn0000");
  EXPECT_EQ(profile.ranks[3].hostname, "cn0001");
  for (const auto& rank : profile.ranks) {
    EXPECT_NEAR(rank.total_seconds(), 100.0, 1e-9);
    EXPECT_GT(rank.inclusive_seconds.at("MPI_Recv"), 0.0);
  }
}

TEST_F(TauIntegrationTest, ProfileRequiresCompletedTask) {
  cluster::Platform platform(simulation, cluster::summit(1));
  workloads::OpenFoamModel model(&platform);
  rp::Task task(rp::TaskDescription{.uid = "of.0", .ranks = 1});
  EXPECT_THROW(profile_openfoam_task(task, model, platform), InternalError);
}

TEST_F(TauIntegrationTest, PluginPublishesToPerformanceNamespace) {
  core::SomaService service(network, {0});
  core::SomaClient client(
      network, 1, 5000, core::Namespace::kPerformance,
      service.instance(core::Namespace::kPerformance).ranks);
  TauSomaPlugin plugin(client);

  plugin.publish(make_profile());
  simulation.run();

  EXPECT_EQ(plugin.profiles_published(), 1u);
  const auto* record = service.store().latest(
      core::Namespace::kPerformance, "task.000007");
  ASSERT_NE(record, nullptr);
  const TauProfile back =
      TauProfile::from_node("task.000007", record->data);
  EXPECT_EQ(back.ranks.size(), 4u);
}

TEST_F(TauIntegrationTest, PluginRejectsWrongNamespace) {
  core::SomaService service(network, {0});
  core::SomaClient client(network, 1, 5000, core::Namespace::kHardware,
                          service.instance(core::Namespace::kHardware).ranks);
  TauSomaPlugin plugin(client);
  EXPECT_THROW(plugin.publish(make_profile()), InternalError);
}

}  // namespace
}  // namespace soma::profiler
