// Batched publish pipeline tests: the batch wire body, the client-side
// PublishBatcher flush policy (size/byte/delay triggers), end-to-end
// batched-vs-unbatched parity across storage backends (including one
// fault-matrix seed), failed-batch re-buffer/replay with original
// timestamps, and the dropped-batch-record accounting.
//
// Every suite name contains "Batch" so the CI batching-parity leg can select
// the lot with `ctest --tests-regex Batch`.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "net/wire.hpp"
#include "sim/simulation.hpp"
#include "soma/batcher.hpp"
#include "soma/client.hpp"
#include "soma/export.hpp"
#include "soma/namespaces.hpp"
#include "soma/service.hpp"
#include "soma/storage_backend.hpp"
#include "soma/store.hpp"

namespace soma {
namespace {

using core::BatchingConfig;
using core::ClientReliability;
using core::Namespace;
using core::PublishBatcher;
using core::ServiceConfig;
using core::SomaClient;
using core::SomaService;
using core::StorageBackendKind;
using core::TimedRecord;

constexpr StorageBackendKind kAllBackends[] = {StorageBackendKind::kMap,
                                               StorageBackendKind::kLog};

datamodel::Node value_node(double v) {
  datamodel::Node node;
  node["v"].set(v);
  return node;
}

// ---------- batch wire body ----------

TEST(BatchWireTest, BodyRoundTripsRecordsInOrder) {
  net::wire::BatchBodyWriter writer("hardware");
  const datamodel::Node a = value_node(1.0);
  const datamodel::Node b = value_node(2.0);
  const datamodel::Node c = value_node(3.0);
  EXPECT_EQ(writer.add("cn0001", 100, a), 1u);
  EXPECT_EQ(writer.add("cn0002", 200, b), 2u);
  EXPECT_EQ(writer.add("cn0001", 300, c), 3u);
  EXPECT_EQ(writer.record_count(), 3u);

  std::vector<std::byte> body;
  writer.encode(body);
  EXPECT_EQ(body.size(), writer.body_size());

  const net::wire::BatchView view = net::wire::decode_batch_body(body);
  EXPECT_EQ(view.ns, "hardware");
  ASSERT_EQ(view.records.size(), 3u);
  EXPECT_EQ(view.records[0].source, "cn0001");
  EXPECT_EQ(view.records[1].source, "cn0002");
  EXPECT_EQ(view.records[2].source, "cn0001");
  EXPECT_EQ(view.records[0].t_nanos, 100);
  EXPECT_EQ(view.records[2].t_nanos, 300);
  const datamodel::Node decoded =
      datamodel::Node::unpack(view.records[2].payload);
  EXPECT_DOUBLE_EQ(decoded.fetch_existing("v").as_float64(), 3.0);
}

TEST(BatchWireTest, DictionaryStoresRepeatedSourcesOnce) {
  // Two records under the same source must grow the body by the per-record
  // overhead only — the source string is dictionary-encoded once.
  net::wire::BatchBodyWriter writer("hardware");
  const datamodel::Node data = value_node(1.0);
  writer.add("a-rather-long-monitor-source-name", 1, data);
  const std::size_t after_first = writer.body_size();
  writer.add("a-rather-long-monitor-source-name", 2, data);
  const std::size_t per_record = writer.body_size() - after_first;
  // dict index (4) + time (8) + payload length (4) + payload.
  EXPECT_EQ(per_record, 16 + data.packed_size());
  writer.add("another-source", 3, data);
  EXPECT_GT(writer.body_size() - after_first - per_record, per_record);
}

TEST(BatchWireTest, TruncatedBodyThrows) {
  net::wire::BatchBodyWriter writer("hardware");
  writer.add("cn0001", 100, value_node(1.0));
  std::vector<std::byte> body;
  writer.encode(body);
  for (const std::size_t cut : {body.size() - 1, body.size() / 2,
                                std::size_t{3}, std::size_t{0}}) {
    EXPECT_THROW(net::wire::decode_batch_body(
                     std::span(body.data(), cut)),
                 LookupError)
        << "cut at " << cut;
  }
}

// ---------- PublishBatcher flush policy ----------

class PublishBatcherTest : public ::testing::Test {
 protected:
  struct Flushed {
    std::size_t rank = 0;
    std::size_t records = 0;
    std::vector<std::string> sources;
  };

  std::unique_ptr<PublishBatcher> make_batcher(BatchingConfig config,
                                               std::size_t ranks = 2) {
    return std::make_unique<PublishBatcher>(
        simulation, "hardware", ranks, config,
        [this](std::size_t rank, PublishBatcher::Batch batch) {
          Flushed f;
          f.rank = rank;
          f.records = batch.body.record_count();
          for (const auto& record : batch.records) {
            f.sources.push_back(record.source);
          }
          flushed.push_back(std::move(f));
        });
  }

  void add(PublishBatcher& batcher, std::size_t rank,
           const std::string& source) {
    batcher.add(rank, source, value_node(1.0), simulation.now(), nullptr,
                /*keep_copy=*/true);
  }

  sim::Simulation simulation;
  std::vector<Flushed> flushed;
};

TEST_F(PublishBatcherTest, SizeTriggerFlushesFullBatch) {
  BatchingConfig config;
  config.max_records = 3;
  auto batcher = make_batcher(config);
  add(*batcher, 0, "a");
  add(*batcher, 0, "b");
  EXPECT_TRUE(flushed.empty());
  EXPECT_EQ(batcher->pending_records(), 2u);
  add(*batcher, 0, "c");
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].records, 3u);
  EXPECT_EQ(flushed[0].sources, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(batcher->pending_records(), 0u);
  EXPECT_EQ(batcher->stats().size_flushes, 1u);
  EXPECT_EQ(batcher->stats().records_batched, 3u);
}

TEST_F(PublishBatcherTest, RanksCoalesceIndependently) {
  BatchingConfig config;
  config.max_records = 2;
  auto batcher = make_batcher(config);
  add(*batcher, 0, "a");
  add(*batcher, 1, "b");
  EXPECT_TRUE(flushed.empty());
  add(*batcher, 1, "c");
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].rank, 1u);
  EXPECT_EQ(batcher->pending_records(), 1u);  // rank 0's record still open
}

TEST_F(PublishBatcherTest, DelayTriggerFlushesPartialBatch) {
  BatchingConfig config;
  config.max_records = 100;
  config.max_delay = Duration::milliseconds(10);
  auto batcher = make_batcher(config);
  add(*batcher, 0, "a");
  simulation.run();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].records, 1u);
  EXPECT_EQ(batcher->stats().delay_flushes, 1u);
  EXPECT_DOUBLE_EQ(simulation.now().to_seconds(), 0.010);
}

TEST_F(PublishBatcherTest, ByteTriggerBoundsFrameSize) {
  BatchingConfig config;
  config.max_records = 1000;
  config.max_bytes = 64;  // a couple of records at most
  auto batcher = make_batcher(config);
  for (int i = 0; i < 6; ++i) add(*batcher, 0, "a");
  EXPECT_GE(flushed.size(), 1u);
  EXPECT_EQ(batcher->stats().byte_flushes, flushed.size());
  for (const Flushed& f : flushed) EXPECT_LT(f.records, 6u);
}

TEST_F(PublishBatcherTest, FlushAllShipsOpenBatchesAndCancelsTimers) {
  BatchingConfig config;
  config.max_records = 100;
  auto batcher = make_batcher(config);
  add(*batcher, 0, "a");
  add(*batcher, 1, "b");
  batcher->flush_all();
  EXPECT_EQ(flushed.size(), 2u);
  EXPECT_EQ(batcher->pending_records(), 0u);
  // The delay timers were cancelled: nothing further fires.
  simulation.run();
  EXPECT_EQ(flushed.size(), 2u);
  EXPECT_EQ(batcher->stats().batches_flushed, 2u);
}

TEST_F(PublishBatcherTest, DestructionCancelsPendingTimers) {
  BatchingConfig config;
  config.max_records = 100;
  auto batcher = make_batcher(config);
  add(*batcher, 0, "a");
  batcher.reset();
  simulation.run();  // must not fire a flush into a destroyed batcher
  EXPECT_TRUE(flushed.empty());
}

TEST_F(PublishBatcherTest, DisabledConfigRejected) {
  EXPECT_THROW(make_batcher(BatchingConfig{}), InternalError);
}

// ---------- end-to-end parity: batched vs unbatched ----------

struct PipelineOutcome {
  std::vector<std::string> sources;
  std::vector<double> values;        // all records, source-major series order
  std::vector<std::int64_t> times;   // matching ingest timestamps (ns)
  std::string exported;              // serialized store contents
  std::uint64_t stored = 0;
  std::uint64_t batches_at_service = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t acked = 0;
};

/// Three clients, two service ranks, four sources, 30 publishes per source
/// on staggered cadences; optionally a lossy fabric with a crash window.
PipelineOutcome run_pipeline(StorageBackendKind backend,
                             std::size_t batch_records, bool faults,
                             std::uint64_t seed) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.storage.backend = backend;
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;

  ClientReliability reliability;
  if (faults) {
    // A deterministic crash window rather than random drops: with a lossy
    // link, a lost *ack* duplicates a stored record (at-least-once), and
    // batched and unbatched runs draw different wire patterns — so exact
    // store equality is only defined for schedule-driven faults.
    net::FaultConfig fault_config;
    fault_config.seed = seed;
    net::FaultInjector& injector = network.install_faults(fault_config);
    injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                            SimTime::from_seconds(20.0));
    reliability.retry.max_attempts = 4;
    reliability.retry.timeout = Duration::milliseconds(100);
    reliability.buffer_on_failure = true;
    reliability.probe_period = Duration::seconds(1);
  }
  BatchingConfig batching;
  batching.max_records = batch_records;
  // Publishes trickle in at monitor cadence; stretch the staleness bound so
  // records actually coalesce across ticks.
  batching.max_delay = Duration::seconds(2.0);

  std::vector<std::unique_ptr<SomaClient>> clients;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(std::make_unique<SomaClient>(
        network, NodeId(c + 1), 6000, Namespace::kHardware, ranks,
        reliability, batching));
  }
  const std::vector<std::string> sources = {"cn0001", "cn0002", "task.7",
                                            "pipeline.9"};
  for (std::size_t s = 0; s < sources.size(); ++s) {
    SomaClient* client = clients[s % clients.size()].get();
    const std::string source = sources[s];
    for (int i = 0; i < 30; ++i) {
      simulation.schedule_at(
          SimTime::from_seconds(1.0 * (i + 1) + 0.1 * double(s)),
          [client, source, i] { client->publish(source, value_node(i)); });
    }
  }
  simulation.run_until(SimTime::from_seconds(45.0));
  for (auto& client : clients) client->flush_batches();
  simulation.run();

  PipelineOutcome outcome;
  const core::StoreView view = service.store_view();
  outcome.sources = view.sources(Namespace::kHardware);
  for (const std::string& source : outcome.sources) {
    for (const TimedRecord* record : view.series(Namespace::kHardware,
                                                 source)) {
      outcome.values.push_back(record->data.fetch_existing("v").as_float64());
      outcome.times.push_back(record->time.nanos());
    }
  }
  std::ostringstream out;
  export_store(service.store(), out);
  outcome.exported = out.str();
  outcome.stored = service.publishes_received();
  outcome.batches_at_service = service.batches_received();
  for (const auto& client : clients) {
    outcome.frames_sent += client->engine_stats().requests_sent;
    outcome.acked += client->stats().acked;
  }
  return outcome;
}

class BatchParityTest : public ::testing::TestWithParam<StorageBackendKind> {};

TEST_P(BatchParityTest, BatchedStoreMatchesUnbatchedFaultFree) {
  const PipelineOutcome plain = run_pipeline(GetParam(), 0, false, 0);
  const PipelineOutcome batched = run_pipeline(GetParam(), 8, false, 0);

  // Same records, same per-source order, same analysis inputs.
  EXPECT_EQ(batched.stored, plain.stored);
  EXPECT_EQ(batched.sources, plain.sources);
  EXPECT_EQ(batched.values, plain.values);
  EXPECT_EQ(batched.acked, plain.acked);
  // Batched records carry client publish time; unbatched ones are stamped at
  // service ingest, microseconds later. The series stay aligned within
  // network latency.
  ASSERT_EQ(batched.times.size(), plain.times.size());
  for (std::size_t i = 0; i < plain.times.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(batched.times[i]),
                static_cast<double>(plain.times[i]), 1e6)  // 1 ms
        << i;
  }
  // Coalescing actually happened, and it shrank the frame count.
  EXPECT_GT(batched.batches_at_service, 0u);
  EXPECT_EQ(plain.batches_at_service, 0u);
  EXPECT_LT(batched.frames_sent, plain.frames_sent);
}

TEST_P(BatchParityTest, BatchedRunsAreDeterministic) {
  const PipelineOutcome a = run_pipeline(GetParam(), 8, false, 0);
  const PipelineOutcome b = run_pipeline(GetParam(), 8, false, 0);
  EXPECT_EQ(a.exported, b.exported);
  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.batches_at_service, b.batches_at_service);
}

TEST_P(BatchParityTest, BatchedStoreMatchesUnbatchedUnderFaults) {
  // One fault-matrix seed: lossy fabric plus a 10 s crash window on rank 0.
  // Batched and unbatched runs must store the same record multiset per
  // source (at-least-once: a lost ack can duplicate a record, but the same
  // publishes recover either way).
  const std::uint64_t seed = 4242;
  const PipelineOutcome plain = run_pipeline(GetParam(), 0, true, seed);
  const PipelineOutcome batched = run_pipeline(GetParam(), 8, true, seed);

  EXPECT_EQ(batched.sources, plain.sources);
  EXPECT_EQ(batched.stored, plain.stored);
  EXPECT_EQ(batched.values, plain.values);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BatchParityTest,
                         ::testing::ValuesIn(kAllBackends),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------- failed batches: re-buffer, replay, drop accounting ----------

struct ReplayOutcome {
  std::vector<double> values;
  std::vector<std::int64_t> times;
  std::uint64_t stored = 0;
  SomaClient::ClientStats client{};
};

/// One client publishing a 2-record burst every 2 s for 40 s with 2-record
/// batches; optionally rank 0 crashes over [10 s, 25 s).
ReplayOutcome run_batch_replay(bool crash_collector) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  if (crash_collector) {
    net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
    injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                            SimTime::from_seconds(25.0));
  }

  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  BatchingConfig batching;
  batching.max_records = 2;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability, batching);

  for (int i = 0; i < 20; ++i) {
    simulation.schedule_at(SimTime::from_seconds(2.0 * (i + 1)),
                           [&client, i] {
                             client.publish("cn0001", value_node(2.0 * i));
                             client.publish("cn0001",
                                            value_node(2.0 * i + 1.0));
                           });
  }
  simulation.run();

  ReplayOutcome outcome;
  for (const TimedRecord* record :
       service.store().series(Namespace::kHardware, "cn0001")) {
    outcome.values.push_back(record->data.fetch_existing("v").as_float64());
    outcome.times.push_back(record->time.nanos());
  }
  outcome.stored = service.publishes_received();
  outcome.client = client.stats();
  return outcome;
}

TEST(BatchReplayTest, FailedBatchReplaysWithOriginalTimestamps) {
  const ReplayOutcome faulty = run_batch_replay(true);
  const ReplayOutcome clean = run_batch_replay(false);

  // Nothing lost: all 40 records stored, in publish order, and the series
  // is identical to the fault-free batched run — including timestamps,
  // because batched and replayed records both carry client publish time.
  EXPECT_EQ(faulty.stored, 40u);
  EXPECT_EQ(faulty.values, clean.values);
  EXPECT_EQ(faulty.times, clean.times);

  // The outage window [10 s, 25 s) swallows the 8 bursts at 10..24 s:
  // 16 records re-buffered from failed batches, then replayed.
  EXPECT_EQ(faulty.client.buffered, 16u);
  EXPECT_EQ(faulty.client.replayed, 16u);
  EXPECT_EQ(faulty.client.dropped_overflow, 0u);
  EXPECT_EQ(faulty.client.dropped_batch_records, 0u);
  EXPECT_EQ(clean.client.buffered, 0u);
  EXPECT_GT(faulty.client.batches_sent, 0u);
}

TEST(BatchReplayTest, DroppedBatchRecordsCountedDistinctly) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  injector.crash_endpoint(ranks[0], SimTime::zero(),
                          SimTime::from_seconds(1e6));

  ClientReliability reliability;
  reliability.retry.max_attempts = 1;
  reliability.retry.timeout = Duration::milliseconds(10);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  reliability.max_buffered = 4;
  BatchingConfig batching;
  batching.max_records = 2;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability, batching);

  // One burst: all 8 records pass through the batcher (4 batches of 2)
  // before any failure is detected, then every batch times out against the
  // dead collector and re-buffers its records.
  simulation.schedule_at(SimTime::from_seconds(1.0), [&client] {
    for (int i = 0; i < 8; ++i) client.publish("cn0001", value_node(i));
  });
  // The collector never recovers; cut the run short of the probe loop.
  simulation.run_until(SimTime::from_seconds(20.0));

  EXPECT_TRUE(client.degraded());
  EXPECT_EQ(client.buffered_pending(), 4u);
  EXPECT_EQ(client.stats().batches_sent, 4u);
  // Every eviction was a record that arrived via a failed batch — counted
  // apart from plain overflow drops.
  EXPECT_EQ(client.stats().dropped_batch_records, 4u);
  EXPECT_EQ(client.stats().dropped_overflow, 0u);
  EXPECT_EQ(service.publishes_received(), 0u);
}

}  // namespace
}  // namespace soma
