// Cross-module property tests: invariants that must hold for arbitrary
// workload mixes, seeds, and scales. Parameterized (TEST_P) sweeps drive
// randomized scenarios through the whole stack.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "experiments/ddmd_experiment.hpp"
#include "experiments/deployment.hpp"
#include "rp/session.hpp"

namespace soma {
namespace {

// ---------- randomized whole-session property ----------

struct SessionInvariants {
  std::vector<std::shared_ptr<rp::Task>> tasks;
  rp::Session* session = nullptr;
};

/// Run a session with a random task mix and return everything needed to
/// check invariants.
class RandomWorkloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadProperty, ResourceAndEventInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng scenario_rng(seed * 2654435761u + 17);

  rp::SessionConfig config;
  const int nodes = 2 + static_cast<int>(scenario_rng.uniform_index(4));
  config.platform = cluster::summit(nodes);
  config.pilot.nodes = nodes;
  config.seed = seed;
  rp::Session session(config);

  std::vector<std::shared_ptr<rp::Task>> tasks;
  session.start([&] {
    const int count = 3 + static_cast<int>(scenario_rng.uniform_index(12));
    for (int i = 0; i < count; ++i) {
      rp::TaskDescription d;
      d.ranks = 1 + static_cast<int>(scenario_rng.uniform_index(40));
      d.cores_per_rank = 1 + static_cast<int>(scenario_rng.uniform_index(2));
      d.gpus_per_rank = scenario_rng.bernoulli(0.3) ? 1 : 0;
      // GPU tasks limited so they always fit the machine.
      if (d.gpus_per_rank > 0) d.ranks = std::min(d.ranks, 6 * (nodes - 1));
      d.ranks = std::min(
          d.ranks, (nodes - 1) * 42 / std::max(1, d.cores_per_rank));
      d.fixed_duration =
          Duration::seconds(scenario_rng.uniform(5.0, 120.0));
      d.cpu_activity = scenario_rng.uniform(0.1, 1.0);
      d.failure_probability = scenario_rng.bernoulli(0.3) ? 0.3 : 0.0;
      tasks.push_back(session.submit(d));
    }
  });
  session.run();

  for (const auto& task : tasks) {
    // (1) Every task reached a final state.
    EXPECT_TRUE(rp::is_final(task->state())) << task->uid();
    // (2) The Listing-1 event sequence is time-ordered.
    const char* sequence[] = {"launch_start", "exec_start", "rank_start",
                              "rank_stop", "exec_stop", "launch_stop"};
    SimTime previous = SimTime::zero();
    for (const char* name : sequence) {
      const auto at = task->event_time(name);
      ASSERT_TRUE(at.has_value()) << task->uid() << " missing " << name;
      EXPECT_GE(*at, previous) << task->uid() << " " << name;
      previous = *at;
    }
    // (3) State history is monotone in time.
    SimTime last_state_time = SimTime::zero();
    for (const auto& [time, state] : task->state_history()) {
      EXPECT_GE(time, last_state_time);
      last_state_time = time;
    }
    // (4) Placement granted exactly the requested resources.
    ASSERT_TRUE(task->placement().has_value());
    const auto& placement = *task->placement();
    EXPECT_EQ(placement.ranks.size(),
              static_cast<std::size_t>(task->description().ranks));
    for (const auto& rank : placement.ranks) {
      EXPECT_EQ(rank.cores.size(),
                static_cast<std::size_t>(task->description().cores_per_rank));
      EXPECT_EQ(rank.gpus.size(),
                static_cast<std::size_t>(task->description().gpus_per_rank));
    }
  }

  // (5) All resources returned to the platform.
  for (NodeId node : session.worker_node_ids()) {
    EXPECT_EQ(session.platform().node(node).busy_cores(), 0) << node;
    EXPECT_EQ(session.platform().node(node).busy_gpus(), 0) << node;
  }

  // (6) No two tasks ever held the same core at the same time. Reconstruct
  // per-core intervals from the event logs and check for overlap.
  struct Interval {
    SimTime begin, end;
    std::string uid;
  };
  std::map<std::pair<NodeId, CoreId>, std::vector<Interval>> usage;
  for (const auto& task : tasks) {
    const auto begin = task->event_time(rp::events::kSlotsClaimed);
    const auto end = task->event_time(rp::events::kLaunchStop);
    ASSERT_TRUE(begin && end);
    for (const auto& rank : task->placement()->ranks) {
      for (CoreId core : rank.cores) {
        usage[{rank.node, core}].push_back({*begin, *end, task->uid()});
      }
    }
  }
  for (auto& [key, intervals] : usage) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].begin, intervals[i - 1].end)
          << "core (" << key.first << "," << key.second << ") shared by "
          << intervals[i - 1].uid << " and " << intervals[i].uid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadProperty,
                         ::testing::Range(1, 13));

// ---------- determinism sweep ----------

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, DdmdRunIsBitReproducible) {
  experiments::DdmdExperimentConfig config;
  config.pipelines = 2;
  config.phases = 1;
  config.app_nodes = 2;
  config.soma_nodes = 1;
  config.seed = static_cast<std::uint64_t>(GetParam());
  const auto a = experiments::run_ddmd_experiment(config);
  const auto b = experiments::run_ddmd_experiment(config);
  ASSERT_EQ(a.pipeline_seconds.size(), b.pipeline_seconds.size());
  for (std::size_t i = 0; i < a.pipeline_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pipeline_seconds[i], b.pipeline_seconds[i]);
  }
  EXPECT_EQ(a.soma_publishes, b.soma_publishes);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
}

TEST_P(DeterminismProperty, DifferentSeedsDiffer) {
  experiments::DdmdExperimentConfig config;
  config.pipelines = 2;
  config.phases = 1;
  config.app_nodes = 2;
  config.soma_nodes = 1;
  config.seed = static_cast<std::uint64_t>(GetParam());
  const auto a = experiments::run_ddmd_experiment(config);
  config.seed += 1000;
  const auto b = experiments::run_ddmd_experiment(config);
  EXPECT_NE(a.makespan_seconds, b.makespan_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Values(1, 7));

// ---------- golden scenario ----------

struct GoldenOutcome {
  std::uint64_t events_dispatched = 0;
  std::int64_t final_nanos = 0;
  std::uint64_t publishes = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
};

/// A fixed quickstart-style scenario: summit(3), seed 42, exclusive SOMA
/// deployment with 10 s monitors, six fixed-duration tasks.
GoldenOutcome run_golden_scenario() {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  session_config.seed = 42;
  rp::Session session(session_config);

  std::unique_ptr<experiments::SomaDeployment> deployment;
  int outstanding = 0;

  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().kind != rp::TaskKind::kApplication) return;
        if (--outstanding == 0) {
          deployment->shutdown();
          session.finalize();
        }
      });

  session.start([&] {
    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = session.agent_node_ids();
    config.rp_monitor.period = Duration::seconds(10.0);
    config.hw_monitor.period = Duration::seconds(10.0);
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);
    deployment->deploy([&] {
      for (int i = 0; i < 6; ++i) {
        rp::TaskDescription desc;
        desc.uid = "det." + std::to_string(i);
        desc.ranks = 8 + 8 * (i % 3);
        desc.cores_per_rank = 1;
        desc.fixed_duration = Duration::seconds(30.0 + 10.0 * i);
        ++outstanding;
        session.submit(desc);
      }
    });
  });

  GoldenOutcome outcome;
  outcome.final_nanos = session.run().nanos();
  outcome.events_dispatched = session.simulation().events_dispatched();
  outcome.publishes = deployment->service().publishes_received();
  outcome.net_messages = session.network().messages_sent();
  outcome.net_bytes = session.network().bytes_sent();
  return outcome;
}

// Hard-coded goldens captured from the pre-refactor envelope/shared_ptr
// implementation. The zero-copy wire path and the generation-slot event
// queue are pure host-side optimizations: a drift in ANY of these numbers
// means simulated behavior changed (event ordering, message count, or the
// modeled frame bytes) and is a bug, not an expected churn.
TEST(GoldenScenarioTest, MatchesSeedImplementation) {
  const GoldenOutcome outcome = run_golden_scenario();
  EXPECT_EQ(outcome.events_dispatched, 293u);
  EXPECT_EQ(outcome.final_nanos, 145036156368);
  EXPECT_EQ(outcome.publishes, 52u);
  EXPECT_EQ(outcome.net_messages, 104u);
  EXPECT_EQ(outcome.net_bytes, 127395u);
}

TEST(GoldenScenarioTest, RunToRunIdentical) {
  const GoldenOutcome a = run_golden_scenario();
  const GoldenOutcome b = run_golden_scenario();
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.final_nanos, b.final_nanos);
  EXPECT_EQ(a.publishes, b.publishes);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
}

// ---------- monitoring completeness ----------

class MonitoringCompletenessProperty : public ::testing::TestWithParam<int> {
};

TEST_P(MonitoringCompletenessProperty, EveryNodePublishesEveryWindow) {
  // For any pipeline count, every monitored node must produce roughly
  // runtime/period samples — no monitor silently starves.
  experiments::DdmdExperimentConfig config;
  config.pipelines = GetParam();
  config.phases = 1;
  config.app_nodes = std::max(2, GetParam());
  config.soma_nodes = 1;
  config.monitor_period = Duration::seconds(30.0);
  config.seed = 5;
  const auto result = experiments::run_ddmd_experiment(config);

  const double expected_samples = result.makespan_seconds / 30.0;
  EXPECT_EQ(result.node_utilization.size(),
            static_cast<std::size_t>(1 + config.app_nodes + 1));
  for (const auto& [host, series] : result.node_utilization) {
    EXPECT_GT(static_cast<double>(series.size()), expected_samples * 0.5)
        << host;
    // Samples strictly time-ordered, utilizations within [0, 1].
    double previous = -1.0;
    for (const auto& [t, u, g] : series) {
      EXPECT_GT(t, previous) << host;
      previous = t;
      EXPECT_GE(u, 0.0) << host;
      EXPECT_LE(u, 1.0) << host;
      EXPECT_GE(g, 0.0) << host;
      EXPECT_LE(g, 1.0) << host;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, MonitoringCompletenessProperty,
                         ::testing::Values(1, 4, 8));

// ---------- conservation: pipeline time >= sum of critical stage times ----

class StageAccountingProperty : public ::testing::TestWithParam<int> {};

TEST_P(StageAccountingProperty, StageSpansTileThePipeline) {
  experiments::DdmdExperimentConfig config;
  config.pipelines = 1;
  config.phases = GetParam();
  config.app_nodes = 2;
  config.soma_nodes = 1;
  config.seed = 9;
  const auto result = experiments::run_ddmd_experiment(config);

  ASSERT_EQ(result.phase_utilization.size(),
            static_cast<std::size_t>(GetParam()));
  double span_sum = 0.0;
  for (const auto& phase : result.phase_utilization) {
    EXPECT_GT(phase.span_seconds, 0.0);
    span_sum += phase.span_seconds;
  }
  // Phases are sequential: their spans cover (almost exactly) the pipeline.
  EXPECT_NEAR(span_sum, result.pipeline_seconds.front(),
              result.pipeline_seconds.front() * 0.01);
}

INSTANTIATE_TEST_SUITE_P(PhaseCounts, StageAccountingProperty,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace soma
