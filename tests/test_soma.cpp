// Unit tests for the SOMA core: namespaces, data store, service, client.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "soma/client.hpp"
#include "soma/namespaces.hpp"
#include "soma/service.hpp"
#include "soma/store.hpp"

namespace soma::core {
namespace {

// ---------- namespaces ----------

TEST(NamespacesTest, NamesAndTags) {
  EXPECT_EQ(to_string(Namespace::kWorkflow), "workflow");
  EXPECT_EQ(namespace_tag(Namespace::kWorkflow), "RP");
  EXPECT_EQ(namespace_tag(Namespace::kHardware), "PROC");
  EXPECT_EQ(namespace_tag(Namespace::kPerformance), "TAU");
  EXPECT_EQ(namespace_tag(Namespace::kApplication), "APP");
}

TEST(NamespacesTest, ParseBothForms) {
  EXPECT_EQ(parse_namespace("workflow"), Namespace::kWorkflow);
  EXPECT_EQ(parse_namespace("PROC"), Namespace::kHardware);
  EXPECT_EQ(parse_namespace("performance"), Namespace::kPerformance);
  EXPECT_THROW(parse_namespace("bogus"), ConfigError);
}

// ---------- DataStore ----------

datamodel::Node value_node(double v) {
  datamodel::Node node;
  node["v"].set(v);
  return node;
}

TEST(DataStoreTest, AppendAndLatest) {
  DataStore store;
  store.append(Namespace::kHardware, "cn0001", SimTime::from_seconds(1.0),
               value_node(0.1));
  store.append(Namespace::kHardware, "cn0001", SimTime::from_seconds(2.0),
               value_node(0.2));
  const TimedRecord* latest = store.latest(Namespace::kHardware, "cn0001");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->time, SimTime::from_seconds(2.0));
  EXPECT_DOUBLE_EQ(latest->data.fetch_existing("v").as_float64(), 0.2);
  EXPECT_EQ(store.latest(Namespace::kHardware, "cn0002"), nullptr);
}

TEST(DataStoreTest, NamespacesAreIsolated) {
  DataStore store;
  store.append(Namespace::kHardware, "key", SimTime::zero(), value_node(1.0));
  EXPECT_EQ(store.latest(Namespace::kWorkflow, "key"), nullptr);
  EXPECT_EQ(store.record_count(Namespace::kHardware), 1u);
  EXPECT_EQ(store.record_count(Namespace::kWorkflow), 0u);
  EXPECT_EQ(store.total_records(), 1u);
}

TEST(DataStoreTest, RangeQuery) {
  DataStore store;
  for (int i = 1; i <= 5; ++i) {
    store.append(Namespace::kWorkflow, "m", SimTime::from_seconds(i),
                 value_node(i));
  }
  const auto in_range = store.range(Namespace::kWorkflow, "m",
                                    SimTime::from_seconds(2.0),
                                    SimTime::from_seconds(4.0));
  ASSERT_EQ(in_range.size(), 3u);
  EXPECT_EQ(in_range.front()->time, SimTime::from_seconds(2.0));
  EXPECT_EQ(in_range.back()->time, SimTime::from_seconds(4.0));
}

TEST(DataStoreTest, RangeBoundaries) {
  DataStore store;

  // Unknown source / empty store.
  EXPECT_TRUE(store
                  .range(Namespace::kWorkflow, "missing", SimTime::zero(),
                         SimTime::from_seconds(10.0))
                  .empty());

  // Single record: inclusive on both ends.
  store.append(Namespace::kWorkflow, "m", SimTime::from_seconds(5.0),
               value_node(5.0));
  const auto exact = store.range(Namespace::kWorkflow, "m",
                                 SimTime::from_seconds(5.0),
                                 SimTime::from_seconds(5.0));
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact.front()->time, SimTime::from_seconds(5.0));
  EXPECT_TRUE(store
                  .range(Namespace::kWorkflow, "m", SimTime::zero(),
                         SimTime::from_seconds(4.0))
                  .empty());
  EXPECT_TRUE(store
                  .range(Namespace::kWorkflow, "m", SimTime::from_seconds(6.0),
                         SimTime::from_seconds(10.0))
                  .empty());

  // from == to between records selects nothing; an inverted window is empty.
  store.append(Namespace::kWorkflow, "m", SimTime::from_seconds(7.0),
               value_node(7.0));
  EXPECT_TRUE(store
                  .range(Namespace::kWorkflow, "m", SimTime::from_seconds(6.0),
                         SimTime::from_seconds(6.0))
                  .empty());
  EXPECT_TRUE(store
                  .range(Namespace::kWorkflow, "m", SimTime::from_seconds(7.0),
                         SimTime::from_seconds(5.0))
                  .empty());
}

TEST(DataStoreTest, SourcesSorted) {
  DataStore store;
  store.append(Namespace::kHardware, "cn0003", SimTime::zero(), {});
  store.append(Namespace::kHardware, "cn0001", SimTime::zero(), {});
  EXPECT_EQ(store.sources(Namespace::kHardware),
            (std::vector<std::string>{"cn0001", "cn0003"}));
}

TEST(DataStoreTest, IngestedBytesTracked) {
  DataStore store;
  datamodel::Node big;
  big["text"].set(std::string(1000, 'x'));
  const std::size_t size = big.packed_size();
  store.append(Namespace::kPerformance, "t", SimTime::zero(), std::move(big));
  EXPECT_EQ(store.ingested_bytes(Namespace::kPerformance), size);
}

// ---------- SomaService + SomaClient over RPC ----------

class ServiceTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
};

TEST_F(ServiceTest, RankPartitioning) {
  ServiceConfig config;
  config.ranks_per_namespace = 3;
  config.namespaces = {Namespace::kWorkflow, Namespace::kHardware};
  SomaService service(network, {0, 1}, config);

  EXPECT_EQ(service.total_ranks(), 6);
  EXPECT_EQ(service.instances().size(), 2u);
  EXPECT_EQ(service.instance(Namespace::kWorkflow).ranks.size(), 3u);
  EXPECT_EQ(service.instance(Namespace::kHardware).ranks.size(), 3u);
  EXPECT_THROW(service.instance(Namespace::kPerformance), ConfigError);

  // Ranks spread round-robin across nodes 0 and 1.
  int on_node0 = 0;
  for (const auto& info : service.instances()) {
    for (const auto& address : info.ranks) {
      if (net::address_node(address) == 0) ++on_node0;
    }
  }
  EXPECT_EQ(on_node0, 3);
}

TEST_F(ServiceTest, PublishStoresRecord) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);

  bool acked = false;
  client.publish("cn0001", value_node(0.42), [&] { acked = true; });
  simulation.run();

  EXPECT_TRUE(acked);
  EXPECT_EQ(service.publishes_received(), 1u);
  const TimedRecord* record =
      service.store().latest(Namespace::kHardware, "cn0001");
  ASSERT_NE(record, nullptr);
  EXPECT_DOUBLE_EQ(record->data.fetch_existing("v").as_float64(), 0.42);
}

TEST_F(ServiceTest, PublishGoesToDeclaredNamespaceOnly) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kWorkflow,
                    service.instance(Namespace::kWorkflow).ranks);
  client.publish("rp_monitor", value_node(1.0));
  simulation.run();
  EXPECT_EQ(service.store().record_count(Namespace::kWorkflow), 1u);
  EXPECT_EQ(service.store().record_count(Namespace::kHardware), 0u);
}

TEST_F(ServiceTest, SourceAffinityIsStable) {
  ServiceConfig config;
  config.ranks_per_namespace = 4;
  SomaService service(network, {0}, config);
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  // Same source published many times: records stay ordered in one series.
  for (int i = 0; i < 10; ++i) {
    client.publish("cn0007", value_node(i));
  }
  simulation.run();
  const auto series = service.store().series(Namespace::kHardware, "cn0007");
  ASSERT_EQ(series.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(series[static_cast<std::size_t>(i)]
                         ->data.fetch_existing("v")
                         .as_float64(),
                     i);
  }
}

TEST_F(ServiceTest, ClientStatsTrackAcks) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  client.publish("a", value_node(1.0));
  client.publish("b", value_node(2.0));
  simulation.run();
  EXPECT_EQ(client.stats().published, 2u);
  EXPECT_EQ(client.stats().acked, 2u);
  EXPECT_GT(client.stats().mean_ack_latency(), Duration::zero());
  EXPECT_GE(client.stats().max_ack_latency, client.stats().mean_ack_latency());
}

TEST_F(ServiceTest, QueryLatest) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  client.publish("cn0002", value_node(0.5));

  datamodel::Node reply;
  datamodel::Node request;
  request["kind"].set("latest");
  request["ns"].set("hardware");
  request["source"].set("cn0002");
  client.query(std::move(request),
               [&](datamodel::Node r) { reply = std::move(r); });
  simulation.run();
  ASSERT_TRUE(reply.has_path("data/v"));
  EXPECT_DOUBLE_EQ(reply.fetch_existing("data/v").as_float64(), 0.5);
}

TEST_F(ServiceTest, QueryLatestUnknownSourceReturnsError) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  datamodel::Node request;
  request["kind"].set("latest");
  request["ns"].set("hardware");
  request["source"].set("ghost");
  datamodel::Node reply;
  client.query(std::move(request),
               [&](datamodel::Node r) { reply = std::move(r); });
  simulation.run();
  EXPECT_TRUE(reply.has_child("error"));
}

TEST_F(ServiceTest, QuerySourcesAndStats) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  client.publish("cn0001", value_node(1.0));
  client.publish("cn0001", value_node(2.0));
  client.publish("cn0002", value_node(3.0));

  datamodel::Node sources_reply, stats_reply;
  datamodel::Node request;
  request["kind"].set("sources");
  request["ns"].set("hardware");
  client.query(std::move(request),
               [&](datamodel::Node r) { sources_reply = std::move(r); });
  datamodel::Node stats_request;
  stats_request["kind"].set("stats");
  client.query(std::move(stats_request),
               [&](datamodel::Node r) { stats_reply = std::move(r); });
  simulation.run();

  EXPECT_EQ(sources_reply.fetch_existing("sources/cn0001").as_int64(), 2);
  EXPECT_EQ(sources_reply.fetch_existing("sources/cn0002").as_int64(), 1);
  EXPECT_EQ(stats_reply.fetch_existing("hardware/records").as_int64(), 3);
  EXPECT_GT(stats_reply.fetch_existing("hardware/bytes").as_int64(), 0);
}

TEST_F(ServiceTest, SaturationShowsQueueDelay) {
  ServiceConfig config;
  config.ranks_per_namespace = 1;
  config.cost.base = Duration::milliseconds(5);
  SomaService service(network, {0}, config);
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  // 20 publishes back to back on a 5 ms/request rank: heavy queueing.
  for (int i = 0; i < 20; ++i) client.publish("cn0001", value_node(i));
  simulation.run();
  EXPECT_GE(service.max_queue_delay(), Duration::milliseconds(50));
  const net::EngineStats stats = service.instance_stats(Namespace::kHardware);
  EXPECT_EQ(stats.requests_handled, 20u);
  EXPECT_GT(stats.total_queue_delay, Duration::zero());
}

TEST_F(ServiceTest, MoreRanksReduceQueueDelay) {
  auto run_with_ranks = [&](int ranks) {
    sim::Simulation sim;
    net::Network net{sim, net::NetworkConfig{}};
    ServiceConfig config;
    config.ranks_per_namespace = ranks;
    config.cost.base = Duration::milliseconds(5);
    SomaService service(net, {0}, config);
    std::vector<std::unique_ptr<SomaClient>> clients;
    for (int i = 0; i < 16; ++i) {
      clients.push_back(std::make_unique<SomaClient>(
          net, 1, 5000 + i, Namespace::kHardware,
          service.instance(Namespace::kHardware).ranks));
      clients.back()->publish("cn" + std::to_string(i), value_node(i));
    }
    sim.run();
    return service.max_queue_delay();
  };
  EXPECT_GT(run_with_ranks(1), run_with_ranks(8));
}

TEST_F(ServiceTest, InSituAnalyzerOverRpc) {
  SomaService service(network, {0});
  service.register_analyzer("count", [](const StoreView& view) {
    datamodel::Node result;
    result["total"].set(static_cast<std::int64_t>(view.total_records()));
    return result;
  });
  EXPECT_EQ(service.analyzer_names(), (std::vector<std::string>{"count"}));

  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  client.publish("cn0001", value_node(1.0));
  client.publish("cn0001", value_node(2.0));

  datamodel::Node request;
  request["kind"].set("analyze");
  request["analyzer"].set("count");
  datamodel::Node reply;
  client.query(std::move(request),
               [&](datamodel::Node r) { reply = std::move(r); });
  simulation.run();
  EXPECT_EQ(reply.fetch_existing("result/total").as_int64(), 2);
}

TEST_F(ServiceTest, UnknownAnalyzerReturnsError) {
  SomaService service(network, {0});
  SomaClient client(network, 1, 5000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  datamodel::Node request;
  request["kind"].set("analyze");
  request["analyzer"].set("ghost");
  datamodel::Node reply;
  client.query(std::move(request),
               [&](datamodel::Node r) { reply = std::move(r); });
  simulation.run();
  EXPECT_TRUE(reply.has_child("error"));
}

TEST_F(ServiceTest, DuplicateAnalyzerRejected) {
  SomaService service(network, {0});
  auto analyzer = [](const StoreView&) { return datamodel::Node{}; };
  service.register_analyzer("a", analyzer);
  EXPECT_THROW(service.register_analyzer("a", analyzer), ConfigError);
  EXPECT_THROW(service.register_analyzer("b", nullptr), ConfigError);
}

TEST_F(ServiceTest, InvalidConstruction) {
  EXPECT_THROW(SomaService(network, {}), ConfigError);
  ServiceConfig config;
  config.ranks_per_namespace = 0;
  EXPECT_THROW(SomaService(network, {0}, config), ConfigError);
}

TEST_F(ServiceTest, ClientRequiresRanks) {
  EXPECT_THROW(SomaClient(network, 0, 5000, Namespace::kHardware, {}),
               InternalError);
}

}  // namespace
}  // namespace soma::core
