// Shard replication, heartbeat failure detection, and crash recovery.
//
// The acceptance bar: with factor-2 replication and a crash window covering
// more than 10% of the run, the final merged StoreView is identical to the
// fault-free run for BOTH storage backends — zero record loss — and the
// recovered rank serves complete reads from its own primary after re-sync.
// Every suite name contains "Replication" so the CI fault-matrix leg picks
// the lot up with `ctest --tests-regex "Fault|Replication"`; like the fault
// matrix, the crash seeds can be shifted via SOMA_FAULT_SEED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"
#include "soma/export.hpp"
#include "soma/namespaces.hpp"
#include "soma/replication.hpp"
#include "soma/service.hpp"
#include "soma/store.hpp"

namespace soma {
namespace {

using core::ClientReliability;
using core::Namespace;
using core::RankHealth;
using core::ReplicationConfig;
using core::ServiceConfig;
using core::SomaClient;
using core::SomaService;
using core::StorageBackend;
using core::StorageBackendKind;
using core::TimedRecord;

datamodel::Node value_node(double v) {
  datamodel::Node node;
  node["v"].set(v);
  return node;
}

std::uint64_t matrix_seed() {
  if (const char* env = std::getenv("SOMA_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1234;
}

/// Source names that land on the given shard of a 2-shard group (the FNV
/// route is platform-stable, so this is deterministic everywhere).
std::vector<std::string> sources_on_shard(int shard, int want) {
  std::vector<std::string> out;
  for (int i = 0; out.size() < static_cast<std::size_t>(want); ++i) {
    std::string name = "cn" + std::to_string(1000 + i);
    if (core::route_source(name, 2) == static_cast<std::size_t>(shard)) {
      out.push_back(std::move(name));
    }
  }
  return out;
}

/// Tight heartbeat settings so tests detect crashes and recoveries within
/// fractions of a simulated second instead of the deployment-scale 5 s.
ReplicationConfig fast_replication(int factor) {
  ReplicationConfig replication;
  replication.factor = factor;
  replication.heartbeat_period = Duration::milliseconds(200);
  replication.heartbeat_timeout = Duration::milliseconds(100);
  return replication;
}

// ---------- off-by-default parity ----------

struct PlainRunOutcome {
  std::uint64_t events = 0;
  std::int64_t final_nanos = 0;
  std::uint64_t publishes = 0;
  std::uint64_t records = 0;
  bool operator==(const PlainRunOutcome&) const = default;
};

PlainRunOutcome run_unreplicated(const ReplicationConfig& replication) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.replication = replication;
  SomaService service(network, {0}, service_config);
  SomaClient client(network, 1, 6000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);
  for (int i = 0; i < 10; ++i) {
    simulation.schedule_at(SimTime::from_seconds(1.0 * (i + 1)),
                           [&client, i] {
                             client.publish("cn" + std::to_string(1000 + i),
                                            value_node(i));
                           });
  }
  PlainRunOutcome outcome;
  outcome.final_nanos = simulation.run().nanos();
  outcome.events = simulation.events_dispatched();
  outcome.publishes = service.publishes_received();
  outcome.records = service.store().total_records();
  return outcome;
}

TEST(ReplicationConfigTest, FactorOneConstructsNothing) {
  // Factor 1 must not build a manager, arm heartbeats, or perturb the run in
  // any way — even with every other replication knob set to something loud.
  ReplicationConfig noisy;
  noisy.factor = 1;
  noisy.seed = 999;
  noisy.heartbeat_period = Duration::milliseconds(1);
  noisy.heartbeat_timeout = Duration::milliseconds(1);

  const PlainRunOutcome plain = run_unreplicated(ReplicationConfig{});
  const PlainRunOutcome loud = run_unreplicated(noisy);
  EXPECT_EQ(plain, loud);
  EXPECT_EQ(plain.publishes, 10u);

  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  SomaService service(network, {0}, service_config);
  EXPECT_EQ(service.replication(), nullptr);
}

TEST(ReplicationConfigTest, FactorRequiresOneShardPerRank) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.storage.shards_per_namespace = 1;  // fewer shards than ranks
  service_config.replication.factor = 2;
  EXPECT_THROW(SomaService(network, {0}, service_config), ConfigError);
}

// ---------- steady-state replication ----------

class ReplicationPipelineTest : public ::testing::Test {
 protected:
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};

  /// Run to `horizon`, then stop heartbeats and drain in-flight frames.
  void drain(SomaService& service, double horizon_s = 10.0) {
    simulation.run_until(SimTime::from_seconds(horizon_s));
    service.replication()->stop();
    simulation.run();
  }

  /// Every shard's replica (on its successor) must mirror the primary:
  /// same record count, same sources, same values in order.
  void expect_replicas_mirror_primaries(const SomaService& service) {
    const core::ReplicationManager* replication = service.replication();
    ASSERT_NE(replication, nullptr);
    for (int shard = 0; shard < 2; ++shard) {
      const StorageBackend& primary =
          service.store().shard(Namespace::kHardware, shard);
      const StorageBackend* replica =
          replication->replica(Namespace::kHardware, shard, (shard + 1) % 2);
      ASSERT_NE(replica, nullptr) << "shard " << shard;
      EXPECT_EQ(replica->record_count(), primary.record_count())
          << "shard " << shard;
      ASSERT_EQ(replica->sources(), primary.sources()) << "shard " << shard;
      for (const std::string& source : primary.sources()) {
        const auto primary_series = primary.series(source);
        const auto replica_series = replica->series(source);
        ASSERT_EQ(replica_series.size(), primary_series.size()) << source;
        for (std::size_t i = 0; i < primary_series.size(); ++i) {
          EXPECT_EQ(replica_series[i]->time, primary_series[i]->time);
          EXPECT_EQ(
              replica_series[i]->data.fetch_existing("v").as_float64(),
              primary_series[i]->data.fetch_existing("v").as_float64());
        }
      }
    }
  }
};

TEST_F(ReplicationPipelineTest, SinglePublishesReachSuccessorReplica) {
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.replication = fast_replication(2);
  SomaService service(network, {0}, service_config);
  SomaClient client(network, 1, 6000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);

  // Sources on both shards, so both replication directions carry traffic.
  const auto on0 = sources_on_shard(0, 2);
  const auto on1 = sources_on_shard(1, 2);
  int published = 0;
  for (int i = 0; i < 3; ++i) {
    for (const auto* group : {&on0, &on1}) {
      for (const std::string& source : *group) {
        simulation.schedule_at(
            SimTime::from_seconds(0.1 * (published + 1)),
            [&client, source, published] {
              client.publish(source, value_node(published));
            });
        ++published;
      }
    }
  }
  drain(service);

  EXPECT_EQ(service.publishes_received(), 12u);
  expect_replicas_mirror_primaries(service);
  const auto& stats = service.replication()->stats();
  EXPECT_EQ(stats.records_replicated, 12u);
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_EQ(stats.crash_wipes, 0u);
  EXPECT_EQ(service.replication()->replica_lag(Namespace::kHardware, 0), 0u);
  EXPECT_EQ(service.replication()->replica_lag(Namespace::kHardware, 1), 0u);
}

TEST_F(ReplicationPipelineTest, BatchedPublishesReachSuccessorReplica) {
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.replication = fast_replication(2);
  SomaService service(network, {0}, service_config);
  core::BatchingConfig batching;
  batching.max_records = 8;
  SomaClient client(network, 1, 6000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks, {},
                    batching);

  const auto on0 = sources_on_shard(0, 1);
  const auto on1 = sources_on_shard(1, 1);
  simulation.schedule_at(SimTime::from_seconds(1.0), [&] {
    for (int i = 0; i < 16; ++i) {
      client.publish(on0[0], value_node(i));
      client.publish(on1[0], value_node(100 + i));
    }
    client.flush_batches();
  });
  drain(service);

  EXPECT_EQ(service.publishes_received(), 32u);
  expect_replicas_mirror_primaries(service);
  EXPECT_EQ(service.replication()->stats().records_replicated, 32u);
}

// ---------- failure detection + read routing ----------

TEST_F(ReplicationPipelineTest, DeadRankReadsServedByReplica) {
  net::FaultInjector& injector = network.install_faults(net::FaultConfig{});
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.replication = fast_replication(2);
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks);

  const std::string source = sources_on_shard(0, 1)[0];
  for (int i = 0; i < 8; ++i) {
    simulation.schedule_at(SimTime::from_seconds(0.2 * (i + 1)),
                           [&client, source, i] {
                             client.publish(source, value_node(i));
                           });
  }
  // Rank 0 (the source's home) dies at t=5 and never comes back.
  injector.crash_endpoint(ranks[0], SimTime::from_seconds(5.0),
                          SimTime::from_seconds(1e6));
  simulation.run_until(SimTime::from_seconds(20.0));

  const core::ReplicationManager* replication = service.replication();
  EXPECT_EQ(replication->health(Namespace::kHardware, 0), RankHealth::kDead);
  EXPECT_EQ(replication->health(Namespace::kHardware, 1), RankHealth::kLive);
  EXPECT_GE(replication->stats().suspected_transitions, 1u);
  EXPECT_GE(replication->stats().dead_transitions, 1u);
  EXPECT_EQ(replication->stats().crash_wipes, 1u);

  // The crashed rank lost its memory, but the merged view still serves the
  // full series from the successor's replica.
  const auto series = service.store_view().series(Namespace::kHardware,
                                                  source);
  ASSERT_EQ(series.size(), 8u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i]->data.fetch_existing("v").as_float64(),
              static_cast<double>(i));
  }
  // Ground truth: the primary really is empty — the records come from the
  // read override, not a surviving primary.
  EXPECT_EQ(service.store().shard(Namespace::kHardware, 0).record_count(),
            0u);
}

// ---------- crash recovery: the zero-loss acceptance bar ----------

struct RecoveryOutcome {
  std::map<std::string, std::vector<double>> values;
  std::map<std::string, std::vector<std::int64_t>> times;
  std::uint64_t store_records = 0;
  core::ReplicationStats stats{};
  bool operator==(const RecoveryOutcome&) const = default;
};

RecoveryOutcome run_recovery_scenario(StorageBackendKind backend,
                                      bool with_crash, std::uint64_t seed) {
  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  net::FaultConfig fault_config;
  fault_config.seed = seed;
  net::FaultInjector& injector = network.install_faults(fault_config);

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.storage.backend = backend;
  service_config.replication = fast_replication(2);
  service_config.replication.seed = seed;
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;

  // Rank 0 is down for [20, 29.5) — ~16% of the 60 s run, comfortably past
  // the 10% bar. The window ends off the 2 s publish grid so recovery and
  // client replay never race a publish instant.
  if (with_crash) {
    injector.crash_endpoint(ranks[0], SimTime::from_seconds(20.0),
                            SimTime::from_seconds(29.5));
  }

  // Buffer-and-replay clients (the PR 2 machinery): publishes that hit the
  // crash window are parked and replayed once the rank answers probes again.
  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability);

  // Two sources per shard, one publish every 2 s each for 60 s.
  std::vector<std::string> sources = sources_on_shard(0, 2);
  for (std::string& s : sources_on_shard(1, 2)) sources.push_back(s);
  for (int i = 0; i < 30; ++i) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const std::string source = sources[s];
      const double value = static_cast<double>(i * 10 + s);
      simulation.schedule_at(SimTime::from_seconds(2.0 * (i + 1)),
                             [&client, source, value] {
                               client.publish(source, value_node(value));
                             });
    }
  }

  simulation.run_until(SimTime::from_seconds(70.0));
  service.replication()->stop();
  simulation.run();

  RecoveryOutcome outcome;
  const core::StoreView view = service.store_view();
  for (const std::string& source : sources) {
    for (const TimedRecord* record : view.series(Namespace::kHardware,
                                                 source)) {
      outcome.values[source].push_back(
          record->data.fetch_existing("v").as_float64());
      outcome.times[source].push_back(record->time.nanos());
    }
  }
  outcome.store_records = service.store().total_records();
  outcome.stats = service.replication()->stats();
  return outcome;
}

class ReplicationRecoveryTest
    : public ::testing::TestWithParam<StorageBackendKind> {};

TEST_P(ReplicationRecoveryTest, CrashWindowLosesNothing) {
  const StorageBackendKind backend = GetParam();
  const std::uint64_t seed = matrix_seed();
  const RecoveryOutcome faulty = run_recovery_scenario(backend, true, seed);
  const RecoveryOutcome clean = run_recovery_scenario(backend, false, seed);

  // Zero loss: the merged view is value-identical to the fault-free run —
  // pre-crash records restored by resync, in-window ones by client replay.
  EXPECT_EQ(faulty.values, clean.values);
  EXPECT_EQ(faulty.store_records, 120u);
  for (const auto& [source, clean_times] : clean.times) {
    const auto& faulty_times = faulty.times.at(source);
    ASSERT_EQ(faulty_times.size(), clean_times.size()) << source;
    for (std::size_t i = 0; i < clean_times.size(); ++i) {
      // Replayed records carry their original publish timestamps; live ones
      // differ from the clean run only by per-run microsecond jitter.
      EXPECT_NEAR(static_cast<double>(faulty_times[i]),
                  static_cast<double>(clean_times[i]), 1e6)
          << source << " record " << i;
    }
  }

  // The crash and the recovery actually happened.
  EXPECT_EQ(faulty.stats.crash_wipes, 1u);
  EXPECT_EQ(faulty.stats.recoveries_started, 1u);
  EXPECT_EQ(faulty.stats.recoveries_completed, 1u);
  EXPECT_GT(faulty.stats.resync_records, 0u);
  EXPECT_EQ(clean.stats.crash_wipes, 0u);
  EXPECT_EQ(clean.stats.resync_records, 0u);
}

TEST_P(ReplicationRecoveryTest, RecoveredRankServesCompletePrimaryReads) {
  const StorageBackendKind backend = GetParam();
  const std::uint64_t seed = matrix_seed() + 17;

  sim::Simulation simulation;
  net::Network network{simulation, net::NetworkConfig{}};
  net::FaultConfig fault_config;
  fault_config.seed = seed;
  net::FaultInjector& injector = network.install_faults(fault_config);

  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.storage.backend = backend;
  service_config.replication = fast_replication(2);
  SomaService service(network, {0}, service_config);
  const auto& ranks = service.instance(Namespace::kHardware).ranks;
  injector.crash_endpoint(ranks[0], SimTime::from_seconds(10.0),
                          SimTime::from_seconds(15.25));

  ClientReliability reliability;
  reliability.retry.max_attempts = 2;
  reliability.retry.timeout = Duration::milliseconds(50);
  reliability.buffer_on_failure = true;
  reliability.probe_period = Duration::seconds(1);
  SomaClient client(network, 1, 6000, Namespace::kHardware, ranks,
                    reliability);

  const std::string source = sources_on_shard(0, 1)[0];
  for (int i = 0; i < 15; ++i) {
    simulation.schedule_at(SimTime::from_seconds(2.0 * (i + 1)),
                           [&client, source, i] {
                             client.publish(source, value_node(i));
                           });
  }
  simulation.run_until(SimTime::from_seconds(40.0));
  service.replication()->stop();
  simulation.run();

  // Back in the read set, reading from its own primary — which holds the
  // complete series (resync + replay), time-sorted.
  EXPECT_EQ(service.replication()->health(Namespace::kHardware, 0),
            RankHealth::kLive);
  const StorageBackend& primary =
      service.store().shard(Namespace::kHardware, 0);
  const auto series = primary.series(source);
  ASSERT_EQ(series.size(), 15u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i]->data.fetch_existing("v").as_float64(),
              static_cast<double>(i));
    if (i > 0) EXPECT_LE(series[i - 1]->time, series[i]->time);
  }
  // Its replicas healed too: the other primary re-shipped its log, and the
  // recovered rank's own log re-replicated to its successor.
  EXPECT_EQ(service.replication()->replica_lag(Namespace::kHardware, 0), 0u);
  EXPECT_EQ(service.replication()->replica_lag(Namespace::kHardware, 1), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReplicationRecoveryTest,
                         ::testing::Values(StorageBackendKind::kMap,
                                           StorageBackendKind::kLog),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

// ---------- determinism ----------

TEST(ReplicationDeterminismTest, SameSeedReplicatedRunsAreBitIdentical) {
  const std::uint64_t seed = matrix_seed() + 99;
  const RecoveryOutcome first =
      run_recovery_scenario(StorageBackendKind::kMap, true, seed);
  const RecoveryOutcome second =
      run_recovery_scenario(StorageBackendKind::kMap, true, seed);
  EXPECT_EQ(first.values, second.values);
  EXPECT_EQ(first.times, second.times);
  EXPECT_EQ(first.store_records, second.store_records);
  EXPECT_EQ(first.stats.records_replicated, second.stats.records_replicated);
  EXPECT_EQ(first.stats.frames_sent, second.stats.frames_sent);
  EXPECT_EQ(first.stats.heartbeats_sent, second.stats.heartbeats_sent);
  EXPECT_EQ(first.stats.heartbeats_missed, second.stats.heartbeats_missed);
  EXPECT_EQ(first.stats.resync_records, second.stats.resync_records);
}

// ---------- observability: export + shards query ----------

TEST_F(ReplicationPipelineTest, ShardReportAndQueryCarryReplicaLag) {
  ServiceConfig service_config;
  service_config.namespaces = {Namespace::kHardware};
  service_config.ranks_per_namespace = 2;
  service_config.replication = fast_replication(2);
  SomaService service(network, {0}, service_config);
  SomaClient client(network, 1, 6000, Namespace::kHardware,
                    service.instance(Namespace::kHardware).ranks);

  const auto on0 = sources_on_shard(0, 1);
  const auto on1 = sources_on_shard(1, 1);
  simulation.schedule_at(SimTime::from_seconds(1.0), [&] {
    for (int i = 0; i < 4; ++i) {
      client.publish(on0[0], value_node(i));
      client.publish(on1[0], value_node(i));
    }
  });
  datamodel::Node shards_reply;
  simulation.schedule_at(SimTime::from_seconds(5.0), [&] {
    datamodel::Node request;
    request["kind"].set(std::string("shards"));
    client.query(std::move(request),
                 [&](datamodel::Node reply) { shards_reply = reply; });
  });
  drain(service);

  const datamodel::Node report =
      core::export_shard_report(service.store(), service.replication());
  const datamodel::Node& hw = report.fetch_existing("hardware");
  for (int shard = 0; shard < 2; ++shard) {
    const datamodel::Node& entry =
        hw.fetch_existing("shard_" + std::to_string(shard));
    EXPECT_EQ(entry.fetch_existing("replica_lag_records").as_int64(), 0);
    EXPECT_EQ(entry.fetch_existing("health").as_string(), "live");
  }
  const datamodel::Node& summary = report.fetch_existing("replication");
  EXPECT_EQ(summary.fetch_existing("factor").as_int64(), 2);
  EXPECT_EQ(summary.fetch_existing("records_replicated").as_int64(), 8);
  EXPECT_EQ(summary.fetch_existing("crash_wipes").as_int64(), 0);

  // The remote "shards" query carries the same per-shard fields.
  const datamodel::Node& remote = shards_reply.fetch_existing("hardware");
  for (int shard = 0; shard < 2; ++shard) {
    const datamodel::Node& slot =
        remote.fetch_existing("shard_" + std::to_string(shard));
    EXPECT_TRUE(slot.find_child("replica_lag_records") != nullptr);
    EXPECT_EQ(slot.fetch_existing("health").as_string(), "live");
  }

  // Unreplicated stores report no replication subtree (and the query slots
  // stay as they were — the byte-parity contract).
  const datamodel::Node plain = core::export_shard_report(service.store());
  EXPECT_EQ(plain.find_child("replication"), nullptr);
}

}  // namespace
}  // namespace soma
