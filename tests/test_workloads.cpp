// Unit + property tests for the workload models (OpenFOAM, DDMD mini-app).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "workloads/ddmd.hpp"
#include "workloads/openfoam.hpp"

namespace soma::workloads {
namespace {

rp::Placement single_node_placement(int ranks, NodeId node = 0) {
  rp::Placement placement;
  for (int r = 0; r < ranks; ++r) {
    placement.ranks.push_back(
        rp::RankPlacement{.node = node, .cores = {static_cast<CoreId>(r)}});
  }
  return placement;
}

rp::Placement spread_placement(int ranks, int nodes) {
  rp::Placement placement;
  for (int r = 0; r < ranks; ++r) {
    placement.ranks.push_back(rp::RankPlacement{
        .node = static_cast<NodeId>(r % nodes), .cores = {static_cast<CoreId>(r)}});
  }
  return placement;
}

// ---------- OpenFOAM ----------

TEST(OpenFoamTest, StrongScalingShape) {
  OpenFoamModel model(nullptr);
  const double t20 = model.ideal_seconds(20);
  const double t41 = model.ideal_seconds(41);
  const double t82 = model.ideal_seconds(82);
  const double t164 = model.ideal_seconds(164);
  // Fig. 4: clear gains up to 82 ranks, little beyond ("limited benefit to
  // scaling beyond two nodes").
  EXPECT_GT(t20, t41);
  EXPECT_GT(t41, t82);
  const double gain_41_82 = t41 - t82;
  const double gain_82_164 = t82 - t164;
  EXPECT_LT(gain_82_164, 0.35 * gain_41_82);
}

TEST(OpenFoamTest, IdealTimePositiveAndFiniteAcrossRange) {
  OpenFoamModel model(nullptr);
  for (int ranks : {1, 2, 10, 100, 1000}) {
    const double t = model.ideal_seconds(ranks);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1e5);
  }
}

TEST(OpenFoamTest, SampleDurationIsNoisyButCentered) {
  OpenFoamModel model(nullptr);
  rp::TaskDescription task{.uid = "t", .ranks = 41};
  const auto placement = single_node_placement(41);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(
        model.sample_duration(task, placement, rng).to_seconds());
  }
  const Summary s = summarize(samples);
  const double expected =
      model.ideal_seconds(41) * model.contention_multiplier(placement);
  EXPECT_NEAR(s.median, expected, expected * 0.05);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(OpenFoamTest, SelfContentionPenalizesPacking) {
  OpenFoamModel model(nullptr);  // no platform: self-density only
  const double packed =
      model.contention_multiplier(single_node_placement(40));
  const double spread = model.contention_multiplier(spread_placement(40, 5));
  EXPECT_GT(packed, spread);
}

TEST(OpenFoamTest, CrossNodePenaltyExists) {
  OpenFoamParams params;
  params.self_contention = 0.0;  // isolate the cross-node term
  OpenFoamModel model(nullptr, params);
  const double one = model.contention_multiplier(single_node_placement(8));
  const double four = model.contention_multiplier(spread_placement(8, 4));
  EXPECT_GT(four, one);
  EXPECT_NEAR(four - one, params.cross_node_penalty * 3.0, 1e-12);
}

TEST(OpenFoamTest, OtherTaskContentionReadsPlatform) {
  sim::Simulation simulation;
  cluster::Platform platform(simulation, cluster::summit(1));
  OpenFoamModel model(&platform);
  const auto placement = single_node_placement(10);

  const double idle_node = model.contention_multiplier(placement);
  platform.node(0).allocate_cores(30, "other-task");
  const double busy_node = model.contention_multiplier(placement);
  EXPECT_GT(busy_node, idle_node);
}

TEST(OpenFoamTest, RankBreakdownSumsToTotal) {
  OpenFoamModel model(nullptr);
  const double total = 120.0;
  for (int rank = 0; rank < 164; ++rank) {
    const auto b = model.rank_breakdown(rank, 164, total);
    EXPECT_NEAR(b.total(), total, 1e-9) << "rank " << rank;
    EXPECT_GE(b.compute, 0.0);
    EXPECT_GE(b.mpi_recv, 0.0);
    EXPECT_GE(b.mpi_waitall, 0.0);
    EXPECT_GE(b.mpi_allreduce, 0.0);
  }
}

TEST(OpenFoamTest, RankBreakdownShape) {
  OpenFoamModel model(nullptr);
  const double total = 100.0;
  const auto rank0 = model.rank_breakdown(0, 164, total);
  const auto mid = model.rank_breakdown(82, 164, total);
  // Interior ranks compute more; boundary ranks wait more (Fig. 5).
  EXPECT_GT(mid.compute, rank0.compute);
  // Rank 0 skews to MPI_Waitall.
  EXPECT_GT(rank0.mpi_waitall, mid.mpi_waitall);
  // Communication is a substantial share everywhere.
  EXPECT_GT((mid.mpi_recv + mid.mpi_waitall) / total, 0.2);
}

TEST(OpenFoamTest, RankBreakdownBoundsChecked) {
  OpenFoamModel model(nullptr);
  EXPECT_THROW(model.rank_breakdown(164, 164, 10.0), InternalError);
  EXPECT_THROW(model.rank_breakdown(-1, 164, 10.0), InternalError);
  EXPECT_THROW(model.ideal_seconds(0), InternalError);
}

TEST(OpenFoamTest, SingleRankBreakdownWellDefined) {
  OpenFoamModel model(nullptr);
  const auto b = model.rank_breakdown(0, 1, 50.0);
  EXPECT_NEAR(b.total(), 50.0, 1e-9);
}

// Property: for any rank count, per-rank totals are equal (TAU samples the
// same wall time on every rank) and MPI fraction is within (0, 1).
class OpenFoamBreakdownProperty : public ::testing::TestWithParam<int> {};

TEST_P(OpenFoamBreakdownProperty, ConsistentAcrossRanks) {
  OpenFoamModel model(nullptr);
  const int ranks = GetParam();
  const double total = 200.0;
  for (int r = 0; r < ranks; ++r) {
    const auto b = model.rank_breakdown(r, ranks, total);
    EXPECT_NEAR(b.total(), total, 1e-9);
    const double mpi = b.mpi_recv + b.mpi_waitall + b.mpi_allreduce;
    EXPECT_GT(mpi, 0.0);
    EXPECT_LT(mpi, total);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, OpenFoamBreakdownProperty,
                         ::testing::Values(1, 2, 20, 41, 82, 164));

// ---------- DDMD ----------

TEST(DdmdTest, StageNames) {
  EXPECT_EQ(to_string(DdmdStage::kSimulation), "sim");
  EXPECT_EQ(to_string(DdmdStage::kTraining), "train");
  EXPECT_EQ(to_string(DdmdStage::kSelection), "select");
  EXPECT_EQ(to_string(DdmdStage::kAgent), "agent");
}

TEST(DdmdTest, GpuStagesInsensitiveToCores) {
  DdmdParams params;
  DdmdStageModel sim_model(DdmdStage::kSimulation, params);
  const double t1 = sim_model.ideal_seconds(1);
  const double t7 = sim_model.ideal_seconds(7);
  // Paper Fig. 9 finding: "the effect of using fewer CPU cores per task was
  // minimal" — within the configured sensitivity.
  EXPECT_GT(t1, t7);
  EXPECT_LT((t1 - t7) / t7, params.cpu_core_sensitivity + 1e-9);
}

TEST(DdmdTest, TrainingParallelizes) {
  DdmdParams params;
  DdmdStageModel one(DdmdStage::kTraining, params, 1);
  DdmdStageModel four(DdmdStage::kTraining, params, 4);
  EXPECT_LT(four.ideal_seconds(7), one.ideal_seconds(7));
  // ...but not perfectly: MPI_Reduce sync overhead.
  EXPECT_GT(four.ideal_seconds(7), one.ideal_seconds(7) / 4.0);
}

TEST(DdmdTest, SelectionScalesWithCores) {
  DdmdParams params;
  DdmdStageModel select(DdmdStage::kSelection, params);
  EXPECT_GT(select.ideal_seconds(1), select.ideal_seconds(4));
}

TEST(DdmdTest, StageTaskFactory) {
  DdmdParams params;
  const DdmdStageSpec spec{DdmdStage::kSimulation, 12, 3, 1};
  const auto tasks = make_ddmd_stage_tasks(spec, params, 7, 2, 1);
  ASSERT_EQ(tasks.size(), 12u);
  EXPECT_EQ(tasks[0].uid, "p007.ph2.sim.00");
  EXPECT_EQ(tasks[11].uid, "p007.ph2.sim.11");
  EXPECT_EQ(tasks[0].cores_per_rank, 3);
  EXPECT_EQ(tasks[0].gpus_per_rank, 1);
  EXPECT_DOUBLE_EQ(tasks[0].cpu_activity, params.gpu_stage_cpu_activity);
  EXPECT_NE(tasks[0].model, nullptr);
}

TEST(DdmdTest, SelectionIsCpuStage) {
  DdmdParams params;
  const auto stages = ddmd_phase_stages(params, 3, 1, 7);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].stage, DdmdStage::kSimulation);
  EXPECT_EQ(stages[0].tasks, params.sim_tasks);
  EXPECT_EQ(stages[1].stage, DdmdStage::kTraining);
  EXPECT_EQ(stages[2].stage, DdmdStage::kSelection);
  EXPECT_EQ(stages[2].gpus_per_task, 0);  // CPU only (paper §3.2)
  EXPECT_EQ(stages[3].stage, DdmdStage::kAgent);

  const auto select_tasks =
      make_ddmd_stage_tasks(stages[2], params, 0, 0, 1);
  EXPECT_DOUBLE_EQ(select_tasks[0].cpu_activity, params.cpu_stage_activity);
}

TEST(DdmdTest, SampleDurationSeeded) {
  DdmdParams params;
  DdmdStageModel model(DdmdStage::kSimulation, params);
  rp::TaskDescription task{.uid = "t", .ranks = 1, .cores_per_rank = 3};
  const auto placement = single_node_placement(1);
  Rng a(9), b(9);
  EXPECT_EQ(model.sample_duration(task, placement, a),
            model.sample_duration(task, placement, b));
}

// Property: training stage time decreases monotonically in task count up to
// the point where sync overhead wins.
class DdmdTrainProperty : public ::testing::TestWithParam<int> {};

TEST_P(DdmdTrainProperty, MoreTasksNeverSlowerThanHalf) {
  DdmdParams params;
  const int tasks = GetParam();
  DdmdStageModel model(DdmdStage::kTraining, params, tasks);
  const double t = model.ideal_seconds(7);
  DdmdStageModel baseline(DdmdStage::kTraining, params, 1);
  EXPECT_LE(t, baseline.ideal_seconds(7));
  EXPECT_GT(t, 0.0);
}

INSTANTIATE_TEST_SUITE_P(TrainCounts, DdmdTrainProperty,
                         ::testing::Values(1, 2, 4, 6));

}  // namespace
}  // namespace soma::workloads
