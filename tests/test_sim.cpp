// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace soma::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation simulation;
  EXPECT_EQ(simulation.now(), SimTime::zero());
  EXPECT_EQ(simulation.pending(), 0u);
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  simulation.schedule(Duration::seconds(3.0), [&] { order.push_back(3); });
  simulation.schedule(Duration::seconds(1.0), [&] { order.push_back(1); });
  simulation.schedule(Duration::seconds(2.0), [&] { order.push_back(2); });
  simulation.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulation.now().to_seconds(), 3.0);
}

TEST(SimulationTest, TieBrokenByScheduleOrder) {
  Simulation simulation;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulation.schedule(Duration::seconds(1.0), [&, i] { order.push_back(i); });
  }
  simulation.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, ClockAdvancesOnlyAtDispatch) {
  Simulation simulation;
  SimTime seen;
  simulation.schedule(Duration::seconds(5.0),
                      [&] { seen = simulation.now(); });
  EXPECT_EQ(simulation.now(), SimTime::zero());
  simulation.run();
  EXPECT_DOUBLE_EQ(seen.to_seconds(), 5.0);
}

TEST(SimulationTest, NestedScheduling) {
  Simulation simulation;
  std::vector<double> times;
  simulation.schedule(Duration::seconds(1.0), [&] {
    times.push_back(simulation.now().to_seconds());
    simulation.schedule(Duration::seconds(1.0), [&] {
      times.push_back(simulation.now().to_seconds());
    });
  });
  simulation.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(SimulationTest, ScheduleAtAbsoluteTime) {
  Simulation simulation;
  double fired = -1.0;
  simulation.schedule_at(SimTime::from_seconds(7.0),
                         [&] { fired = simulation.now().to_seconds(); });
  simulation.run();
  EXPECT_DOUBLE_EQ(fired, 7.0);
}

TEST(SimulationTest, SchedulingIntoThePastThrows) {
  Simulation simulation;
  simulation.schedule(Duration::seconds(5.0), [] {});
  simulation.run();
  EXPECT_THROW(simulation.schedule_at(SimTime::from_seconds(1.0), [] {}),
               InternalError);
  EXPECT_THROW(simulation.schedule(Duration::seconds(-1.0), [] {}),
               InternalError);
}

TEST(SimulationTest, CancelPreventsDispatch) {
  Simulation simulation;
  bool fired = false;
  EventHandle handle =
      simulation.schedule(Duration::seconds(1.0), [&] { fired = true; });
  handle.cancel();
  simulation.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation simulation;
  int count = 0;
  EventHandle handle =
      simulation.schedule(Duration::seconds(1.0), [&] { ++count; });
  simulation.run();
  handle.cancel();  // must not crash or re-fire
  simulation.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulationTest, CancelledEventDoesNotAdvanceClock) {
  Simulation simulation;
  EventHandle handle = simulation.schedule(Duration::seconds(100.0), [] {});
  simulation.schedule(Duration::seconds(1.0), [] {});
  handle.cancel();
  simulation.run();
  EXPECT_DOUBLE_EQ(simulation.now().to_seconds(), 1.0);
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation simulation;
  std::vector<double> fired;
  for (int i = 1; i <= 5; ++i) {
    simulation.schedule(Duration::seconds(i), [&, i] {
      fired.push_back(static_cast<double>(i));
    });
  }
  simulation.run_until(SimTime::from_seconds(3.0));
  EXPECT_EQ(fired.size(), 3u);  // events at 1, 2, 3 (inclusive)
  EXPECT_DOUBLE_EQ(simulation.now().to_seconds(), 3.0);
  simulation.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation simulation;
  EXPECT_FALSE(simulation.step());
  simulation.schedule(Duration::seconds(1.0), [] {});
  EXPECT_TRUE(simulation.step());
  EXPECT_FALSE(simulation.step());
}

TEST(SimulationTest, DispatchCounter) {
  Simulation simulation;
  for (int i = 0; i < 5; ++i) simulation.schedule(Duration::seconds(i + 1), [] {});
  simulation.run();
  EXPECT_EQ(simulation.events_dispatched(), 5u);
}

// ---------- EventHandle validity (generation-slot semantics) ----------

TEST(EventHandleTest, DefaultHandleIsInvalid) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // must be a safe no-op
}

TEST(EventHandleTest, ValidWhilePendingInvalidAfterFire) {
  Simulation simulation;
  EventHandle handle = simulation.schedule(Duration::seconds(1.0), [] {});
  EXPECT_TRUE(handle.valid());
  simulation.run();
  EXPECT_FALSE(handle.valid());
}

TEST(EventHandleTest, InvalidAfterCancel) {
  Simulation simulation;
  EventHandle handle = simulation.schedule(Duration::seconds(1.0), [] {});
  handle.cancel();
  EXPECT_FALSE(handle.valid());
  simulation.run();
  EXPECT_FALSE(handle.valid());
}

TEST(EventHandleTest, InvalidInsideOwnCallback) {
  Simulation simulation;
  EventHandle handle;
  bool seen_valid = true;
  handle = simulation.schedule(Duration::seconds(1.0),
                               [&] { seen_valid = handle.valid(); });
  simulation.run();
  EXPECT_FALSE(seen_valid);
}

TEST(EventHandleTest, StaleHandleDoesNotTouchRecycledSlot) {
  Simulation simulation;
  EventHandle old_handle = simulation.schedule(Duration::seconds(1.0), [] {});
  simulation.run();  // old event fires; its slot is recycled below
  bool fired = false;
  EventHandle new_handle =
      simulation.schedule(Duration::seconds(1.0), [&] { fired = true; });
  EXPECT_FALSE(old_handle.valid());
  old_handle.cancel();  // stale generation: must not cancel the new event
  EXPECT_TRUE(new_handle.valid());
  simulation.run();
  EXPECT_TRUE(fired);
}

TEST(EventHandleTest, CancelledEventSlotIsRecycledLazily) {
  Simulation simulation;
  // Cancel ahead of a live event; the cancelled entry stays queued (lazy
  // discard) but no longer counts as pending work.
  EventHandle cancelled = simulation.schedule(Duration::seconds(1.0), [] {});
  int fired = 0;
  simulation.schedule(Duration::seconds(2.0), [&] { ++fired; });
  cancelled.cancel();
  EXPECT_EQ(simulation.pending(), 1u);  // only the live event
  simulation.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.events_dispatched(), 1u);
}

TEST(SimulationTest, PendingTracksLiveEventsOnly) {
  Simulation simulation;
  EventHandle a = simulation.schedule(Duration::seconds(1.0), [] {});
  EventHandle b = simulation.schedule(Duration::seconds(2.0), [] {});
  simulation.schedule(Duration::seconds(3.0), [] {});
  EXPECT_EQ(simulation.pending(), 3u);
  a.cancel();
  EXPECT_EQ(simulation.pending(), 2u);
  b.cancel();
  b.cancel();  // double-cancel must not decrement twice
  EXPECT_EQ(simulation.pending(), 1u);
  EXPECT_TRUE(simulation.step());
  EXPECT_EQ(simulation.pending(), 0u);
  EXPECT_FALSE(simulation.step());
}

TEST(SimulationTest, ReserveDoesNotDisturbScheduledEvents) {
  Simulation simulation;
  std::vector<int> order;
  simulation.schedule(Duration::seconds(2.0), [&] { order.push_back(2); });
  simulation.reserve(1024);
  simulation.schedule(Duration::seconds(1.0), [&] { order.push_back(1); });
  EXPECT_EQ(simulation.pending(), 2u);
  simulation.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------- PeriodicTask ----------

TEST(PeriodicTaskTest, TicksAtPeriod) {
  Simulation simulation;
  std::vector<double> ticks;
  PeriodicTask task(simulation, Duration::seconds(10.0), [&] {
    ticks.push_back(simulation.now().to_seconds());
  });
  task.start();
  simulation.run_until(SimTime::from_seconds(35.0));
  // First tick at 0 (no initial delay), then 10, 20, 30.
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.0);
  EXPECT_DOUBLE_EQ(ticks[3], 30.0);
}

TEST(PeriodicTaskTest, InitialDelay) {
  Simulation simulation;
  std::vector<double> ticks;
  PeriodicTask task(simulation, Duration::seconds(10.0), [&] {
    ticks.push_back(simulation.now().to_seconds());
  });
  task.start(Duration::seconds(5.0));
  simulation.run_until(SimTime::from_seconds(26.0));
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 5.0);
  EXPECT_DOUBLE_EQ(ticks[1], 15.0);
}

TEST(PeriodicTaskTest, StopHaltsTicks) {
  Simulation simulation;
  int count = 0;
  PeriodicTask task(simulation, Duration::seconds(1.0), [&] { ++count; });
  task.start();
  simulation.schedule(Duration::seconds(4.5), [&] { task.stop(); });
  simulation.run_until(SimTime::from_seconds(100.0));
  EXPECT_EQ(count, 5);  // ticks at 0,1,2,3,4
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, StopFromInsideTick) {
  Simulation simulation;
  int count = 0;
  PeriodicTask task(simulation, Duration::seconds(1.0), [&] {
    if (++count == 3) task.stop();
  });
  task.start();
  simulation.run_until(SimTime::from_seconds(100.0));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DestructionCancelsPendingTick) {
  Simulation simulation;
  int count = 0;
  {
    PeriodicTask task(simulation, Duration::seconds(1.0), [&] { ++count; });
    task.start(Duration::seconds(1.0));
  }  // destroyed with a tick still queued
  simulation.run();
  EXPECT_EQ(count, 0);
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  Simulation simulation;
  int count = 0;
  PeriodicTask task(simulation, Duration::seconds(1.0), [&] { ++count; });
  task.start();
  simulation.run_until(SimTime::from_seconds(2.5));
  task.stop();
  task.start(Duration::seconds(1.0));
  simulation.run_until(SimTime::from_seconds(4.6));
  EXPECT_EQ(count, 5);  // 0,1,2 then 3.5,4.5
}

TEST(PeriodicTaskTest, ZeroPeriodRejected) {
  Simulation simulation;
  EXPECT_THROW(PeriodicTask(simulation, Duration::zero(), [] {}),
               InternalError);
}

TEST(PeriodicTaskTest, MoveOnlyTickCallable) {
  // The tick is a common::UniqueFunction, so move-only state (here a
  // unique_ptr counter) can live inside the callable.
  Simulation simulation;
  auto count = std::make_unique<int>(0);
  int* raw = count.get();
  PeriodicTask task(simulation, Duration::seconds(1.0),
                    [owned = std::move(count)] { ++*owned; });
  task.start();
  simulation.run_until(SimTime::from_seconds(2.5));
  task.stop();
  EXPECT_EQ(*raw, 3);  // ticks at 0, 1, 2
}

TEST(PeriodicTaskTest, RestartInsideTickKeepsSingleCadence) {
  // stop() + start() from within a tick must leave exactly one pending
  // event — the restarted cadence — not the restart plus the old rearm.
  Simulation simulation;
  std::vector<double> ticks;
  PeriodicTask task(simulation, Duration::seconds(10.0), [&] {
    ticks.push_back(simulation.now().to_seconds());
    if (ticks.size() == 1) {
      task.stop();
      task.start(Duration::seconds(3.0));
    }
  });
  task.start();
  simulation.run_until(SimTime::from_seconds(25.0));
  // Tick at 0 restarts with a 3 s delay: 3, then every 10 s: 13, 23.
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks[1], 3.0);
  EXPECT_DOUBLE_EQ(ticks[2], 13.0);
  EXPECT_DOUBLE_EQ(ticks[3], 23.0);
}

}  // namespace
}  // namespace soma::sim
