#include "raptor/raptor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::raptor {

RaptorMaster::RaptorMaster(rp::Session& session, RaptorConfig config)
    : session_(session), config_(config) {
  check(config_.workers > 0, "raptor: need at least one worker");
  check(config_.cores_per_worker > 0, "raptor: need >= 1 core per worker");
}

void RaptorMaster::start(std::function<void()> on_ready) {
  check(session_.agent_ready(), "raptor: agent not ready");
  check(master_task_ == nullptr, "raptor: already started");
  on_ready_ = std::move(on_ready);

  // The master is a small long-running task (1 core).
  rp::TaskDescription master_desc;
  master_desc.uid = "raptor.master";
  master_desc.kind = rp::TaskKind::kWorker;
  master_desc.label = "raptor-master";
  master_desc.cores_per_rank = 1;
  master_desc.cpu_activity = 0.5;

  session_.add_task_start_listener(
      [this](const std::shared_ptr<rp::Task>& task) {
        if (task->description().label == "raptor-worker") {
          if (++workers_ready_ == config_.workers) {
            if (on_ready_) on_ready_();
            dispatch_pending();
          }
        }
      });

  master_task_ = session_.submit(master_desc);

  for (int w = 0; w < config_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->index = w;
    worker->inbox = std::make_unique<comm::Channel<FunctionCall>>(
        session_.simulation(), "raptor.worker." + std::to_string(w),
        config_.channel_latency);

    rp::TaskDescription desc;
    desc.uid = "raptor.worker." + std::to_string(w);
    desc.kind = rp::TaskKind::kWorker;
    desc.label = "raptor-worker";
    desc.cores_per_rank = config_.cores_per_worker;
    desc.cpu_activity = config_.worker_cpu_activity;
    worker->task = session_.submit(desc);

    Worker* worker_ptr = worker.get();
    worker->inbox->set_consumer([this, worker_ptr](FunctionCall call) {
      // One slot runs the function for its duration, then reports back
      // (result path pays the channel latency too).
      session_.simulation().schedule(
          call.duration, [this, worker_ptr, call] {
            FunctionResult result;
            result.id = call.id;
            result.name = call.name;
            result.finished = session_.simulation().now();
            result.started = result.finished - call.duration;
            result.worker = worker_ptr->index;
            session_.simulation().schedule(
                config_.channel_latency, [this, worker_ptr, result] {
                  on_worker_done(worker_ptr->index, result);
                });
          });
    });
    workers_.push_back(std::move(worker));
  }
}

void RaptorMaster::submit(FunctionCall call, ResultCallback on_result) {
  check(!shutdown_, "raptor: submit after shutdown");
  call.id = next_call_id_++;
  pending_.emplace_back(std::move(call), std::move(on_result));
  if (ready()) dispatch_pending();
}

void RaptorMaster::submit_many(int count, Duration duration,
                               ResultCallback on_result) {
  for (int i = 0; i < count; ++i) {
    FunctionCall call;
    call.name = "fn";
    call.duration = duration;
    submit(std::move(call), on_result);
  }
}

void RaptorMaster::dispatch_pending() {
  while (!pending_.empty()) {
    // Least-loaded worker with a free slot.
    Worker* best = nullptr;
    for (const auto& worker : workers_) {
      if (worker->busy_slots >= config_.cores_per_worker) continue;
      if (best == nullptr || worker->busy_slots < best->busy_slots) {
        best = worker.get();
      }
    }
    if (best == nullptr) return;  // all slots busy; retry on completion

    auto [call, callback] = std::move(pending_.front());
    pending_.pop_front();
    ++best->busy_slots;
    callbacks_.emplace(call.id, std::move(callback));

    // The master serializes dispatches (one routing decision at a time).
    const SimTime now = session_.simulation().now();
    master_busy_until_ =
        std::max(now, master_busy_until_) + config_.dispatch_overhead;
    if (!first_dispatch_) first_dispatch_ = now;
    Worker* target = best;
    FunctionCall routed = std::move(call);
    session_.simulation().schedule_at(
        master_busy_until_, [target, routed = std::move(routed)]() mutable {
          target->inbox->put(std::move(routed));
        });
  }
}

void RaptorMaster::on_worker_done(int worker_index,
                                  const FunctionResult& result) {
  --workers_[static_cast<std::size_t>(worker_index)]->busy_slots;
  ++completed_;
  last_completion_ = session_.simulation().now();

  const auto it = callbacks_.find(result.id);
  if (it != callbacks_.end()) {
    ResultCallback callback = std::move(it->second);
    callbacks_.erase(it);
    if (callback) callback(result);
  }
  dispatch_pending();
}

double RaptorMaster::throughput_per_second() const {
  if (completed_ == 0 || !first_dispatch_) return 0.0;
  const double span = (last_completion_ - *first_dispatch_).to_seconds();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(completed_) / span;
}

void RaptorMaster::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (const auto& worker : workers_) {
    session_.stop_task(worker->task->uid());
  }
  if (master_task_) session_.stop_task(master_task_->uid());
}

}  // namespace soma::raptor
