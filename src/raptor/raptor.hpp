// RAPTOR-like function-task subsystem (paper §2.1).
//
// "RP utilizes a dedicated subsystem called RAPTOR to execute Python
// functions at a very large scale... RP supports the concurrent execution of
// heterogeneous executable and function tasks."
//
// Function tasks are far too small for the pilot's task path (a scheduler
// decision + launcher spawn per task would dominate). RAPTOR instead runs a
// master and a pool of long-lived workers as RP tasks; function tasks flow
// master -> worker over component channels with only a dispatch overhead,
// and each worker executes up to cores_per_worker functions concurrently.
//
// The throughput gap between this path and the executable-task path is the
// subsystem's reason to exist; tests and the RAPTOR bench measure it.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "rp/session.hpp"

namespace soma::raptor {

/// One function invocation.
struct FunctionCall {
  std::uint64_t id = 0;
  std::string name;
  Duration duration = Duration::milliseconds(100);
};

struct FunctionResult {
  std::uint64_t id = 0;
  std::string name;
  SimTime started;
  SimTime finished;
  int worker = -1;
};

struct RaptorConfig {
  int workers = 2;
  int cores_per_worker = 8;       ///< concurrent functions per worker
  double worker_cpu_activity = 0.9;
  /// Master-side cost to route one call (serialize + pick worker).
  Duration dispatch_overhead = Duration::microseconds(200);
  /// Channel latency master <-> worker.
  Duration channel_latency = Duration::microseconds(100);
};

class RaptorMaster {
 public:
  using ResultCallback = std::function<void(const FunctionResult&)>;

  RaptorMaster(rp::Session& session, RaptorConfig config = {});

  /// Submit the master + worker RP tasks; `on_ready` fires when every
  /// worker is up. Requires session.agent_ready().
  void start(std::function<void()> on_ready);

  /// Queue a function for execution. Valid once started; calls submitted
  /// before readiness are buffered.
  void submit(FunctionCall call, ResultCallback on_result = nullptr);

  /// Convenience: submit `count` copies of a homogeneous function.
  void submit_many(int count, Duration duration,
                   ResultCallback on_result = nullptr);

  /// Stop workers and the master (releases their RP resources).
  void shutdown();

  [[nodiscard]] bool ready() const { return workers_ready_ == config_.workers; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t submitted() const { return next_call_id_ - 1; }
  /// Completed calls per second between the first dispatch and the last
  /// completion (0 before any completion).
  [[nodiscard]] double throughput_per_second() const;

 private:
  struct Worker {
    int index = -1;
    std::shared_ptr<rp::Task> task;
    int busy_slots = 0;
    std::unique_ptr<comm::Channel<FunctionCall>> inbox;
  };

  void dispatch_pending();
  void on_worker_done(int worker_index, const FunctionResult& result);

  rp::Session& session_;
  RaptorConfig config_;
  std::function<void()> on_ready_;
  std::shared_ptr<rp::Task> master_task_;
  std::vector<std::unique_ptr<Worker>> workers_;
  int workers_ready_ = 0;
  bool shutdown_ = false;

  std::uint64_t next_call_id_ = 1;
  std::deque<std::pair<FunctionCall, ResultCallback>> pending_;
  std::unordered_map<std::uint64_t, ResultCallback> callbacks_;
  SimTime master_busy_until_;
  std::uint64_t completed_ = 0;
  std::optional<SimTime> first_dispatch_;
  SimTime last_completion_;
};

}  // namespace soma::raptor
