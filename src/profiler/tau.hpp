// TAU performance profiles and the TAU->SOMA plugin (paper §2.3.2,
// "Performance Namespace", and §3.1 "Monitoring Setup").
//
// The real system samples the running application with tau_exec and a TAU
// plugin converts the profile to a Conduit::Node and publishes it to SOMA.
// Here the profile is synthesized from the workload model's per-rank MPI
// breakdown, which is what TAU sampling would observe. The plugin adds the
// hostname tag and task identifier the paper introduced for heterogeneous
// workflows ("these additions allow properly attributing the TAU profile to
// the correct workflow tasks").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "datamodel/node.hpp"
#include "rp/task.hpp"
#include "soma/client.hpp"
#include "workloads/openfoam.hpp"

namespace soma::profiler {

/// One rank's flat profile: function name -> inclusive seconds.
struct RankProfile {
  RankId rank = 0;
  std::string hostname;
  std::map<std::string, double> inclusive_seconds;

  [[nodiscard]] double total_seconds() const;
};

/// A whole task's profile.
struct TauProfile {
  std::string task_uid;
  std::vector<RankProfile> ranks;

  /// Per-rank seconds spent in functions whose name starts with "MPI_".
  [[nodiscard]] std::vector<double> mpi_seconds_per_rank() const;

  /// Convert to the SOMA performance-namespace data model:
  ///   <task_uid>/<hostname>/rank_<k>/<function> = seconds
  [[nodiscard]] datamodel::Node to_node() const;

  /// Parse back from the data model (used by analysis on the service side).
  static TauProfile from_node(const std::string& task_uid,
                              const datamodel::Node& node);
};

/// Synthesize the profile TAU sampling would produce for a completed
/// OpenFOAM task: per-rank compute/MPI_Recv/MPI_Waitall/MPI_Allreduce times
/// from the model's breakdown, with hostnames taken from the placement.
TauProfile profile_openfoam_task(const rp::Task& task,
                                 const workloads::OpenFoamModel& model,
                                 const cluster::Platform& platform);

/// The TAU plugin: wraps a SOMA client reserved for the performance
/// namespace and publishes completed-task profiles.
class TauSomaPlugin {
 public:
  explicit TauSomaPlugin(core::SomaClient& client) : client_(client) {}

  /// Publish a profile; the source key is the task uid so all of one task's
  /// data lands on the same service rank.
  void publish(const TauProfile& profile);

  /// Ship any profiles still coalescing in the client's batcher (end-of-run
  /// hook; a no-op when batching is off).
  void flush() { client_.flush_batches(); }

  [[nodiscard]] std::uint64_t profiles_published() const { return published_; }

 private:
  core::SomaClient& client_;
  std::uint64_t published_ = 0;
};

}  // namespace soma::profiler
