#include "profiler/tau.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace soma::profiler {

double RankProfile::total_seconds() const {
  double total = 0.0;
  for (const auto& [fn, seconds] : inclusive_seconds) total += seconds;
  return total;
}

std::vector<double> TauProfile::mpi_seconds_per_rank() const {
  std::vector<double> out;
  out.reserve(ranks.size());
  for (const auto& rank : ranks) {
    double mpi = 0.0;
    for (const auto& [fn, seconds] : rank.inclusive_seconds) {
      if (fn.rfind("MPI_", 0) == 0) mpi += seconds;
    }
    out.push_back(mpi);
  }
  return out;
}

datamodel::Node TauProfile::to_node() const {
  datamodel::Node node;
  datamodel::Node& task = node[task_uid];
  for (const auto& rank : ranks) {
    char key[32];
    std::snprintf(key, sizeof(key), "rank_%04d", rank.rank);
    datamodel::Node& r = task[rank.hostname][key];
    for (const auto& [fn, seconds] : rank.inclusive_seconds) {
      r[fn].set(seconds);
    }
  }
  return node;
}

TauProfile TauProfile::from_node(const std::string& task_uid,
                                 const datamodel::Node& node) {
  TauProfile profile;
  profile.task_uid = task_uid;
  const datamodel::Node& task = node.fetch_existing(task_uid);
  for (std::size_t h = 0; h < task.number_of_children(); ++h) {
    const std::string& hostname = task.child_names()[h];
    const datamodel::Node& host = task.child_at(h);
    for (std::size_t r = 0; r < host.number_of_children(); ++r) {
      const std::string& rank_key = host.child_names()[r];
      check(rank_key.rfind("rank_", 0) == 0,
            "TauProfile::from_node: malformed rank key");
      RankProfile rank;
      rank.rank = static_cast<RankId>(std::stoi(rank_key.substr(5)));
      rank.hostname = hostname;
      const datamodel::Node& fns = host.child_at(r);
      for (std::size_t f = 0; f < fns.number_of_children(); ++f) {
        rank.inclusive_seconds[fns.child_names()[f]] =
            fns.child_at(f).to_float64();
      }
      profile.ranks.push_back(std::move(rank));
    }
  }
  return profile;
}

TauProfile profile_openfoam_task(const rp::Task& task,
                                 const workloads::OpenFoamModel& model,
                                 const cluster::Platform& platform) {
  check(task.placement().has_value(), "profile: task has no placement");
  const auto duration = task.rank_duration();
  check(duration.has_value(), "profile: task has not completed its ranks");
  const double total = duration->to_seconds();
  const int ranks = static_cast<int>(task.placement()->ranks.size());

  TauProfile profile;
  profile.task_uid = task.uid();
  profile.ranks.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const auto breakdown =
        model.rank_breakdown(static_cast<RankId>(r), ranks, total);
    RankProfile rank;
    rank.rank = static_cast<RankId>(r);
    rank.hostname =
        platform.node(task.placement()->ranks[static_cast<std::size_t>(r)].node)
            .hostname();
    rank.inclusive_seconds["compute"] = breakdown.compute;
    rank.inclusive_seconds["MPI_Recv"] = breakdown.mpi_recv;
    rank.inclusive_seconds["MPI_Waitall"] = breakdown.mpi_waitall;
    rank.inclusive_seconds["MPI_Allreduce"] = breakdown.mpi_allreduce;
    profile.ranks.push_back(std::move(rank));
  }
  return profile;
}

void TauSomaPlugin::publish(const TauProfile& profile) {
  check(client_.target_namespace() == core::Namespace::kPerformance,
        "TAU plugin requires a performance-namespace client");
  client_.publish(profile.task_uid, profile.to_node());
  ++published_;
}

}  // namespace soma::profiler
