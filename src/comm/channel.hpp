// ZeroMQ-style component queues (paper §2.3.1).
//
// RADICAL-Pilot components exchange control messages via named queues: each
// component consumes from its input queue and pushes to the next component's
// queue. Here a `Channel<T>` models one such queue with a configurable
// delivery latency; messages sent before a consumer registers are buffered
// and flushed on registration (ZeroMQ late-joiner behaviour is simplified to
// lossless buffering, which is what RP relies on in practice).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace soma::comm {

template <typename T>
class Channel {
 public:
  using Consumer = std::function<void(T)>;

  Channel(sim::Simulation& simulation, std::string name,
          Duration latency = Duration::microseconds(50))
      : simulation_(simulation), name_(std::move(name)), latency_(latency) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Duration latency() const { return latency_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

  /// Enqueue a message; it reaches the consumer after the channel latency.
  /// Works for move-only payloads (the event closure must stay copyable for
  /// std::function, so the message rides in a shared holder).
  void put(T message) {
    auto holder = std::make_shared<T>(std::move(message));
    simulation_.schedule(latency_, [this, holder] {
      if (consumer_) {
        ++delivered_;
        consumer_(std::move(*holder));
      } else {
        buffer_.push_back(std::move(*holder));
      }
    });
  }

  /// Register the consuming callback; buffered messages are delivered
  /// immediately (in order) at the current simulated time.
  void set_consumer(Consumer consumer) {
    consumer_ = std::move(consumer);
    while (consumer_ && !buffer_.empty()) {
      T msg = std::move(buffer_.front());
      buffer_.pop_front();
      ++delivered_;
      consumer_(std::move(msg));
    }
  }

  /// Remove the consumer; subsequent messages buffer again.
  void clear_consumer() { consumer_ = nullptr; }

 private:
  sim::Simulation& simulation_;
  std::string name_;
  Duration latency_;
  Consumer consumer_;
  std::deque<T> buffer_;
  std::uint64_t delivered_ = 0;
};

}  // namespace soma::comm
