// The DeepDriveMD mini-app experiments (paper §3.2, Table 2; Figs. 9-11).
//
// EnTK runs m concurrent pipelines of n phases; each phase is the four DDMD
// stages. The experiment variants:
//   * Tuning:    n=6, m=1, 2 app nodes, cores/task varied per phase (Fig. 9)
//   * Adaptive:  n=4, m=1, training tasks 1/2/4/6 per phase, SOMA analysis
//                between phases (Table 2)
//   * Scaling A: n=1, m=64, SOMA nodes 1/2/4, shared vs exclusive (Fig. 10)
//   * Scaling B: n=1, m in {64,128,256,512}, ranks:pipelines 1:1,
//                none/shared/exclusive at 60 s and 10 s (Fig. 11)
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "experiments/deployment.hpp"
#include "workloads/ddmd.hpp"

namespace soma::experiments {

/// Per-phase stage configuration (one entry per phase; the last entry
/// repeats if there are more phases than entries).
struct DdmdPhaseConfig {
  int cores_per_sim_task = 3;
  int train_tasks = 1;
  int cores_per_train_task = 7;
};

/// Historical name of the shared fault profile (experiments/deployment.hpp);
/// the OpenFOAM runner uses the same profile under the shared name.
using DdmdFaults = FaultProfile;

struct DdmdExperimentConfig {
  int pipelines = 1;
  int phases = 1;
  int app_nodes = 2;
  int soma_nodes = 1;  ///< 0 with mode == kNone

  SomaMode mode = SomaMode::kExclusive;
  int soma_ranks_per_namespace = 1;
  Duration monitor_period = Duration::seconds(60.0);

  std::vector<DdmdPhaseConfig> phase_configs{DdmdPhaseConfig{}};

  /// Run the SOMA in-situ analysis between phases and record its advice
  /// (the Adaptive experiment).
  bool adaptive_analysis = false;

  workloads::DdmdParams params{};
  std::uint64_t seed = 1;

  /// Network fault injection + client reliability for the run.
  DdmdFaults faults{};
  core::ClientReliability reliability{};

  /// Shard replication + crash recovery for the SOMA service (factor 1 =
  /// off, the byte-identical default).
  core::ReplicationConfig replication{};

  /// Storage layer of the SOMA service (backend kind, shards; the default
  /// auto-shards one per rank with the map backend).
  core::StorageConfig storage{};

  /// Publish coalescing for every monitoring client (off by default).
  core::BatchingConfig batching{};

  // Presets matching Table 2.
  static DdmdExperimentConfig tuning(std::uint64_t seed = 1);
  static DdmdExperimentConfig adaptive(std::uint64_t seed = 1);
  static DdmdExperimentConfig scaling_a(int soma_nodes,
                                        int ranks_per_namespace,
                                        SomaMode mode,
                                        std::uint64_t seed = 1);
  static DdmdExperimentConfig scaling_b(int pipelines, SomaMode mode,
                                        Duration monitor_period,
                                        std::uint64_t seed = 1);

  [[nodiscard]] const DdmdPhaseConfig& phase_config(int phase) const;
};

struct DdmdResult {
  DdmdExperimentConfig config;

  /// One entry per pipeline: start -> finish (Figs. 10 and 11).
  std::vector<double> pipeline_seconds;
  Summary pipeline_summary;
  double makespan_seconds = 0.0;  ///< first stage submit -> last pipeline end

  /// Fig. 9: mean app-node CPU utilization within each phase of pipeline 0.
  struct PhaseUtilization {
    int phase = 0;
    DdmdPhaseConfig config;
    double mean_utilization = 0.0;      ///< CPU, app nodes
    double mean_gpu_utilization = 0.0;  ///< GPU, app nodes
    double span_seconds = 0.0;
  };
  std::vector<PhaseUtilization> phase_utilization;

  /// Full per-host utilization series (plot backing data):
  /// host -> [(t, cpu_util, gpu_util)].
  std::map<std::string, std::vector<std::tuple<double, double, double>>>
      node_utilization;

  /// Advice recorded between phases (Adaptive experiment).
  std::vector<std::string> adaptive_advice;

  // SOMA accounting.
  std::uint64_t soma_publishes = 0;
  double soma_max_queue_delay_ms = 0.0;
  double mean_ack_latency_ms = 0.0;
  double max_ack_latency_ms = 0.0;

  // Fault/reliability accounting (all zero in fault-free runs).
  std::uint64_t net_drops = 0;
  std::uint64_t net_latency_spikes = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t publish_failures = 0;
  std::uint64_t replayed_publishes = 0;
  std::uint64_t failovers = 0;

  // Shard balance of the service store (Table 2 summary rows).
  int store_shards = 0;
  std::uint64_t shard_records_min = 0;
  std::uint64_t shard_records_max = 0;

  // Replication accounting (all zero when replication is off).
  std::uint64_t records_replicated = 0;
  std::uint64_t resync_records = 0;
  std::uint64_t crash_wipes = 0;
  std::uint64_t ranks_recovered = 0;
  std::uint64_t replica_lag_records = 0;
};

DdmdResult run_ddmd_experiment(const DdmdExperimentConfig& config);

}  // namespace soma::experiments
