// The OpenFOAM workflow experiments (paper §3.1, Table 1; Figs. 4-8).
//
// Two configurations:
//   * "tuning":    1 instance of each rank configuration on 4 worker nodes,
//   * "overloaded": 20 instances of each on 10 worker nodes,
// plus one extra node reserved for the RP agent and the SOMA service. Rank
// configurations are {20, 41, 82, 164}; one core per node is reserved for
// the SOMA hardware monitoring client, and the three monitors are proc, rp,
// and tau.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "experiments/deployment.hpp"
#include "profiler/tau.hpp"
#include "workloads/openfoam.hpp"

namespace soma::experiments {

struct OpenFoamExperimentConfig {
  bool overload = false;          ///< false = tuning run
  int worker_nodes = 4;           ///< tuning: 4, overload: 10
  int instances_per_config = 1;   ///< tuning: 1, overload: 20
  std::vector<int> rank_configs = {20, 41, 82, 164};

  bool monitoring = true;
  Duration hw_monitor_period = Duration::seconds(30.0);  ///< Fig. 7
  Duration rp_monitor_period = Duration::seconds(30.0);
  int soma_ranks_per_namespace = 1;                      ///< Table 1

  workloads::OpenFoamParams params{};
  std::uint64_t seed = 1;

  /// Network fault injection + client reliability for the run (both off by
  /// default — the calibrated Table 1 baselines; CLI: `--fault-seed`).
  FaultProfile faults{};
  core::ClientReliability reliability{};

  /// Shard replication + crash recovery for the SOMA service (factor 1 =
  /// off, the byte-identical default).
  core::ReplicationConfig replication{};

  /// Storage layer of the SOMA service (backend kind, shards; the default
  /// auto-shards one per rank with the map backend).
  core::StorageConfig storage{};

  /// Publish coalescing for every monitoring client (off by default).
  core::BatchingConfig batching{};

  [[nodiscard]] static OpenFoamExperimentConfig tuning(std::uint64_t seed = 1);
  [[nodiscard]] static OpenFoamExperimentConfig overloaded(
      std::uint64_t seed = 1);
};

struct OpenFoamTaskRecord {
  std::string uid;
  int ranks = 0;
  double exec_seconds = 0.0;   ///< rank_start -> rank_stop
  int nodes_spanned = 0;
  double started_at = 0.0;     ///< rank_start, seconds since t=0
};

struct OpenFoamResult {
  OpenFoamExperimentConfig config;
  std::vector<OpenFoamTaskRecord> tasks;

  /// Fig. 4: rank count -> execution-time summary across instances.
  std::map<int, Summary> scaling;

  /// Fig. 6: (rank count, nodes spanned) -> execution times.
  std::map<std::pair<int, int>, std::vector<double>> by_spread;

  /// Fig. 7: per-host utilization series (from the SOMA hardware store) and
  /// the task starts the RP monitor observed.
  std::map<std::string, std::vector<std::pair<double, double>>>
      node_utilization;
  std::vector<std::pair<double, std::string>> observed_task_starts;

  /// Fig. 8: core-state fractions + ASCII map over the worker nodes.
  double frac_bootstrap = 0.0;
  double frac_scheduling = 0.0;
  double frac_running = 0.0;
  double frac_idle = 0.0;
  std::string timeline_render;

  /// Fig. 5: TAU profile of one completed max-rank task (from the SOMA
  /// performance store).
  profiler::TauProfile sample_profile;

  double makespan_seconds = 0.0;  ///< first submit -> last app completion

  // SOMA service accounting.
  std::uint64_t soma_publishes = 0;
  std::uint64_t tau_profiles = 0;
  double soma_max_queue_delay_ms = 0.0;
  double mean_ack_latency_ms = 0.0;

  // Shard balance of the service store (Table 1 summary rows).
  int store_shards = 0;
  std::uint64_t shard_records_min = 0;
  std::uint64_t shard_records_max = 0;

  // Fault/reliability accounting (all zero in fault-free runs).
  std::uint64_t net_drops = 0;
  std::uint64_t net_latency_spikes = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t publish_failures = 0;
  std::uint64_t replayed_publishes = 0;
  std::uint64_t failovers = 0;

  // Replication accounting (all zero when replication is off).
  std::uint64_t records_replicated = 0;
  std::uint64_t resync_records = 0;
  std::uint64_t crash_wipes = 0;
  std::uint64_t ranks_recovered = 0;
  std::uint64_t replica_lag_records = 0;
};

/// Run the experiment end to end (builds its own Session) and extract every
/// figure's data.
OpenFoamResult run_openfoam_experiment(const OpenFoamExperimentConfig& config);

}  // namespace soma::experiments
