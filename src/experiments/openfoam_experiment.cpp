#include "experiments/openfoam_experiment.hpp"

#include <algorithm>

#include "analysis/advisor.hpp"
#include "analysis/timeline.hpp"
#include "common/error.hpp"
#include "net/fault.hpp"

namespace soma::experiments {

OpenFoamExperimentConfig OpenFoamExperimentConfig::tuning(std::uint64_t seed) {
  OpenFoamExperimentConfig config;
  config.overload = false;
  config.worker_nodes = 4;
  config.instances_per_config = 1;
  config.seed = seed;
  return config;
}

OpenFoamExperimentConfig OpenFoamExperimentConfig::overloaded(
    std::uint64_t seed) {
  OpenFoamExperimentConfig config;
  config.overload = true;
  config.worker_nodes = 10;
  config.instances_per_config = 20;
  config.seed = seed;
  return config;
}

namespace {

/// Task submission order: descending rank count, repeated per instance. The
/// tuning run then reproduces Fig. 8 (bottom): the 164-rank task takes every
/// core first, and the smaller tasks run simultaneously after it.
std::vector<int> submission_order(const OpenFoamExperimentConfig& config) {
  std::vector<int> configs = config.rank_configs;
  std::sort(configs.rbegin(), configs.rend());
  std::vector<int> order;
  order.reserve(configs.size() *
                static_cast<std::size_t>(config.instances_per_config));
  for (int instance = 0; instance < config.instances_per_config; ++instance) {
    for (int ranks : configs) order.push_back(ranks);
  }
  return order;
}

}  // namespace

OpenFoamResult run_openfoam_experiment(
    const OpenFoamExperimentConfig& config) {
  OpenFoamResult result;
  result.config = config;

  // Platform: worker nodes plus one extra node reserved for the RP agent
  // and the SOMA service (paper §3.1: "one extra node (for 5, and 11
  // total)").
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(config.worker_nodes + 1);
  session_config.pilot.nodes = config.worker_nodes + 1;
  session_config.agent_nodes = 1;
  session_config.seed = config.seed;
  rp::Session session(session_config);

  // Fault injection is installed before anything touches the network so the
  // per-link streams cover the whole run. An absent injector (the default)
  // keeps the fabric perfect and the run byte-identical to pre-fault builds.
  if (config.faults.enabled) {
    net::FaultConfig fault_config;
    fault_config.seed = config.faults.fault_seed;
    fault_config.default_link.drop_probability =
        config.faults.drop_probability;
    fault_config.default_link.spike_probability =
        config.faults.spike_probability;
    fault_config.default_link.spike_latency = config.faults.spike_latency;
    session.network().install_faults(fault_config);
  }

  auto model =
      workloads::make_openfoam_model(&session.platform(), config.params);

  std::unique_ptr<SomaDeployment> deployment;
  auto app_outstanding = std::make_shared<int>(0);
  std::optional<SimTime> first_submit;
  std::optional<SimTime> last_complete;

  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().kind != rp::TaskKind::kApplication) return;
        last_complete = session.simulation().now();
        if (--*app_outstanding == 0) {
          if (deployment) deployment->shutdown();
          session.finalize();
        }
      });

  auto submit_app_tasks = [&] {
    first_submit = session.simulation().now();
    int index = 0;
    for (int ranks : submission_order(config)) {
      rp::TaskDescription desc;
      char uid[48];
      std::snprintf(uid, sizeof(uid), "openfoam.%03d.r%03d", index++, ranks);
      desc.uid = uid;
      desc.label = "openfoam-" + std::to_string(ranks);
      desc.ranks = ranks;
      desc.cores_per_rank = 1;
      desc.cpu_activity = 0.97;  // MPI solver: cores spin even while waiting
      desc.model = model;
      desc.mem_per_rank_mib = 1024.0;
      ++*app_outstanding;
      session.submit(desc);
    }
  };

  session.start([&] {
    if (!config.monitoring) {
      submit_app_tasks();
      return;
    }
    DeploymentConfig deploy_config;
    deploy_config.mode = SomaMode::kExclusive;
    // SOMA service co-located with the RP agent node.
    deploy_config.service_nodes = session.agent_node_ids();
    deploy_config.service.ranks_per_namespace =
        config.soma_ranks_per_namespace;
    deploy_config.rp_monitor.period = config.rp_monitor_period;
    deploy_config.hw_monitor.period = config.hw_monitor_period;
    deploy_config.service.storage = config.storage;
    deploy_config.service.replication = config.replication;
    deploy_config.client_reliability = config.reliability;
    deploy_config.client_batching = config.batching;
    deployment = std::make_unique<SomaDeployment>(session, deploy_config);
    deployment->enable_openfoam_tau(model);
    deployment->deploy([&] { submit_app_tasks(); });
  });

  session.run();
  check(*app_outstanding == 0, "openfoam experiment: tasks did not finish");

  result.net_drops = session.network().messages_dropped();
  if (const net::FaultInjector* faults = session.network().faults()) {
    result.net_latency_spikes = faults->stats().latency_spikes;
  }

  // ---- extract results ----
  for (const auto& task : session.tasks()) {
    if (task->description().kind != rp::TaskKind::kApplication) continue;
    OpenFoamTaskRecord record;
    record.uid = task->uid();
    record.ranks = task->description().ranks;
    record.exec_seconds = task->rank_duration().value().to_seconds();
    record.nodes_spanned = task->placement()->nodes_spanned();
    record.started_at =
        task->event_time(rp::events::kRankStart).value().to_seconds();
    result.tasks.push_back(std::move(record));
  }

  // Fig. 4 (scaling) and Fig. 6 (spread).
  std::map<int, std::vector<double>> by_ranks;
  for (const auto& record : result.tasks) {
    by_ranks[record.ranks].push_back(record.exec_seconds);
    result.by_spread[{record.ranks, record.nodes_spanned}].push_back(
        record.exec_seconds);
  }
  for (const auto& [ranks, times] : by_ranks) {
    result.scaling[ranks] = summarize(times);
  }

  // Fig. 8: the worker-node core map.
  auto timeline =
      analysis::UtilizationTimeline::build(session, session.worker_node_ids());
  result.frac_bootstrap = timeline.fraction(analysis::CoreState::kBootstrap);
  result.frac_scheduling = timeline.fraction(analysis::CoreState::kScheduling);
  result.frac_running = timeline.fraction(analysis::CoreState::kRunning);
  result.frac_idle = timeline.fraction(analysis::CoreState::kIdle);
  result.timeline_render = timeline.render();

  result.makespan_seconds =
      first_submit && last_complete
          ? (*last_complete - *first_submit).to_seconds()
          : 0.0;

  if (deployment && deployment->deployed()) {
    const core::StoreView store = deployment->service().store_view();

    // Fig. 7: utilization series per host + observed task starts.
    for (const std::string& host :
         store.sources(core::Namespace::kHardware)) {
      auto& series = result.node_utilization[host];
      for (const auto* record :
           store.series(core::Namespace::kHardware, host)) {
        if (const auto* node = record->data.find_child(host)) {
          if (const auto* util = node->find_child("cpu_utilization")) {
            series.emplace_back(record->time.to_seconds(),
                                util->to_float64());
          }
        }
      }
    }
    for (const auto& [time, uid] :
         analysis::observed_task_starts(store)) {
      result.observed_task_starts.emplace_back(time.to_seconds(), uid);
    }

    // Fig. 5: the TAU profile of one max-rank task, read back from the
    // performance namespace.
    const int max_ranks = *std::max_element(config.rank_configs.begin(),
                                            config.rank_configs.end());
    for (const auto& record : result.tasks) {
      if (record.ranks != max_ranks) continue;
      const auto series =
          store.series(core::Namespace::kPerformance, record.uid);
      if (series.empty()) continue;
      result.sample_profile =
          profiler::TauProfile::from_node(record.uid, series.back()->data);
      break;
    }

    result.soma_publishes = deployment->service().publishes_received();
    result.tau_profiles = deployment->tau_profiles_published();
    result.soma_max_queue_delay_ms =
        deployment->service().max_queue_delay().to_seconds() * 1e3;
    result.mean_ack_latency_ms = deployment->mean_client_ack_latency_ms();
    result.replayed_publishes = deployment->service().replayed_publishes();
    const SomaDeployment::ReliabilityTotals totals =
        deployment->reliability_totals();
    result.rpc_retries = totals.rpc_retries;
    result.publish_failures = totals.publish_failures;
    result.failovers = totals.failovers;
    result.store_shards = totals.store_shards;
    result.shard_records_min = totals.shard_records_min;
    result.shard_records_max = totals.shard_records_max;
    result.records_replicated = totals.records_replicated;
    result.resync_records = totals.resync_records;
    result.crash_wipes = totals.crash_wipes;
    result.ranks_recovered = totals.ranks_recovered;
    result.replica_lag_records = totals.replica_lag_records;
  }

  return result;
}

}  // namespace soma::experiments
