#include "experiments/deployment.hpp"

#include <algorithm>

#include "analysis/advisor.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::experiments {

std::string_view to_string(SomaMode mode) {
  switch (mode) {
    case SomaMode::kNone: return "none";
    case SomaMode::kExclusive: return "exclusive";
    case SomaMode::kShared: return "shared";
  }
  return "?";
}

SomaDeployment::SomaDeployment(rp::Session& session, DeploymentConfig config)
    : session_(session),
      config_(std::move(config)),
      next_client_port_(config_.base_client_port) {}

SomaDeployment::~SomaDeployment() = default;

core::SomaService& SomaDeployment::service() {
  check(service_ != nullptr, "SOMA service not deployed");
  return *service_;
}

void SomaDeployment::deploy(std::function<void()> on_ready) {
  check(session_.agent_ready(), "deploy requires a bootstrapped agent");
  on_ready_ = std::move(on_ready);

  if (config_.mode == SomaMode::kNone) {
    // Baseline: no SOMA nodes, no monitoring (paper Fig. 11, "none").
    session_.simulation().schedule(Duration::zero(), [this] {
      if (on_ready_) on_ready_();
    });
    return;
  }

  check(!config_.service_nodes.empty(), "deployment needs service nodes");
  session_.set_service_nodes(config_.service_nodes,
                             config_.mode == SomaMode::kShared);

  // (Fig. 2, step 3) SOMA service task: scheduled before anything else so
  // its RPC addresses are known to every later client.
  rp::TaskDescription service_desc;
  service_desc.uid = "soma.service";
  service_desc.kind = rp::TaskKind::kService;
  service_desc.label = "soma-service";
  service_desc.ranks = config_.service.ranks_per_namespace *
                       static_cast<int>(config_.service.namespaces.size());
  service_desc.cores_per_rank = 1;
  service_desc.cpu_activity = 0.4;
  service_desc.mem_per_rank_mib = 256.0;

  session_.add_task_start_listener(
      [this](const std::shared_ptr<rp::Task>& task) {
        if (service_task_ && task == service_task_ && service_ == nullptr) {
          // Endpoints come alive exactly where the scheduler placed the
          // service ranks.
          service_ = std::make_unique<core::SomaService>(
              session_.network(), task->placement()->nodes(),
              config_.service);
          register_standard_analyzers();
          start_monitors();
        }
      });
  service_task_ = session_.submit(service_desc);
}

void SomaDeployment::register_standard_analyzers() {
  // In-situ analyzers every consumer can invoke remotely via
  // {"kind":"analyze","analyzer":...} — the analysis runs inside the
  // service, only the result crosses the wire (paper §6: "in situ
  // processing for runtime decision actuation").
  service_->register_analyzer(
      "hardware_report", [](const core::StoreView& view) {
        datamodel::Node result;
        const auto report = analysis::analyze_hardware(view);
        result["mean_cpu_utilization"].set(report.mean_utilization());
        result["mean_gpu_utilization"].set(report.mean_gpu_utilization());
        datamodel::Node& hosts = result["hosts"];
        for (const auto& node : report.nodes) {
          datamodel::Node& h = hosts[node.hostname];
          h["mean_cpu"].set(node.mean_utilization);
          h["last_cpu"].set(node.last_utilization);
          h["mean_gpu"].set(node.mean_gpu_utilization);
          h["available_ram_mib"].set(node.available_ram_mib);
        }
        return result;
      });
  service_->register_analyzer(
      "progress", [](const core::StoreView& view) {
        datamodel::Node result;
        const auto progress = analysis::workflow_progress(view);
        if (!progress.empty()) {
          const auto& latest = progress.back();
          result["tasks_done"].set(latest.done);
          result["tasks_executing"].set(latest.executing);
          result["tasks_pending"].set(latest.pending);
          result["throughput_per_min"].set(latest.throughput_per_min);
        }
        result["samples"].set(static_cast<std::int64_t>(progress.size()));
        return result;
      });
}

void SomaDeployment::start_monitors() {
  std::vector<NodeId> monitored = config_.monitored_nodes;
  if (monitored.empty() && config_.enable_hw_monitors) {
    monitored = session_.pilot_nodes();
  }

  // Count the monitor tasks that must reach rank_start before the
  // deployment is ready.
  auto outstanding = std::make_shared<int>(0);
  auto on_monitor_started = [this, outstanding] {
    if (--*outstanding == 0 && on_ready_) on_ready_();
  };

  // (Fig. 2, step 4) RP monitoring task, one per workflow, co-located with
  // the agent.
  if (config_.enable_rp_monitor) {
    const NodeId agent_node = session_.agent_node_ids().front();
    rp_monitor_client_ = std::make_unique<core::SomaClient>(
        session_.network(), agent_node, next_port(),
        core::Namespace::kWorkflow,
        service_->instance(core::Namespace::kWorkflow).ranks,
        config_.client_reliability, config_.client_batching);
    rp_monitor_ = std::make_unique<monitors::RpMonitor>(
        session_, *rp_monitor_client_, config_.rp_monitor);

    // The monitor competes with the agent scheduler for the agent node's
    // cores: decision cost inflates with the monitor's CPU share.
    session_.scheduler().set_decision_slowdown([this] {
      return 1.0 + config_.agent_contention_coeff * rp_monitor_->cpu_share();
    });

    rp::TaskDescription desc;
    desc.uid = "monitor.rp";
    desc.kind = rp::TaskKind::kMonitor;
    desc.label = "rp-monitor";
    desc.pinned_node = agent_node;
    desc.cpu_activity = 0.1;
    desc.mem_per_rank_mib = 128.0;
    ++*outstanding;
    session_.add_task_start_listener(
        [this, on_monitor_started](const std::shared_ptr<rp::Task>& task) {
          if (rp_monitor_task_ && task == rp_monitor_task_) {
            rp_monitor_->start(config_.rp_monitor.period);
            on_monitor_started();
          }
        });
    rp_monitor_task_ = session_.submit(desc);
  }

  // (Fig. 2, step 5) one hardware monitoring task per compute node, each on
  // a reserved core, running for the whole workflow.
  if (config_.enable_hw_monitors) {
    for (std::size_t i = 0; i < monitored.size(); ++i) {
      const NodeId node_id = monitored[i];
      auto client = std::make_unique<core::SomaClient>(
          session_.network(), node_id, next_port(),
          core::Namespace::kHardware,
          service_->instance(core::Namespace::kHardware).ranks,
          config_.client_reliability, config_.client_batching);
      auto monitor = std::make_unique<monitors::HwMonitor>(
          session_.simulation(), session_.platform().node(node_id), *client,
          session_.rng().split("hw_monitor_" + std::to_string(node_id)),
          config_.hw_monitor);

      // /proc scraping perturbs co-located application ranks.
      session_.executor().set_node_noise(node_id, monitor->noise_fraction());

      rp::TaskDescription desc;
      desc.uid = "monitor.hw." + std::to_string(node_id);
      desc.kind = rp::TaskKind::kMonitor;
      desc.label = "hw-monitor";
      desc.pinned_node = node_id;
      desc.cpu_activity = 0.05;
      desc.mem_per_rank_mib = 64.0;

      monitors::HwMonitor* monitor_ptr = monitor.get();
      // Stagger ticks across nodes so publishes do not arrive in lockstep.
      const Duration stagger =
          config_.hw_monitor.period * (static_cast<double>(i % 97) / 97.0);
      ++*outstanding;
      const std::string uid = desc.uid;
      session_.add_task_start_listener(
          [this, uid, monitor_ptr, stagger,
           on_monitor_started](const std::shared_ptr<rp::Task>& task) {
            if (task->uid() == uid) {
              monitor_ptr->start(stagger);
              on_monitor_started();
            }
          });
      hw_monitor_tasks_.push_back(session_.submit(desc));
      hw_clients_.push_back(std::move(client));
      hw_monitors_.push_back(std::move(monitor));
    }
  }

  if (*outstanding == 0 && on_ready_) {
    // Service only, no monitors: ready immediately.
    session_.simulation().schedule(Duration::zero(), [this] {
      if (on_ready_) on_ready_();
    });
  }
}

void SomaDeployment::enable_openfoam_tau(
    std::shared_ptr<const workloads::OpenFoamModel> model) {
  check(config_.mode != SomaMode::kNone, "TAU requires a deployed service");
  tau_model_ = std::move(model);
  session_.add_task_completion_listener(
      [this](const std::shared_ptr<rp::Task>& task) {
        // Keep publishing through shutdown: the last task's completion
        // races the shutdown listener, and its profile must not be lost.
        if (service_ == nullptr) return;
        if (task->description().kind != rp::TaskKind::kApplication) return;
        if (task->description().label.rfind("openfoam", 0) != 0) return;

        // The plugin runs in the task's address space: its client lives on
        // the task's first node (one shared publisher engine per node).
        const NodeId node = task->placement()->ranks.front().node;
        while (tau_plugins_.size() <=
               static_cast<std::size_t>(node)) {
          tau_plugins_.push_back(nullptr);
          tau_clients_.push_back(nullptr);
        }
        if (!tau_plugins_[static_cast<std::size_t>(node)]) {
          tau_clients_[static_cast<std::size_t>(node)] =
              std::make_unique<core::SomaClient>(
                  session_.network(), node, next_port(),
                  core::Namespace::kPerformance,
                  service_->instance(core::Namespace::kPerformance).ranks,
                  config_.client_reliability, config_.client_batching);
          tau_plugins_[static_cast<std::size_t>(node)] =
              std::make_unique<profiler::TauSomaPlugin>(
                  *tau_clients_[static_cast<std::size_t>(node)]);
        }
        const profiler::TauProfile profile = profiler::profile_openfoam_task(
            *task, *tau_model_, session_.platform());
        tau_plugins_[static_cast<std::size_t>(node)]->publish(profile);
      });
}

std::uint64_t SomaDeployment::tau_profiles_published() const {
  std::uint64_t total = 0;
  for (const auto& plugin : tau_plugins_) {
    if (plugin) total += plugin->profiles_published();
  }
  return total;
}

double SomaDeployment::mean_client_ack_latency_ms() const {
  Duration total;
  std::uint64_t acked = 0;
  auto accumulate = [&](const core::SomaClient* client) {
    if (client == nullptr) return;
    total += client->stats().total_ack_latency;
    acked += client->stats().acked;
  };
  accumulate(rp_monitor_client_.get());
  for (const auto& client : hw_clients_) accumulate(client.get());
  for (const auto& client : tau_clients_) accumulate(client.get());
  return acked == 0 ? 0.0 : total.to_seconds() * 1e3 / double(acked);
}

double SomaDeployment::max_client_ack_latency_ms() const {
  Duration worst;
  auto consider = [&](const core::SomaClient* client) {
    if (client == nullptr) return;
    worst = std::max(worst, client->stats().max_ack_latency);
  };
  consider(rp_monitor_client_.get());
  for (const auto& client : hw_clients_) consider(client.get());
  for (const auto& client : tau_clients_) consider(client.get());
  return worst.to_seconds() * 1e3;
}

std::unique_ptr<core::SomaClient> SomaDeployment::make_client(
    core::Namespace ns, NodeId node) {
  check(service_ != nullptr, "SOMA service not deployed");
  return std::make_unique<core::SomaClient>(
      session_.network(), node, next_port(), ns, service_->instance(ns).ranks,
      config_.client_reliability, config_.client_batching);
}

std::vector<const core::SomaClient*> SomaDeployment::clients() const {
  std::vector<const core::SomaClient*> all;
  if (rp_monitor_client_) all.push_back(rp_monitor_client_.get());
  for (const auto& client : hw_clients_) {
    if (client) all.push_back(client.get());
  }
  for (const auto& client : tau_clients_) {
    if (client) all.push_back(client.get());
  }
  return all;
}

SomaDeployment::ReliabilityTotals SomaDeployment::reliability_totals() const {
  ReliabilityTotals totals;
  for (const core::SomaClient* client : clients()) {
    const core::SomaClient::ClientStats& s = client->stats();
    totals.publish_failures += s.publish_failures;
    totals.buffered += s.buffered;
    totals.replayed += s.replayed;
    totals.failovers += s.failovers;
    totals.dropped_overflow += s.dropped_overflow;
    totals.dropped_batch_records += s.dropped_batch_records;
    totals.batches_sent += s.batches_sent;
    const net::EngineStats& e = client->engine_stats();
    totals.rpc_retries += e.retries;
    totals.rpc_timeouts += e.timeouts;
    totals.rpc_calls_failed += e.calls_failed;
  }
  if (service_ != nullptr) {
    const core::DataStore& store = service_->store();
    totals.store_shards = store.shard_count();
    // Records/bytes per shard index, summed over namespaces, then min/max
    // over shards: the shard-balance figure Table 1/2 summaries report.
    std::vector<std::uint64_t> records(
        static_cast<std::size_t>(store.shard_count()), 0);
    std::vector<std::uint64_t> bytes(records.size(), 0);
    for (const core::ShardCounters& c : store.shard_counters()) {
      records[static_cast<std::size_t>(c.shard)] += c.records;
      bytes[static_cast<std::size_t>(c.shard)] += c.bytes;
    }
    const auto [rec_min, rec_max] =
        std::minmax_element(records.begin(), records.end());
    const auto [byte_min, byte_max] =
        std::minmax_element(bytes.begin(), bytes.end());
    totals.shard_records_min = *rec_min;
    totals.shard_records_max = *rec_max;
    totals.shard_bytes_min = *byte_min;
    totals.shard_bytes_max = *byte_max;
    if (const core::ReplicationManager* replication =
            service_->replication()) {
      const core::ReplicationStats& r = replication->stats();
      totals.records_replicated = r.records_replicated;
      totals.resync_records = r.resync_records;
      totals.crash_wipes = r.crash_wipes;
      totals.ranks_recovered = r.recoveries_completed;
      for (const core::ReplicationShardStatus& row :
           replication->shard_status()) {
        totals.replica_lag_records += row.replica_lag_records;
      }
    }
  }
  return totals;
}

void SomaDeployment::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  if (rp_monitor_) rp_monitor_->stop();
  for (auto& monitor : hw_monitors_) monitor->stop();
  // Ship the tail of every coalescing client: the monitors' stop paths flush
  // their own clients, but TAU plugin clients (and any publish that raced
  // shutdown) may still hold half-open batches.
  if (rp_monitor_client_) rp_monitor_client_->flush_batches();
  for (auto& client : hw_clients_) {
    if (client) client->flush_batches();
  }
  for (auto& client : tau_clients_) {
    if (client) client->flush_batches();
  }
  for (const auto& task : hw_monitor_tasks_) {
    session_.stop_task(task->uid());
  }
  if (rp_monitor_task_) session_.stop_task(rp_monitor_task_->uid());
  if (service_task_) session_.stop_task(service_task_->uid());
  // Heartbeats would otherwise keep the simulation from draining to
  // quiescence; in-flight replication frames still complete.
  if (service_ && service_->replication() != nullptr) {
    service_->replication()->stop();
  }
}

}  // namespace soma::experiments
