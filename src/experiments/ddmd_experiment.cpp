#include "experiments/ddmd_experiment.hpp"

#include <algorithm>

#include "analysis/advisor.hpp"
#include "common/error.hpp"
#include "entk/entk.hpp"
#include "net/fault.hpp"

namespace soma::experiments {

DdmdExperimentConfig DdmdExperimentConfig::tuning(std::uint64_t seed) {
  DdmdExperimentConfig config;
  config.pipelines = 1;
  config.phases = 6;
  config.app_nodes = 2;
  config.soma_nodes = 1;
  config.seed = seed;
  // Six phases sweeping cores/sim in {1,3,7} under cores/train 7 then 3
  // (Fig. 9: gray background = 7 cores per training task, green = 3;
  // shading light to dark for 1, 3, 7 cores per simulation task).
  config.phase_configs = {
      {.cores_per_sim_task = 1, .train_tasks = 1, .cores_per_train_task = 7},
      {.cores_per_sim_task = 3, .train_tasks = 1, .cores_per_train_task = 7},
      {.cores_per_sim_task = 7, .train_tasks = 1, .cores_per_train_task = 7},
      {.cores_per_sim_task = 1, .train_tasks = 1, .cores_per_train_task = 3},
      {.cores_per_sim_task = 3, .train_tasks = 1, .cores_per_train_task = 3},
      {.cores_per_sim_task = 7, .train_tasks = 1, .cores_per_train_task = 3},
  };
  return config;
}

DdmdExperimentConfig DdmdExperimentConfig::adaptive(std::uint64_t seed) {
  DdmdExperimentConfig config;
  config.pipelines = 1;
  config.phases = 4;
  config.app_nodes = 2;
  config.soma_nodes = 1;
  config.adaptive_analysis = true;
  config.seed = seed;
  // Training tasks 1, 2, 4, 6 set a priori (Table 2, Adaptive column).
  config.phase_configs = {
      {.cores_per_sim_task = 6, .train_tasks = 1, .cores_per_train_task = 1},
      {.cores_per_sim_task = 6, .train_tasks = 2, .cores_per_train_task = 1},
      {.cores_per_sim_task = 6, .train_tasks = 4, .cores_per_train_task = 1},
      {.cores_per_sim_task = 6, .train_tasks = 6, .cores_per_train_task = 1},
  };
  return config;
}

DdmdExperimentConfig DdmdExperimentConfig::scaling_a(int soma_nodes,
                                                     int ranks_per_namespace,
                                                     SomaMode mode,
                                                     std::uint64_t seed) {
  DdmdExperimentConfig config;
  config.pipelines = 64;
  config.phases = 1;
  config.app_nodes = 64;
  config.soma_nodes = soma_nodes;
  config.soma_ranks_per_namespace = ranks_per_namespace;
  config.mode = mode;
  config.seed = seed;
  config.phase_configs = {
      {.cores_per_sim_task = 3, .train_tasks = 1, .cores_per_train_task = 7}};
  return config;
}

DdmdExperimentConfig DdmdExperimentConfig::scaling_b(int pipelines,
                                                     SomaMode mode,
                                                     Duration monitor_period,
                                                     std::uint64_t seed) {
  DdmdExperimentConfig config;
  config.pipelines = pipelines;
  config.phases = 1;
  config.app_nodes = pipelines;
  // Table 2: SOMA nodes 4/7/13/25 for 64/128/256/512 pipelines — enough
  // nodes to host ranks:pipelines at 1:1 over two namespace instances.
  config.soma_nodes = mode == SomaMode::kNone ? 0 : (pipelines / 21 + 1);
  config.soma_ranks_per_namespace = pipelines;
  config.mode = mode;
  config.monitor_period = monitor_period;
  config.seed = seed;
  config.phase_configs = {
      {.cores_per_sim_task = 3, .train_tasks = 1, .cores_per_train_task = 7}};
  return config;
}

const DdmdPhaseConfig& DdmdExperimentConfig::phase_config(int phase) const {
  check(!phase_configs.empty(), "ddmd: no phase configs");
  const auto index = std::min<std::size_t>(
      static_cast<std::size_t>(phase), phase_configs.size() - 1);
  return phase_configs[index];
}

namespace {

entk::Pipeline build_pipeline(const DdmdExperimentConfig& config,
                              int pipeline_index) {
  entk::Pipeline pipeline;
  pipeline.name = "p" + std::to_string(pipeline_index);
  for (int phase = 0; phase < config.phases; ++phase) {
    const DdmdPhaseConfig& pc = config.phase_config(phase);
    const auto stage_specs = workloads::ddmd_phase_stages(
        config.params, pc.cores_per_sim_task, pc.train_tasks,
        pc.cores_per_train_task);
    for (const auto& spec : stage_specs) {
      entk::Stage stage;
      stage.name = std::string(workloads::to_string(spec.stage)) + ".ph" +
                   std::to_string(phase);
      stage.tasks = workloads::make_ddmd_stage_tasks(
          spec, config.params, pipeline_index, phase, pc.train_tasks);
      pipeline.stages.push_back(std::move(stage));
    }
  }
  return pipeline;
}

}  // namespace

DdmdResult run_ddmd_experiment(const DdmdExperimentConfig& config) {
  check(config.mode != SomaMode::kNone || config.soma_nodes == 0,
        "mode none requires soma_nodes == 0");
  DdmdResult result;
  result.config = config;

  const int total_nodes = 1 + config.app_nodes + config.soma_nodes;
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(total_nodes);
  session_config.pilot.nodes = total_nodes;
  session_config.pilot.runtime = Duration::minutes(600);
  session_config.agent_nodes = 1;
  session_config.seed = config.seed;
  rp::Session session(session_config);
  // Pre-size the event queue: every pipeline stage, monitor tick and publish
  // turns into events, and the big runs push tens of thousands concurrently.
  session.simulation().reserve(
      static_cast<std::size_t>(config.pipelines) * 64);

  // Fault injection is installed before anything touches the network so the
  // per-link streams cover the whole run. An absent injector (the default)
  // keeps the fabric perfect and the run byte-identical to pre-fault builds.
  if (config.faults.enabled) {
    net::FaultConfig fault_config;
    fault_config.seed = config.faults.fault_seed;
    fault_config.default_link.drop_probability =
        config.faults.drop_probability;
    fault_config.default_link.spike_probability =
        config.faults.spike_probability;
    fault_config.default_link.spike_latency = config.faults.spike_latency;
    session.network().install_faults(fault_config);
  }

  std::unique_ptr<SomaDeployment> deployment;
  std::unique_ptr<entk::AppManager> app_manager;
  std::optional<SimTime> run_started;
  std::optional<SimTime> run_finished;

  session.start([&] {
    // Node layout: node 0 = agent; last `soma_nodes` nodes host SOMA.
    std::vector<NodeId> service_nodes;
    const auto& pilot_nodes = session.pilot_nodes();
    for (int i = 0; i < config.soma_nodes; ++i) {
      service_nodes.push_back(
          pilot_nodes[pilot_nodes.size() - 1 - static_cast<std::size_t>(i)]);
    }

    DeploymentConfig deploy_config;
    deploy_config.mode = config.mode;
    deploy_config.service_nodes = service_nodes;
    deploy_config.service.ranks_per_namespace =
        config.soma_ranks_per_namespace;
    // The DDMD experiments collect from two sources: RP task info and /proc
    // (paper §3.2: "we implemented data collection from two sources").
    deploy_config.service.namespaces = {core::Namespace::kWorkflow,
                                        core::Namespace::kHardware};
    deploy_config.rp_monitor.period = config.monitor_period;
    deploy_config.hw_monitor.period = config.monitor_period;
    deploy_config.client_reliability = config.reliability;
    deploy_config.client_batching = config.batching;
    deploy_config.service.storage = config.storage;
    deploy_config.service.replication = config.replication;
    deployment = std::make_unique<SomaDeployment>(session, deploy_config);

    deployment->deploy([&] {
      app_manager = std::make_unique<entk::AppManager>(session);
      for (int p = 0; p < config.pipelines; ++p) {
        app_manager->add_pipeline(build_pipeline(config, p));
      }
      if (config.adaptive_analysis) {
        app_manager->set_stage_callback([&](std::size_t pipeline,
                                            std::size_t stage) {
          // Phase boundary = every 4th stage barrier of pipeline 0.
          if (pipeline != 0 || (stage + 1) % 4 != 0) return;
          if (!deployment->deployed()) return;
          const auto hardware =
              analysis::analyze_hardware(deployment->service().store_view());
          const int phase = static_cast<int>(stage) / 4;
          const auto advice = analysis::advise_ddmd(
              hardware, session.scheduler().free_app_gpus(),
              config.phase_config(phase).train_tasks);
          result.adaptive_advice.push_back(
              "after phase " + std::to_string(phase) + ": " +
              advice.rationale);
        });
      }
      run_started = session.simulation().now();
      app_manager->run([&] {
        run_finished = session.simulation().now();
        deployment->shutdown();
        session.finalize();
      });
    });
  });

  session.run();
  check(run_finished.has_value(), "ddmd experiment did not finish");

  result.net_drops = session.network().messages_dropped();
  if (const net::FaultInjector* faults = session.network().faults()) {
    result.net_latency_spikes = faults->stats().latency_spikes;
  }

  // ---- extract results ----
  for (const auto& pipeline_result : app_manager->results()) {
    result.pipeline_seconds.push_back(pipeline_result.duration_seconds());
  }
  result.pipeline_summary = summarize(result.pipeline_seconds);
  result.makespan_seconds = (*run_finished - *run_started).to_seconds();

  if (deployment->deployed()) {
    const core::StoreView store = deployment->service().store_view();
    for (const std::string& host :
         store.sources(core::Namespace::kHardware)) {
      auto& series = result.node_utilization[host];
      for (const auto* record :
           store.series(core::Namespace::kHardware, host)) {
        if (const auto* node = record->data.find_child(host)) {
          const auto* util = node->find_child("cpu_utilization");
          const auto* gpu = node->find_child("gpu_utilization");
          if (util != nullptr) {
            series.emplace_back(record->time.to_seconds(), util->to_float64(),
                                gpu != nullptr ? gpu->to_float64() : 0.0);
          }
        }
      }
    }
    result.soma_publishes = deployment->service().publishes_received();
    result.soma_max_queue_delay_ms =
        deployment->service().max_queue_delay().to_seconds() * 1e3;
    result.mean_ack_latency_ms = deployment->mean_client_ack_latency_ms();
    result.max_ack_latency_ms = deployment->max_client_ack_latency_ms();
    result.replayed_publishes = deployment->service().replayed_publishes();
    const SomaDeployment::ReliabilityTotals totals =
        deployment->reliability_totals();
    result.rpc_retries = totals.rpc_retries;
    result.publish_failures = totals.publish_failures;
    result.failovers = totals.failovers;
    result.store_shards = totals.store_shards;
    result.shard_records_min = totals.shard_records_min;
    result.shard_records_max = totals.shard_records_max;
    result.records_replicated = totals.records_replicated;
    result.resync_records = totals.resync_records;
    result.crash_wipes = totals.crash_wipes;
    result.ranks_recovered = totals.ranks_recovered;
    result.replica_lag_records = totals.replica_lag_records;

    // Fig. 9: mean utilization of the *application* nodes within each phase
    // of pipeline 0 (stage spans come in groups of four per phase).
    const auto& pipeline0 = app_manager->results().front();
    // Application nodes = worker nodes minus the tail reserved for SOMA.
    std::vector<NodeId> app_node_ids = session.worker_node_ids();
    if (config.soma_nodes > 0 &&
        static_cast<int>(app_node_ids.size()) > config.soma_nodes) {
      app_node_ids.resize(app_node_ids.size() -
                          static_cast<std::size_t>(config.soma_nodes));
    }

    for (std::size_t phase = 0;
         phase * 4 + 3 < pipeline0.stage_spans.size(); ++phase) {
      const SimTime begin = pipeline0.stage_spans[phase * 4].first;
      const SimTime end = pipeline0.stage_spans[phase * 4 + 3].second;
      DdmdResult::PhaseUtilization pu;
      pu.phase = static_cast<int>(phase);
      pu.config = config.phase_config(static_cast<int>(phase));
      pu.span_seconds = (end - begin).to_seconds();

      double sum = 0.0;
      double gpu_sum = 0.0;
      std::size_t count = 0;
      for (NodeId id : app_node_ids) {
        const std::string host = session.platform().node(id).hostname();
        const auto it = result.node_utilization.find(host);
        if (it == result.node_utilization.end()) continue;
        for (const auto& [t, u, g] : it->second) {
          if (t >= begin.to_seconds() && t <= end.to_seconds()) {
            sum += u;
            gpu_sum += g;
            ++count;
          }
        }
      }
      if (count > 0) {
        pu.mean_utilization = sum / static_cast<double>(count);
        pu.mean_gpu_utilization = gpu_sum / static_cast<double>(count);
      }
      result.phase_utilization.push_back(pu);
    }
  }

  return result;
}

}  // namespace soma::experiments
