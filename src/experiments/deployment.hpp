// SOMA-on-RP deployment orchestration (paper Fig. 2).
//
// Reproduces the bootstrap sequence of §2.3.1: once the RP agent is up,
//   (3) the SOMA service task is scheduled first (on the service nodes),
//   (4) the RP monitoring task is scheduled, co-located with the agent,
//   (5) one hardware monitoring task per compute node is scheduled,
//   (6) only then does the experiment release application tasks.
// The deployment also wires the two interference mechanisms: hardware
// monitors add per-node execution noise, and the RP monitor's CPU share on
// the agent node inflates scheduler decision cost.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "monitors/hw_monitor.hpp"
#include "monitors/rp_monitor.hpp"
#include "profiler/tau.hpp"
#include "rp/session.hpp"
#include "soma/client.hpp"
#include "soma/service.hpp"
#include "workloads/openfoam.hpp"

namespace soma::experiments {

/// Deterministic fault profile for an experiment run. Disabled by default —
/// fault-free runs stay byte-identical to the calibrated baselines. When
/// enabled, every cross-node link gets the configured drop/spike
/// probabilities, seeded by `fault_seed` (CLI: `--fault-seed`). Shared by
/// the DDMD and OpenFOAM experiment runners.
struct FaultProfile {
  bool enabled = false;
  std::uint64_t fault_seed = 1;
  double drop_probability = 0.0;
  double spike_probability = 0.0;
  Duration spike_latency = Duration::microseconds(50);
};

enum class SomaMode {
  kNone,       ///< no SOMA nodes, no monitoring (the Fig. 11 baseline)
  kExclusive,  ///< SOMA nodes reserved; app tasks never use them
  kShared,     ///< RP may schedule app tasks on SOMA nodes' free capacity
};

[[nodiscard]] std::string_view to_string(SomaMode mode);

struct DeploymentConfig {
  SomaMode mode = SomaMode::kExclusive;
  /// Nodes for the SOMA service task; for the OpenFOAM runs this is the
  /// agent node (service co-located with RP), for scaling runs a dedicated
  /// node set.
  std::vector<NodeId> service_nodes;

  core::ServiceConfig service{};
  monitors::RpMonitorConfig rp_monitor{};
  monitors::HwMonitorConfig hw_monitor{};

  bool enable_rp_monitor = true;
  bool enable_hw_monitors = true;
  /// Monitored nodes (hardware monitors); empty = all pilot nodes.
  std::vector<NodeId> monitored_nodes;

  /// Scale factor from the RP monitor's agent-node CPU share to scheduler
  /// decision slowdown. The agent's scheduler and the monitor compete for
  /// the same few cores, so contention is super-proportional.
  double agent_contention_coeff = 4.0;

  /// First port for client-stub engines (service uses service.base_port).
  int base_client_port = 20000;

  /// Reliability policy applied to every client the deployment creates
  /// (monitors, TAU plugins, make_client). The default — no retries, no
  /// degradation — reproduces the historical perfect-transport behaviour.
  core::ClientReliability client_reliability{};

  /// Publish coalescing policy applied to every client the deployment
  /// creates. Off by default (every publish ships as its own RPC).
  core::BatchingConfig client_batching{};
};

class SomaDeployment {
 public:
  SomaDeployment(rp::Session& session, DeploymentConfig config);
  ~SomaDeployment();

  /// Submit the service + monitor tasks; `on_ready` fires when the service
  /// endpoints are live and all monitors are ticking. With mode == kNone the
  /// callback fires immediately and nothing is deployed.
  void deploy(std::function<void()> on_ready);

  /// Stop monitors and the service task (end-of-workflow control command).
  void shutdown();

  [[nodiscard]] bool deployed() const { return service_ != nullptr; }
  [[nodiscard]] core::SomaService& service();
  [[nodiscard]] monitors::RpMonitor* rp_monitor() { return rp_monitor_.get(); }
  [[nodiscard]] const std::vector<std::unique_ptr<monitors::HwMonitor>>&
  hw_monitors() const {
    return hw_monitors_;
  }

  /// Attach TAU profiling: every completed application task whose
  /// description carries an OpenFoamModel gets profiled and published to the
  /// performance namespace (paper §3.1, third data source).
  void enable_openfoam_tau(
      std::shared_ptr<const workloads::OpenFoamModel> model);

  [[nodiscard]] std::uint64_t tau_profiles_published() const;

  /// Mean/max publish->ack latency across all monitor clients, in
  /// milliseconds. The "is SOMA keeping pace" signal of the scaling runs.
  [[nodiscard]] double mean_client_ack_latency_ms() const;
  [[nodiscard]] double max_client_ack_latency_ms() const;

  /// Aggregate reliability counters across every client the deployment
  /// created (experiments report perturbation under faults from these),
  /// plus the shard balance of the service store: per shard index, records
  /// and bytes summed over namespaces, then min/max over shards. A wide
  /// min/max spread means the source hash routed load unevenly over ranks.
  struct ReliabilityTotals {
    std::uint64_t publish_failures = 0;
    std::uint64_t buffered = 0;
    std::uint64_t replayed = 0;
    std::uint64_t failovers = 0;
    std::uint64_t dropped_overflow = 0;
    std::uint64_t dropped_batch_records = 0;
    std::uint64_t batches_sent = 0;
    std::uint64_t rpc_retries = 0;
    std::uint64_t rpc_timeouts = 0;
    std::uint64_t rpc_calls_failed = 0;
    int store_shards = 0;
    std::uint64_t shard_records_min = 0;
    std::uint64_t shard_records_max = 0;
    std::uint64_t shard_bytes_min = 0;
    std::uint64_t shard_bytes_max = 0;
    // Replication totals (all zero when the service runs unreplicated).
    std::uint64_t records_replicated = 0;
    std::uint64_t resync_records = 0;
    std::uint64_t crash_wipes = 0;
    std::uint64_t ranks_recovered = 0;
    std::uint64_t replica_lag_records = 0;
  };
  [[nodiscard]] ReliabilityTotals reliability_totals() const;
  /// The deployment's clients, for export_fault_report.
  [[nodiscard]] std::vector<const core::SomaClient*> clients() const;

  /// Build a fresh client against one namespace instance (for the adaptive
  /// advisor or application-namespace use).
  std::unique_ptr<core::SomaClient> make_client(core::Namespace ns,
                                                NodeId node);

 private:
  void register_standard_analyzers();
  void start_monitors();
  int next_port() { return next_client_port_++; }

  rp::Session& session_;
  DeploymentConfig config_;
  std::function<void()> on_ready_;

  std::shared_ptr<rp::Task> service_task_;
  std::unique_ptr<core::SomaService> service_;

  std::unique_ptr<core::SomaClient> rp_monitor_client_;
  std::unique_ptr<monitors::RpMonitor> rp_monitor_;
  std::shared_ptr<rp::Task> rp_monitor_task_;

  std::vector<std::unique_ptr<core::SomaClient>> hw_clients_;
  std::vector<std::unique_ptr<monitors::HwMonitor>> hw_monitors_;
  std::vector<std::shared_ptr<rp::Task>> hw_monitor_tasks_;

  std::vector<std::unique_ptr<core::SomaClient>> tau_clients_;
  std::vector<std::unique_ptr<profiler::TauSomaPlugin>> tau_plugins_;
  std::shared_ptr<const workloads::OpenFoamModel> tau_model_;

  int next_client_port_;
  bool shutdown_ = false;
};

}  // namespace soma::experiments
