// Append-only log storage backend.
//
// Records land in one append-only log (a deque: addresses are stable for
// the life of the shard, which an eviction or spill-to-disk layer can rely
// on). A per-source index of record pointers, kept time-sorted, serves
// series/range queries; `latest` goes through a small LRU snapshot cache so
// the hot "current state of source X" path skips the index walk entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "soma/storage_backend.hpp"

namespace soma::core {

class LogBackend final : public StorageBackend {
 public:
  explicit LogBackend(std::size_t latest_cache_capacity = 128);

  void append(const std::string& source, SimTime time,
              datamodel::Node data) override;
  void append_batch(std::vector<BatchItem> items) override;
  void clear() override;
  [[nodiscard]] const TimedRecord* latest(
      const std::string& source) const override;
  [[nodiscard]] std::vector<const TimedRecord*> series(
      const std::string& source) const override;
  [[nodiscard]] std::vector<const TimedRecord*> range(
      const std::string& source, SimTime from, SimTime to) const override;
  [[nodiscard]] std::vector<std::string> sources() const override;
  [[nodiscard]] std::uint64_t record_count() const override {
    return records_;
  }
  [[nodiscard]] std::uint64_t ingested_bytes() const override {
    return bytes_;
  }
  [[nodiscard]] std::uint64_t batch_count() const override { return batches_; }
  [[nodiscard]] StorageBackendKind kind() const override {
    return StorageBackendKind::kLog;
  }

  // ---- LRU latest-snapshot cache accounting (tests, tuning) ----
  [[nodiscard]] std::uint64_t latest_cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t latest_cache_misses() const { return misses_; }
  [[nodiscard]] std::size_t latest_cache_size() const { return cache_.size(); }
  [[nodiscard]] std::size_t latest_cache_capacity() const {
    return cache_capacity_;
  }

 private:
  struct CacheEntry {
    std::string source;
    const TimedRecord* record;
  };
  /// Move `it` to the front (most recently used) and return its record.
  const TimedRecord* touch(std::list<CacheEntry>::iterator it) const;
  /// Insert/update the cached latest snapshot for `source`.
  void cache_put(const std::string& source, const TimedRecord* record) const;
  /// Append one record into the log and `source`'s index; returns true when
  /// the record became its source's newest (cache maintenance is the
  /// caller's: once per record for append, once per source for a batch).
  bool append_indexed(const std::string& source, SimTime time,
                      datamodel::Node data);

  std::deque<TimedRecord> log_;  ///< append-only; addresses never move
  std::map<std::string, std::vector<const TimedRecord*>> index_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t batches_ = 0;

  // LRU cache: front = most recently used. Mutable: `latest` is logically
  // const but promotes entries and records hit/miss accounting.
  std::size_t cache_capacity_;
  mutable std::list<CacheEntry> cache_;
  mutable std::map<std::string, std::list<CacheEntry>::iterator> cache_map_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace soma::core
