// SOMA application-instrumentation API (paper §2.3.2, "Application
// Namespace").
//
// "The application may have useful custom information to be monitored, i.e.,
// the scientific rate-of-progress or figure-of-merit self-reported by the
// application. For example, a molecular dynamics code might want to capture
// the atom-timesteps per second... capturing this data typically requires
// application instrumentation with SOMA's API."
//
// This is that API: an application links the client stub, creates an
// AppInstrument, reports named metrics as it computes, and commits batches
// to the application-namespace instance. The paper's experiments do not use
// this namespace; the library provides it (tested, and demonstrated by the
// md_figure_of_merit example).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "soma/client.hpp"

namespace soma::core {

class AppInstrument {
 public:
  /// `client` must target the application namespace; `app_id` tags every
  /// record (the store source key), e.g. "md.run42".
  AppInstrument(SomaClient& client, std::string app_id);

  [[nodiscard]] const std::string& app_id() const { return app_id_; }

  /// Record a figure-of-merit sample, buffered until commit(). Repeated
  /// reports of the same name before a commit overwrite (latest wins).
  void report_metric(const std::string& name, double value);
  void report_metric(const std::string& name, std::int64_t value);

  /// Record scientific progress in [0, 1]; clamped.
  void report_progress(double fraction);

  /// Publish everything buffered since the last commit as one record:
  ///   APP/<app_id>/<timestamp ns>/<metric> = value
  /// No-op when nothing is buffered. Returns true if a publish happened.
  bool commit();

  /// Commit automatically once `count` metrics are buffered (0 disables).
  void set_auto_commit(std::size_t count) { auto_commit_ = count; }

  [[nodiscard]] std::uint64_t commits() const { return commits_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  void maybe_auto_commit();

  SomaClient& client_;
  std::string app_id_;
  std::map<std::string, datamodel::Node> buffer_;
  std::size_t auto_commit_ = 0;
  std::uint64_t commits_ = 0;
};

}  // namespace soma::core
