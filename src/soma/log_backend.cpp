#include "soma/log_backend.hpp"

#include <algorithm>

namespace soma::core {
namespace {

std::vector<const TimedRecord*>::const_iterator lower_bound_time(
    const std::vector<const TimedRecord*>& index, SimTime t) {
  return std::lower_bound(
      index.begin(), index.end(), t,
      [](const TimedRecord* record, SimTime at) { return record->time < at; });
}

std::vector<const TimedRecord*>::const_iterator upper_bound_time(
    std::vector<const TimedRecord*>::const_iterator first,
    std::vector<const TimedRecord*>::const_iterator last, SimTime t) {
  return std::upper_bound(
      first, last, t,
      [](SimTime at, const TimedRecord* record) { return at < record->time; });
}

}  // namespace

LogBackend::LogBackend(std::size_t latest_cache_capacity)
    : cache_capacity_(std::max<std::size_t>(1, latest_cache_capacity)) {}

bool LogBackend::append_indexed(const std::string& source, SimTime time,
                                datamodel::Node data) {
  bytes_ += data.packed_size();
  ++records_;
  log_.push_back(TimedRecord{time, std::move(data)});
  const TimedRecord* stored = &log_.back();

  std::vector<const TimedRecord*>& index = index_[source];
  const bool is_newest = index.empty() || !(time < index.back()->time);
  if (is_newest) {
    index.push_back(stored);
  } else {
    // Late arrival (replayed publish): keep the index time-sorted.
    const auto at = upper_bound_time(index.begin(), index.end(), time);
    index.insert(index.begin() + (at - index.cbegin()), stored);
  }
  return is_newest;
}

void LogBackend::append(const std::string& source, SimTime time,
                        datamodel::Node data) {
  const bool is_newest = append_indexed(source, time, std::move(data));

  // Keep the snapshot cache coherent: a cached entry must always point at
  // the newest record of its source.
  const TimedRecord* stored = &log_.back();
  const auto cached = cache_map_.find(source);
  if (cached != cache_map_.end()) {
    if (is_newest) cached->second->record = stored;
  } else if (is_newest) {
    cache_put(source, stored);
  }
}

void LogBackend::append_batch(std::vector<BatchItem> items) {
  if (items.empty()) return;
  ++batches_;
  // Index every record first, then reconcile the snapshot cache once per
  // touched source — the single cache update per source is the point of the
  // batch path (cache semantics match sequential appends: a source gains or
  // refreshes a cache entry only if the batch advanced its newest record).
  std::vector<const std::string*> newest_touched;
  for (BatchItem& item : items) {
    const bool is_newest =
        append_indexed(item.source, item.time, std::move(item.data));
    if (is_newest &&
        (newest_touched.empty() || *newest_touched.back() != item.source)) {
      newest_touched.push_back(&item.source);
    }
  }
  for (const std::string* source : newest_touched) {
    const TimedRecord* newest = index_[*source].back();
    const auto cached = cache_map_.find(*source);
    if (cached != cache_map_.end()) {
      cached->second->record = newest;
    } else {
      cache_put(*source, newest);
    }
  }
}

void LogBackend::clear() {
  // The cache holds pointers into the log, so it must go with it.
  cache_map_.clear();
  cache_.clear();
  index_.clear();
  log_.clear();
  records_ = 0;
  bytes_ = 0;
  batches_ = 0;
  hits_ = 0;
  misses_ = 0;
}

const TimedRecord* LogBackend::touch(
    std::list<CacheEntry>::iterator it) const {
  cache_.splice(cache_.begin(), cache_, it);
  return it->record;
}

void LogBackend::cache_put(const std::string& source,
                           const TimedRecord* record) const {
  if (cache_.size() >= cache_capacity_) {
    cache_map_.erase(cache_.back().source);
    cache_.pop_back();
  }
  cache_.push_front(CacheEntry{source, record});
  cache_map_[source] = cache_.begin();
}

const TimedRecord* LogBackend::latest(const std::string& source) const {
  const auto cached = cache_map_.find(source);
  if (cached != cache_map_.end()) {
    ++hits_;
    return touch(cached->second);
  }
  ++misses_;
  const auto it = index_.find(source);
  if (it == index_.end() || it->second.empty()) return nullptr;
  const TimedRecord* record = it->second.back();
  cache_put(source, record);
  return record;
}

std::vector<const TimedRecord*> LogBackend::series(
    const std::string& source) const {
  const auto it = index_.find(source);
  return it == index_.end() ? std::vector<const TimedRecord*>{} : it->second;
}

std::vector<const TimedRecord*> LogBackend::range(const std::string& source,
                                                  SimTime from,
                                                  SimTime to) const {
  std::vector<const TimedRecord*> out;
  const auto it = index_.find(source);
  if (it == index_.end()) return out;
  const auto first = lower_bound_time(it->second, from);
  const auto last = upper_bound_time(first, it->second.cend(), to);
  out.assign(first, last);
  return out;
}

std::vector<std::string> LogBackend::sources() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [source, index] : index_) out.push_back(source);
  return out;
}

}  // namespace soma::core
