#include "soma/service.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace soma::core {
namespace {

/// Resolve the auto shard count: one shard per rank of a namespace
/// instance, so each rank owns exactly the shard its publishes land in.
StorageConfig resolved_storage(const ServiceConfig& config) {
  StorageConfig storage = config.storage;
  if (storage.shards_per_namespace == 0) {
    storage.shards_per_namespace = std::max(1, config.ranks_per_namespace);
  }
  return storage;
}

}  // namespace

SomaService::SomaService(net::Network& network, std::vector<NodeId> nodes,
                         ServiceConfig config)
    : network_(network),
      config_(std::move(config)),
      store_(resolved_storage(config_)) {
  if (nodes.empty()) throw ConfigError("SOMA service needs at least one node");
  if (config_.ranks_per_namespace <= 0) {
    throw ConfigError("ranks_per_namespace must be > 0");
  }
  if (config_.namespaces.empty()) {
    throw ConfigError("SOMA service needs >= 1 namespace");
  }
  if (config_.replication.enabled()) {
    // Replication identifies shards with ranks (the ring successor of a
    // shard is the next rank), so the explicit-shard escape hatch is out.
    if (store_.shard_count() != config_.ranks_per_namespace) {
      throw ConfigError(
          "replication requires one shard per rank "
          "(leave storage.shards_per_namespace at 0)");
    }
    replication_ = std::make_unique<ReplicationManager>(
        network_, store_, config_.replication);
  }

  // Create the rank engines, spreading ranks round-robin across the service
  // nodes, and partition them into namespace instances.
  int rank_index = 0;
  for (Namespace ns : config_.namespaces) {
    InstanceInfo info;
    info.ns = ns;
    for (int r = 0; r < config_.ranks_per_namespace; ++r, ++rank_index) {
      const NodeId node = nodes[static_cast<std::size_t>(rank_index) %
                                nodes.size()];
      net::Address address =
          net::make_address(node, config_.base_port + rank_index);
      auto engine =
          std::make_unique<net::Engine>(network_, address, config_.cost);
      define_rpcs(*engine, r);
      if (replication_ != nullptr) replication_->add_rank(ns, r, *engine);
      info.ranks.push_back(std::move(address));
      engines_.push_back(std::move(engine));
    }
    instances_.push_back(std::move(info));
  }
  if (replication_ != nullptr) replication_->start();
}

const InstanceInfo& SomaService::instance(Namespace ns) const {
  for (const auto& info : instances_) {
    if (info.ns == ns) return info;
  }
  throw ConfigError("SOMA service has no instance for namespace " +
                    std::string(to_string(ns)));
}

void SomaService::define_rpcs(net::Engine& engine, int shard_index) {
  engine.define("soma.publish", [this, shard_index](
                                    const net::Address& /*caller*/,
                                    const datamodel::Node& args) {
    const Namespace ns =
        parse_namespace(args.fetch_existing("ns").as_string());
    const std::string& source = args.fetch_existing("source").as_string();
    datamodel::Node data;
    if (const auto* payload = args.find_child("data")) data = *payload;
    ++publishes_received_;
    // Replayed publishes (buffered by a client while this rank was down)
    // carry their original publish time in "t"; honor it so the stored
    // series reflects when the data was produced, not when it finally
    // arrived. Live publishes keep the ingest-time stamp as before.
    SimTime stamp = network_.simulation().now();
    if (const auto* t = args.find_child("t")) {
      stamp = SimTime{t->as_int64()};
      ++replayed_publishes_;
    }
    // The receiving rank ingests into its own shard. Under normal routing
    // this is the shard the source hashes to; after a failover the source's
    // records straddle shards and the StoreView merge reunifies them.
    if (replication_ != nullptr) {
      replication_->on_append(ns, shard_index, source, stamp, data);
    }
    store_.shard(ns, shard_index).append(source, stamp, std::move(data));

    datamodel::Node ack;
    ack["status"].set("ok");
    return ack;
  });

  // Batched publishes: one frame carries N records, decoded straight off the
  // frame body (no envelope Node). Records keep the client-side publish
  // timestamps packed into the frame, so a batched series stores the same
  // per-tick stamps a record-at-a-time client would have produced.
  engine.define_raw(
      "soma.publish_batch",
      [this, shard_index](const net::Address& /*caller*/,
                          std::span<const std::byte> body) {
        const net::wire::BatchView batch = net::wire::decode_batch_body(body);
        const Namespace ns = parse_namespace(batch.ns);
        ++batches_received_;
        publishes_received_ += batch.records.size();
        std::vector<BatchItem> items;
        items.reserve(batch.records.size());
        for (const net::wire::BatchRecordView& record : batch.records) {
          items.push_back(BatchItem{std::string(record.source),
                                    SimTime{record.t_nanos},
                                    datamodel::Node::unpack(record.payload)});
        }
        if (replication_ != nullptr) {
          for (const BatchItem& item : items) {
            replication_->on_append(ns, shard_index, item.source, item.time,
                                    item.data);
          }
        }
        store_.shard(ns, shard_index).append_batch(std::move(items));

        datamodel::Node ack;
        ack["status"].set("ok");
        return ack;
      });

  // Liveness probe used by degraded clients to detect collector recovery.
  engine.define("soma.ping", [](const net::Address& /*caller*/,
                                const datamodel::Node& /*args*/) {
    datamodel::Node ack;
    ack["status"].set("ok");
    return ack;
  });

  engine.define("soma.query", [this](const net::Address& /*caller*/,
                                     const datamodel::Node& args) {
    datamodel::Node reply;
    const StoreView view = store_.view();
    const std::string& kind = args.fetch_existing("kind").as_string();
    if (kind == "latest") {
      const Namespace ns =
          parse_namespace(args.fetch_existing("ns").as_string());
      const std::string& source = args.fetch_existing("source").as_string();
      if (const TimedRecord* record = view.latest(ns, source)) {
        reply["time"].set(record->time.nanos());
        reply["data"] = record->data;
      } else {
        reply["error"].set("no records for source: " + source);
      }
    } else if (kind == "sources") {
      const Namespace ns =
          parse_namespace(args.fetch_existing("ns").as_string());
      datamodel::Node& list = reply["sources"];
      for (const std::string& source : view.sources(ns)) {
        list[source].set(
            static_cast<std::int64_t>(view.series(ns, source).size()));
      }
    } else if (kind == "stats") {
      for (Namespace ns : config_.namespaces) {
        datamodel::Node& entry = reply[std::string(to_string(ns))];
        entry["records"].set(
            static_cast<std::int64_t>(view.record_count(ns)));
        entry["bytes"].set(
            static_cast<std::int64_t>(view.ingested_bytes(ns)));
      }
    } else if (kind == "shards") {
      // Per-shard ingest balance: how evenly the source hash spread load
      // over the ranks' shards (Table 1/2 shard-balance summaries).
      reply["backend"].set(std::string(to_string(store_.backend_kind())));
      reply["shard_count"].set(
          static_cast<std::int64_t>(store_.shard_count()));
      for (Namespace ns : config_.namespaces) {
        datamodel::Node& entry = reply[std::string(to_string(ns))];
        for (int i = 0; i < store_.shard_count(); ++i) {
          const StorageBackend& shard = store_.shard(ns, i);
          datamodel::Node& slot = entry["shard_" + std::to_string(i)];
          slot["records"].set(
              static_cast<std::int64_t>(shard.record_count()));
          slot["bytes"].set(
              static_cast<std::int64_t>(shard.ingested_bytes()));
          if (replication_ != nullptr) {
            slot["replica_lag_records"].set(static_cast<std::int64_t>(
                replication_->replica_lag(ns, i)));
            slot["health"].set(
                std::string(to_string(replication_->health(ns, i))));
          }
        }
      }
    } else if (kind == "analyze") {
      // In-situ analysis: run a registered analyzer against the store and
      // return the result — the data never leaves the service.
      const std::string& name = args.fetch_existing("analyzer").as_string();
      const auto it = analyzers_.find(name);
      if (it == analyzers_.end()) {
        reply["error"].set("unknown analyzer: " + name);
      } else {
        reply["result"] = it->second(view);
      }
    } else {
      reply["error"].set("unknown query kind: " + kind);
    }
    return reply;
  });
}

void SomaService::register_analyzer(const std::string& name,
                                    Analyzer analyzer) {
  if (!analyzer) throw ConfigError("analyzer must be callable");
  const auto [it, inserted] = analyzers_.emplace(name, std::move(analyzer));
  (void)it;
  if (!inserted) throw ConfigError("analyzer already registered: " + name);
}

std::vector<std::string> SomaService::analyzer_names() const {
  std::vector<std::string> names;
  names.reserve(analyzers_.size());
  for (const auto& [name, analyzer] : analyzers_) names.push_back(name);
  return names;
}

net::EngineStats SomaService::instance_stats(Namespace ns) const {
  net::EngineStats total;
  const InstanceInfo& info = instance(ns);
  for (const auto& engine : engines_) {
    if (std::find(info.ranks.begin(), info.ranks.end(), engine->address()) ==
        info.ranks.end()) {
      continue;
    }
    const net::EngineStats& s = engine->stats();
    total.requests_handled += s.requests_handled;
    total.bulk_transfers += s.bulk_transfers;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.retried_requests += s.retried_requests;
    total.duplicate_responses += s.duplicate_responses;
    total.total_queue_delay += s.total_queue_delay;
    total.max_queue_delay = std::max(total.max_queue_delay, s.max_queue_delay);
    total.total_service_time += s.total_service_time;
  }
  return total;
}

Duration SomaService::max_queue_delay() const {
  Duration worst;
  for (const auto& engine : engines_) {
    worst = std::max(worst, engine->stats().max_queue_delay);
  }
  return worst;
}

}  // namespace soma::core
