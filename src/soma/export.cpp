#include "soma/export.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace soma::core {

std::size_t export_store(const DataStore& store, std::ostream& out) {
  std::size_t lines = 0;
  for (Namespace ns : kAllNamespaces) {
    for (const std::string& source : store.sources(ns)) {
      for (const TimedRecord& record : store.series(ns, source)) {
        datamodel::Node line;
        line["ns"].set(std::string(to_string(ns)));
        line["source"].set(source);
        line["t"].set(record.time.nanos());
        line["data"] = record.data;
        out << line.to_json() << '\n';
        ++lines;
      }
    }
  }
  return lines;
}

std::size_t export_store_to_file(const DataStore& store,
                                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("export_store: cannot open " + path);
  return export_store(store, out);
}

bool parse_export_line(const std::string& line, ExportedRecord& record) {
  if (line.empty()) return false;
  const datamodel::Node parsed = datamodel::Node::parse_json(line);
  record.ns = parse_namespace(parsed.fetch_existing("ns").as_string());
  record.source = parsed.fetch_existing("source").as_string();
  record.time = SimTime{parsed.fetch_existing("t").as_int64()};
  if (const auto* data = parsed.find_child("data")) {
    record.data = *data;
  } else {
    record.data.reset();
  }
  return true;
}

std::size_t import_store(DataStore& store, std::istream& in) {
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    // A truncated final line (no closing brace) is tolerated: it is the
    // expected state of a file whose writer died mid-record.
    if (!in.eof() || (!line.empty() && line.back() == '}')) {
      ExportedRecord record;
      if (!parse_export_line(line, record)) continue;
      store.append(record.ns, record.source, record.time,
                   std::move(record.data));
      ++loaded;
    }
  }
  return loaded;
}

std::size_t import_store_from_file(DataStore& store,
                                   const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("import_store: cannot open " + path);
  return import_store(store, in);
}

}  // namespace soma::core
