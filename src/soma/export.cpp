#include "soma/export.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "net/fault.hpp"

namespace soma::core {

std::size_t export_store(const StoreView& view, std::ostream& out) {
  std::size_t lines = 0;
  for (Namespace ns : kAllNamespaces) {
    for (const std::string& source : view.sources(ns)) {
      for (const TimedRecord* record : view.series(ns, source)) {
        datamodel::Node line;
        line["ns"].set(std::string(to_string(ns)));
        line["source"].set(source);
        line["t"].set(record->time.nanos());
        line["data"] = record->data;
        out << line.to_json() << '\n';
        ++lines;
      }
    }
  }
  return lines;
}

std::size_t export_store_to_file(const StoreView& view,
                                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ConfigError("export_store: cannot open " + path);
  return export_store(view, out);
}

datamodel::Node export_shard_report(const DataStore& store,
                                    const ReplicationManager* replication) {
  datamodel::Node report;
  report["backend"].set(std::string(to_string(store.backend_kind())));
  report["shard_count"].set(static_cast<std::int64_t>(store.shard_count()));
  for (const ShardCounters& counters : store.shard_counters()) {
    datamodel::Node& entry =
        report[std::string(to_string(counters.ns))]
              ["shard_" + std::to_string(counters.shard)];
    entry["records"].set(static_cast<std::int64_t>(counters.records));
    entry["bytes"].set(static_cast<std::int64_t>(counters.bytes));
    entry["batches"].set(static_cast<std::int64_t>(counters.batches));
  }
  if (replication != nullptr) {
    for (const ReplicationShardStatus& row : replication->shard_status()) {
      datamodel::Node& entry = report[std::string(to_string(row.ns))]
                                     ["shard_" + std::to_string(row.shard)];
      entry["replica_lag_records"].set(
          static_cast<std::int64_t>(row.replica_lag_records));
      entry["health"].set(std::string(to_string(row.health)));
    }
    const ReplicationStats& stats = replication->stats();
    datamodel::Node& summary = report["replication"];
    summary["factor"].set(
        static_cast<std::int64_t>(replication->config().factor));
    summary["records_replicated"].set(
        static_cast<std::int64_t>(stats.records_replicated));
    summary["resync_records"].set(
        static_cast<std::int64_t>(stats.resync_records));
    summary["crash_wipes"].set(static_cast<std::int64_t>(stats.crash_wipes));
    summary["recoveries_completed"].set(
        static_cast<std::int64_t>(stats.recoveries_completed));
  }
  return report;
}

bool parse_export_line(const std::string& line, ExportedRecord& record) {
  if (line.empty()) return false;
  const datamodel::Node parsed = datamodel::Node::parse_json(line);
  record.ns = parse_namespace(parsed.fetch_existing("ns").as_string());
  record.source = parsed.fetch_existing("source").as_string();
  record.time = SimTime{parsed.fetch_existing("t").as_int64()};
  if (const auto* data = parsed.find_child("data")) {
    record.data = *data;
  } else {
    record.data.reset();
  }
  return true;
}

std::size_t import_store(DataStore& store, std::istream& in) {
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    // A truncated final line (no closing brace) is tolerated: it is the
    // expected state of a file whose writer died mid-record.
    if (!in.eof() || (!line.empty() && line.back() == '}')) {
      ExportedRecord record;
      if (!parse_export_line(line, record)) continue;
      store.append(record.ns, record.source, record.time,
                   std::move(record.data));
      ++loaded;
    }
  }
  return loaded;
}

std::size_t import_store_from_file(DataStore& store,
                                   const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("import_store: cannot open " + path);
  return import_store(store, in);
}

datamodel::Node export_fault_report(const net::Network& network) {
  datamodel::Node report;
  datamodel::Node& net = report["network"];
  net["messages_sent"].set(
      static_cast<std::int64_t>(network.messages_sent()));
  net["messages_dropped"].set(
      static_cast<std::int64_t>(network.messages_dropped()));
  if (const net::FaultInjector* faults = network.faults()) {
    const net::FaultInjector::Stats& s = faults->stats();
    datamodel::Node& injected = net["injected"];
    injected["random_drops"].set(static_cast<std::int64_t>(s.random_drops));
    injected["crash_drops"].set(static_cast<std::int64_t>(s.crash_drops));
    injected["partition_drops"].set(
        static_cast<std::int64_t>(s.partition_drops));
    injected["latency_spikes"].set(
        static_cast<std::int64_t>(s.latency_spikes));
  }
  if (!network.drops_by_endpoint().empty()) {
    datamodel::Node& by_endpoint = net["drops_by_endpoint"];
    for (const auto& [endpoint, drops] : network.drops_by_endpoint()) {
      by_endpoint[endpoint].set(static_cast<std::int64_t>(drops));
    }
  }
  return report;
}

datamodel::Node export_fault_report(
    const net::Network& network,
    const std::vector<const SomaClient*>& clients) {
  datamodel::Node report = export_fault_report(network);
  datamodel::Node& reliability = report["clients"];
  std::uint64_t publish_failures = 0, buffered = 0, replayed = 0;
  std::uint64_t failovers = 0, dropped_overflow = 0;
  std::uint64_t dropped_batch_records = 0, batches_sent = 0;
  std::uint64_t retries = 0, timeouts = 0, calls_failed = 0, duplicates = 0;
  for (const SomaClient* client : clients) {
    if (client == nullptr) continue;
    const SomaClient::ClientStats& s = client->stats();
    publish_failures += s.publish_failures;
    buffered += s.buffered;
    replayed += s.replayed;
    failovers += s.failovers;
    dropped_overflow += s.dropped_overflow;
    dropped_batch_records += s.dropped_batch_records;
    batches_sent += s.batches_sent;
    const net::EngineStats& e = client->engine_stats();
    retries += e.retries;
    timeouts += e.timeouts;
    calls_failed += e.calls_failed;
    duplicates += e.duplicate_responses;
  }
  reliability["publish_failures"].set(
      static_cast<std::int64_t>(publish_failures));
  reliability["buffered"].set(static_cast<std::int64_t>(buffered));
  reliability["replayed"].set(static_cast<std::int64_t>(replayed));
  reliability["failovers"].set(static_cast<std::int64_t>(failovers));
  reliability["dropped_overflow"].set(
      static_cast<std::int64_t>(dropped_overflow));
  reliability["dropped_batch_records"].set(
      static_cast<std::int64_t>(dropped_batch_records));
  reliability["batches_sent"].set(static_cast<std::int64_t>(batches_sent));
  reliability["rpc_retries"].set(static_cast<std::int64_t>(retries));
  reliability["rpc_timeouts"].set(static_cast<std::int64_t>(timeouts));
  reliability["rpc_calls_failed"].set(
      static_cast<std::int64_t>(calls_failed));
  reliability["rpc_duplicate_responses"].set(
      static_cast<std::int64_t>(duplicates));
  return report;
}

}  // namespace soma::core
