// Client-side publish coalescing (paper §scaling: observability cost is
// message count × per-message service time).
//
// A `PublishBatcher` buffers publish records per target service rank and
// flushes each rank's open batch as one `soma.publish_batch` frame when any
// of three triggers fires:
//   - record count reaches `max_records` (the primary knob),
//   - the encoded body reaches `max_bytes` (bounds frame size), or
//   - the oldest record has waited `max_delay` (bounds staleness).
// Records are packed into the wire body as they arrive, so the byte trigger
// costs no second encoding pass and the flush only copies the finished body
// behind a frame header.
//
// The batcher is policy-free about delivery: the owner (SomaClient) supplies
// the flush function and keeps per-record state (`PendingRecord`) so a failed
// batch can fall back to the single-record reliability path with original
// timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "datamodel/node.hpp"
#include "net/wire.hpp"
#include "sim/simulation.hpp"

namespace soma::core {

/// Coalescing policy for one client. Disabled by default (`max_records` 0):
/// every publish ships as its own RPC and runs are byte-identical to the
/// unbatched client.
struct BatchingConfig {
  /// Flush when a rank's open batch holds this many records; 0 disables
  /// batching entirely.
  std::size_t max_records = 0;
  /// Flush when the encoded batch body reaches this size; 0 = unbounded.
  std::size_t max_bytes = 64 * 1024;
  /// Flush when the oldest buffered record has waited this long.
  Duration max_delay = Duration::milliseconds(50);

  [[nodiscard]] bool enabled() const { return max_records > 0; }
};

class PublishBatcher {
 public:
  /// Client-side state for one batched record, kept alongside the packed
  /// wire body so a failed batch can be re-buffered record by record.
  /// `data` is populated only when the owner asked for a re-buffer copy.
  struct PendingRecord {
    std::string source;
    datamodel::Node data;
    SimTime published_at;
    std::function<void()> on_ack;
  };

  /// One flushed batch: the encoded wire body plus its per-record state.
  struct Batch {
    net::wire::BatchBodyWriter body;
    std::vector<PendingRecord> records;
  };

  struct Stats {
    std::uint64_t batches_flushed = 0;
    std::uint64_t records_batched = 0;
    std::uint64_t size_flushes = 0;   ///< max_records trigger
    std::uint64_t byte_flushes = 0;   ///< max_bytes trigger
    std::uint64_t delay_flushes = 0;  ///< max_delay timer trigger
  };

  using FlushFn = std::function<void(std::size_t rank_index, Batch batch)>;

  PublishBatcher(sim::Simulation& simulation, std::string ns,
                 std::size_t rank_count, BatchingConfig config, FlushFn flush);
  ~PublishBatcher();
  PublishBatcher(const PublishBatcher&) = delete;
  PublishBatcher& operator=(const PublishBatcher&) = delete;

  /// Buffer one record for `rank_index`. `data` is packed into the wire body
  /// immediately; a copy is kept in the batch's record state only when
  /// `keep_copy` is set (the owner's reliability layer needs re-buffering).
  /// May flush synchronously when a size/byte trigger fires.
  void add(std::size_t rank_index, const std::string& source,
           datamodel::Node data, SimTime published_at,
           std::function<void()> on_ack, bool keep_copy);

  /// Flush `rank_index`'s open batch now (no-op when empty).
  void flush(std::size_t rank_index);
  /// Flush every rank's open batch (shutdown path).
  void flush_all();

  /// Records buffered across all ranks, awaiting a flush trigger.
  [[nodiscard]] std::size_t pending_records() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const BatchingConfig& config() const { return config_; }

 private:
  struct PerRank {
    std::optional<Batch> open;
    sim::EventHandle timer;
  };

  sim::Simulation& simulation_;
  std::string ns_;
  BatchingConfig config_;
  FlushFn flush_;
  std::vector<PerRank> ranks_;
  Stats stats_;
};

}  // namespace soma::core
