// SOMA client stub (paper §2.2.1).
//
// The client stub runs inside the address space of the component being
// instrumented (a monitor daemon, the TAU plugin, or an application task).
// It owns a small RPC engine bound at the host node and translates the
// monitoring API into RPCs against the namespace instance it was given.
// Records from one source always go to the same service rank (hash
// affinity) so per-source time series stay ordered.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "datamodel/node.hpp"
#include "net/rpc.hpp"
#include "soma/namespaces.hpp"

namespace soma::core {

class SomaClient {
 public:
  /// Statistics a client keeps about its own publishing behaviour; the
  /// scaling experiments read the ack latency to check SOMA "keeps pace".
  struct ClientStats {
    std::uint64_t published = 0;
    std::uint64_t acked = 0;
    Duration total_ack_latency;
    Duration max_ack_latency;

    [[nodiscard]] Duration mean_ack_latency() const {
      return acked == 0 ? Duration::zero() : total_ack_latency / double(acked);
    }
  };

  /// `node` is where the instrumented component runs; `instance_ranks` are
  /// the service addresses of the target namespace instance; `port` must be
  /// unique per client on that node.
  SomaClient(net::Network& network, NodeId node, int port, Namespace ns,
             std::vector<net::Address> instance_ranks);

  [[nodiscard]] Namespace target_namespace() const { return ns_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const net::Address& address() const {
    return engine_->address();
  }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

  /// Publish `data` under `source` (hostname, task uid, ...). `on_ack`
  /// (optional) fires when the service acknowledges.
  void publish(const std::string& source, datamodel::Node data,
               std::function<void()> on_ack = nullptr);

  /// Query the service (kind = "latest" / "sources" / "stats"; see
  /// SomaService). The reply arrives asynchronously.
  void query(datamodel::Node request,
             std::function<void(datamodel::Node)> on_reply);

 private:
  [[nodiscard]] const net::Address& rank_for(const std::string& source) const;

  net::Network& network_;
  Namespace ns_;
  std::vector<net::Address> instance_ranks_;
  std::unique_ptr<net::Engine> engine_;
  ClientStats stats_;
};

}  // namespace soma::core
