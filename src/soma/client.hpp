// SOMA client stub (paper §2.2.1).
//
// The client stub runs inside the address space of the component being
// instrumented (a monitor daemon, the TAU plugin, or an application task).
// It owns a small RPC engine bound at the host node and translates the
// monitoring API into RPCs against the namespace instance it was given.
// Records from one source always go to the same service rank (hash
// affinity) so per-source time series stay ordered.
//
// Reliability (optional, off by default): a `ClientReliability` config arms
// per-publish retry/timeout, and on retry exhaustion the client enters a
// graceful-degradation mode. With `buffer_on_failure` it buffers publishes
// locally, probes the dead collector with `soma.ping`, and replays the
// buffer in original publish order — with original timestamps — once the
// collector answers again. With `failover` (and no buffering) it redirects
// publishes to the next live rank of the instance instead. The default
// config takes none of these paths, so fault-free runs are byte-identical
// to the pre-reliability client.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "datamodel/node.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/batcher.hpp"
#include "soma/namespaces.hpp"

namespace soma::core {

/// How a client behaves when its collector stops answering.
struct ClientReliability {
  /// Per-publish retry policy. Disabled (zero timeout) = historical
  /// behaviour: one send, wait forever, no failure detection.
  net::RetryPolicy retry{};
  /// Buffer publishes while the target rank is down and replay them (in
  /// original order, with original timestamps) after it recovers.
  bool buffer_on_failure = false;
  /// Redirect publishes for a down rank to the next live rank of the
  /// instance. Ignored while buffering — replay preserves rank affinity.
  bool failover = false;
  /// How often a degraded client pings its dead collector.
  Duration probe_period = Duration::seconds(5);
  /// Buffer capacity; older records are dropped (and counted) beyond it.
  std::size_t max_buffered = 4096;

  [[nodiscard]] bool degradation_enabled() const {
    return retry.enabled() && (buffer_on_failure || failover);
  }
};

class SomaClient {
 public:
  /// Statistics a client keeps about its own publishing behaviour; the
  /// scaling experiments read the ack latency to check SOMA "keeps pace".
  struct ClientStats {
    std::uint64_t published = 0;
    std::uint64_t acked = 0;
    // Reliability layer (all zero with the default config).
    std::uint64_t publish_failures = 0;  ///< retry budgets exhausted
    std::uint64_t buffered = 0;          ///< publishes parked in the buffer
    std::uint64_t replayed = 0;          ///< buffered publishes re-sent
    std::uint64_t failovers = 0;         ///< publishes redirected to a live rank
    std::uint64_t dropped_overflow = 0;  ///< buffer-capacity evictions
    /// Buffer-capacity evictions of records that arrived via a failed batch
    /// (kept distinct from dropped_overflow so reliability totals stay exact
    /// under batching + faults).
    std::uint64_t dropped_batch_records = 0;
    std::uint64_t batches_sent = 0;      ///< publish_batch frames sent
    Duration total_ack_latency;
    Duration max_ack_latency;

    [[nodiscard]] Duration mean_ack_latency() const {
      return acked == 0 ? Duration::zero() : total_ack_latency / double(acked);
    }
  };

  /// `node` is where the instrumented component runs; `instance_ranks` are
  /// the service addresses of the target namespace instance; `port` must be
  /// unique per client on that node.
  SomaClient(net::Network& network, NodeId node, int port, Namespace ns,
             std::vector<net::Address> instance_ranks,
             ClientReliability reliability = {}, BatchingConfig batching = {});
  ~SomaClient();
  SomaClient(const SomaClient&) = delete;
  SomaClient& operator=(const SomaClient&) = delete;

  [[nodiscard]] Namespace target_namespace() const { return ns_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const net::Address& address() const {
    return engine_->address();
  }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const net::EngineStats& engine_stats() const {
    return engine_->stats();
  }
  [[nodiscard]] const ClientReliability& reliability() const {
    return reliability_;
  }
  [[nodiscard]] const BatchingConfig& batching() const { return batching_; }
  /// Batcher flush statistics (zeroed when batching is off).
  [[nodiscard]] PublishBatcher::Stats batcher_stats() const {
    return batcher_ ? batcher_->stats() : PublishBatcher::Stats{};
  }
  /// Records coalesced but not yet shipped (0 when batching is off).
  [[nodiscard]] std::size_t batched_pending() const {
    return batcher_ ? batcher_->pending_records() : 0;
  }

  /// True while at least one target rank is considered down (the client is
  /// buffering or failing over). Monitors report this as degraded ticks.
  [[nodiscard]] bool degraded() const;
  /// Publishes currently parked awaiting collector recovery.
  [[nodiscard]] std::size_t buffered_pending() const { return buffer_.size(); }

  /// Publish `data` under `source` (hostname, task uid, ...). `on_ack`
  /// (optional) fires when the service acknowledges.
  void publish(const std::string& source, datamodel::Node data,
               std::function<void()> on_ack = nullptr);

  /// Ship any coalesced-but-unflushed batches now. No-op when batching is
  /// off; owners call this on shutdown so the tail of a run is not lost.
  void flush_batches();

  /// Query the service (kind = "latest" / "sources" / "stats"; see
  /// SomaService). The reply arrives asynchronously.
  void query(datamodel::Node request,
             std::function<void(datamodel::Node)> on_reply);

 private:
  /// One publish parked while its collector is down.
  struct Buffered {
    std::uint64_t seq;
    std::string source;
    datamodel::Node data;
    SimTime published_at;
    std::function<void()> on_ack;
    bool from_batch = false;  ///< arrived via a failed batch
  };

  [[nodiscard]] std::size_t rank_index_for(const std::string& source) const;
  [[nodiscard]] const net::Address& rank_for(const std::string& source) const;

  /// The rank a publish ships to right now: the source's home rank, or a
  /// failover redirect while the home rank is down (counts the failover).
  [[nodiscard]] std::size_t resolve_publish_rank(const std::string& source);

  void send_publish(const std::string& source, datamodel::Node data,
                    SimTime published_at, std::function<void()> on_ack,
                    bool replay, bool from_batch = false);
  void send_batch(std::size_t rank_index, PublishBatcher::Batch batch);
  void enqueue_buffered(const std::string& source, datamodel::Node data,
                        SimTime published_at, std::function<void()> on_ack,
                        bool from_batch = false);
  void on_publish_failure(std::size_t rank_index, const std::string& source,
                          datamodel::Node data, SimTime published_at,
                          std::function<void()> on_ack,
                          bool from_batch = false);
  /// Replay buffered publishes whose target rank is back up, oldest first.
  void flush_buffer();
  void ensure_probe_running();
  void probe_tick();

  net::Network& network_;
  Namespace ns_;
  std::vector<net::Address> instance_ranks_;
  ClientReliability reliability_;
  BatchingConfig batching_;
  std::unique_ptr<net::Engine> engine_;
  std::unique_ptr<PublishBatcher> batcher_;  ///< null when batching is off
  std::vector<char> rank_down_;       // 1 = considered down
  std::vector<char> probe_in_flight_; // 1 = ping outstanding
  std::deque<Buffered> buffer_;
  std::uint64_t next_buffer_seq_ = 0;
  std::unique_ptr<sim::PeriodicTask> probe_task_;
  ClientStats stats_;
};

}  // namespace soma::core
