#include "soma/store.hpp"

#include <algorithm>
#include <utility>

namespace soma::core {
namespace {

std::size_t ns_index(Namespace ns) { return static_cast<std::size_t>(ns); }

/// Merge per-shard time-sorted series into one time-sorted sequence.
/// Stable by shard order: on equal times the lower shard index comes first,
/// so merged output is deterministic for a given shard layout.
std::vector<const TimedRecord*> merge_sorted(
    std::vector<std::vector<const TimedRecord*>> parts) {
  std::size_t filled = 0;
  std::size_t total = 0;
  std::vector<const TimedRecord*>* only = nullptr;
  for (auto& part : parts) {
    if (part.empty()) continue;
    ++filled;
    total += part.size();
    only = &part;
  }
  if (filled == 0) return {};
  if (filled == 1) return std::move(*only);

  std::vector<const TimedRecord*> out;
  out.reserve(total);
  std::vector<std::size_t> cursor(parts.size(), 0);
  while (out.size() < total) {
    std::size_t best = parts.size();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (cursor[i] >= parts[i].size()) continue;
      if (best == parts.size() ||
          parts[i][cursor[i]]->time < parts[best][cursor[best]]->time) {
        best = i;
      }
    }
    out.push_back(parts[best][cursor[best]]);
    ++cursor[best];
  }
  return out;
}

}  // namespace

DataStore::DataStore(StorageConfig config) : config_(std::move(config)) {
  // Auto (0) means "one shard per service rank" when a SomaService owns the
  // store; a store built directly (tools, import, tests) has no ranks, so
  // auto collapses to a single shard.
  const int shard_count = std::max(1, config_.shards_per_namespace);
  for (auto& group : shards_) {
    group.reserve(static_cast<std::size_t>(shard_count));
    for (int i = 0; i < shard_count; ++i) {
      group.push_back(make_storage_backend(config_));
    }
  }
  for (auto& overrides : read_overrides_) {
    overrides.assign(static_cast<std::size_t>(shard_count), nullptr);
  }
}

int DataStore::shard_index_for(const std::string& source) const {
  return static_cast<int>(
      route_source(source, static_cast<std::size_t>(shard_count())));
}

StorageBackend& DataStore::shard(Namespace ns, int index) {
  auto& group = shards_[ns_index(ns)];
  return *group[static_cast<std::size_t>(index) % group.size()];
}

const StorageBackend& DataStore::shard(Namespace ns, int index) const {
  const auto& group = shards_[ns_index(ns)];
  return *group[static_cast<std::size_t>(index) % group.size()];
}

void DataStore::set_read_override(Namespace ns, int index,
                                  const StorageBackend* backend) {
  auto& overrides = read_overrides_[ns_index(ns)];
  overrides[static_cast<std::size_t>(index) % overrides.size()] = backend;
}

void DataStore::clear_read_override(Namespace ns, int index) {
  set_read_override(ns, index, nullptr);
}

const StorageBackend& DataStore::read_shard(Namespace ns, int index) const {
  const auto& overrides = read_overrides_[ns_index(ns)];
  const StorageBackend* override_backend =
      overrides[static_cast<std::size_t>(index) % overrides.size()];
  return override_backend != nullptr ? *override_backend : shard(ns, index);
}

void DataStore::append(Namespace ns, const std::string& source, SimTime time,
                       datamodel::Node data) {
  shard(ns, shard_index_for(source)).append(source, time, std::move(data));
}

StoreView DataStore::view() const { return StoreView(*this); }

const TimedRecord* DataStore::latest(Namespace ns,
                                     const std::string& source) const {
  return view().latest(ns, source);
}

std::vector<const TimedRecord*> DataStore::series(
    Namespace ns, const std::string& source) const {
  return view().series(ns, source);
}

std::vector<const TimedRecord*> DataStore::range(Namespace ns,
                                                 const std::string& source,
                                                 SimTime from,
                                                 SimTime to) const {
  return view().range(ns, source, from, to);
}

std::vector<std::string> DataStore::sources(Namespace ns) const {
  return view().sources(ns);
}

std::uint64_t DataStore::record_count(Namespace ns) const {
  return view().record_count(ns);
}

std::uint64_t DataStore::total_records() const {
  return view().total_records();
}

std::uint64_t DataStore::ingested_bytes(Namespace ns) const {
  return view().ingested_bytes(ns);
}

std::vector<ShardCounters> DataStore::shard_counters() const {
  std::vector<ShardCounters> out;
  out.reserve(shards_.size() * static_cast<std::size_t>(shard_count()));
  for (Namespace ns : kAllNamespaces) {
    const auto& group = shards_[ns_index(ns)];
    for (std::size_t i = 0; i < group.size(); ++i) {
      out.push_back(ShardCounters{ns, static_cast<int>(i),
                                  group[i]->record_count(),
                                  group[i]->ingested_bytes(),
                                  group[i]->batch_count()});
    }
  }
  return out;
}

const TimedRecord* StoreView::latest(Namespace ns,
                                     const std::string& source) const {
  const TimedRecord* best = nullptr;
  for (int i = 0; i < store_->shard_count(); ++i) {
    const TimedRecord* candidate = store_->read_shard(ns, i).latest(source);
    // Strict > keeps the lowest shard index on time ties — deterministic.
    if (candidate != nullptr &&
        (best == nullptr || candidate->time > best->time)) {
      best = candidate;
    }
  }
  return best;
}

std::vector<const TimedRecord*> StoreView::series(
    Namespace ns, const std::string& source) const {
  std::vector<std::vector<const TimedRecord*>> parts;
  parts.reserve(static_cast<std::size_t>(store_->shard_count()));
  for (int i = 0; i < store_->shard_count(); ++i) {
    parts.push_back(store_->read_shard(ns, i).series(source));
  }
  return merge_sorted(std::move(parts));
}

std::vector<const TimedRecord*> StoreView::range(Namespace ns,
                                                 const std::string& source,
                                                 SimTime from,
                                                 SimTime to) const {
  std::vector<std::vector<const TimedRecord*>> parts;
  parts.reserve(static_cast<std::size_t>(store_->shard_count()));
  for (int i = 0; i < store_->shard_count(); ++i) {
    parts.push_back(store_->read_shard(ns, i).range(source, from, to));
  }
  return merge_sorted(std::move(parts));
}

std::vector<std::string> StoreView::sources(Namespace ns) const {
  std::vector<std::string> out;
  for (int i = 0; i < store_->shard_count(); ++i) {
    std::vector<std::string> part = store_->read_shard(ns, i).sources();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t StoreView::record_count(Namespace ns) const {
  std::uint64_t total = 0;
  for (int i = 0; i < store_->shard_count(); ++i) {
    total += store_->read_shard(ns, i).record_count();
  }
  return total;
}

std::uint64_t StoreView::total_records() const {
  std::uint64_t total = 0;
  for (Namespace ns : kAllNamespaces) total += record_count(ns);
  return total;
}

std::uint64_t StoreView::ingested_bytes(Namespace ns) const {
  std::uint64_t total = 0;
  for (int i = 0; i < store_->shard_count(); ++i) {
    total += store_->read_shard(ns, i).ingested_bytes();
  }
  return total;
}

}  // namespace soma::core
