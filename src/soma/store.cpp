#include "soma/store.hpp"

#include <algorithm>

namespace soma::core {

const std::vector<TimedRecord> DataStore::kEmptySeries{};

const DataStore::InstanceStore& DataStore::instance(Namespace ns) const {
  return instances_[static_cast<std::size_t>(ns)];
}

DataStore::InstanceStore& DataStore::instance(Namespace ns) {
  return instances_[static_cast<std::size_t>(ns)];
}

void DataStore::append(Namespace ns, const std::string& source, SimTime time,
                       datamodel::Node data) {
  InstanceStore& store = instance(ns);
  store.bytes += data.packed_size();
  ++store.records;
  store.by_source[source].push_back(TimedRecord{time, std::move(data)});
}

const TimedRecord* DataStore::latest(Namespace ns,
                                     const std::string& source) const {
  const auto& series = this->series(ns, source);
  return series.empty() ? nullptr : &series.back();
}

const std::vector<TimedRecord>& DataStore::series(
    Namespace ns, const std::string& source) const {
  const auto& by_source = instance(ns).by_source;
  const auto it = by_source.find(source);
  return it == by_source.end() ? kEmptySeries : it->second;
}

std::vector<const TimedRecord*> DataStore::range(Namespace ns,
                                                 const std::string& source,
                                                 SimTime from,
                                                 SimTime to) const {
  // Series are appended at service-ingest time, so they are sorted by time;
  // binary-search both ends instead of scanning the whole series.
  const auto& records = series(ns, source);
  const auto first = std::lower_bound(
      records.begin(), records.end(), from,
      [](const TimedRecord& record, SimTime t) { return record.time < t; });
  const auto last = std::upper_bound(
      first, records.end(), to,
      [](SimTime t, const TimedRecord& record) { return t < record.time; });
  std::vector<const TimedRecord*> out;
  out.reserve(static_cast<std::size_t>(last - first));
  for (auto it = first; it != last; ++it) out.push_back(&*it);
  return out;
}

std::vector<std::string> DataStore::sources(Namespace ns) const {
  std::vector<std::string> out;
  out.reserve(instance(ns).by_source.size());
  for (const auto& [source, series] : instance(ns).by_source) {
    out.push_back(source);
  }
  return out;  // std::map iteration is already sorted
}

std::uint64_t DataStore::record_count(Namespace ns) const {
  return instance(ns).records;
}

std::uint64_t DataStore::total_records() const {
  std::uint64_t total = 0;
  for (Namespace ns : kAllNamespaces) total += record_count(ns);
  return total;
}

std::uint64_t DataStore::ingested_bytes(Namespace ns) const {
  return instance(ns).bytes;
}

}  // namespace soma::core
