#include "soma/namespaces.hpp"

#include "common/error.hpp"

namespace soma::core {

std::string_view to_string(Namespace ns) {
  switch (ns) {
    case Namespace::kWorkflow: return "workflow";
    case Namespace::kHardware: return "hardware";
    case Namespace::kPerformance: return "performance";
    case Namespace::kApplication: return "application";
  }
  return "?";
}

std::string_view namespace_tag(Namespace ns) {
  switch (ns) {
    case Namespace::kWorkflow: return "RP";
    case Namespace::kHardware: return "PROC";
    case Namespace::kPerformance: return "TAU";
    case Namespace::kApplication: return "APP";
  }
  return "?";
}

Namespace parse_namespace(std::string_view text) {
  for (Namespace ns : kAllNamespaces) {
    if (text == to_string(ns) || text == namespace_tag(ns)) return ns;
  }
  throw ConfigError("unknown SOMA namespace: " + std::string(text));
}

}  // namespace soma::core
