#include "soma/map_backend.hpp"

#include <algorithm>

namespace soma::core {
namespace {

/// First record at or after `t` in a time-sorted vector.
std::vector<TimedRecord>::const_iterator lower_bound_time(
    const std::vector<TimedRecord>& records, SimTime t) {
  return std::lower_bound(
      records.begin(), records.end(), t,
      [](const TimedRecord& record, SimTime at) { return record.time < at; });
}

}  // namespace

void MapBackend::append_into(std::vector<TimedRecord>& series, SimTime time,
                             datamodel::Node data) {
  // Series are appended at service-ingest time and so arrive time-sorted;
  // a late record (client replay across a failover) is inserted in place so
  // the sorted-series invariant every query relies on holds regardless.
  if (series.empty() || !(time < series.back().time)) {
    series.push_back(TimedRecord{time, std::move(data)});
    return;
  }
  const auto at = std::upper_bound(
      series.begin(), series.end(), time,
      [](SimTime t, const TimedRecord& record) { return t < record.time; });
  series.insert(at, TimedRecord{time, std::move(data)});
}

void MapBackend::append(const std::string& source, SimTime time,
                        datamodel::Node data) {
  bytes_ += data.packed_size();
  ++records_;
  append_into(by_source_[source], time, std::move(data));
}

void MapBackend::append_batch(std::vector<BatchItem> items) {
  if (items.empty()) return;
  ++batches_;
  // One client batch is typically runs of the same source (a monitor's tick
  // window); reuse the located series across a run to skip the map lookup.
  std::vector<TimedRecord>* series = nullptr;
  const std::string* current = nullptr;
  for (BatchItem& item : items) {
    bytes_ += item.data.packed_size();
    ++records_;
    if (current == nullptr || item.source != *current) {
      series = &by_source_[item.source];
      current = &item.source;
    }
    append_into(*series, item.time, std::move(item.data));
  }
}

void MapBackend::clear() {
  by_source_.clear();
  records_ = 0;
  bytes_ = 0;
  batches_ = 0;
}

const TimedRecord* MapBackend::latest(const std::string& source) const {
  const auto it = by_source_.find(source);
  if (it == by_source_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

std::vector<const TimedRecord*> MapBackend::series(
    const std::string& source) const {
  std::vector<const TimedRecord*> out;
  const auto it = by_source_.find(source);
  if (it == by_source_.end()) return out;
  out.reserve(it->second.size());
  for (const TimedRecord& record : it->second) out.push_back(&record);
  return out;
}

std::vector<const TimedRecord*> MapBackend::range(const std::string& source,
                                                  SimTime from,
                                                  SimTime to) const {
  std::vector<const TimedRecord*> out;
  const auto it = by_source_.find(source);
  if (it == by_source_.end()) return out;
  const std::vector<TimedRecord>& records = it->second;
  const auto first = lower_bound_time(records, from);
  const auto last = std::upper_bound(
      first, records.end(), to,
      [](SimTime t, const TimedRecord& record) { return t < record.time; });
  out.reserve(static_cast<std::size_t>(last - first));
  for (auto record = first; record != last; ++record) {
    out.push_back(&*record);
  }
  return out;
}

std::vector<std::string> MapBackend::sources() const {
  std::vector<std::string> out;
  out.reserve(by_source_.size());
  for (const auto& [source, series] : by_source_) out.push_back(source);
  return out;  // std::map iteration is already sorted
}

}  // namespace soma::core
