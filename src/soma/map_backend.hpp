// The historical DataStore layout as a StorageBackend: one std::map from
// source to a contiguous, time-sorted vector of records.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "soma/storage_backend.hpp"

namespace soma::core {

class MapBackend final : public StorageBackend {
 public:
  void append(const std::string& source, SimTime time,
              datamodel::Node data) override;
  void append_batch(std::vector<BatchItem> items) override;
  void clear() override;
  [[nodiscard]] const TimedRecord* latest(
      const std::string& source) const override;
  [[nodiscard]] std::vector<const TimedRecord*> series(
      const std::string& source) const override;
  [[nodiscard]] std::vector<const TimedRecord*> range(
      const std::string& source, SimTime from, SimTime to) const override;
  [[nodiscard]] std::vector<std::string> sources() const override;
  [[nodiscard]] std::uint64_t record_count() const override { return records_; }
  [[nodiscard]] std::uint64_t ingested_bytes() const override {
    return bytes_;
  }
  [[nodiscard]] std::uint64_t batch_count() const override { return batches_; }
  [[nodiscard]] StorageBackendKind kind() const override {
    return StorageBackendKind::kMap;
  }

 private:
  /// Append into an already-located series (batch path: the source lookup is
  /// paid once per source run, not once per record).
  static void append_into(std::vector<TimedRecord>& series, SimTime time,
                          datamodel::Node data);

  std::map<std::string, std::vector<TimedRecord>> by_source_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace soma::core
