// SOMA logical namespaces (paper §2.3.2).
//
// Monitoring data is divided into four namespaces — workflow, hardware,
// performance, and application — each served by an independent set of SOMA
// service ranks ("instances") so that one noisy source cannot starve the
// others. The top-level Conduit tag of each namespace matches the paper's
// listings: RP, PROC, TAU, APP.
#pragma once

#include <array>
#include <string_view>

namespace soma::core {

enum class Namespace {
  kWorkflow = 0,     ///< RP task state transitions (Listing 1)
  kHardware = 1,     ///< /proc hardware metrics (Listing 2)
  kPerformance = 2,  ///< TAU profiles
  kApplication = 3,  ///< app-reported figures of merit
};

inline constexpr std::array<Namespace, 4> kAllNamespaces = {
    Namespace::kWorkflow, Namespace::kHardware, Namespace::kPerformance,
    Namespace::kApplication};

/// Human name: "workflow", "hardware", ...
[[nodiscard]] std::string_view to_string(Namespace ns);

/// Top-level Conduit tag: "RP", "PROC", "TAU", "APP".
[[nodiscard]] std::string_view namespace_tag(Namespace ns);

/// Parse a namespace from either form. Throws ConfigError on junk.
[[nodiscard]] Namespace parse_namespace(std::string_view text);

}  // namespace soma::core
