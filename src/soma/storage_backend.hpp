// Pluggable storage backends for the SOMA service-side store.
//
// A StorageBackend owns the records of ONE shard of ONE namespace instance:
// a keyspace of per-source time series. The DataStore facade (soma/store.hpp)
// composes backends into per-namespace shard groups — one shard per service
// rank — and routes appends to shards by a stable source hash; reads
// scatter-gather across the group through StoreView.
//
// Two implementations ship today:
//   * kMap — the historical per-source std::map of record vectors. Simple,
//     contiguous per-source storage, sorted source iteration for free.
//   * kLog — an append-only record log (stable addresses) with a sorted
//     per-source index and an LRU latest-snapshot cache, the layout an
//     eviction/compression/spill-to-disk backend grows out of.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "datamodel/node.hpp"

namespace soma::core {

struct TimedRecord {
  SimTime time;           ///< service-side ingest time
  datamodel::Node data;   ///< published payload
};

/// One record of a decoded publish batch, routed to a single shard.
struct BatchItem {
  std::string source;
  SimTime time;
  datamodel::Node data;
};

enum class StorageBackendKind {
  kMap = 0,  ///< per-source std::map of record vectors (default)
  kLog = 1,  ///< append-only log + sorted per-source index + LRU latest cache
};

[[nodiscard]] std::string_view to_string(StorageBackendKind kind);
/// Parse "map" / "log". Throws ConfigError on junk.
[[nodiscard]] StorageBackendKind parse_backend_kind(std::string_view text);

/// Configuration of the storage layer of one service (or offline store).
struct StorageConfig {
  StorageBackendKind backend = StorageBackendKind::kMap;
  /// Shards per namespace group. 0 = auto: the SOMA service allocates one
  /// shard per service rank of the namespace instance; offline stores
  /// (export/import tools, tests) default to a single shard.
  int shards_per_namespace = 0;
  /// Capacity of the log backend's LRU latest-snapshot cache (per shard).
  std::size_t latest_cache_capacity = 128;
};

/// FNV-1a over the source name: stable across runs, platforms, and processes
/// (std::hash is not). Both the client's rank routing and the store's shard
/// routing use THIS hash, so a source's home rank and home shard agree.
[[nodiscard]] inline std::size_t stable_source_hash(std::string_view source) {
  std::size_t h = 1469598103934665603ULL;
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The shard (equivalently: service rank) a source routes to in a group of
/// `count` shards.
[[nodiscard]] inline std::size_t route_source(std::string_view source,
                                              std::size_t count) {
  return count == 0 ? 0 : stable_source_hash(source) % count;
}

/// One shard's storage: per-source time series plus ingest counters.
///
/// Pointer validity: records returned by latest/series/range stay valid
/// until the next append to the same shard (the map backend may reallocate a
/// source's vector; the log backend never moves records but the contract is
/// kept uniform so callers do not depend on one implementation).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Append a record published by `source` (hostname, task uid, ...).
  /// Series stay time-sorted even if a record arrives late (replay paths).
  virtual void append(const std::string& source, SimTime time,
                      datamodel::Node data) = 0;

  /// Append a whole publish batch in one pass. Equivalent to appending the
  /// items in order — same final series, same counters — but lets an
  /// implementation amortize per-source index and cache maintenance across
  /// the batch instead of paying it per record.
  virtual void append_batch(std::vector<BatchItem> items) = 0;

  /// Drop every record and zero every counter, as a process restart loses a
  /// rank's in-memory shard (the replication layer's crash model). The
  /// backend is reusable afterwards, indistinguishable from freshly built.
  virtual void clear() = 0;

  /// Most recent record from `source`, if any.
  [[nodiscard]] virtual const TimedRecord* latest(
      const std::string& source) const = 0;

  /// Full series for one source, time-ascending (empty if unknown).
  [[nodiscard]] virtual std::vector<const TimedRecord*> series(
      const std::string& source) const = 0;

  /// Records from `source` with time in [from, to].
  [[nodiscard]] virtual std::vector<const TimedRecord*> range(
      const std::string& source, SimTime from, SimTime to) const = 0;

  /// All sources seen, sorted.
  [[nodiscard]] virtual std::vector<std::string> sources() const = 0;

  [[nodiscard]] virtual std::uint64_t record_count() const = 0;
  /// Total packed bytes ingested (capacity planning / shard balance).
  [[nodiscard]] virtual std::uint64_t ingested_bytes() const = 0;
  /// Number of append_batch calls absorbed (batching effectiveness).
  [[nodiscard]] virtual std::uint64_t batch_count() const = 0;

  [[nodiscard]] virtual StorageBackendKind kind() const = 0;
};

/// Build a backend of `config.backend` kind (one shard's worth of storage).
[[nodiscard]] std::unique_ptr<StorageBackend> make_storage_backend(
    const StorageConfig& config);

}  // namespace soma::core
