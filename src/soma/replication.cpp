#include "soma/replication.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/fault.hpp"
#include "net/wire.hpp"

namespace soma::core {
namespace {

// Replication frame prefix, in front of a PR 4 batch body:
//   u8   kind (0 = replica append, 1 = resync into a recovering primary)
//   u32  home shard index within the namespace instance (little-endian)
//   u64  base sequence: cumulative record count before this window
constexpr std::uint8_t kFrameReplicate = 0;
constexpr std::uint8_t kFrameResync = 1;
constexpr std::size_t kPrefixBytes = 1 + 4 + 8;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

std::uint64_t ack_seq(const datamodel::Node& response) {
  if (const auto* seq = response.find_child("seq")) {
    return static_cast<std::uint64_t>(seq->as_int64());
  }
  return 0;
}

}  // namespace

std::string_view to_string(RankHealth health) {
  switch (health) {
    case RankHealth::kLive: return "live";
    case RankHealth::kSuspected: return "suspected";
    case RankHealth::kDead: return "dead";
    case RankHealth::kRecovering: return "recovering";
  }
  return "unknown";
}

ReplicationManager::ReplicationManager(net::Network& network, DataStore& store,
                                       ReplicationConfig config)
    : network_(network), store_(store), config_(std::move(config)) {
  if (config_.factor < 2) {
    throw ConfigError("ReplicationManager needs factor >= 2");
  }
  if (config_.suspect_after < 1 || config_.dead_after < config_.suspect_after) {
    throw ConfigError("replication needs 1 <= suspect_after <= dead_after");
  }
  if (config_.max_batch_records == 0) {
    throw ConfigError("replication max_batch_records must be > 0");
  }
}

ReplicationManager::~ReplicationManager() = default;

std::size_t ReplicationManager::rank_at(Namespace ns, int shard) const {
  const auto& instance = instances_[static_cast<std::size_t>(ns)];
  if (shard < 0 || static_cast<std::size_t>(shard) >= instance.size()) {
    throw LookupError("replication: no rank for shard " +
                      std::to_string(shard) + " of namespace " +
                      std::string(to_string(ns)));
  }
  return instance[static_cast<std::size_t>(shard)];
}

bool ReplicationManager::endpoint_down_now(const Rank& rank) const {
  const net::FaultInjector* faults = network_.faults();
  if (faults == nullptr) return false;
  return faults->endpoint_down(rank.engine->address(),
                               network_.simulation().now());
}

void ReplicationManager::add_rank(Namespace ns, int shard,
                                  net::Engine& engine) {
  if (started_) {
    throw ConfigError("replication: add_rank after start");
  }
  const std::size_t index = ranks_.size();
  auto& instance = instances_[static_cast<std::size_t>(ns)];
  if (static_cast<std::size_t>(shard) != instance.size()) {
    throw ConfigError("replication: ranks must be added in shard order");
  }
  instance.push_back(index);

  Rank rank;
  rank.ns = ns;
  rank.shard = shard;
  rank.engine = &engine;
  ranks_.push_back(std::move(rank));

  engine.define("soma.heartbeat", [](const net::Address& /*caller*/,
                                     const datamodel::Node& /*args*/) {
    datamodel::Node ack;
    ack["status"].set("ok");
    return ack;
  });

  engine.define_raw(
      "soma.replicate",
      [this, index](const net::Address& /*caller*/,
                    std::span<const std::byte> body) {
        return handle_replicate(index, body);
      });
}

void ReplicationManager::start() {
  if (started_) return;
  started_ = true;

  // Ring wiring: the replicas of shard s live on the next factor-1 shards of
  // its namespace instance; replica backends are pre-built so a replica that
  // never receives a record still reads back as a valid empty shard.
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    Rank& rank = ranks_[i];
    const auto& instance = instances_[static_cast<std::size_t>(rank.ns)];
    const int effective =
        std::min(config_.factor, static_cast<int>(instance.size()));
    for (int k = 1; k < effective; ++k) {
      const std::size_t peer =
          instance[(static_cast<std::size_t>(rank.shard) +
                    static_cast<std::size_t>(k)) %
                   instance.size()];
      PeerLink link;
      link.peer = peer;
      rank.links.push_back(link);
      ranks_[peer].replicas[i] = make_storage_backend(store_.config());
      ranks_[peer].replica_seq[i] = 0;
    }
  }

  // Heartbeat phases are staggered deterministically: one uniform per rank,
  // split from the replication seed in rank order, exactly like the fault
  // layer's per-link streams — same seed, bit-identical schedule.
  const Rng base(config_.seed);
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    Rank& rank = ranks_[i];
    const double phase = base.split(static_cast<std::uint64_t>(i)).uniform();
    rank.heartbeat = std::make_unique<sim::PeriodicTask>(
        network_.simulation(), config_.heartbeat_period,
        [this, i] { tick(i); });
    rank.heartbeat->start(config_.heartbeat_period * phase);
  }
}

void ReplicationManager::stop() {
  for (Rank& rank : ranks_) {
    if (rank.heartbeat != nullptr) rank.heartbeat->stop();
  }
}

void ReplicationManager::on_append(Namespace ns, int shard,
                                   const std::string& source, SimTime time,
                                   const datamodel::Node& data) {
  const std::size_t index = rank_at(ns, shard);
  Rank& rank = ranks_[index];
  rank.log.push_back(LogEntry{source, time, data});
  for (std::size_t li = 0; li < rank.links.size(); ++li) {
    maybe_send(index, li);
  }
}

void ReplicationManager::maybe_send(std::size_t index,
                                    std::size_t link_index) {
  Rank& rank = ranks_[index];
  PeerLink& link = rank.links[link_index];
  if (link.in_flight || link.acked >= rank.log.size()) return;

  const Rank& peer = ranks_[link.peer];
  const std::size_t base = link.acked;
  const std::size_t end =
      std::min(rank.log.size(), base + config_.max_batch_records);
  net::wire::BatchBodyWriter writer{std::string(to_string(rank.ns))};
  for (std::size_t i = base; i < end; ++i) {
    const LogEntry& entry = rank.log[i];
    writer.add(entry.source, entry.time.nanos(), entry.data);
  }

  link.in_flight = true;
  ++stats_.frames_sent;
  const std::uint64_t epoch = rank.epoch;
  const std::size_t body_size = kPrefixBytes + writer.body_size();
  rank.engine->call_raw(
      peer.engine->address(), "soma.replicate", body_size,
      [shard = rank.shard, base, writer = std::move(writer)](
          std::vector<std::byte>& frame) {
        frame.push_back(static_cast<std::byte>(kFrameReplicate));
        put_u32(frame, static_cast<std::uint32_t>(shard));
        put_u64(frame, static_cast<std::uint64_t>(base));
        writer.encode(frame);
      },
      [this, index, link_index, epoch, base](datamodel::Node response) {
        Rank& sender = ranks_[index];
        if (sender.epoch != epoch) return;  // wiped since; stale future
        PeerLink& l = sender.links[link_index];
        l.in_flight = false;
        // The peer's cumulative ack is authoritative: a peer that lost its
        // replica (crash) acks low and the window rewinds to re-ship.
        l.acked = std::min(static_cast<std::size_t>(ack_seq(response)),
                           sender.log.size());
        if (l.acked > base) stats_.records_replicated += l.acked - base;
        maybe_send(index, link_index);
      },
      config_.replicate_retry,
      [this, index, link_index, epoch](const std::string& /*error*/) {
        Rank& sender = ranks_[index];
        if (sender.epoch != epoch) return;
        PeerLink& l = sender.links[link_index];
        l.in_flight = false;
        l.stalled = true;  // re-kicked by the sender's next live tick
      });
}

datamodel::Node ReplicationManager::handle_replicate(
    std::size_t holder_index, std::span<const std::byte> body) {
  if (body.size() < kPrefixBytes) {
    throw LookupError("replication frame truncated");
  }
  const auto kind = static_cast<std::uint8_t>(body[0]);
  const int home_shard = static_cast<int>(get_u32(body, 1));
  const std::uint64_t base_seq = get_u64(body, 5);
  const net::wire::BatchView batch =
      net::wire::decode_batch_body(body.subspan(kPrefixBytes));
  const Namespace ns = parse_namespace(batch.ns);

  Rank& holder = ranks_[holder_index];
  datamodel::Node ack;
  ack["status"].set("ok");

  if (kind == kFrameReplicate) {
    const std::size_t home = rank_at(ns, home_shard);
    const auto replica = holder.replicas.find(home);
    if (replica == holder.replicas.end()) {
      throw LookupError("replication: rank holds no replica of shard " +
                        std::to_string(home_shard));
    }
    std::uint64_t& applied = holder.replica_seq[home];
    // Apply only contiguous, unseen records: a retried window re-sends from
    // its original base (skip the overlap), and a pre-crash frame arriving
    // after the holder was wiped has base > 0 == applied (skip entirely; the
    // low ack rewinds the sender).
    if (base_seq <= applied) {
      for (std::size_t i = 0; i < batch.records.size(); ++i) {
        if (base_seq + i < applied) continue;
        const net::wire::BatchRecordView& record = batch.records[i];
        replica->second->append(std::string(record.source),
                                SimTime{record.t_nanos},
                                datamodel::Node::unpack(record.payload));
      }
      applied = std::max(applied, base_seq + batch.records.size());
    }
    ack["seq"].set(static_cast<std::int64_t>(applied));
    return ack;
  }

  if (kind != kFrameResync) throw LookupError("unknown replication frame");
  // Resync chunk: the receiver IS the recovering primary. Records rejoin
  // both the primary shard and the replication log, so the rank's own
  // replicas are healed by the ordinary shipping path.
  std::uint64_t& applied = holder.resync_applied;
  if (base_seq <= applied) {
    std::uint64_t fresh = 0;
    for (std::size_t i = 0; i < batch.records.size(); ++i) {
      if (base_seq + i < applied) continue;
      const net::wire::BatchRecordView& record = batch.records[i];
      apply_resync_record(holder, std::string(record.source),
                          SimTime{record.t_nanos},
                          datamodel::Node::unpack(record.payload));
      ++fresh;
    }
    applied = std::max(applied, base_seq + batch.records.size());
    stats_.resync_records += fresh;
  }
  ack["seq"].set(static_cast<std::int64_t>(applied));
  return ack;
}

void ReplicationManager::apply_resync_record(Rank& rank,
                                             const std::string& source,
                                             SimTime time,
                                             datamodel::Node data) {
  const std::size_t index = rank_at(rank.ns, rank.shard);
  store_.shard(rank.ns, rank.shard).append(source, time, data);
  rank.log.push_back(LogEntry{source, time, std::move(data)});
  for (std::size_t li = 0; li < rank.links.size(); ++li) {
    maybe_send(index, li);
  }
}

void ReplicationManager::tick(std::size_t index) {
  Rank& rank = ranks_[index];
  // Self-poll the fault injector: the down transition is the crash (memory
  // wiped), the up transition is the restart (anti-entropy resync). A dead
  // process acts on nothing, so the tick ends there while down.
  const bool down_now = endpoint_down_now(rank);
  if (down_now && !rank.down) {
    rank.down = true;
    wipe(index);
  } else if (!down_now && rank.down) {
    rank.down = false;
    begin_recovery(index);
  }
  if (rank.down) return;

  send_heartbeats(index);

  // Re-kick stalled replication windows and a stalled resync stream. The
  // frames themselves retry with backoff; this outer retry covers windows
  // that exhausted their budget while a peer was down.
  for (std::size_t li = 0; li < rank.links.size(); ++li) {
    PeerLink& link = rank.links[li];
    if (link.stalled && !link.in_flight) {
      link.stalled = false;
      maybe_send(index, li);
    }
  }
  if (rank.resync != nullptr && rank.resync->stalled &&
      !rank.resync->in_flight) {
    rank.resync->stalled = false;
    send_resync_chunk(index);
  }
}

void ReplicationManager::send_heartbeats(std::size_t index) {
  Rank& rank = ranks_[index];
  const std::uint64_t epoch = rank.epoch;
  for (const PeerLink& link : rank.links) {
    const std::size_t target = link.peer;
    ++stats_.heartbeats_sent;
    net::RetryPolicy policy;
    policy.max_attempts = 1;
    policy.timeout = config_.heartbeat_timeout;
    datamodel::Node probe;
    probe["from"].set(static_cast<std::int64_t>(rank.shard));
    rank.engine->call(
        ranks_[target].engine->address(), "soma.heartbeat", std::move(probe),
        [this, index, target, epoch](datamodel::Node /*response*/) {
          if (ranks_[index].epoch != epoch) return;
          record_heartbeat_ack(target);
        },
        policy,
        [this, index, target, epoch](const std::string& /*error*/) {
          // A dead observer's verdicts do not count (it could not have sent
          // the probe); epoch staleness covers crash-then-restart races.
          if (ranks_[index].epoch != epoch || ranks_[index].down) return;
          record_missed_heartbeat(target);
        });
  }
}

void ReplicationManager::record_heartbeat_ack(std::size_t target_index) {
  Rank& target = ranks_[target_index];
  target.missed_heartbeats = 0;
  if (target.health != RankHealth::kLive && !target.wiped &&
      !target.resyncing) {
    target.health = RankHealth::kLive;
    update_instance_read_routes(target.ns);
  }
}

void ReplicationManager::record_missed_heartbeat(std::size_t target_index) {
  Rank& target = ranks_[target_index];
  ++target.missed_heartbeats;
  ++stats_.heartbeats_missed;
  if (target.missed_heartbeats >= config_.dead_after &&
      target.health != RankHealth::kDead &&
      target.health != RankHealth::kRecovering) {
    target.health = RankHealth::kDead;
    ++stats_.dead_transitions;
    update_instance_read_routes(target.ns);
  } else if (target.missed_heartbeats >= config_.suspect_after &&
             target.health == RankHealth::kLive) {
    target.health = RankHealth::kSuspected;
    ++stats_.suspected_transitions;
  }
}

void ReplicationManager::wipe(std::size_t index) {
  Rank& rank = ranks_[index];
  ++stats_.crash_wipes;
  ++rank.epoch;  // invalidate every in-flight callback of the old process
  rank.wiped = true;
  rank.resyncing = false;
  rank.resync.reset();
  rank.resync_applied = 0;
  store_.shard(rank.ns, rank.shard).clear();
  rank.log.clear();
  for (PeerLink& link : rank.links) {
    link.acked = 0;
    link.in_flight = false;
    link.stalled = false;
  }
  for (auto& [home, replica] : rank.replicas) {
    replica->clear();
    rank.replica_seq[home] = 0;
  }
  update_instance_read_routes(rank.ns);
}

void ReplicationManager::begin_recovery(std::size_t index) {
  Rank& rank = ranks_[index];
  ++stats_.recoveries_started;
  ++rank.epoch;
  rank.health = RankHealth::kRecovering;
  rank.resyncing = true;
  rank.missed_heartbeats = 0;
  rank.resync_applied = 0;

  // Snapshot the freshest live replica of this shard BEFORE resetting the
  // holders: owned copies, streamed back in chunks below. Ties resolve to
  // the nearest successor (deterministic).
  std::size_t best_holder = ranks_.size();
  std::uint64_t best_seq = 0;
  for (const PeerLink& link : rank.links) {
    const Rank& holder = ranks_[link.peer];
    if (holder.wiped || endpoint_down_now(holder)) continue;
    const auto seq = holder.replica_seq.find(index);
    const std::uint64_t applied =
        seq == holder.replica_seq.end() ? 0 : seq->second;
    if (best_holder == ranks_.size() || applied > best_seq) {
      best_holder = link.peer;
      best_seq = applied;
    }
  }
  std::vector<LogEntry> snapshot;
  if (best_holder != ranks_.size()) {
    const StorageBackend& replica = *ranks_[best_holder].replicas.at(index);
    for (const std::string& source : replica.sources()) {
      for (const TimedRecord* record : replica.series(source)) {
        snapshot.push_back(LogEntry{source, record->time, record->data});
      }
    }
  }

  // The rebuilt log restarts at sequence zero, so every holder's replica of
  // this shard restarts too (backend cleared, cumulative ack rewound) —
  // resync'd records re-replicate through the ordinary path.
  for (PeerLink& link : rank.links) {
    Rank& holder = ranks_[link.peer];
    if (auto replica = holder.replicas.find(index);
        replica != holder.replicas.end()) {
      replica->second->clear();
      holder.replica_seq[index] = 0;
    }
    link.acked = 0;
    link.in_flight = false;
    link.stalled = false;
  }

  // The replicas this rank held for other primaries were lost in the wipe;
  // rewinding each primary's link re-ships its full log here.
  for (std::size_t p = 0; p < ranks_.size(); ++p) {
    Rank& primary = ranks_[p];
    for (std::size_t li = 0; li < primary.links.size(); ++li) {
      PeerLink& link = primary.links[li];
      if (link.peer != index) continue;
      link.acked = 0;
      link.stalled = false;
      if (!primary.down && !primary.wiped) maybe_send(p, li);
    }
  }

  update_instance_read_routes(rank.ns);

  if (snapshot.empty()) {
    // No live replica to restore from (or it was empty): rejoin empty. Any
    // replica-held records are unrecoverable until a holder comes back.
    finish_recovery(index);
    return;
  }
  auto resync = std::make_unique<Resync>();
  resync->target = index;
  resync->source = best_holder;
  resync->target_epoch = rank.epoch;
  resync->entries = std::move(snapshot);
  rank.resync = std::move(resync);
  send_resync_chunk(index);
}

void ReplicationManager::send_resync_chunk(std::size_t target_index) {
  Rank& target = ranks_[target_index];
  if (target.resync == nullptr) return;
  Resync& resync = *target.resync;
  if (resync.in_flight) return;
  if (resync.cursor >= resync.entries.size()) {
    finish_recovery(target_index);
    return;
  }
  const std::size_t base = resync.cursor;
  const std::size_t end = std::min(resync.entries.size(),
                                   base + config_.max_batch_records);
  net::wire::BatchBodyWriter writer{std::string(to_string(target.ns))};
  for (std::size_t i = base; i < end; ++i) {
    const LogEntry& entry = resync.entries[i];
    writer.add(entry.source, entry.time.nanos(), entry.data);
  }
  resync.in_flight = true;
  ++stats_.frames_sent;
  const std::uint64_t epoch = resync.target_epoch;
  const std::size_t body_size = kPrefixBytes + writer.body_size();
  Rank& source = ranks_[resync.source];
  source.engine->call_raw(
      target.engine->address(), "soma.replicate", body_size,
      [shard = target.shard, base, writer = std::move(writer)](
          std::vector<std::byte>& frame) {
        frame.push_back(static_cast<std::byte>(kFrameResync));
        put_u32(frame, static_cast<std::uint32_t>(shard));
        put_u64(frame, static_cast<std::uint64_t>(base));
        writer.encode(frame);
      },
      [this, target_index, epoch](datamodel::Node response) {
        Rank& t = ranks_[target_index];
        if (t.epoch != epoch || t.resync == nullptr) return;
        t.resync->in_flight = false;
        t.resync->cursor =
            std::min(static_cast<std::size_t>(ack_seq(response)),
                     t.resync->entries.size());
        send_resync_chunk(target_index);
      },
      config_.replicate_retry,
      [this, target_index, epoch](const std::string& /*error*/) {
        Rank& t = ranks_[target_index];
        if (t.epoch != epoch || t.resync == nullptr) return;
        t.resync->in_flight = false;
        t.resync->stalled = true;  // re-kicked by the target's next tick
      });
}

void ReplicationManager::finish_recovery(std::size_t index) {
  Rank& rank = ranks_[index];
  rank.resync.reset();
  rank.resyncing = false;
  rank.wiped = false;
  rank.health = RankHealth::kLive;
  rank.missed_heartbeats = 0;
  ++stats_.recoveries_completed;
  update_instance_read_routes(rank.ns);
}

void ReplicationManager::update_read_route(std::size_t index) {
  Rank& rank = ranks_[index];
  const bool reroute =
      rank.wiped || rank.resyncing || rank.health == RankHealth::kDead;
  if (!reroute) {
    store_.clear_read_override(rank.ns, rank.shard);
    return;
  }
  // Freshest live replica wins; ties resolve to the nearest successor.
  const StorageBackend* best = nullptr;
  std::uint64_t best_seq = 0;
  for (const PeerLink& link : rank.links) {
    const Rank& holder = ranks_[link.peer];
    if (holder.wiped || endpoint_down_now(holder)) continue;
    const auto seq = holder.replica_seq.find(index);
    const std::uint64_t applied =
        seq == holder.replica_seq.end() ? 0 : seq->second;
    if (best == nullptr || applied > best_seq) {
      best = holder.replicas.at(index).get();
      best_seq = applied;
    }
  }
  if (best != nullptr) {
    store_.set_read_override(rank.ns, rank.shard, best);
  } else {
    store_.clear_read_override(rank.ns, rank.shard);
  }
}

void ReplicationManager::update_instance_read_routes(Namespace ns) {
  // Any transition can invalidate a sibling's route (e.g. the holder a dead
  // rank reads through crashes too), so recompute the whole instance.
  for (const std::size_t index : instances_[static_cast<std::size_t>(ns)]) {
    update_read_route(index);
  }
}

RankHealth ReplicationManager::health(Namespace ns, int shard) const {
  return ranks_[rank_at(ns, shard)].health;
}

std::uint64_t ReplicationManager::replica_lag(Namespace ns, int shard) const {
  const Rank& rank = ranks_[rank_at(ns, shard)];
  if (rank.links.empty()) return 0;
  std::size_t min_acked = rank.log.size();
  for (const PeerLink& link : rank.links) {
    min_acked = std::min(min_acked, link.acked);
  }
  return rank.log.size() - min_acked;
}

std::vector<ReplicationShardStatus> ReplicationManager::shard_status() const {
  std::vector<ReplicationShardStatus> rows;
  for (const auto& instance : instances_) {
    for (const std::size_t index : instance) {
      const Rank& rank = ranks_[index];
      ReplicationShardStatus row;
      row.ns = rank.ns;
      row.shard = rank.shard;
      row.health = rank.health;
      row.log_records = rank.log.size();
      row.replica_lag_records = replica_lag(rank.ns, rank.shard);
      rows.push_back(row);
    }
  }
  return rows;
}

const StorageBackend* ReplicationManager::replica(Namespace ns, int home_shard,
                                                  int holder_shard) const {
  const std::size_t home = rank_at(ns, home_shard);
  const Rank& holder = ranks_[rank_at(ns, holder_shard)];
  const auto it = holder.replicas.find(home);
  return it == holder.replicas.end() ? nullptr : it->second.get();
}

}  // namespace soma::core
