#include "soma/storage_backend.hpp"

#include "common/error.hpp"
#include "soma/log_backend.hpp"
#include "soma/map_backend.hpp"

namespace soma::core {

std::string_view to_string(StorageBackendKind kind) {
  switch (kind) {
    case StorageBackendKind::kMap: return "map";
    case StorageBackendKind::kLog: return "log";
  }
  return "?";
}

StorageBackendKind parse_backend_kind(std::string_view text) {
  if (text == "map") return StorageBackendKind::kMap;
  if (text == "log") return StorageBackendKind::kLog;
  throw ConfigError("unknown storage backend: " + std::string(text) +
                    " (expected map|log)");
}

std::unique_ptr<StorageBackend> make_storage_backend(
    const StorageConfig& config) {
  switch (config.backend) {
    case StorageBackendKind::kMap: return std::make_unique<MapBackend>();
    case StorageBackendKind::kLog:
      return std::make_unique<LogBackend>(config.latest_cache_capacity);
  }
  throw ConfigError("unknown storage backend kind");
}

}  // namespace soma::core
