// Shard replication with heartbeat failure detection and crash recovery.
//
// PR 2 made clients survive collector crashes (buffer-and-replay, failover),
// but records already appended on a crashed rank were simply gone: its shard
// lived only in that rank's memory, and every StoreView read over the crash
// window returned a hole. This layer makes the sharded store itself durable,
// the same shape as LDMS aggregator redundancy:
//
//   * Replication — every publish a rank ingests (single-record and batch)
//     is appended to a per-shard replication log and asynchronously shipped
//     to the `factor - 1` successor ranks on the namespace instance's ring
//     (successor of shard s is shard (s+1) % ranks — the same stable ring
//     the FNV source hash routes over). Shipping reuses the PR 4 batch frame
//     behind a small replication prefix, and the PR 2 retry/backoff policy;
//     each (shard, peer) link keeps one window in flight and advances on the
//     peer's cumulative ack, so replicas apply records exactly once and in
//     home-shard order.
//
//   * Failure detection — a deterministic heartbeat loop (one PeriodicTask
//     per rank, start phases staggered by an Rng seeded like the fault
//     layer, so same-seed runs are bit-identical) has each rank probe its
//     successors. Consecutive misses mark a rank suspected, then dead; a
//     dead (or wiped) rank's StoreView reads are routed to the freshest live
//     replica of its shard until it recovers. `replica_lag_records`
//     (log records not yet acked by every replica) is surfaced per shard
//     through export_shard_report and the soma.query "shards" RPC.
//
//   * Crash recovery — each rank's tick polls the fault injector for its own
//     endpoint. On the down transition the rank's memory is wiped (primary
//     shard, replication log, held replicas), modeling a process restart; on
//     the up transition the rank anti-entropy re-syncs: it snapshots the
//     freshest live replica of its shard and streams it back in resync
//     chunks, re-appending each record to the primary shard AND the
//     replication log (so its own replicas heal too), then rejoins the read
//     set. Live primaries re-ship their full logs to the recovered rank so
//     the replicas it held are rebuilt by the ordinary replication path.
//
// Replication is OFF by default (factor <= 1 constructs nothing), keeping
// fault-free fig10/fig11 byte-identical to the unreplicated pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/rpc.hpp"
#include "sim/simulation.hpp"
#include "soma/namespaces.hpp"
#include "soma/store.hpp"

namespace soma::core {

struct ReplicationConfig {
  /// Copies of each shard, including the primary. 1 = replication off.
  /// Clamped to the namespace instance size.
  int factor = 1;
  /// Seeds the heartbeat phase stagger (deterministic, like FaultConfig).
  std::uint64_t seed = 1;
  /// Heartbeat probe period per rank; detection latency is
  /// O(dead_after * heartbeat_period).
  Duration heartbeat_period = Duration::seconds(5.0);
  /// Per-probe response timeout (single attempt; a miss is a miss).
  Duration heartbeat_timeout = Duration::seconds(2.0);
  /// Consecutive missed probes before a rank is suspected / declared dead.
  int suspect_after = 2;
  int dead_after = 3;
  /// Backoff policy for replication and resync frames (PR 2 machinery).
  net::RetryPolicy replicate_retry{3, Duration::milliseconds(50), 2.0,
                                   Duration::milliseconds(400)};
  /// Records per replication / resync frame window.
  std::size_t max_batch_records = 64;

  [[nodiscard]] bool enabled() const { return factor > 1; }
};

/// Failure-detector verdict for one rank, as routing sees it.
enum class RankHealth {
  kLive = 0,
  kSuspected = 1,  ///< missed probes; still in the read set
  kDead = 2,       ///< reads routed to the freshest live replica
  kRecovering = 3  ///< restarted; re-syncing before rejoining the read set
};

[[nodiscard]] std::string_view to_string(RankHealth health);

/// Aggregate replication counters (deployment reliability totals, export).
struct ReplicationStats {
  std::uint64_t records_replicated = 0;  ///< log entries acked by a replica
  std::uint64_t frames_sent = 0;         ///< replication + resync frames
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t suspected_transitions = 0;
  std::uint64_t dead_transitions = 0;
  std::uint64_t crash_wipes = 0;          ///< rank memory losses observed
  std::uint64_t recoveries_started = 0;
  std::uint64_t recoveries_completed = 0;
  std::uint64_t resync_records = 0;       ///< records restored via resync
};

/// Per-shard replication status row (export_shard_report, "shards" query).
struct ReplicationShardStatus {
  Namespace ns = Namespace::kWorkflow;
  int shard = 0;
  RankHealth health = RankHealth::kLive;
  std::uint64_t log_records = 0;
  /// Log records not yet acknowledged by every replica of this shard.
  std::uint64_t replica_lag_records = 0;
};

/// Replication + recovery engine of one SomaService. Constructed only when
/// `config.factor > 1`; owns the replica backends, the per-shard logs, and
/// the heartbeat tasks. Requires one shard per rank (the service's auto
/// sharding), so "rank" and "shard" are interchangeable below.
class ReplicationManager {
 public:
  ReplicationManager(net::Network& network, DataStore& store,
                     ReplicationConfig config);
  ~ReplicationManager();
  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  /// Register one service rank (called by SomaService during bring-up, in
  /// namespace-major rank order). Defines the soma.replicate and
  /// soma.heartbeat RPCs on the rank's engine.
  void add_rank(Namespace ns, int shard, net::Engine& engine);

  /// Start the heartbeat tasks (after every rank is added). Phases are
  /// staggered deterministically from `config.seed`.
  void start();

  /// Stop the heartbeat tasks so the simulation can drain to quiescence
  /// (end-of-run teardown; in-flight replication RPCs still complete).
  void stop();

  /// Hook called by the publish handlers for every record ingested by the
  /// home shard: appends to the replication log and kicks the shipper.
  void on_append(Namespace ns, int shard, const std::string& source,
                 SimTime time, const datamodel::Node& data);

  [[nodiscard]] const ReplicationConfig& config() const { return config_; }
  [[nodiscard]] const ReplicationStats& stats() const { return stats_; }

  [[nodiscard]] RankHealth health(Namespace ns, int shard) const;
  /// Log records of (ns, shard) not yet acked by every replica.
  [[nodiscard]] std::uint64_t replica_lag(Namespace ns, int shard) const;
  /// All shards' status rows, namespace-major then shard order.
  [[nodiscard]] std::vector<ReplicationShardStatus> shard_status() const;

  /// The replica of (ns, home_shard) held by `holder_shard`, or nullptr if
  /// that rank holds none. Test/inspection access.
  [[nodiscard]] const StorageBackend* replica(Namespace ns, int home_shard,
                                              int holder_shard) const;

 private:
  struct LogEntry {
    std::string source;
    SimTime time;
    datamodel::Node data;
  };

  /// Shipping state of one (home shard -> replica holder) link.
  struct PeerLink {
    std::size_t peer = 0;    ///< holder's index into ranks_
    std::size_t acked = 0;   ///< log entries the holder has acknowledged
    bool in_flight = false;  ///< one window outstanding at a time
    bool stalled = false;    ///< retries exhausted; re-kicked by the tick
  };

  /// Anti-entropy stream rebuilding one recovering primary. The entries are
  /// snapshotted (owned copies) at recovery start; `source` is the engine
  /// they are streamed from.
  struct Resync {
    std::size_t target = 0;
    std::size_t source = 0;
    std::uint64_t target_epoch = 0;
    std::vector<LogEntry> entries;
    std::size_t cursor = 0;  ///< entries acknowledged by the target
    bool in_flight = false;
    bool stalled = false;
  };

  struct Rank {
    Namespace ns = Namespace::kWorkflow;
    int shard = 0;
    net::Engine* engine = nullptr;
    RankHealth health = RankHealth::kLive;
    int missed_heartbeats = 0;
    /// Injector ground truth at this rank's last self-poll.
    bool down = false;
    /// Memory lost to a crash and not yet restored by resync.
    bool wiped = false;
    bool resyncing = false;
    /// Bumped on every wipe; async callbacks capture it and drop themselves
    /// when stale, so a restarted process never acts on pre-crash futures.
    std::uint64_t epoch = 0;
    std::vector<LogEntry> log;
    std::vector<PeerLink> links;  ///< successors holding this shard's replicas
    /// Replicas this rank holds FOR other primaries: home rank index ->
    /// backend / applied-record count (cumulative ack).
    std::map<std::size_t, std::unique_ptr<StorageBackend>> replicas;
    std::map<std::size_t, std::uint64_t> replica_seq;
    /// Resync records applied since this rank last began recovering.
    std::uint64_t resync_applied = 0;
    std::unique_ptr<sim::PeriodicTask> heartbeat;
    std::unique_ptr<Resync> resync;
  };

  [[nodiscard]] std::size_t rank_at(Namespace ns, int shard) const;
  [[nodiscard]] bool endpoint_down_now(const Rank& rank) const;

  void tick(std::size_t index);
  void send_heartbeats(std::size_t index);
  void wipe(std::size_t index);
  void begin_recovery(std::size_t index);
  void finish_recovery(std::size_t index);
  void send_resync_chunk(std::size_t target_index);
  void maybe_send(std::size_t index, std::size_t link_index);
  void record_missed_heartbeat(std::size_t target_index);
  void record_heartbeat_ack(std::size_t target_index);
  /// Install or clear the read-route override of one rank's shard.
  void update_read_route(std::size_t index);
  void update_instance_read_routes(Namespace ns);
  /// Apply one record at a recovering rank: primary shard + replication log.
  void apply_resync_record(Rank& rank, const std::string& source, SimTime time,
                           datamodel::Node data);
  datamodel::Node handle_replicate(std::size_t holder_index,
                                   std::span<const std::byte> body);

  net::Network& network_;
  DataStore& store_;
  ReplicationConfig config_;
  std::vector<Rank> ranks_;
  /// Rank indices per namespace, in shard order.
  std::array<std::vector<std::size_t>, kAllNamespaces.size()> instances_{};
  ReplicationStats stats_;
  bool started_ = false;
};

}  // namespace soma::core
