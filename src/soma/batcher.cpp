#include "soma/batcher.hpp"

#include "common/error.hpp"

namespace soma::core {

PublishBatcher::PublishBatcher(sim::Simulation& simulation, std::string ns,
                               std::size_t rank_count, BatchingConfig config,
                               FlushFn flush)
    : simulation_(simulation),
      ns_(std::move(ns)),
      config_(config),
      flush_(std::move(flush)),
      ranks_(rank_count) {
  check(config_.enabled(), "publish batcher needs max_records >= 1");
  check(config_.max_delay > Duration::zero(),
        "publish batcher needs a positive max_delay");
  check(flush_ != nullptr, "publish batcher needs a flush function");
  check(rank_count > 0, "publish batcher needs >= 1 rank");
}

PublishBatcher::~PublishBatcher() {
  // Cancel outstanding delay timers; their events capture `this`. Open
  // batches are dropped — owners flush explicitly on shutdown.
  for (PerRank& rank : ranks_) rank.timer.cancel();
}

void PublishBatcher::add(std::size_t rank_index, const std::string& source,
                         datamodel::Node data, SimTime published_at,
                         std::function<void()> on_ack, bool keep_copy) {
  check(rank_index < ranks_.size(), "batcher rank index out of range");
  PerRank& rank = ranks_[rank_index];
  if (!rank.open) {
    rank.open.emplace(
        Batch{net::wire::BatchBodyWriter(ns_), std::vector<PendingRecord>{}});
    rank.timer = simulation_.schedule(config_.max_delay, [this, rank_index] {
      ++stats_.delay_flushes;
      flush(rank_index);
    });
  }

  Batch& batch = *rank.open;
  batch.body.add(source, published_at.nanos(), data);
  PendingRecord record;
  record.source = source;
  if (keep_copy) record.data = std::move(data);
  record.published_at = published_at;
  record.on_ack = std::move(on_ack);
  batch.records.push_back(std::move(record));
  ++stats_.records_batched;

  if (batch.body.record_count() >= config_.max_records) {
    ++stats_.size_flushes;
    flush(rank_index);
  } else if (config_.max_bytes > 0 &&
             batch.body.body_size() >= config_.max_bytes) {
    ++stats_.byte_flushes;
    flush(rank_index);
  }
}

void PublishBatcher::flush(std::size_t rank_index) {
  PerRank& rank = ranks_[rank_index];
  if (!rank.open) return;
  rank.timer.cancel();
  Batch batch = std::move(*rank.open);
  rank.open.reset();
  ++stats_.batches_flushed;
  flush_(rank_index, std::move(batch));
}

void PublishBatcher::flush_all() {
  for (std::size_t i = 0; i < ranks_.size(); ++i) flush(i);
}

std::size_t PublishBatcher::pending_records() const {
  std::size_t total = 0;
  for (const PerRank& rank : ranks_) {
    if (rank.open) total += rank.open->records.size();
  }
  return total;
}

}  // namespace soma::core
