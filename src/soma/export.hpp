// Store export / import.
//
// SOMA's in-memory store can be flushed to a JSON-lines file (one record per
// line: namespace, source, timestamp, payload) for post-mortem analysis or
// transfer to another tool, and loaded back. The format is line-oriented so
// it can be tailed/streamed and survives truncation of the final line.
#pragma once

#include <iosfwd>
#include <string>

#include "net/network.hpp"
#include "soma/client.hpp"
#include "soma/replication.hpp"
#include "soma/store.hpp"

namespace soma::core {

/// Serialize every record visible through `view` to `out`, one JSON object
/// per line:
///   {"ns":"hardware","source":"cn0001","t":123456789,"data":{...}}
/// Records are written namespace-major, source-major, time-ascending —
/// scatter-gathered across shards, so the same data produces the same file
/// regardless of shard count or backend.
/// Returns the number of lines written.
std::size_t export_store(const StoreView& view, std::ostream& out);
inline std::size_t export_store(const DataStore& store, std::ostream& out) {
  return export_store(store.view(), out);
}

/// Convenience: export to a file path. Throws ConfigError when the file
/// cannot be opened.
std::size_t export_store_to_file(const StoreView& view,
                                 const std::string& path);
inline std::size_t export_store_to_file(const DataStore& store,
                                        const std::string& path) {
  return export_store_to_file(store.view(), path);
}

/// Parse one exported line back into (namespace, source, time, data).
/// Returns false on a blank line; throws LookupError on malformed input.
struct ExportedRecord {
  Namespace ns = Namespace::kWorkflow;
  std::string source;
  SimTime time;
  datamodel::Node data;
};
bool parse_export_line(const std::string& line, ExportedRecord& record);

/// Load an exported stream into a store (appending). Returns the number of
/// records loaded. Malformed lines throw LookupError; a truncated final
/// line is skipped silently.
std::size_t import_store(DataStore& store, std::istream& in);

std::size_t import_store_from_file(DataStore& store, const std::string& path);

/// Per-shard ingest counters of `store` as a Node: backend kind, shard
/// count, and records/bytes per (namespace, shard). Table 1/2 summaries
/// attach this so shard balance is visible next to the reliability totals.
/// When `replication` is given (a replicated service's manager), each shard
/// entry gains `replica_lag_records` and `health`, plus a top-level
/// "replication" subtree of aggregate counters; the default nullptr keeps
/// the report identical to the unreplicated one.
datamodel::Node export_shard_report(
    const DataStore& store, const ReplicationManager* replication = nullptr);

/// Build a report of the network's fault/drop counters: totals, drops by
/// cause (when a FaultInjector is installed) and drops by destination
/// endpoint. Experiments attach it to their result output so perturbation
/// under faults is observable alongside the monitoring data itself.
datamodel::Node export_fault_report(const net::Network& network);

/// Extended report that also aggregates client-side reliability counters
/// (retries, publish failures, buffered/replayed records, failovers).
datamodel::Node export_fault_report(
    const net::Network& network,
    const std::vector<const SomaClient*>& clients);

}  // namespace soma::core
