// The SOMA service (paper §2.2.1).
//
// A SomaService owns N service ranks, each an RPC engine pinned to a core of
// a service node. The ranks are partitioned among the four namespace
// instances. Clients publish datamodel Nodes to a rank of the appropriate
// instance; the rank ingests serially (queueing under load), stores the
// record, and acknowledges.
//
// The service also exposes a "query" RPC through which online consumers (the
// adaptive advisor of §4.3, dashboards) read analysis results back out.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/rpc.hpp"
#include "soma/namespaces.hpp"
#include "soma/replication.hpp"
#include "soma/store.hpp"

namespace soma::core {

struct ServiceConfig {
  /// Service ranks per namespace instance (paper Table 1/2: "SOMA Ranks Per
  /// Namespace").
  int ranks_per_namespace = 1;
  /// Namespaces to instantiate (experiments use workflow+hardware[+perf]).
  std::vector<Namespace> namespaces = {Namespace::kWorkflow,
                                       Namespace::kHardware,
                                       Namespace::kPerformance,
                                       Namespace::kApplication};
  /// Ingest cost model per rank.
  net::ServiceCost cost{};
  /// Port base for the rank engines.
  int base_port = 9000;
  /// Storage layer: backend kind and sharding. `shards_per_namespace == 0`
  /// (auto) shards one-per-rank, so each rank owns the shard its publishes
  /// land in.
  StorageConfig storage{};
  /// Shard replication + crash recovery (soma/replication.hpp). The default
  /// factor of 1 constructs nothing — the unreplicated service, byte for
  /// byte. Factors > 1 require the auto one-shard-per-rank layout.
  ReplicationConfig replication{};
};

/// One namespace instance: the addresses of its ranks.
struct InstanceInfo {
  Namespace ns;
  std::vector<net::Address> ranks;
};

/// A server-side analysis routine: runs *inside* the service against the
/// data it already holds ("in situ processing for runtime decision
/// actuation", paper §6) and returns its result as a Node. Analyzers read
/// through the scatter-gather StoreView, never a concrete store or shard.
using Analyzer = std::function<datamodel::Node(const StoreView&)>;

class SomaService {
 public:
  /// Bring up the service ranks on `nodes`, assigned round-robin. The nodes
  /// are those granted to the SOMA service task by the RP scheduler.
  SomaService(net::Network& network, std::vector<NodeId> nodes,
              ServiceConfig config = {});

  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] int total_ranks() const {
    return static_cast<int>(engines_.size());
  }

  /// Instance metadata published to clients (paper: service tasks make
  /// their RPC addresses known within the workflow).
  [[nodiscard]] const std::vector<InstanceInfo>& instances() const {
    return instances_;
  }
  [[nodiscard]] const InstanceInfo& instance(Namespace ns) const;

  /// The ingested data (read by the in-situ analysis).
  [[nodiscard]] const DataStore& store() const { return store_; }
  [[nodiscard]] DataStore& store() { return store_; }
  /// Scatter-gather read view over the sharded store.
  [[nodiscard]] StoreView store_view() const { return store_.view(); }

  /// Register a named in-situ analyzer, callable remotely via the query RPC
  /// {"kind":"analyze","analyzer":<name>}. Throws ConfigError on duplicates.
  void register_analyzer(const std::string& name, Analyzer analyzer);
  [[nodiscard]] std::vector<std::string> analyzer_names() const;

  // ---- service-side accounting ----
  [[nodiscard]] std::uint64_t publishes_received() const {
    return publishes_received_;
  }
  /// Publishes that arrived via a client's buffer-and-replay path (they
  /// carried an original-publish timestamp).
  [[nodiscard]] std::uint64_t replayed_publishes() const {
    return replayed_publishes_;
  }
  /// Batch frames absorbed via soma.publish_batch (their records are also
  /// counted in publishes_received).
  [[nodiscard]] std::uint64_t batches_received() const {
    return batches_received_;
  }
  /// Aggregate engine stats over all ranks of one namespace instance.
  [[nodiscard]] net::EngineStats instance_stats(Namespace ns) const;
  /// Max queueing delay seen by any rank (the saturation signal).
  [[nodiscard]] Duration max_queue_delay() const;

  /// The replication + recovery engine, or nullptr when replication is off.
  [[nodiscard]] const ReplicationManager* replication() const {
    return replication_.get();
  }
  [[nodiscard]] ReplicationManager* replication() {
    return replication_.get();
  }

 private:
  /// `shard_index` is the rank's index within its namespace instance; the
  /// rank appends into that shard of the store.
  void define_rpcs(net::Engine& engine, int shard_index);

  net::Network& network_;
  ServiceConfig config_;
  DataStore store_;
  std::vector<std::unique_ptr<net::Engine>> engines_;
  /// Declared after engines_ so it is destroyed first (it borrows them).
  std::unique_ptr<ReplicationManager> replication_;
  std::vector<InstanceInfo> instances_;
  std::map<std::string, Analyzer> analyzers_;
  std::uint64_t publishes_received_ = 0;
  std::uint64_t replayed_publishes_ = 0;
  std::uint64_t batches_received_ = 0;
};

}  // namespace soma::core
