// SOMA service-side data store.
//
// Each namespace instance keeps the published records as per-source time
// series of datamodel Nodes. The store is the substrate for all online
// analysis: "latest snapshot of host X", "all workflow summaries in the last
// N seconds", "per-task TAU profiles".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "datamodel/node.hpp"
#include "soma/namespaces.hpp"

namespace soma::core {

struct TimedRecord {
  SimTime time;           ///< service-side ingest time
  datamodel::Node data;   ///< published payload
};

class DataStore {
 public:
  /// Append a record published by `source` (hostname, task uid, ...).
  void append(Namespace ns, const std::string& source, SimTime time,
              datamodel::Node data);

  /// Most recent record from `source`, if any.
  [[nodiscard]] const TimedRecord* latest(Namespace ns,
                                          const std::string& source) const;

  /// Full series for one source (empty if unknown).
  [[nodiscard]] const std::vector<TimedRecord>& series(
      Namespace ns, const std::string& source) const;

  /// Records from `source` with time in [from, to].
  [[nodiscard]] std::vector<const TimedRecord*> range(
      Namespace ns, const std::string& source, SimTime from, SimTime to) const;

  /// All sources seen in a namespace, sorted.
  [[nodiscard]] std::vector<std::string> sources(Namespace ns) const;

  [[nodiscard]] std::uint64_t record_count(Namespace ns) const;
  [[nodiscard]] std::uint64_t total_records() const;
  /// Total packed bytes ingested per namespace (capacity planning).
  [[nodiscard]] std::uint64_t ingested_bytes(Namespace ns) const;

 private:
  struct InstanceStore {
    std::map<std::string, std::vector<TimedRecord>> by_source;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const InstanceStore& instance(Namespace ns) const;
  [[nodiscard]] InstanceStore& instance(Namespace ns);

  std::array<InstanceStore, kAllNamespaces.size()> instances_;
  static const std::vector<TimedRecord> kEmptySeries;
};

}  // namespace soma::core
