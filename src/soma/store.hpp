// SOMA service-side data store: per-namespace shard groups over pluggable
// storage backends.
//
// Each namespace instance's storage is split into shards — one per service
// rank when owned by a SomaService, one total for offline stores (tools,
// import, tests). Appends route to a shard by the same stable source hash
// the client stub uses for rank affinity, so the shard a rank owns is
// exactly the shard its publishes land in. Reads scatter-gather across the
// shard group through StoreView, the interface every analysis routine and
// experiment consumes: a source that failed over between ranks (and so
// spans shards) still reads back as one merged, time-sorted series.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "soma/namespaces.hpp"
#include "soma/storage_backend.hpp"

namespace soma::core {

class StoreView;

/// Per-shard ingest counters (shard balance reporting, Table 1/2).
struct ShardCounters {
  Namespace ns = Namespace::kWorkflow;
  int shard = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t batches = 0;  ///< append_batch calls absorbed
};

class DataStore {
 public:
  /// `config.shards_per_namespace == 0` (auto) collapses to one shard —
  /// the offline default. The SOMA service passes its rank count instead.
  explicit DataStore(StorageConfig config = {});

  [[nodiscard]] const StorageConfig& config() const { return config_; }
  [[nodiscard]] StorageBackendKind backend_kind() const {
    return config_.backend;
  }
  /// Shards per namespace group (uniform across namespaces).
  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_[0].size());
  }

  /// The shard `source` routes to (same hash as SomaClient rank affinity).
  [[nodiscard]] int shard_index_for(const std::string& source) const;

  /// Direct shard access. A service rank appends into its own shard here;
  /// `index` wraps modulo the shard count so a service forced to fewer
  /// shards than ranks still maps every rank somewhere.
  [[nodiscard]] StorageBackend& shard(Namespace ns, int index);
  [[nodiscard]] const StorageBackend& shard(Namespace ns, int index) const;

  /// Append routed by source hash (offline import, direct store use).
  void append(Namespace ns, const std::string& source, SimTime time,
              datamodel::Node data);

  // ---- read-route overrides (replication failover) ----------------------
  // The replication layer points a dead or recovering shard's reads at the
  // freshest live replica; appends and shard_counters always address the
  // primary. `backend` is borrowed and must outlive the override.
  void set_read_override(Namespace ns, int index, const StorageBackend* backend);
  void clear_read_override(Namespace ns, int index);
  /// The backend reads of shard `index` resolve to: the override when one is
  /// installed, the primary otherwise. All StoreView reads go through this.
  [[nodiscard]] const StorageBackend& read_shard(Namespace ns, int index) const;

  /// Scatter-gather read facade over every shard of every namespace.
  [[nodiscard]] StoreView view() const;

  // ---- convenience reads (delegate to the view; see StoreView for
  // semantics). Kept so storage-layer tests and tools read naturally. ----
  [[nodiscard]] const TimedRecord* latest(Namespace ns,
                                          const std::string& source) const;
  [[nodiscard]] std::vector<const TimedRecord*> series(
      Namespace ns, const std::string& source) const;
  [[nodiscard]] std::vector<const TimedRecord*> range(
      Namespace ns, const std::string& source, SimTime from, SimTime to) const;
  [[nodiscard]] std::vector<std::string> sources(Namespace ns) const;
  [[nodiscard]] std::uint64_t record_count(Namespace ns) const;
  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] std::uint64_t ingested_bytes(Namespace ns) const;

  /// Per-shard counters, namespace-major then shard order.
  [[nodiscard]] std::vector<ShardCounters> shard_counters() const;

 private:
  using ShardGroup = std::vector<std::unique_ptr<StorageBackend>>;

  StorageConfig config_;
  std::array<ShardGroup, kAllNamespaces.size()> shards_;
  /// Per-shard read overrides; nullptr = read the primary.
  std::array<std::vector<const StorageBackend*>, kAllNamespaces.size()>
      read_overrides_;
};

/// Read-only scatter-gather interface over a DataStore's shard groups.
///
/// This is the seam analysis routines program against (`Analyzer` takes a
/// `const StoreView&`): they see one logical store per namespace no matter
/// how many shards or which backend sit underneath. Merge semantics:
///   * series/range — per-shard series merged time-ascending; ties keep
///     shard order (deterministic across runs).
///   * latest       — the newest record over all shards; ties resolve to
///     the lowest shard index.
///   * sources      — union of shard sources, sorted, deduplicated.
/// The view borrows the store: it stays valid while the store does, and
/// returned record pointers are valid until the next append.
class StoreView {
 public:
  explicit StoreView(const DataStore& store) : store_(&store) {}

  [[nodiscard]] const DataStore& store() const { return *store_; }
  [[nodiscard]] int shard_count() const { return store_->shard_count(); }

  [[nodiscard]] const TimedRecord* latest(Namespace ns,
                                          const std::string& source) const;
  [[nodiscard]] std::vector<const TimedRecord*> series(
      Namespace ns, const std::string& source) const;
  [[nodiscard]] std::vector<const TimedRecord*> range(
      Namespace ns, const std::string& source, SimTime from, SimTime to) const;
  [[nodiscard]] std::vector<std::string> sources(Namespace ns) const;
  [[nodiscard]] std::uint64_t record_count(Namespace ns) const;
  [[nodiscard]] std::uint64_t total_records() const;
  [[nodiscard]] std::uint64_t ingested_bytes(Namespace ns) const;

 private:
  const DataStore* store_;
};

}  // namespace soma::core
