#include "soma/client.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soma::core {
namespace {

std::size_t hash_source(const std::string& source) {
  // FNV-1a: stable across runs and platforms (std::hash is not).
  std::size_t h = 1469598103934665603ULL;
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SomaClient::SomaClient(net::Network& network, NodeId node, int port,
                       Namespace ns, std::vector<net::Address> instance_ranks)
    : network_(network), ns_(ns), instance_ranks_(std::move(instance_ranks)) {
  check(!instance_ranks_.empty(), "SOMA client needs >= 1 service rank");
  // The client stub handles only tiny acks; give it a near-zero cost model.
  net::ServiceCost stub_cost;
  stub_cost.base = Duration::microseconds(1);
  stub_cost.per_kib = Duration::nanoseconds(100);
  engine_ = std::make_unique<net::Engine>(
      network_, net::make_address(node, port), stub_cost);
}

const net::Address& SomaClient::rank_for(const std::string& source) const {
  return instance_ranks_[hash_source(source) % instance_ranks_.size()];
}

void SomaClient::publish(const std::string& source, datamodel::Node data,
                         std::function<void()> on_ack) {
  datamodel::Node args;
  args["ns"].set(std::string(to_string(ns_)));
  args["source"].set(source);
  args["data"] = std::move(data);

  ++stats_.published;
  const SimTime sent_at = network_.simulation().now();
  engine_->call(rank_for(source), "soma.publish", std::move(args),
                [this, sent_at, on_ack = std::move(on_ack)](
                    const datamodel::Node& /*reply*/) {
                  ++stats_.acked;
                  const Duration latency =
                      network_.simulation().now() - sent_at;
                  stats_.total_ack_latency += latency;
                  stats_.max_ack_latency =
                      std::max(stats_.max_ack_latency, latency);
                  if (on_ack) on_ack();
                });
}

void SomaClient::query(datamodel::Node request,
                       std::function<void(datamodel::Node)> on_reply) {
  check(on_reply != nullptr, "query requires a reply callback");
  // Queries go to the instance's first rank; query volume is negligible
  // next to publish volume.
  engine_->call(instance_ranks_.front(), "soma.query", std::move(request),
                std::move(on_reply));
}

}  // namespace soma::core
