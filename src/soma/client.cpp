#include "soma/client.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "soma/storage_backend.hpp"

namespace soma::core {

SomaClient::SomaClient(net::Network& network, NodeId node, int port,
                       Namespace ns, std::vector<net::Address> instance_ranks,
                       ClientReliability reliability, BatchingConfig batching)
    : network_(network),
      ns_(ns),
      instance_ranks_(std::move(instance_ranks)),
      reliability_(reliability),
      batching_(batching) {
  check(!instance_ranks_.empty(), "SOMA client needs >= 1 service rank");
  // The client stub handles only tiny acks; give it a near-zero cost model.
  net::ServiceCost stub_cost;
  stub_cost.base = Duration::microseconds(1);
  stub_cost.per_kib = Duration::nanoseconds(100);
  engine_ = std::make_unique<net::Engine>(
      network_, net::make_address(node, port), stub_cost);

  rank_down_.assign(instance_ranks_.size(), 0);
  probe_in_flight_.assign(instance_ranks_.size(), 0);
  if (reliability_.degradation_enabled()) {
    probe_task_ = std::make_unique<sim::PeriodicTask>(
        network_.simulation(), reliability_.probe_period,
        [this] { probe_tick(); });
  }
  if (batching_.enabled()) {
    batcher_ = std::make_unique<PublishBatcher>(
        network_.simulation(), std::string(to_string(ns_)),
        instance_ranks_.size(), batching_,
        [this](std::size_t rank_index, PublishBatcher::Batch batch) {
          send_batch(rank_index, std::move(batch));
        });
  }
}

SomaClient::~SomaClient() = default;

std::size_t SomaClient::rank_index_for(const std::string& source) const {
  // Same stable hash the store uses for shard routing: with one shard per
  // rank, the rank a source publishes to owns the shard it hashes to.
  return route_source(source, instance_ranks_.size());
}

const net::Address& SomaClient::rank_for(const std::string& source) const {
  return instance_ranks_[rank_index_for(source)];
}

bool SomaClient::degraded() const {
  return std::any_of(rank_down_.begin(), rank_down_.end(),
                     [](char down) { return down != 0; });
}

void SomaClient::publish(const std::string& source, datamodel::Node data,
                         std::function<void()> on_ack) {
  ++stats_.published;
  const SimTime now = network_.simulation().now();
  if (reliability_.retry.enabled() && reliability_.buffer_on_failure) {
    // Park the record if its collector is down — or if anything is already
    // parked: replay order must not let a fresh publish overtake a buffered
    // one from the same source.
    if (!buffer_.empty() || rank_down_[rank_index_for(source)]) {
      enqueue_buffered(source, std::move(data), now, std::move(on_ack));
      return;
    }
  }
  if (batcher_) {
    // Coalesce. The batcher keeps a payload copy only when a failed batch
    // must fall back to the re-buffer path (same rule as the single-record
    // send below).
    const bool keep_copy =
        reliability_.retry.enabled() && reliability_.buffer_on_failure;
    batcher_->add(resolve_publish_rank(source), source, std::move(data), now,
                  std::move(on_ack), keep_copy);
    return;
  }
  send_publish(source, std::move(data), now, std::move(on_ack),
               /*replay=*/false);
}

void SomaClient::flush_batches() {
  if (batcher_) batcher_->flush_all();
}

std::size_t SomaClient::resolve_publish_rank(const std::string& source) {
  std::size_t idx = rank_index_for(source);
  if (rank_down_[idx] && reliability_.failover &&
      !reliability_.buffer_on_failure) {
    // Hash affinity is broken anyway while the home rank is down; redirect
    // to the next live rank of the instance.
    for (std::size_t k = 1; k < instance_ranks_.size(); ++k) {
      const std::size_t alt = (idx + k) % instance_ranks_.size();
      if (!rank_down_[alt]) {
        idx = alt;
        ++stats_.failovers;
        break;
      }
    }
  }
  return idx;
}

void SomaClient::send_publish(const std::string& source, datamodel::Node data,
                              SimTime published_at,
                              std::function<void()> on_ack, bool replay,
                              bool from_batch) {
  const std::size_t idx = resolve_publish_rank(source);

  // Keep a copy only when a failed send must be re-buffered; plain and
  // failover-only clients never pay it.
  datamodel::Node data_copy;
  const bool keep_copy =
      reliability_.retry.enabled() && reliability_.buffer_on_failure;
  if (keep_copy) data_copy = data;

  datamodel::Node args;
  args["ns"].set(std::string(to_string(ns_)));
  args["source"].set(source);
  args["data"] = std::move(data);
  // Replayed records carry their original publish time so the service
  // stores them under the timestamp the data was produced at.
  if (replay) args["t"].set(published_at.nanos());

  const SimTime sent_at = network_.simulation().now();
  auto on_response = [this, sent_at,
                      on_ack](const datamodel::Node& /*reply*/) {
    ++stats_.acked;
    const Duration latency = network_.simulation().now() - sent_at;
    stats_.total_ack_latency += latency;
    stats_.max_ack_latency = std::max(stats_.max_ack_latency, latency);
    if (on_ack) on_ack();
  };

  if (!reliability_.retry.enabled()) {
    engine_->call(instance_ranks_[idx], "soma.publish", std::move(args),
                  std::move(on_response));
    return;
  }

  net::Engine::ErrorCallback on_error =
      [this, idx, source, data_copy = std::move(data_copy), published_at,
       on_ack, from_batch](const std::string& /*error*/) mutable {
        on_publish_failure(idx, source, std::move(data_copy), published_at,
                           std::move(on_ack), from_batch);
      };
  engine_->call(instance_ranks_[idx], "soma.publish", std::move(args),
                std::move(on_response), reliability_.retry,
                std::move(on_error));
}

void SomaClient::send_batch(std::size_t rank_index,
                            PublishBatcher::Batch batch) {
  if (batch.records.empty()) return;
  ++stats_.batches_sent;
  const std::size_t count = batch.records.size();
  // The per-record state is shared between the ack and error callbacks (only
  // one of them ever consumes it).
  auto records = std::make_shared<std::vector<PublishBatcher::PendingRecord>>(
      std::move(batch.records));

  const SimTime sent_at = network_.simulation().now();
  auto on_response = [this, sent_at, records,
                      count](const datamodel::Node& /*reply*/) {
    stats_.acked += count;
    const Duration latency = network_.simulation().now() - sent_at;
    stats_.total_ack_latency += latency * static_cast<double>(count);
    stats_.max_ack_latency = std::max(stats_.max_ack_latency, latency);
    for (PublishBatcher::PendingRecord& record : *records) {
      if (record.on_ack) record.on_ack();
    }
  };

  const auto encode = [&batch](std::vector<std::byte>& frame) {
    batch.body.encode(frame);
  };

  if (!reliability_.retry.enabled()) {
    engine_->call_raw(instance_ranks_[rank_index], "soma.publish_batch",
                      batch.body.body_size(), encode, std::move(on_response));
    return;
  }

  net::Engine::ErrorCallback on_error =
      [this, rank_index, records](const std::string& /*error*/) {
        // A failed batch degrades to the single-record reliability path:
        // every record re-buffers (or is counted failed) with its original
        // publish timestamp, so replay is indistinguishable from a failed
        // record-at-a-time run.
        for (PublishBatcher::PendingRecord& record : *records) {
          on_publish_failure(rank_index, record.source, std::move(record.data),
                             record.published_at, std::move(record.on_ack),
                             /*from_batch=*/true);
        }
      };
  engine_->call_raw(instance_ranks_[rank_index], "soma.publish_batch",
                    batch.body.body_size(), encode, std::move(on_response),
                    reliability_.retry, std::move(on_error));
}

void SomaClient::enqueue_buffered(const std::string& source,
                                  datamodel::Node data, SimTime published_at,
                                  std::function<void()> on_ack,
                                  bool from_batch) {
  if (buffer_.size() >= reliability_.max_buffered) {
    if (buffer_.front().from_batch) {
      ++stats_.dropped_batch_records;
    } else {
      ++stats_.dropped_overflow;
    }
    buffer_.pop_front();
  }
  buffer_.push_back(Buffered{next_buffer_seq_++, source, std::move(data),
                             published_at, std::move(on_ack), from_batch});
  ++stats_.buffered;
  ensure_probe_running();
}

void SomaClient::on_publish_failure(std::size_t rank_index,
                                    const std::string& source,
                                    datamodel::Node data, SimTime published_at,
                                    std::function<void()> on_ack,
                                    bool from_batch) {
  ++stats_.publish_failures;
  rank_down_[rank_index] = 1;
  SOMA_DEBUG() << "soma client " << address() << ": collector "
               << instance_ranks_[rank_index] << " unresponsive";
  if (reliability_.buffer_on_failure) {
    enqueue_buffered(source, std::move(data), published_at, std::move(on_ack),
                     from_batch);
  }
  if (reliability_.degradation_enabled()) ensure_probe_running();
}

void SomaClient::flush_buffer() {
  if (buffer_.empty()) return;
  std::vector<Buffered> ready;
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (rank_down_[rank_index_for(it->source)] == 0) {
      ready.push_back(std::move(*it));
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
  // Replay in original publish order. Records re-buffered by a late failure
  // carry an earlier publish time than their enqueue position, so sort by
  // (published_at, seq) rather than trusting queue order — the store's
  // per-source series must stay time-ascending.
  std::sort(ready.begin(), ready.end(),
            [](const Buffered& a, const Buffered& b) {
              if (a.published_at != b.published_at) {
                return a.published_at < b.published_at;
              }
              return a.seq < b.seq;
            });
  for (Buffered& record : ready) {
    ++stats_.replayed;
    send_publish(record.source, std::move(record.data), record.published_at,
                 std::move(record.on_ack), /*replay=*/true,
                 record.from_batch);
  }
}

void SomaClient::ensure_probe_running() {
  if (!probe_task_ || probe_task_->running()) return;
  probe_task_->start(reliability_.probe_period);
}

void SomaClient::probe_tick() {
  flush_buffer();  // opportunistic: replay anything whose rank is back up
  bool any_down = false;
  for (std::size_t i = 0; i < instance_ranks_.size(); ++i) {
    if (rank_down_[i] == 0) continue;
    any_down = true;
    if (probe_in_flight_[i] != 0) continue;
    probe_in_flight_[i] = 1;
    net::RetryPolicy probe;
    probe.max_attempts = 1;
    probe.timeout = reliability_.retry.timeout;
    engine_->call(
        instance_ranks_[i], "soma.ping", datamodel::Node{},
        [this, i](const datamodel::Node& /*reply*/) {
          probe_in_flight_[i] = 0;
          rank_down_[i] = 0;
          SOMA_DEBUG() << "soma client " << address() << ": collector "
                       << instance_ranks_[i] << " recovered";
          flush_buffer();
        },
        probe, [this, i](const std::string& /*error*/) {
          probe_in_flight_[i] = 0;
        });
  }
  if (!any_down && buffer_.empty()) probe_task_->stop();
}

void SomaClient::query(datamodel::Node request,
                       std::function<void(datamodel::Node)> on_reply) {
  check(on_reply != nullptr, "query requires a reply callback");
  // Queries go to the instance's first rank; query volume is negligible
  // next to publish volume.
  engine_->call(instance_ranks_.front(), "soma.query", std::move(request),
                std::move(on_reply));
}

}  // namespace soma::core
