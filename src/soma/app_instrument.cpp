#include "soma/app_instrument.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soma::core {

AppInstrument::AppInstrument(SomaClient& client, std::string app_id)
    : client_(client), app_id_(std::move(app_id)) {
  check(client_.target_namespace() == Namespace::kApplication,
        "AppInstrument requires an application-namespace client");
  check(!app_id_.empty(), "AppInstrument requires a non-empty app id");
}

void AppInstrument::report_metric(const std::string& name, double value) {
  buffer_[name].set(value);
  maybe_auto_commit();
}

void AppInstrument::report_metric(const std::string& name,
                                  std::int64_t value) {
  buffer_[name].set(value);
  maybe_auto_commit();
}

void AppInstrument::report_progress(double fraction) {
  report_metric("progress", std::clamp(fraction, 0.0, 1.0));
}

void AppInstrument::maybe_auto_commit() {
  if (auto_commit_ > 0 && buffer_.size() >= auto_commit_) commit();
}

bool AppInstrument::commit() {
  if (buffer_.empty()) return false;
  datamodel::Node record;
  datamodel::Node& at =
      record[app_id_]
            [std::to_string(client_.network().simulation().now().nanos())];
  for (auto& [name, value] : buffer_) {
    at[name] = std::move(value);
  }
  buffer_.clear();
  client_.publish(app_id_, std::move(record));
  ++commits_;
  return true;
}

}  // namespace soma::core
