// Discrete-event simulation engine.
//
// Every subsystem in this repository (network, batch system, RP components,
// SOMA service, monitoring clients) is driven by one `Simulation` event
// queue. Events scheduled for the same instant are dispatched in scheduling
// order (a monotonically increasing sequence number breaks ties), which makes
// whole-workflow runs bit-for-bit reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace soma::sim {

/// Handle to a scheduled event; allows cancellation (e.g. a periodic monitor
/// being shut down at workflow completion).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// after the event has fired (no-op).
  void cancel();

  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop and simulated clock.
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Only advances inside run()/run_until().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Run until the queue drains. Returns the time of the last event.
  SimTime run();

  /// Run until the queue drains or the clock passes `until`, whichever comes
  /// first. Events scheduled exactly at `until` are executed.
  SimTime run_until(SimTime until);

  /// Execute at most one pending event. Returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (diagnostics/tests).
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return dispatched_;
  }

  /// Number of events currently pending (cancelled events are counted until
  /// they are lazily discarded).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop and execute the front event. Precondition: queue not empty.
  void dispatch_front();

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Convenience owner for repeating activities: reschedules itself every
/// `period` until stop() is called. Used by the monitoring clients.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;

  PeriodicTask(Simulation& simulation, Duration period, Tick tick);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begin ticking; the first tick fires after `initial_delay`.
  void start(Duration initial_delay = Duration::zero());

  /// Stop ticking. Safe to call repeatedly.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void arm(Duration delay);

  Simulation& simulation_;
  Duration period_;
  Tick tick_;
  bool running_ = false;
  EventHandle pending_;
  std::shared_ptr<bool> alive_;
};

}  // namespace soma::sim
