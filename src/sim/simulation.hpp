// Discrete-event simulation engine.
//
// Every subsystem in this repository (network, batch system, RP components,
// SOMA service, monitoring clients) is driven by one `Simulation` event
// queue. Events scheduled for the same instant are dispatched in scheduling
// order (a monotonically increasing sequence number breaks ties), which makes
// whole-workflow runs bit-for-bit reproducible for a given seed.
//
// Hot-loop design: an event is {when, seq, callback, slot}. Callbacks are
// move-only small-buffer functions (common::UniqueFunction), so a typical
// capture lives inside the event record instead of behind a std::function
// heap cell. Cancellation is generation-counted: each event borrows a slot
// from a free-listed table, and an EventHandle is just {slot, generation}.
// A cancelled or fired event bumps nothing but a couple of integers — no
// shared_ptr<bool> control block per event.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "common/unique_function.hpp"

namespace soma::sim {

class Simulation;

/// Handle to a scheduled event; allows cancellation (e.g. a periodic monitor
/// being shut down at workflow completion) and pending-state queries.
///
/// A handle is a weak reference: it never keeps the event alive and it must
/// not outlive the Simulation that issued it.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// after the event has fired (no-op).
  void cancel();

  /// True while the referenced event is still pending (scheduled, not yet
  /// fired and not cancelled). A default-constructed handle, a fired event,
  /// and a cancelled event all report false.
  [[nodiscard]] bool valid() const;

 private:
  friend class Simulation;
  EventHandle(Simulation* simulation, std::uint32_t slot,
              std::uint64_t generation)
      : simulation_(simulation), slot_(slot), generation_(generation) {}

  Simulation* simulation_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// The event loop and simulated clock.
class Simulation {
 public:
  using Callback = common::UniqueFunction<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Only advances inside run()/run_until().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Run until the queue drains. Returns the time of the last event.
  SimTime run();

  /// Run until the queue drains or the clock passes `until`, whichever comes
  /// first. Events scheduled exactly at `until` are executed.
  SimTime run_until(SimTime until);

  /// Run for `span` of simulated time from the current clock (fault tests
  /// advance through outage windows in measured steps).
  SimTime run_for(Duration span) { return run_until(now_ + span); }

  /// Execute at most one pending event. Returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (diagnostics/tests).
  [[nodiscard]] std::uint64_t events_dispatched() const {
    return dispatched_;
  }

  /// Number of live events currently pending. Cancelled events still sit in
  /// the queue until lazily discarded, but are not counted here.
  [[nodiscard]] std::size_t pending() const { return live_events_; }

  /// Pre-size the event queue and slot table for `n` concurrent events (the
  /// big scaling benches schedule tens of thousands up front).
  void reserve(std::size_t n);

 private:
  friend class EventHandle;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
    std::uint32_t slot;
    std::uint64_t generation;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// One cancellation slot. `generation` increments every time the slot is
  /// recycled, so handles from a previous occupancy go stale automatically;
  /// `pending` flips false on cancel and on dispatch.
  struct Slot {
    std::uint64_t generation = 0;
    bool pending = false;
  };

  [[nodiscard]] bool event_pending(std::uint32_t slot,
                                   std::uint64_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           slots_[slot].pending;
  }
  void cancel_event(std::uint32_t slot, std::uint64_t generation) {
    if (event_pending(slot, generation)) {
      slots_[slot].pending = false;
      --live_events_;
    }
  }

  std::uint32_t acquire_slot();
  /// Retire the slot of a popped event (fired or discarded-as-cancelled).
  /// The 1:1 event-to-slot mapping guarantees no queue entry references the
  /// slot after its event is popped.
  void release_slot(std::uint32_t slot);

  /// Pop and execute the front event. Precondition: queue not empty and the
  /// front event is live (not cancelled).
  void dispatch_front();
  /// Pop cancelled events off the front, retiring their slots.
  void discard_cancelled_front();

  /// priority_queue with access to the underlying vector's capacity.
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, Later> {
    void reserve(std::size_t n) { c.reserve(n); }
  };

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_events_ = 0;
  EventQueue queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

/// Convenience owner for repeating activities: reschedules itself every
/// `period` until stop() is called. Used by the monitoring clients.
///
/// Liveness follows the engine's generation-counted cancellation: the task
/// owns at most one pending event, stop()/destruction cancel it through its
/// EventHandle, and a cancelled event is discarded without ever invoking the
/// callback — so the `this` capture can never be touched after destruction.
class PeriodicTask {
 public:
  using Tick = common::UniqueFunction<void()>;

  PeriodicTask(Simulation& simulation, Duration period, Tick tick);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begin ticking; the first tick fires after `initial_delay`.
  void start(Duration initial_delay = Duration::zero());

  /// Stop ticking. Safe to call repeatedly.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void arm(Duration delay);

  Simulation& simulation_;
  Duration period_;
  Tick tick_;
  bool running_ = false;
  EventHandle pending_;
};

}  // namespace soma::sim
