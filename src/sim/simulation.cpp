#include "sim/simulation.hpp"

namespace soma::sim {

void EventHandle::cancel() {
  if (simulation_ != nullptr) simulation_->cancel_event(slot_, generation_);
}

bool EventHandle::valid() const {
  return simulation_ != nullptr && simulation_->event_pending(slot_,
                                                              generation_);
}

std::uint32_t Simulation::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].pending = true;
    return slot;
  }
  slots_.push_back(Slot{0, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulation::release_slot(std::uint32_t slot) {
  // Bumping the generation here invalidates every outstanding handle to the
  // finished occupancy before the slot is handed out again.
  ++slots_[slot].generation;
  slots_[slot].pending = false;
  free_slots_.push_back(slot);
}

EventHandle Simulation::schedule(Duration delay, Callback fn) {
  check(delay >= Duration::zero(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_at(SimTime when, Callback fn) {
  check(when >= now_, "cannot schedule into the past");
  const std::uint32_t slot = acquire_slot();
  const std::uint64_t generation = slots_[slot].generation;
  queue_.push(Event{when, next_seq_++, std::move(fn), slot, generation});
  ++live_events_;
  return EventHandle{this, slot, generation};
}

void Simulation::reserve(std::size_t n) {
  queue_.reserve(n);
  slots_.reserve(n);
  free_slots_.reserve(n);
}

void Simulation::dispatch_front() {
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  // The event is no longer pending the moment it fires; its handle goes
  // stale before the callback runs so valid() is false inside the callback.
  release_slot(event.slot);
  --live_events_;
  now_ = event.when;
  ++dispatched_;
  event.fn();
}

void Simulation::discard_cancelled_front() {
  while (!queue_.empty()) {
    const Event& front = queue_.top();
    if (slots_[front.slot].pending) return;
    release_slot(front.slot);
    queue_.pop();
  }
}

bool Simulation::step() {
  discard_cancelled_front();
  if (queue_.empty()) return false;
  dispatch_front();
  return true;
}

SimTime Simulation::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulation::run_until(SimTime until) {
  while (true) {
    discard_cancelled_front();
    if (queue_.empty()) return now_;
    if (queue_.top().when > until) {
      now_ = until;
      return now_;
    }
    dispatch_front();
  }
}

PeriodicTask::PeriodicTask(Simulation& simulation, Duration period, Tick tick)
    : simulation_(simulation), period_(period), tick_(std::move(tick)) {
  check(period_ > Duration::zero(), "periodic task period must be positive");
}

void PeriodicTask::start(Duration initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::stop() {
  running_ = false;
  pending_.cancel();
}

void PeriodicTask::arm(Duration delay) {
  // A cancelled event is discarded without running, so a stale `this` is
  // never dereferenced: stop() (and therefore the destructor) cancels the one
  // pending event through its handle. The event's own slot is released before
  // the callback runs, so inside the tick pending_.valid() is true only if
  // the tick itself rearmed (stop()+start()); skip the trailing rearm then to
  // keep a single pending event per task.
  pending_ = simulation_.schedule(delay, [this] {
    if (!running_) return;
    tick_();
    if (running_ && !pending_.valid()) arm(period_);
  });
}

}  // namespace soma::sim
