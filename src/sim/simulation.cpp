#include "sim/simulation.hpp"

namespace soma::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

EventHandle Simulation::schedule(Duration delay, Callback fn) {
  check(delay >= Duration::zero(), "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_at(SimTime when, Callback fn) {
  check(when >= now_, "cannot schedule into the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle{std::move(cancelled)};
}

void Simulation::dispatch_front() {
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (*event.cancelled) return;
  now_ = event.when;
  ++dispatched_;
  event.fn();
}

bool Simulation::step() {
  while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
  if (queue_.empty()) return false;
  dispatch_front();
  return true;
}

SimTime Simulation::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulation::run_until(SimTime until) {
  while (true) {
    while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
    if (queue_.empty()) return now_;
    if (queue_.top().when > until) {
      now_ = until;
      return now_;
    }
    dispatch_front();
  }
}

PeriodicTask::PeriodicTask(Simulation& simulation, Duration period, Tick tick)
    : simulation_(simulation),
      period_(period),
      tick_(std::move(tick)),
      alive_(std::make_shared<bool>(true)) {
  check(period_ > Duration::zero(), "periodic task period must be positive");
}

PeriodicTask::~PeriodicTask() {
  *alive_ = false;
  stop();
}

void PeriodicTask::start(Duration initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicTask::stop() {
  running_ = false;
  pending_.cancel();
}

void PeriodicTask::arm(Duration delay) {
  // The lambda captures `alive_` by value so that a PeriodicTask destroyed
  // mid-simulation never has its members touched by a stale event.
  pending_ = simulation_.schedule(delay, [this, alive = alive_] {
    if (!*alive || !running_) return;
    tick_();
    if (*alive && running_) arm(period_);
  });
}

}  // namespace soma::sim
