// OpenFOAM / AdditiveFOAM task model (paper §3.1, ExaAM melt-pool workflow).
//
// The paper runs AdditiveFOAM tasks at 20/41/82/164 MPI ranks (0.5 to 4
// Summit nodes) and observes (Fig. 4) limited benefit beyond two nodes. We
// model the execution time of one task as
//
//   T(r, placement) = (T_serial + W/r + c_log * log2(r) + c_lin * r)
//                     * contention(placement) * noise
//
// where the linear term models the growing halo-exchange/collective cost
// that flattens the strong-scaling curve, and contention(placement) captures
// memory-bandwidth pressure: ranks packed densely on a node slow each other
// (self density), ranks sharing a node with other busy tasks slow further
// (other density), and spanning nodes adds a small network penalty. This is
// the mechanism behind the placement effects of Fig. 6.
//
// The same model exposes a consistent per-rank MPI time breakdown for the
// TAU plugin (Fig. 5): communication time is split between MPI_Recv,
// MPI_Waitall, and MPI_Allreduce, with a deterministic per-rank imbalance
// profile.
#pragma once

#include <memory>

#include "cluster/platform.hpp"
#include "rp/execution_model.hpp"
#include "rp/task.hpp"

namespace soma::workloads {

struct OpenFoamParams {
  double serial_seconds = 12.0;   ///< non-parallelizable fraction
  double work_core_seconds = 7200.0;  ///< parallel work W
  double log_coeff = 3.5;         ///< collective term (seconds * log2(r))
  double linear_coeff = 0.45;     ///< halo/exchange term (seconds * r)

  double self_contention = 0.50;  ///< slowdown per unit own-rank density
  double other_contention = 0.18; ///< slowdown per unit other-task density
  double cross_node_penalty = 0.008;  ///< per additional node spanned

  double noise_sigma = 0.06;      ///< lognormal run-to-run variation

  // Communication fractions (of total time) used for the TAU breakdown.
  double recv_fraction = 0.32;
  double waitall_fraction = 0.22;
  double allreduce_fraction = 0.06;
};

class OpenFoamModel final : public rp::ExecutionModel {
 public:
  /// `platform` (optional) enables contention terms that read live node
  /// occupancy at rank_start; pass nullptr for a placement-only model.
  explicit OpenFoamModel(const cluster::Platform* platform,
                         OpenFoamParams params = {});

  [[nodiscard]] Duration sample_duration(const rp::TaskDescription& task,
                                         const rp::Placement& placement,
                                         Rng& rng) const override;

  /// Deterministic part of the duration (no contention, no noise): the pure
  /// strong-scaling curve used for calibration and tests.
  [[nodiscard]] double ideal_seconds(int ranks) const;

  /// Contention multiplier (>= 1) for a placement at this instant.
  [[nodiscard]] double contention_multiplier(
      const rp::Placement& placement) const;

  [[nodiscard]] const OpenFoamParams& params() const { return params_; }

  /// Per-rank time breakdown for the TAU plugin. Returns, for `rank` of
  /// `ranks` total and a total runtime `total_seconds`, the seconds spent in
  /// {compute, MPI_Recv, MPI_Waitall, MPI_Allreduce}. The split is
  /// deterministic in (rank, ranks) and sums to total_seconds.
  struct RankBreakdown {
    double compute = 0.0;
    double mpi_recv = 0.0;
    double mpi_waitall = 0.0;
    double mpi_allreduce = 0.0;

    [[nodiscard]] double total() const {
      return compute + mpi_recv + mpi_waitall + mpi_allreduce;
    }
  };
  [[nodiscard]] RankBreakdown rank_breakdown(RankId rank, int ranks,
                                             double total_seconds) const;

 private:
  const cluster::Platform* platform_;
  OpenFoamParams params_;
};

/// Convenience factory returning a shared model for task descriptions.
std::shared_ptr<const OpenFoamModel> make_openfoam_model(
    const cluster::Platform* platform, OpenFoamParams params = {});

}  // namespace soma::workloads
