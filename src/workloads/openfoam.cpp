#include "workloads/openfoam.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace soma::workloads {

OpenFoamModel::OpenFoamModel(const cluster::Platform* platform,
                             OpenFoamParams params)
    : platform_(platform), params_(params) {}

double OpenFoamModel::ideal_seconds(int ranks) const {
  check(ranks > 0, "openfoam: ranks must be positive");
  const double r = static_cast<double>(ranks);
  return params_.serial_seconds + params_.work_core_seconds / r +
         params_.log_coeff * std::log2(r) + params_.linear_coeff * r;
}

double OpenFoamModel::contention_multiplier(
    const rp::Placement& placement) const {
  if (placement.ranks.empty()) return 1.0;

  // Own-rank density per node.
  std::map<NodeId, int> own_ranks;
  for (const auto& rank : placement.ranks) ++own_ranks[rank.node];

  double self_density = 0.0;
  double other_density = 0.0;
  for (const auto& [node_id, count] : own_ranks) {
    double usable = 42.0;
    double busy = 0.0;
    if (platform_ != nullptr) {
      const auto& node = platform_->node(node_id);
      usable = static_cast<double>(node.usable_cores());
      busy = static_cast<double>(node.busy_cores());
    }
    const double own = static_cast<double>(count);
    self_density += own / usable;
    // Cores busy on this node that are NOT ours (we are already allocated
    // at sampling time, so subtract our own ranks' cores).
    if (platform_ != nullptr) {
      other_density += std::max(0.0, busy - own) / usable;
    }
  }
  const double n = static_cast<double>(own_ranks.size());
  self_density /= n;
  other_density /= n;

  const double spanned =
      static_cast<double>(placement.nodes_spanned() - 1);
  // Memory-bandwidth contention saturates: going from 20 to 40 ranks on a
  // node hurts less than going from 2 to 20 (sqrt response).
  return 1.0 + params_.self_contention * std::sqrt(self_density) +
         params_.other_contention * other_density +
         params_.cross_node_penalty * spanned;
}

Duration OpenFoamModel::sample_duration(const rp::TaskDescription& task,
                                        const rp::Placement& placement,
                                        Rng& rng) const {
  const double base = ideal_seconds(task.ranks);
  const double contention = contention_multiplier(placement);
  const double noisy = rng.lognormal(base * contention, params_.noise_sigma);
  return Duration::seconds(noisy);
}

OpenFoamModel::RankBreakdown OpenFoamModel::rank_breakdown(
    RankId rank, int ranks, double total_seconds) const {
  check(ranks > 0 && rank >= 0 && rank < ranks,
        "rank_breakdown: rank out of range");

  // Domain-decomposition imbalance: interior subdomains carry more work
  // (deterministic smooth profile); boundary ranks (low/high ids) compute
  // less and wait more in MPI_Recv. Rank 0 additionally coordinates I/O and
  // shows the largest MPI_Waitall share, as in Fig. 5.
  const double x = ranks == 1
                       ? 0.5
                       : static_cast<double>(rank) /
                             static_cast<double>(ranks - 1);  // 0..1
  const double interior = std::sin(x * 3.14159265358979323846);  // 0 at ends

  const double comm_fraction = params_.recv_fraction +
                               params_.waitall_fraction +
                               params_.allreduce_fraction;
  const double base_compute = total_seconds * (1.0 - comm_fraction);
  // +-12% of compute moves between interior and boundary ranks.
  const double compute = base_compute * (0.88 + 0.24 * interior);
  double comm = total_seconds - compute;

  RankBreakdown b;
  b.compute = compute;
  // Allreduce is a fixed collective share, equal on all ranks.
  b.mpi_allreduce = total_seconds * params_.allreduce_fraction;
  comm -= b.mpi_allreduce;
  // Rank 0 waits in MPI_Waitall for everyone; other ranks skew to MPI_Recv.
  const double waitall_share = rank == 0 ? 0.65 : 0.38;
  b.mpi_waitall = comm * waitall_share;
  b.mpi_recv = comm - b.mpi_waitall;
  return b;
}

std::shared_ptr<const OpenFoamModel> make_openfoam_model(
    const cluster::Platform* platform, OpenFoamParams params) {
  return std::make_shared<const OpenFoamModel>(platform, params);
}

}  // namespace soma::workloads
