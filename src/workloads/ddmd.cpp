#include "workloads/ddmd.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace soma::workloads {

std::string_view to_string(DdmdStage stage) {
  switch (stage) {
    case DdmdStage::kSimulation: return "sim";
    case DdmdStage::kTraining: return "train";
    case DdmdStage::kSelection: return "select";
    case DdmdStage::kAgent: return "agent";
  }
  return "?";
}

DdmdStageModel::DdmdStageModel(DdmdStage stage, DdmdParams params,
                               int train_tasks)
    : stage_(stage), params_(params), train_tasks_(std::max(1, train_tasks)) {}

double DdmdStageModel::ideal_seconds(int cores_per_rank) const {
  const int cores = std::max(1, cores_per_rank);
  // GPU stages: mild penalty for fewer host cores (7 cores = reference).
  const double core_penalty =
      1.0 + params_.cpu_core_sensitivity *
                (static_cast<double>(7 - std::min(7, cores)) / 6.0);
  switch (stage_) {
    case DdmdStage::kSimulation:
      return params_.sim_seconds * core_penalty;
    case DdmdStage::kTraining: {
      // Work divides across parallel training tasks; each extra task adds a
      // reduce/synchronization surcharge.
      const double t = static_cast<double>(train_tasks_);
      const double sync = 1.0 + params_.train_sync_fraction * (t - 1.0);
      return params_.train_seconds / t * sync * core_penalty;
    }
    case DdmdStage::kSelection: {
      // CPU-bound: scales with cores, saturating.
      const double speedup = std::min(4.0, 1.0 + 0.5 * (cores - 1));
      return params_.selection_seconds / speedup;
    }
    case DdmdStage::kAgent:
      return params_.agent_seconds * core_penalty;
  }
  return 0.0;
}

Duration DdmdStageModel::sample_duration(const rp::TaskDescription& task,
                                         const rp::Placement& /*placement*/,
                                         Rng& rng) const {
  const double base = ideal_seconds(task.cores_per_rank);
  return Duration::seconds(rng.lognormal(base, params_.noise_sigma));
}

std::vector<rp::TaskDescription> make_ddmd_stage_tasks(
    const DdmdStageSpec& spec, const DdmdParams& params, int pipeline,
    int phase, int train_tasks_in_phase) {
  check(spec.tasks > 0, "ddmd stage needs >= 1 task");
  auto model = std::make_shared<const DdmdStageModel>(
      spec.stage, params,
      spec.stage == DdmdStage::kTraining ? train_tasks_in_phase : 1);

  const bool gpu_stage = spec.gpus_per_task > 0;
  std::vector<rp::TaskDescription> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.tasks));
  for (int i = 0; i < spec.tasks; ++i) {
    rp::TaskDescription d;
    char uid[64];
    std::snprintf(uid, sizeof(uid), "p%03d.ph%d.%s.%02d", pipeline, phase,
                  std::string(to_string(spec.stage)).c_str(), i);
    d.uid = uid;
    d.label = "ddmd-" + std::string(to_string(spec.stage));
    d.ranks = 1;
    d.cores_per_rank = spec.cores_per_task;
    d.gpus_per_rank = spec.gpus_per_task;
    d.cpu_activity =
        gpu_stage ? params.gpu_stage_cpu_activity : params.cpu_stage_activity;
    d.model = model;
    tasks.push_back(std::move(d));
  }
  return tasks;
}

std::vector<DdmdStageSpec> ddmd_phase_stages(const DdmdParams& params,
                                             int cores_per_sim_task,
                                             int train_tasks,
                                             int cores_per_train_task) {
  return {
      DdmdStageSpec{DdmdStage::kSimulation, params.sim_tasks,
                    cores_per_sim_task, 1},
      DdmdStageSpec{DdmdStage::kTraining, train_tasks, cores_per_train_task,
                    1},
      DdmdStageSpec{DdmdStage::kSelection, 1, 4, 0},
      DdmdStageSpec{DdmdStage::kAgent, 1, cores_per_sim_task, 1},
  };
}

}  // namespace soma::workloads
