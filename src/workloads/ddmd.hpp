// DeepDriveMD mini-app workload model (paper §3.2, after Kilic et al. 2024).
//
// One *phase* of the mini-app is four stages run in order:
//   1. Simulation     — 12 tasks, each 1 GPU + k CPU cores, GPU-bound
//   2. ML Training    — t tasks, each 1 GPU + k cores, GPU-bound
//   3. Model Selection — 1 task, CPU-only
//   4. Agent (inference) — 1 task, 1 GPU + k cores
//
// Simulation and training do their work on the GPU, so their duration is
// nearly insensitive to the CPU core count (the paper's tuning finding,
// Fig. 9) and their host cores idle at low activity. Training parallelizes
// across t tasks with an MPI_Reduce-style sync cost (the paper's explored
// extension, §4.3). The selection stage is CPU-bound.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rp/execution_model.hpp"
#include "rp/task.hpp"

namespace soma::workloads {

enum class DdmdStage { kSimulation, kTraining, kSelection, kAgent };

[[nodiscard]] std::string_view to_string(DdmdStage stage);

struct DdmdParams {
  // Stage base durations (seconds) for the reference configuration.
  double sim_seconds = 180.0;
  double train_seconds = 150.0;
  double selection_seconds = 30.0;
  double agent_seconds = 60.0;

  /// Residual CPU sensitivity of the GPU stages: moving from 7 cores to 1
  /// costs only this fraction extra (host-side pre/post-processing).
  double cpu_core_sensitivity = 0.06;

  /// Parallel-training sync overhead per extra task (MPI_Reduce + data
  /// resizing; paper §4.3).
  double train_sync_fraction = 0.08;

  /// CPU activity of each allocated core while a GPU stage runs (drives the
  /// low utilization of Fig. 9).
  double gpu_stage_cpu_activity = 0.18;
  /// CPU activity of the CPU-bound selection stage.
  double cpu_stage_activity = 0.95;

  double noise_sigma = 0.05;

  int sim_tasks = 12;  ///< simulation tasks per pipeline (baseline)
};

/// Execution model for one DDMD stage task.
class DdmdStageModel final : public rp::ExecutionModel {
 public:
  /// `train_tasks` is the number of concurrent training tasks the stage was
  /// configured with (training work divides across them).
  DdmdStageModel(DdmdStage stage, DdmdParams params, int train_tasks = 1);

  [[nodiscard]] Duration sample_duration(const rp::TaskDescription& task,
                                         const rp::Placement& placement,
                                         Rng& rng) const override;

  /// Deterministic stage time for a task with `cores_per_rank` host cores.
  [[nodiscard]] double ideal_seconds(int cores_per_rank) const;

  [[nodiscard]] DdmdStage stage() const { return stage_; }

 private:
  DdmdStage stage_;
  DdmdParams params_;
  int train_tasks_;
};

/// Task descriptions for one full stage of one pipeline/phase.
///
/// uid format: "<pipeline>.<phase>.<stage>.<index>", e.g. "p003.ph1.sim.07".
struct DdmdStageSpec {
  DdmdStage stage;
  int tasks = 1;
  int cores_per_task = 1;
  int gpus_per_task = 1;
};

std::vector<rp::TaskDescription> make_ddmd_stage_tasks(
    const DdmdStageSpec& spec, const DdmdParams& params, int pipeline,
    int phase, int train_tasks_in_phase);

/// The four stage specs of one phase with the paper's defaults.
std::vector<DdmdStageSpec> ddmd_phase_stages(const DdmdParams& params,
                                             int cores_per_sim_task,
                                             int train_tasks,
                                             int cores_per_train_task);

}  // namespace soma::workloads
