#include "entk/entk.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::entk {

AppManager::AppManager(rp::Session& session) : session_(session) {
  session_.add_task_completion_listener(
      [this](const std::shared_ptr<rp::Task>& task) {
        on_task_complete(task);
      });
}

std::size_t AppManager::add_pipeline(Pipeline pipeline) {
  check(!running_, "cannot add pipelines after run()");
  check(!pipeline.stages.empty(), "pipeline needs at least one stage");
  for (const auto& stage : pipeline.stages) {
    check(!stage.tasks.empty(), "stage needs at least one task");
  }
  PipelineState state;
  state.pipeline = std::move(pipeline);
  state.result.name = state.pipeline.name;
  pipelines_.push_back(std::move(state));
  return pipelines_.size() - 1;
}

void AppManager::run(std::function<void()> on_all_done) {
  check(!running_, "AppManager already running");
  check(!pipelines_.empty(), "no pipelines to run");
  running_ = true;
  on_all_done_ = std::move(on_all_done);
  for (std::size_t p = 0; p < pipelines_.size(); ++p) {
    pipelines_[p].result.started = session_.simulation().now();
    submit_stage(p);
  }
}

void AppManager::submit_stage(std::size_t pipeline_index) {
  PipelineState& state = pipelines_[pipeline_index];
  const Stage& stage = state.pipeline.stages[state.current_stage];
  state.tasks_outstanding = stage.tasks.size();
  state.stage_started = session_.simulation().now();
  for (const auto& description : stage.tasks) {
    auto task = session_.submit(description);
    task_to_pipeline_.emplace(task->uid(), pipeline_index);
  }
}

void AppManager::on_task_complete(const std::shared_ptr<rp::Task>& task) {
  const auto it = task_to_pipeline_.find(task->uid());
  if (it == task_to_pipeline_.end()) return;  // not an EnTK-managed task
  const std::size_t pipeline_index = it->second;
  task_to_pipeline_.erase(it);

  PipelineState& state = pipelines_[pipeline_index];
  check(state.tasks_outstanding > 0, "entk: completion underflow");
  if (--state.tasks_outstanding > 0) return;

  // Stage barrier reached.
  const SimTime now = session_.simulation().now();
  state.result.stage_spans.emplace_back(*state.stage_started, now);
  if (stage_callback_) stage_callback_(pipeline_index, state.current_stage);

  if (++state.current_stage < state.pipeline.stages.size()) {
    submit_stage(pipeline_index);
    return;
  }

  // Pipeline done.
  state.result.finished = now;
  results_.push_back(state.result);
  if (++pipelines_finished_ == pipelines_.size()) {
    SOMA_DEBUG() << "entk: all " << pipelines_.size() << " pipelines done";
    if (on_all_done_) on_all_done_();
  }
}

}  // namespace soma::entk
