// RADICAL-EnTK (Ensemble Toolkit) layer (paper §3.2, Fig. 3).
//
// EnTK is a higher-level abstraction over RADICAL-Pilot: an AppManager runs
// m concurrent Pipelines; each pipeline is a sequence of Stages; a stage is
// a set of tasks submitted together, and the next stage starts only when
// every task of the current stage completed (stage barrier). The DDMD
// mini-app maps each phase to four stages (Sim, Train, Select, Agent).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rp/session.hpp"
#include "rp/task.hpp"

namespace soma::entk {

struct Stage {
  std::string name;
  std::vector<rp::TaskDescription> tasks;
};

struct Pipeline {
  std::string name;
  std::vector<Stage> stages;
};

/// Timing record for one completed pipeline.
struct PipelineResult {
  std::string name;
  SimTime started;
  SimTime finished;
  std::vector<std::pair<SimTime, SimTime>> stage_spans;

  [[nodiscard]] double duration_seconds() const {
    return (finished - started).to_seconds();
  }
};

class AppManager {
 public:
  explicit AppManager(rp::Session& session);

  /// Add a pipeline before run(). Returns its index.
  std::size_t add_pipeline(Pipeline pipeline);

  /// Invoked when a stage of a pipeline completes, *before* the next stage
  /// is submitted. The adaptive experiment (paper Table 2) runs its SOMA
  /// analysis here, between phases.
  using StageCallback =
      std::function<void(std::size_t pipeline, std::size_t stage)>;
  void set_stage_callback(StageCallback callback) {
    stage_callback_ = std::move(callback);
  }

  /// Submit the first stage of every pipeline. `on_all_done` fires when all
  /// pipelines have finished. Requires session.agent_ready().
  void run(std::function<void()> on_all_done);

  [[nodiscard]] bool finished() const {
    return pipelines_finished_ == pipelines_.size();
  }
  [[nodiscard]] const std::vector<PipelineResult>& results() const {
    return results_;
  }
  [[nodiscard]] std::size_t pipeline_count() const {
    return pipelines_.size();
  }

 private:
  struct PipelineState {
    Pipeline pipeline;
    std::size_t current_stage = 0;
    std::size_t tasks_outstanding = 0;
    PipelineResult result;
    std::optional<SimTime> stage_started;
  };

  void submit_stage(std::size_t pipeline_index);
  void on_task_complete(const std::shared_ptr<rp::Task>& task);

  rp::Session& session_;
  std::vector<PipelineState> pipelines_;
  // task uid -> pipeline index, for completion routing
  std::unordered_map<std::string, std::size_t> task_to_pipeline_;
  StageCallback stage_callback_;
  std::function<void()> on_all_done_;
  std::size_t pipelines_finished_ = 0;
  std::vector<PipelineResult> results_;
  bool running_ = false;
};

}  // namespace soma::entk
