#include "analysis/advisor.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "rp/states.hpp"
#include "soma/namespaces.hpp"

namespace soma::analysis {

std::optional<std::string> ConfigScaling::best_efficiency(
    const std::map<std::string, int>& ranks_of) const {
  std::optional<std::string> best;
  double best_cost = std::numeric_limits<double>::max();
  for (const auto& [label, summary] : by_label) {
    const auto it = ranks_of.find(label);
    if (it == ranks_of.end() || summary.count == 0) continue;
    const double cost = summary.mean * static_cast<double>(it->second);
    if (cost < best_cost) {
      best_cost = cost;
      best = label;
    }
  }
  return best;
}

std::optional<std::string> ConfigScaling::fastest() const {
  std::optional<std::string> best;
  double best_mean = std::numeric_limits<double>::max();
  for (const auto& [label, summary] : by_label) {
    if (summary.count == 0) continue;
    if (summary.mean < best_mean) {
      best_mean = summary.mean;
      best = label;
    }
  }
  return best;
}

double FreeResourceReport::mean_utilization() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& node : nodes) total += node.mean_utilization;
  return total / static_cast<double>(nodes.size());
}

double FreeResourceReport::mean_gpu_utilization() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& node : nodes) total += node.mean_gpu_utilization;
  return total / static_cast<double>(nodes.size());
}

std::vector<std::string> FreeResourceReport::underutilized(
    double threshold) const {
  std::vector<std::string> out;
  for (const auto& node : nodes) {
    if (node.last_utilization < threshold) out.push_back(node.hostname);
  }
  return out;
}

FreeResourceReport analyze_hardware(const core::StoreView& view) {
  FreeResourceReport report;
  for (const std::string& host :
       view.sources(core::Namespace::kHardware)) {
    FreeResourceReport::NodeReport node;
    node.hostname = host;
    const auto series = view.series(core::Namespace::kHardware, host);
    double sum = 0.0;
    std::size_t count = 0;
    double gpu_sum = 0.0;
    std::size_t gpu_count = 0;
    for (const auto* record : series) {
      const auto* host_node = record->data.find_child(host);
      if (host_node == nullptr) continue;
      if (const auto* util = host_node->find_child("cpu_utilization")) {
        const double u = util->to_float64();
        sum += u;
        ++count;
        node.last_utilization = u;
      }
      if (const auto* gpu = host_node->find_child("gpu_utilization")) {
        const double u = gpu->to_float64();
        gpu_sum += u;
        ++gpu_count;
        node.last_gpu_utilization = u;
      }
      // Latest RAM figure from the newest timestamped snapshot block.
      for (std::size_t i = 0; i < host_node->number_of_children(); ++i) {
        const auto& child = host_node->child_at(i);
        if (const auto* ram = child.find_child("Available RAM")) {
          node.available_ram_mib = ram->as_int64();
        }
      }
    }
    if (count > 0) node.mean_utilization = sum / static_cast<double>(count);
    if (gpu_count > 0) {
      node.mean_gpu_utilization = gpu_sum / static_cast<double>(gpu_count);
    }
    report.nodes.push_back(std::move(node));
  }
  return report;
}

std::vector<ProgressPoint> workflow_progress(const core::StoreView& view,
                                             const std::string& source) {
  std::vector<ProgressPoint> out;
  for (const auto* record :
       view.series(core::Namespace::kWorkflow, source)) {
    const auto* summary = record->data.find_child("summary");
    if (summary == nullptr) continue;
    ProgressPoint point;
    point.time = record->time;
    point.done = summary->fetch_existing("tasks_done").as_int64();
    point.executing = summary->fetch_existing("tasks_executing").as_int64();
    point.pending = summary->fetch_existing("tasks_pending").as_int64();
    point.throughput_per_min =
        summary->fetch_existing("throughput_per_min").to_float64();
    out.push_back(point);
  }
  return out;
}

std::vector<std::pair<SimTime, std::string>> observed_task_starts(
    const core::StoreView& view, const std::string& source) {
  std::vector<std::pair<SimTime, std::string>> out;
  for (const auto* record :
       view.series(core::Namespace::kWorkflow, source)) {
    const auto* events = record->data.find_child("events");
    if (events == nullptr) continue;
    for (std::size_t u = 0; u < events->number_of_children(); ++u) {
      const std::string& uid = events->child_names()[u];
      const auto& per_task = events->child_at(u);
      for (std::size_t e = 0; e < per_task.number_of_children(); ++e) {
        if (per_task.child_at(e).as_string() == rp::events::kRankStart) {
          const SimTime at{std::stoll(per_task.child_names()[e])};
          out.emplace_back(at, uid);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

DdmdAdvice advise_ddmd(const FreeResourceReport& hardware, int gpus_free,
                       int current_train_tasks) {
  DdmdAdvice advice;
  advice.train_tasks = current_train_tasks;
  advice.cores_per_sim_task = 3;

  const double utilization = hardware.mean_utilization();
  if (utilization < 0.35) {
    // CPUs are mostly idle: the work is on the GPUs (paper Fig. 9 finding).
    // Fewer host cores per task frees nothing useful; instead use idle GPUs
    // by parallelizing training.
    advice.cores_per_sim_task = 1;
    if (gpus_free > 0) {
      advice.train_tasks =
          std::min(current_train_tasks + gpus_free, current_train_tasks * 2);
      advice.rationale =
          "CPU utilization low and GPUs idle: parallelize training across " +
          std::to_string(advice.train_tasks) + " tasks";
    } else {
      advice.rationale =
          "CPU utilization low but no GPU headroom: keep training at " +
          std::to_string(current_train_tasks);
    }
  } else if (utilization > 0.8) {
    advice.cores_per_sim_task = 7;
    advice.rationale =
        "CPU utilization high: give simulation tasks more host cores";
  } else {
    advice.rationale = "utilization moderate: keep current configuration";
  }
  return advice;
}

}  // namespace soma::analysis
