#include "analysis/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace soma::analysis {

char state_glyph(CoreState state) {
  switch (state) {
    case CoreState::kIdle: return '.';
    case CoreState::kBootstrap: return 'b';
    case CoreState::kScheduling: return 's';
    case CoreState::kRunning: return '#';
  }
  return '?';
}

UtilizationTimeline UtilizationTimeline::build(
    rp::Session& session, const std::vector<NodeId>& nodes) {
  UtilizationTimeline timeline;
  timeline.begin_ = session.pilot_granted_at();
  const SimTime ready = session.agent_ready_at();

  // Index the requested cores.
  std::map<std::pair<NodeId, CoreId>, std::size_t> index;
  for (NodeId node_id : nodes) {
    const auto& node = session.platform().node(node_id);
    for (int c = 0; c < node.usable_cores(); ++c) {
      CoreTrack track;
      track.node = node_id;
      track.core = static_cast<CoreId>(c);
      // Bootstrap band covers every core until the agent is ready.
      track.segments.push_back(
          CoreSegment{timeline.begin_, ready, CoreState::kBootstrap});
      index.emplace(std::make_pair(node_id, static_cast<CoreId>(c)),
                    timeline.cores_.size());
      timeline.cores_.push_back(std::move(track));
    }
  }

  SimTime last_event = ready;
  for (const auto& task : session.tasks()) {
    if (!task->placement()) continue;
    const auto claimed = task->event_time(rp::events::kSlotsClaimed);
    const auto rank_start = task->event_time(rp::events::kRankStart);
    auto rank_stop = task->event_time(rp::events::kRankStop);
    if (!claimed) continue;

    for (const auto& rank : task->placement()->ranks) {
      for (CoreId core : rank.cores) {
        const auto it = index.find({rank.node, core});
        if (it == index.end()) continue;  // core outside requested nodes
        CoreTrack& track = timeline.cores_[it->second];
        if (rank_start && *rank_start > *claimed) {
          track.segments.push_back(
              CoreSegment{*claimed, *rank_start, CoreState::kScheduling});
        }
        if (rank_start) {
          const SimTime stop = rank_stop.value_or(SimTime::max());
          track.segments.push_back(
              CoreSegment{*rank_start, stop, CoreState::kRunning});
        }
      }
    }
    if (rank_stop) last_event = std::max(last_event, *rank_stop);
    const auto launch_stop = task->event_time(rp::events::kLaunchStop);
    if (launch_stop) last_event = std::max(last_event, *launch_stop);
  }
  timeline.end_ = last_event;

  // Clamp open-ended segments and sort each track.
  for (auto& track : timeline.cores_) {
    for (auto& segment : track.segments) {
      segment.end = std::min(segment.end, timeline.end_);
    }
    std::sort(track.segments.begin(), track.segments.end(),
              [](const CoreSegment& a, const CoreSegment& b) {
                return a.begin < b.begin;
              });
  }
  return timeline;
}

double UtilizationTimeline::fraction(CoreState state) const {
  const double total =
      (end_ - begin_).to_seconds() * static_cast<double>(cores_.size());
  if (total <= 0.0) return 0.0;
  double in_state = 0.0;
  if (state == CoreState::kIdle) {
    // Idle = total minus everything else.
    double other = 0.0;
    for (const auto& track : cores_) {
      for (const auto& segment : track.segments) {
        other += std::max(0.0, (segment.end - segment.begin).to_seconds());
      }
    }
    in_state = total - other;
  } else {
    for (const auto& track : cores_) {
      for (const auto& segment : track.segments) {
        if (segment.state == state) {
          in_state += std::max(0.0, (segment.end - segment.begin).to_seconds());
        }
      }
    }
  }
  return std::max(0.0, in_state) / total;
}

CoreState UtilizationTimeline::state_at(int core_row, SimTime t) const {
  check(core_row >= 0 && static_cast<std::size_t>(core_row) < cores_.size(),
        "timeline: core row out of range");
  const CoreTrack& track = cores_[static_cast<std::size_t>(core_row)];
  for (const auto& segment : track.segments) {
    if (t >= segment.begin && t < segment.end) return segment.state;
  }
  return CoreState::kIdle;
}

std::string UtilizationTimeline::render(int cols, int max_rows) const {
  check(cols > 0 && max_rows > 0, "timeline: bad render dimensions");
  std::ostringstream out;
  const double span = (end_ - begin_).to_seconds();
  const int rows = std::min<int>(max_rows, core_count());
  const double row_stride =
      static_cast<double>(core_count()) / static_cast<double>(rows);

  out << "core timeline [" << begin_.to_seconds() << "s .. "
      << end_.to_seconds() << "s]  b=bootstrap s=scheduling #=running .=idle\n";
  for (int row = 0; row < rows; ++row) {
    const int core_row = static_cast<int>(row * row_stride);
    const CoreTrack& track = cores_[static_cast<std::size_t>(core_row)];
    char label[32];
    std::snprintf(label, sizeof(label), "n%02d/c%02d ", track.node,
                  track.core);
    out << label;
    for (int col = 0; col < cols; ++col) {
      const double mid = (static_cast<double>(col) + 0.5) /
                         static_cast<double>(cols) * span;
      out << state_glyph(state_at(core_row, begin_ + Duration::seconds(mid)));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace soma::analysis
