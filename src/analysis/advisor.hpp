// In-situ analysis and adaptive advice (paper §4 and §6 / future work).
//
// These functions run against the SOMA service's store through the
// scatter-gather StoreView — the data is already "in SOMA's possession",
// sharded across the service ranks — and compute the decisions the paper
// motivates: which MPI task configuration to use (Fig. 4), where free
// resources are (Fig. 9 discussion), and how to reconfigure the next DDMD
// phase (Table 2, "Adaptive"). The feedback loop into RP that the paper
// lists as future work is implemented here and demonstrated in
// examples/adaptive_feedback.cpp.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "soma/store.hpp"

namespace soma::analysis {

/// Mean/σ execution time per task configuration (label -> summary), from the
/// workflow-namespace summaries plus per-task events. Populated by the
/// caller from its own completion records or from the store.
struct ConfigScaling {
  std::map<std::string, Summary> by_label;

  /// The configuration with the best resource-time product (ranks * mean
  /// seconds) — "run more tasks at smaller scale" when scaling flattens.
  /// `ranks_of` maps a label to its rank count.
  [[nodiscard]] std::optional<std::string> best_efficiency(
      const std::map<std::string, int>& ranks_of) const;

  /// The configuration with the lowest mean time (pure turnaround).
  [[nodiscard]] std::optional<std::string> fastest() const;
};

/// Per-node free-resource estimate derived from the hardware namespace.
struct FreeResourceReport {
  struct NodeReport {
    std::string hostname;
    double mean_utilization = 0.0;  ///< CPU, over the observed window
    double last_utilization = 0.0;
    double mean_gpu_utilization = 0.0;
    double last_gpu_utilization = 0.0;
    std::int64_t available_ram_mib = 0;
  };
  std::vector<NodeReport> nodes;

  [[nodiscard]] double mean_utilization() const;
  [[nodiscard]] double mean_gpu_utilization() const;
  /// Hosts whose latest utilization is below `threshold`.
  [[nodiscard]] std::vector<std::string> underutilized(
      double threshold = 0.5) const;
};

/// Scan the hardware namespace of the store behind `view` and summarize
/// per-node CPU utilization (uses the online `cpu_utilization` values the
/// monitors attach to every snapshot).
FreeResourceReport analyze_hardware(const core::StoreView& view);

/// Workflow-progress series from the workflow namespace: one entry per
/// monitor tick.
struct ProgressPoint {
  SimTime time;
  std::int64_t done = 0;
  std::int64_t executing = 0;
  std::int64_t pending = 0;
  double throughput_per_min = 0.0;
};
std::vector<ProgressPoint> workflow_progress(const core::StoreView& view,
                                             const std::string& source =
                                                 "rp_monitor");

/// Task-start times observed by the RP monitor (the orange dots of Fig. 7):
/// rank_start events extracted from the published event blocks.
std::vector<std::pair<SimTime, std::string>> observed_task_starts(
    const core::StoreView& view,
    const std::string& source = "rp_monitor");

/// Adaptive recommendation for the DDMD mini-app (paper §4.3): given the
/// observed mean CPU utilization and the GPU headroom, suggest the training
/// parallelism and cores/task for the next phase.
struct DdmdAdvice {
  int train_tasks = 1;
  int cores_per_sim_task = 1;
  std::string rationale;
};
DdmdAdvice advise_ddmd(const FreeResourceReport& hardware, int gpus_free,
                       int current_train_tasks);

}  // namespace soma::analysis
