// Anomaly and straggler detection over SOMA's collected data.
//
// The paper positions SOMA as the data source for online diagnosis
// (related work §5 cites anomaly-diagnosis consumers; the conclusion calls
// for identifying performance variations and anomalies). This module
// implements the first-order detectors a consumer would run against the
// store: per-configuration straggler detection (robust z-score on execution
// times) and fleet-relative host underperformance.
#pragma once

#include <string>
#include <vector>

#include "analysis/advisor.hpp"

namespace soma::analysis {

/// One task execution observation.
struct TaskSample {
  std::string uid;
  std::string label;      ///< configuration group ("openfoam-82", ...)
  double exec_seconds = 0.0;
};

enum class AnomalyKind {
  kStraggler,      ///< much slower than its configuration's median
  kUnexpectedFast, ///< much faster (often a sign of silent failure)
};

struct TaskAnomaly {
  TaskSample sample;
  AnomalyKind kind;
  double robust_z = 0.0;   ///< (x - median) / (1.4826 * MAD)
  double group_median = 0.0;
};

/// Detect per-label outliers via the robust z-score (median/MAD, which a
/// few stragglers cannot poison, unlike mean/stddev). Groups with fewer
/// than `min_group` samples are skipped. |z| >= `threshold` flags.
std::vector<TaskAnomaly> detect_task_anomalies(
    const std::vector<TaskSample>& samples, double threshold = 3.0,
    std::size_t min_group = 4);

/// Hosts whose mean utilization deviates from the fleet mean by more than
/// `threshold` robust z-scores — candidates for hardware trouble or
/// scheduling imbalance (paper Fig. 7's "imbalance in the latter half").
struct HostAnomaly {
  std::string hostname;
  double utilization = 0.0;
  double robust_z = 0.0;
};
std::vector<HostAnomaly> detect_host_anomalies(
    const FreeResourceReport& report, double threshold = 2.5);

/// Median absolute deviation (exposed for tests).
double median_absolute_deviation(std::vector<double> values);

}  // namespace soma::analysis
