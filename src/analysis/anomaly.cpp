#include "analysis/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/stats.hpp"

namespace soma::analysis {
namespace {

// Consistency constant making MAD comparable to a standard deviation for
// normally distributed data.
constexpr double kMadScale = 1.4826;

double median_of(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

}  // namespace

double median_absolute_deviation(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const double med = median_of(values);
  for (double& v : values) v = std::abs(v - med);
  return median_of(std::move(values));
}

std::vector<TaskAnomaly> detect_task_anomalies(
    const std::vector<TaskSample>& samples, double threshold,
    std::size_t min_group) {
  std::map<std::string, std::vector<const TaskSample*>> groups;
  for (const auto& sample : samples) {
    groups[sample.label].push_back(&sample);
  }

  std::vector<TaskAnomaly> anomalies;
  for (const auto& [label, members] : groups) {
    if (members.size() < min_group) continue;
    std::vector<double> times;
    times.reserve(members.size());
    for (const auto* member : members) times.push_back(member->exec_seconds);
    const double med = median_of(times);
    const double mad = median_absolute_deviation(times);
    if (mad <= 0.0) continue;  // degenerate group (identical times)

    for (const auto* member : members) {
      const double z = (member->exec_seconds - med) / (kMadScale * mad);
      if (std::abs(z) < threshold) continue;
      TaskAnomaly anomaly;
      anomaly.sample = *member;
      anomaly.kind = z > 0 ? AnomalyKind::kStraggler
                           : AnomalyKind::kUnexpectedFast;
      anomaly.robust_z = z;
      anomaly.group_median = med;
      anomalies.push_back(std::move(anomaly));
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const TaskAnomaly& a, const TaskAnomaly& b) {
              return std::abs(a.robust_z) > std::abs(b.robust_z);
            });
  return anomalies;
}

std::vector<HostAnomaly> detect_host_anomalies(
    const FreeResourceReport& report, double threshold) {
  std::vector<HostAnomaly> anomalies;
  if (report.nodes.size() < 3) return anomalies;

  std::vector<double> utilizations;
  utilizations.reserve(report.nodes.size());
  for (const auto& node : report.nodes) {
    utilizations.push_back(node.mean_utilization);
  }
  const double med = median_of(utilizations);
  const double mad = median_absolute_deviation(utilizations);
  if (mad <= 0.0) return anomalies;

  for (const auto& node : report.nodes) {
    const double z = (node.mean_utilization - med) / (kMadScale * mad);
    if (std::abs(z) < threshold) continue;
    anomalies.push_back(
        HostAnomaly{node.hostname, node.mean_utilization, z});
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const HostAnomaly& a, const HostAnomaly& b) {
              return std::abs(a.robust_z) > std::abs(b.robust_z);
            });
  return anomalies;
}

}  // namespace soma::analysis
