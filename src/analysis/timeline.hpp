// Resource-utilization timeline reconstruction (paper Fig. 8).
//
// From the task event logs, rebuild what every core of the pilot did over
// time: bootstrap (light blue), task scheduling (purple), task running
// (green), or idle (white). The fractions and an ASCII rendering of this map
// are the repo's version of Fig. 8.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "rp/session.hpp"

namespace soma::analysis {

enum class CoreState { kIdle = 0, kBootstrap, kScheduling, kRunning };

[[nodiscard]] char state_glyph(CoreState state);

struct CoreSegment {
  SimTime begin;
  SimTime end;
  CoreState state;
};

/// The reconstructed timeline over a set of nodes.
class UtilizationTimeline {
 public:
  /// Build from a finished session, over `nodes` (typically the worker
  /// nodes). Time range: pilot grant -> last task launch_stop.
  static UtilizationTimeline build(rp::Session& session,
                                   const std::vector<NodeId>& nodes);

  [[nodiscard]] SimTime begin() const { return begin_; }
  [[nodiscard]] SimTime end() const { return end_; }
  [[nodiscard]] int core_count() const {
    return static_cast<int>(cores_.size());
  }

  /// Fraction of core-time spent in `state` over the whole range.
  [[nodiscard]] double fraction(CoreState state) const;

  /// Core-state at (core row, time).
  [[nodiscard]] CoreState state_at(int core_row, SimTime t) const;

  /// ASCII map: one row per core (subsampled to `max_rows`), `cols` time
  /// buckets; each cell shows the state at the bucket midpoint.
  [[nodiscard]] std::string render(int cols = 96, int max_rows = 24) const;

 private:
  struct CoreTrack {
    NodeId node;
    CoreId core;
    std::vector<CoreSegment> segments;  // sorted, non-overlapping
  };

  SimTime begin_;
  SimTime end_;
  std::vector<CoreTrack> cores_;
};

}  // namespace soma::analysis
