// RP profile stream (the ".prof files" of paper §2.3.2).
//
// Every RP component appends timestamped records {time, task uid, event}.
// The SOMA RP-monitor client periodically reads *new* records via a cursor,
// exactly as the real monitor daemon tails RP's profile files, and publishes
// workflow summaries to the SOMA service.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace soma::rp {

struct ProfileRecord {
  SimTime time;
  std::string uid;    ///< task or pilot uid
  std::string event;  ///< event or state name
};

class ProfileStore {
 public:
  void record(SimTime time, std::string_view uid, std::string_view event);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const ProfileRecord& at(std::size_t index) const;

  /// Records appended at or after `cursor`; advances `cursor` past them.
  /// This is the monitor's incremental-read interface.
  [[nodiscard]] std::vector<ProfileRecord> read_since(
      std::size_t& cursor) const;

  /// All records for one uid, in append order.
  [[nodiscard]] std::vector<ProfileRecord> for_uid(
      std::string_view uid) const;

 private:
  std::vector<ProfileRecord> records_;
};

}  // namespace soma::rp
