#include "rp/session.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::rp {

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      simulation_(),
      rng_(config_.seed),
      platform_(simulation_, config_.platform),
      network_(simulation_, config_.network),
      batch_(simulation_, config_.platform.nodes, rng_.split("batch"),
             config_.batch) {
  if (config_.pilot.nodes > config_.platform.nodes) {
    throw ConfigError("pilot requests more nodes than the platform has");
  }
  if (config_.agent_nodes < 1 || config_.agent_nodes >= config_.pilot.nodes) {
    throw ConfigError("agent_nodes must be in [1, pilot.nodes)");
  }
}

void Session::start(std::function<void()> on_ready) {
  check(!pilot_job_.has_value(), "session already started");
  on_ready_ = std::move(on_ready);

  profiles_.record(simulation_.now(), config_.pilot.uid,
                   to_string(PilotState::kPmgrLaunching));
  batch::JobRequest request;
  request.nodes = config_.pilot.nodes;
  request.walltime = config_.pilot.runtime;
  request.name = config_.pilot.uid;
  pilot_job_ = batch_.submit(
      request,
      [this](const batch::Allocation& allocation) {
        bootstrap_agent(allocation);
      },
      [this](batch::JobId) {
        SOMA_WARN() << "pilot hit walltime; finalizing session";
        abort_running_tasks();
        finalize();
      });
}

void Session::bootstrap_agent(const batch::Allocation& allocation) {
  pilot_nodes_ = allocation.nodes;
  pilot_granted_ = simulation_.now();

  // The RP agent machinery occupies a few cores on each agent node for the
  // workflow's lifetime (client, agent components, ZMQ bridges).
  for (NodeId node_id : agent_node_ids()) {
    auto& node = platform_.node(node_id);
    auto cores =
        node.allocate_cores(config_.agent_cores, "rp.agent", /*activity=*/0.3);
    check(cores.has_value(), "agent node cannot host the RP agent");
    agent_core_claims_.push_back(std::move(*cores));
    node.process_started();
  }

  scheduler_ = std::make_unique<AgentScheduler>(
      simulation_, platform_, pilot_nodes_, rng_.split("scheduler"),
      config_.scheduler);
  scheduler_->set_agent_nodes(agent_node_ids());
  executor_ = std::make_unique<Executor>(simulation_, rng_.split("executor"),
                                         config_.executor);

  scheduler_->set_on_placed([this](const std::shared_ptr<Task>& task) {
    executor_->launch(task);
  });
  executor_->set_on_start([this](const std::shared_ptr<Task>& task) {
    const auto listeners = start_listeners_;
    for (const auto& listener : listeners) listener(task);
  });
  executor_->set_on_complete([this](const std::shared_ptr<Task>& task) {
    scheduler_->task_completed(*task);
    // Copy: a listener may register further listeners while we iterate.
    const auto listeners = completion_listeners_;
    for (const auto& listener : listeners) listener(task);
  });

  tmgr_to_agent_ = std::make_unique<comm::Channel<std::shared_ptr<Task>>>(
      simulation_, "tmgr->agent", Duration::milliseconds(2));
  tmgr_to_agent_->set_consumer([this](std::shared_ptr<Task> task) {
    task->advance(TaskState::kAgentScheduling, simulation_.now());
    scheduler_->submit(std::move(task));
  });

  // Bootstrap delay: the light-blue band of Fig. 8.
  const Duration bootstrap = Duration::seconds(rng_.lognormal(
      config_.bootstrap_median.to_seconds(), config_.bootstrap_sigma));
  simulation_.schedule(bootstrap, [this] {
    agent_ready_ = simulation_.now();
    profiles_.record(simulation_.now(), config_.pilot.uid,
                     to_string(PilotState::kActive));
    if (on_ready_) on_ready_();
  });
}

SimTime Session::agent_ready_at() const {
  check(agent_ready_.has_value(), "agent not ready yet");
  return *agent_ready_;
}

SimTime Session::pilot_granted_at() const {
  check(pilot_granted_.has_value(), "pilot not granted yet");
  return *pilot_granted_;
}

std::vector<NodeId> Session::agent_node_ids() const {
  check(!pilot_nodes_.empty(), "pilot not granted yet");
  return {pilot_nodes_.begin(),
          pilot_nodes_.begin() + config_.agent_nodes};
}

std::vector<NodeId> Session::worker_node_ids() const {
  check(!pilot_nodes_.empty(), "pilot not granted yet");
  return {pilot_nodes_.begin() + config_.agent_nodes, pilot_nodes_.end()};
}

void Session::set_service_nodes(std::vector<NodeId> nodes, bool shared) {
  scheduler().set_service_nodes(std::move(nodes), shared);
}

std::shared_ptr<Task> Session::submit(TaskDescription description) {
  check(agent_ready(), "submit before the agent is ready");
  if (description.uid.empty()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "task.%06zu", tasks_.size());
    description.uid = buffer;
  }
  if (find_task(description.uid) != nullptr) {
    throw ConfigError("duplicate task uid: " + description.uid);
  }

  auto task = std::make_shared<Task>(std::move(description));
  task->attach_profile(&profiles_);
  tasks_.push_back(task);

  task->advance(TaskState::kTmgrScheduling, simulation_.now());
  simulation_.schedule(config_.tmgr_cost,
                       [this, task] { tmgr_to_agent_->put(task); });
  return task;
}

void Session::stop_task(const std::string& uid) {
  executor().stop(uid);
}

void Session::add_task_completion_listener(
    std::function<void(const std::shared_ptr<Task>&)> callback) {
  completion_listeners_.push_back(std::move(callback));
}

void Session::add_task_start_listener(
    std::function<void(const std::shared_ptr<Task>&)> callback) {
  start_listeners_.push_back(std::move(callback));
}

std::shared_ptr<Task> Session::find_task(const std::string& uid) const {
  const auto it =
      std::find_if(tasks_.begin(), tasks_.end(),
                   [&](const auto& t) { return t->uid() == uid; });
  return it == tasks_.end() ? nullptr : *it;
}

AgentScheduler& Session::scheduler() {
  check(scheduler_ != nullptr, "scheduler not created (pilot not granted)");
  return *scheduler_;
}

Executor& Session::executor() {
  check(executor_ != nullptr, "executor not created (pilot not granted)");
  return *executor_;
}

void Session::abort_running_tasks() {
  if (!executor_) return;
  for (const auto& task : tasks_) {
    if (!executor_->is_running(task->uid())) continue;
    if (task->description().kind == TaskKind::kApplication) {
      executor_->cancel(task->uid());
    } else {
      executor_->stop(task->uid());
    }
  }
}

void Session::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Stop long-running service/monitor tasks (paper §2.3.1: control command
  // from RP at workflow completion).
  if (executor_) {
    for (const auto& task : tasks_) {
      if (task->description().kind != TaskKind::kApplication &&
          executor_->is_running(task->uid())) {
        executor_->stop(task->uid());
      }
    }
  }
  if (pilot_job_) {
    // Release the allocation once teardown events have drained.
    simulation_.schedule(Duration::seconds(1.0), [this] {
      profiles_.record(simulation_.now(), config_.pilot.uid,
                       to_string(PilotState::kDone));
      batch_.release(*pilot_job_);
    });
  }
}

SimTime Session::run() { return simulation_.run(); }

}  // namespace soma::rp
