#include "rp/states.hpp"

namespace soma::rp {

std::string_view to_string(TaskState state) {
  switch (state) {
    case TaskState::kNew: return "NEW";
    case TaskState::kTmgrScheduling: return "TMGR_SCHEDULING";
    case TaskState::kAgentScheduling: return "AGENT_SCHEDULING";
    case TaskState::kExecuting: return "EXECUTING";
    case TaskState::kDone: return "DONE";
    case TaskState::kFailed: return "FAILED";
    case TaskState::kCanceled: return "CANCELED";
  }
  return "?";
}

std::string_view to_string(PilotState state) {
  switch (state) {
    case PilotState::kNew: return "NEW";
    case PilotState::kPmgrLaunching: return "PMGR_LAUNCHING";
    case PilotState::kActive: return "ACTIVE";
    case PilotState::kDone: return "DONE";
    case PilotState::kFailed: return "FAILED";
  }
  return "?";
}

bool is_valid_transition(TaskState from, TaskState to) {
  if (is_final(from)) return false;
  switch (to) {
    case TaskState::kNew:
      return false;
    case TaskState::kTmgrScheduling:
      return from == TaskState::kNew;
    case TaskState::kAgentScheduling:
      return from == TaskState::kTmgrScheduling;
    case TaskState::kExecuting:
      return from == TaskState::kAgentScheduling;
    case TaskState::kDone:
    case TaskState::kFailed:
      return from == TaskState::kExecuting;
    case TaskState::kCanceled:
      return true;  // cancellation is legal from any non-final state
  }
  return false;
}

}  // namespace soma::rp
