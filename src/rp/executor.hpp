// Agent-side executor (paper Fig. 1, step 8).
//
// Takes a placed task, sets up its execution environment, launches it, and
// emits the Listing-1 event sequence: launch_start, exec_start, rank_start,
// rank_stop, exec_stop, launch_stop. Application task durations come from
// the task's ExecutionModel; service and monitor tasks run until stopped.
//
// A per-node "noise factor" models interference from co-located monitoring
// clients (OS jitter from frequent /proc scraping + RPC publishing): task
// durations stretch by (1 + max noise over the task's nodes).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "rp/task.hpp"
#include "sim/simulation.hpp"

namespace soma::rp {

struct ExecutorConfig {
  /// launch_start -> exec_start: jsrun/launcher spawn cost (Listing 1 shows
  /// ~0.36 s on Summit).
  Duration launch_cost_median = Duration::milliseconds(360);
  double launch_cost_sigma = 0.25;
  /// exec_start -> rank_start: runtime init inside the task (~7 ms).
  Duration exec_prologue = Duration::milliseconds(7);
  /// rank_stop -> exec_stop (~8 ms).
  Duration exec_epilogue = Duration::milliseconds(8);
  /// exec_stop -> launch_stop: launcher teardown (~73 ms).
  Duration launch_teardown = Duration::milliseconds(73);

  /// Parallel-filesystem bandwidth seen by one task's staging (GPFS-class).
  double staging_bandwidth_mib_per_s = 500.0;
  /// Fixed metadata cost per staging phase.
  Duration staging_latency = Duration::milliseconds(50);
};

class Executor {
 public:
  using CompletionCallback =
      std::function<void(const std::shared_ptr<Task>&)>;
  using StartCallback = std::function<void(const std::shared_ptr<Task>&)>;

  Executor(sim::Simulation& simulation, Rng rng, ExecutorConfig config = {});

  /// Fired at launch_stop for application tasks (DONE or FAILED), and when
  /// a service / monitor task is stopped.
  void set_on_complete(CompletionCallback callback) {
    on_complete_ = std::move(callback);
  }

  /// Fired at rank_start for every task (services included) — the moment a
  /// service task's RPC endpoints come alive.
  void set_on_start(StartCallback callback) {
    on_start_ = std::move(callback);
  }

  /// Launch a placed task. Application tasks complete on their own;
  /// service/monitor tasks run until stop().
  void launch(const std::shared_ptr<Task>& task);

  /// Stop a long-running service/monitor task (paper §2.3.1: service tasks
  /// are shut down through a control command once the workflow completes).
  /// No-op if the task already finished or was never launched.
  void stop(const std::string& uid);

  /// Kill a running task (walltime expiry, user abort): the task ends in
  /// CANCELED immediately, with rank_stop recorded at the kill. No-op if
  /// the task is not running.
  void cancel(const std::string& uid);

  /// Interference from co-located monitoring on `node` (0 = none). The
  /// session recomputes this when monitors are deployed or retuned.
  void set_node_noise(NodeId node, double fraction);
  [[nodiscard]] double node_noise(NodeId node) const;

  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] bool is_running(const std::string& uid) const {
    return running_.contains(uid);
  }

 private:
  void begin_launch(const std::shared_ptr<Task>& task);
  [[nodiscard]] Duration staging_time(double mib) const;
  void finish(const std::shared_ptr<Task>& task, SimTime rank_stop_at);
  void fail(const std::shared_ptr<Task>& task, SimTime at);
  [[nodiscard]] double max_noise(const Placement& placement) const;

  sim::Simulation& simulation_;
  Rng rng_;
  ExecutorConfig config_;
  CompletionCallback on_complete_;
  StartCallback on_start_;
  std::unordered_map<std::string, std::shared_ptr<Task>> running_;
  std::unordered_map<NodeId, double> node_noise_;
};

}  // namespace soma::rp
