// Session: the top-level RP facade (paper Fig. 1 and Fig. 2).
//
// Owns the whole simulated deployment: platform, batch system, network, the
// RP Client (PilotManager + TaskManager) and Agent (Scheduler + Executor).
// The numbered execution process of Fig. 1 maps to:
//   1   start(): PilotManager submits a pilot job to the batch system
//   2   on grant, the Agent bootstraps; the Updater notifies the client
//   3-6 submit(): TaskManager forwards tasks over component channels to the
//       agent scheduler
//   7   the agent scheduler claims slots (serial decision process)
//   8   the executor launches the task and emits Listing-1 events
//
// SOMA integration points (paper §2.3.1) are first-class: service tasks are
// scheduled before application tasks, run for the whole workflow, and are
// shut down through stop_task(); `set_service_nodes` switches between the
// shared and exclusive placement policies of §4.3.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "cluster/platform.hpp"
#include "comm/channel.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "rp/executor.hpp"
#include "rp/profile.hpp"
#include "rp/scheduler.hpp"
#include "rp/task.hpp"
#include "sim/simulation.hpp"

namespace soma::rp {

struct SessionConfig {
  cluster::PlatformConfig platform = cluster::summit(2);
  PilotDescription pilot{.uid = "pilot.0000", .nodes = 2,
                         .runtime = Duration::minutes(120)};
  /// Head nodes of the allocation reserved for the RP client/agent (and the
  /// co-located RP monitor client). Never used for application tasks.
  int agent_nodes = 1;
  /// Cores the RP agent machinery itself occupies on each agent node.
  int agent_cores = 4;

  SchedulerConfig scheduler{};
  ExecutorConfig executor{};
  batch::BatchConfig batch{};
  net::NetworkConfig network{};

  /// Agent bootstrap time (pilot grant -> ready to schedule). The light-blue
  /// band of paper Fig. 8.
  Duration bootstrap_median = Duration::seconds(20.0);
  double bootstrap_sigma = 0.15;

  /// Client-side TaskManager processing cost per task (queueing, staging).
  Duration tmgr_cost = Duration::milliseconds(5);

  std::uint64_t seed = 1;
};

class Session {
 public:
  explicit Session(SessionConfig config);

  // ---- substrate access ----
  [[nodiscard]] sim::Simulation& simulation() { return simulation_; }
  [[nodiscard]] cluster::Platform& platform() { return platform_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] ProfileStore& profiles() { return profiles_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // ---- lifecycle ----
  /// Submit the pilot job (Fig. 2 step 1). `on_ready` fires once the agent
  /// has bootstrapped; experiments deploy the SOMA service + monitors there
  /// before releasing application tasks.
  void start(std::function<void()> on_ready);

  [[nodiscard]] bool agent_ready() const { return agent_ready_.has_value(); }
  [[nodiscard]] SimTime agent_ready_at() const;
  [[nodiscard]] SimTime pilot_granted_at() const;

  /// Nodes granted to the pilot, in grant order (agent nodes first).
  [[nodiscard]] const std::vector<NodeId>& pilot_nodes() const {
    return pilot_nodes_;
  }
  [[nodiscard]] std::vector<NodeId> agent_node_ids() const;
  /// Nodes available to the agent scheduler (everything but agent nodes).
  [[nodiscard]] std::vector<NodeId> worker_node_ids() const;

  /// Mark `nodes` as reserved for services; `shared` selects whether app
  /// tasks may use leftover capacity there (paper §4.3).
  void set_service_nodes(std::vector<NodeId> nodes, bool shared);

  // ---- tasks ----
  /// Submit a task description (Fig. 1 steps 3-6). Requires agent_ready().
  std::shared_ptr<Task> submit(TaskDescription description);
  /// Stop a long-running service/monitor task.
  void stop_task(const std::string& uid);

  /// Register a completion listener (several subsystems listen: EnTK stage
  /// barriers, the TAU plugin, experiment bookkeeping).
  void add_task_completion_listener(
      std::function<void(const std::shared_ptr<Task>&)> callback);

  /// Register a start (rank_start) listener — used to detect when a service
  /// task's endpoints come alive.
  void add_task_start_listener(
      std::function<void(const std::shared_ptr<Task>&)> callback);

  [[nodiscard]] const std::vector<std::shared_ptr<Task>>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] std::shared_ptr<Task> find_task(const std::string& uid) const;

  [[nodiscard]] AgentScheduler& scheduler();
  [[nodiscard]] Executor& executor();

  /// Shut down remaining service tasks and release the pilot allocation.
  void finalize();

  /// Kill every still-running task (the walltime-expiry path): application
  /// tasks end CANCELED, services/monitors are stopped.
  void abort_running_tasks();

  /// Drive the event loop until it drains. Returns the final time.
  SimTime run();

 private:
  void bootstrap_agent(const batch::Allocation& allocation);

  SessionConfig config_;
  sim::Simulation simulation_;
  Rng rng_;
  cluster::Platform platform_;
  net::Network network_;
  batch::BatchSystem batch_;
  ProfileStore profiles_;

  std::optional<batch::JobId> pilot_job_;
  std::vector<NodeId> pilot_nodes_;
  std::optional<SimTime> pilot_granted_;
  std::optional<SimTime> agent_ready_;
  std::function<void()> on_ready_;

  // Created once the pilot is granted.
  std::unique_ptr<AgentScheduler> scheduler_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<comm::Channel<std::shared_ptr<Task>>> tmgr_to_agent_;

  std::vector<std::shared_ptr<Task>> tasks_;
  std::vector<std::function<void(const std::shared_ptr<Task>&)>>
      completion_listeners_;
  std::vector<std::function<void(const std::shared_ptr<Task>&)>>
      start_listeners_;
  std::vector<std::vector<CoreId>> agent_core_claims_;
  bool finalized_ = false;
};

}  // namespace soma::rp
