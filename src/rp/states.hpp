// RADICAL-Pilot state machine (paper §2.3.2, "Workflow Namespace").
//
// RP components function as state machines; a task proceeds NEW ->
// TMGR_SCHEDULING -> AGENT_SCHEDULING -> EXECUTING -> DONE/FAILED, and the
// EXECUTING state is refined by timestamped events (Listing 1):
// launch_start, exec_start, rank_start, rank_stop, exec_stop, launch_stop.
#pragma once

#include <string_view>

namespace soma::rp {

enum class TaskState {
  kNew,
  kTmgrScheduling,   ///< queued at the client TaskManager/Scheduler
  kAgentScheduling,  ///< waiting for / receiving an agent placement
  kExecuting,
  kDone,
  kFailed,
  kCanceled,
};

enum class PilotState {
  kNew,
  kPmgrLaunching,  ///< queued at the platform batch system
  kActive,         ///< agent bootstrapped, executing tasks
  kDone,
  kFailed,
};

[[nodiscard]] std::string_view to_string(TaskState state);
[[nodiscard]] std::string_view to_string(PilotState state);

/// True for states a task can never leave.
[[nodiscard]] constexpr bool is_final(TaskState state) {
  return state == TaskState::kDone || state == TaskState::kFailed ||
         state == TaskState::kCanceled;
}

/// Legal forward transitions (used to assert state-machine integrity).
[[nodiscard]] bool is_valid_transition(TaskState from, TaskState to);

/// Event names recorded within the EXECUTING state, in order (Listing 1).
namespace events {
inline constexpr std::string_view kLaunchStart = "launch_start";
inline constexpr std::string_view kExecStart = "exec_start";
inline constexpr std::string_view kRankStart = "rank_start";
inline constexpr std::string_view kRankStop = "rank_stop";
inline constexpr std::string_view kExecStop = "exec_stop";
inline constexpr std::string_view kLaunchStop = "launch_stop";
// State-entry events recorded by the components.
inline constexpr std::string_view kScheduleStart = "schedule_start";
inline constexpr std::string_view kSlotsClaimed = "slots_claimed";
inline constexpr std::string_view kScheduleOk = "schedule_ok";
// Data-staging events (Fig. 1: "after staging files when required").
inline constexpr std::string_view kStageInStart = "stage_in_start";
inline constexpr std::string_view kStageInStop = "stage_in_stop";
inline constexpr std::string_view kStageOutStart = "stage_out_start";
inline constexpr std::string_view kStageOutStop = "stage_out_stop";
}  // namespace events

}  // namespace soma::rp
