#include "rp/executor.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "rp/execution_model.hpp"

namespace soma::rp {

Executor::Executor(sim::Simulation& simulation, Rng rng, ExecutorConfig config)
    : simulation_(simulation), rng_(rng), config_(config) {}

void Executor::set_node_noise(NodeId node, double fraction) {
  check(fraction >= 0.0, "node noise must be non-negative");
  node_noise_[node] = fraction;
}

double Executor::node_noise(NodeId node) const {
  const auto it = node_noise_.find(node);
  return it == node_noise_.end() ? 0.0 : it->second;
}

double Executor::max_noise(const Placement& placement) const {
  double noise = 0.0;
  for (NodeId node : placement.nodes()) {
    noise = std::max(noise, node_noise(node));
  }
  return noise;
}

Duration Executor::staging_time(double mib) const {
  if (mib <= 0.0) return Duration::zero();
  return config_.staging_latency +
         Duration::seconds(mib / config_.staging_bandwidth_mib_per_s);
}

void Executor::launch(const std::shared_ptr<Task>& task) {
  check(task != nullptr, "executor: null task");
  check(task->placement().has_value(), "executor: task has no placement");
  const TaskDescription& d = task->description();

  task->advance(TaskState::kExecuting, simulation_.now());
  running_.emplace(d.uid, task);

  // Stage input files before the launcher runs (Fig. 1: "after staging
  // files when required, tasks are queued...").
  if (d.input_staging_mib > 0.0) {
    task->record_event(events::kStageInStart, simulation_.now());
    simulation_.schedule(staging_time(d.input_staging_mib), [this, task] {
      task->record_event(events::kStageInStop, simulation_.now());
      begin_launch(task);
    });
    return;
  }
  begin_launch(task);
}

void Executor::begin_launch(const std::shared_ptr<Task>& task) {
  if (!running_.contains(task->uid())) return;  // cancelled during staging
  const TaskDescription& d = task->description();
  task->record_event(events::kLaunchStart, simulation_.now());

  Rng task_rng = rng_.split(d.uid);
  const Duration launch = Duration::seconds(task_rng.lognormal(
      config_.launch_cost_median.to_seconds(), config_.launch_cost_sigma));

  simulation_.schedule(launch, [this, task, task_rng]() mutable {
    task->record_event(events::kExecStart, simulation_.now());
    simulation_.schedule(config_.exec_prologue, [this, task,
                                                 task_rng]() mutable {
      task->record_event(events::kRankStart, simulation_.now());
      if (on_start_) on_start_(task);
      const TaskDescription& d = task->description();

      if (d.kind != TaskKind::kApplication) {
        // Service/monitor tasks run until stop(); nothing more to schedule.
        return;
      }

      Duration duration = d.model
                              ? d.model->sample_duration(
                                    d, *task->placement(), task_rng)
                              : d.fixed_duration;
      duration = duration * (1.0 + max_noise(*task->placement()));

      // Failure injection: a crashing task dies partway through.
      if (d.failure_probability > 0.0 &&
          task_rng.bernoulli(d.failure_probability)) {
        const Duration until_crash = duration * task_rng.uniform(0.05, 0.95);
        simulation_.schedule(until_crash, [this, task] {
          fail(task, simulation_.now());
        });
        return;
      }
      simulation_.schedule(duration, [this, task] {
        finish(task, simulation_.now());
      });
    });
  });
}

void Executor::stop(const std::string& uid) {
  const auto it = running_.find(uid);
  if (it == running_.end()) return;
  std::shared_ptr<Task> task = it->second;
  // A task stopped before rank_start simply records the stop sequence now.
  finish(task, simulation_.now());
}

void Executor::fail(const std::shared_ptr<Task>& task, SimTime at) {
  const auto it = running_.find(task->uid());
  if (it == running_.end()) return;
  running_.erase(it);

  // The launcher observes the crash: rank_stop/exec_stop are recorded at
  // the abort, then the launcher tears down and RP marks the task FAILED.
  task->record_event(events::kRankStop, at);
  task->record_event(events::kExecStop, at);
  const SimTime launch_stop = at + config_.launch_teardown;
  simulation_.schedule_at(launch_stop, [this, task, launch_stop] {
    task->record_event(events::kLaunchStop, launch_stop);
    task->advance(TaskState::kFailed, launch_stop);
    if (on_complete_) on_complete_(task);
  });
}

void Executor::cancel(const std::string& uid) {
  const auto it = running_.find(uid);
  if (it == running_.end()) return;
  std::shared_ptr<Task> task = it->second;
  running_.erase(it);
  const SimTime now = simulation_.now();
  task->record_event(events::kRankStop, now);
  task->record_event(events::kExecStop, now);
  task->record_event(events::kLaunchStop, now);
  task->advance(TaskState::kCanceled, now);
  if (on_complete_) on_complete_(task);
}

void Executor::finish(const std::shared_ptr<Task>& task, SimTime rank_stop_at) {
  const auto it = running_.find(task->uid());
  if (it == running_.end()) return;  // stopped twice / already completed
  running_.erase(it);

  task->record_event(events::kRankStop, rank_stop_at);
  const SimTime exec_stop = rank_stop_at + config_.exec_epilogue;
  const SimTime launch_stop = exec_stop + config_.launch_teardown;

  simulation_.schedule_at(exec_stop, [task, exec_stop] {
    task->record_event(events::kExecStop, exec_stop);
  });
  simulation_.schedule_at(launch_stop, [this, task, launch_stop] {
    task->record_event(events::kLaunchStop, launch_stop);
    // Stage output files back to the shared filesystem, then finish.
    const double out_mib = task->description().output_staging_mib;
    if (out_mib > 0.0) {
      task->record_event(events::kStageOutStart, simulation_.now());
      simulation_.schedule(staging_time(out_mib), [this, task] {
        task->record_event(events::kStageOutStop, simulation_.now());
        task->advance(TaskState::kDone, simulation_.now());
        if (on_complete_) on_complete_(task);
      });
      return;
    }
    task->advance(TaskState::kDone, launch_stop);
    if (on_complete_) on_complete_(task);
  });
}

}  // namespace soma::rp
