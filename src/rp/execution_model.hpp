// Execution-time model interface.
//
// A TaskDescription can carry an ExecutionModel that determines how long the
// task's ranks run given the placement they received (rank count, node
// spread) — this is how workload behaviour (OpenFOAM strong scaling, DDMD
// stage times) enters the simulation. Implementations live in
// src/workloads/.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace soma::rp {

struct TaskDescription;
struct Placement;

class ExecutionModel {
 public:
  virtual ~ExecutionModel() = default;

  /// Sample the rank_start -> rank_stop duration for one execution of
  /// `task` under `placement`. `rng` is a task-specific stream; models must
  /// draw all randomness from it (determinism).
  [[nodiscard]] virtual Duration sample_duration(
      const TaskDescription& task, const Placement& placement,
      Rng& rng) const = 0;
};

}  // namespace soma::rp
