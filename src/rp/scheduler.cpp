#include "rp/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::rp {

AgentScheduler::AgentScheduler(sim::Simulation& simulation,
                               cluster::Platform& platform,
                               std::vector<NodeId> nodes, Rng rng,
                               SchedulerConfig config)
    : simulation_(simulation),
      platform_(platform),
      nodes_(std::move(nodes)),
      rng_(rng),
      config_(config) {
  check(!nodes_.empty(), "scheduler needs at least one node");
}

void AgentScheduler::set_service_nodes(std::vector<NodeId> nodes,
                                       bool shared) {
  service_nodes_ = {nodes.begin(), nodes.end()};
  shared_service_nodes_ = shared;
}

void AgentScheduler::set_agent_nodes(std::vector<NodeId> nodes) {
  agent_nodes_ = {nodes.begin(), nodes.end()};
}

bool AgentScheduler::node_eligible(NodeId node, const Task& task) const {
  if (task.description().pinned_node) {
    return node == *task.description().pinned_node;
  }
  const bool is_service_node = service_nodes_.contains(node);
  const bool is_agent_node = agent_nodes_.contains(node);
  if (task.description().kind == TaskKind::kApplication ||
      task.description().kind == TaskKind::kWorker) {
    // App tasks (and worker pools) never land on agent nodes, and avoid
    // service nodes unless the deployment is "shared".
    if (is_agent_node) return false;
    return !is_service_node || shared_service_nodes_;
  }
  // Unpinned service tasks go to the service nodes when any are defined.
  if (!service_nodes_.empty()) return is_service_node;
  return true;
}

std::vector<NodeId> AgentScheduler::placement_order() const {
  if (config_.policy == PlacementPolicy::kContinuous) return nodes_;
  // Least-utilized first (stable: ties keep index order). Utilization comes
  // from the configured source — SOMA's observed values when wired, the
  // platform's instantaneous truth otherwise.
  std::vector<NodeId> ordered = nodes_;
  auto utilization = [&](NodeId node) {
    if (utilization_) return utilization_(node);
    return platform_.node(node).utilization_now();
  };
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](NodeId a, NodeId b) {
                     return utilization(a) < utilization(b);
                   });
  return ordered;
}

std::optional<Placement> AgentScheduler::try_place(const Task& task) {
  const TaskDescription& d = task.description();
  const int cores_per_rank = std::max(1, d.cores_per_rank);

  Placement placement;
  placement.ranks.reserve(static_cast<std::size_t>(d.ranks));

  // First pass: build a placement plan (node -> rank count) without
  // claiming anything.
  int ranks_left = d.ranks;
  std::vector<std::pair<NodeId, int>> plan;  // node -> ranks placed there
  std::vector<std::pair<NodeId, int>> capacity;  // eligible node -> max ranks
  for (NodeId node_id : placement_order()) {
    if (!node_eligible(node_id, task)) continue;
    const auto& node = platform_.node(node_id);
    int fit = node.free_cores() / cores_per_rank;
    if (d.gpus_per_rank > 0) {
      fit = std::min(fit, node.free_gpus() / d.gpus_per_rank);
    }
    if (fit > 0) capacity.emplace_back(node_id, fit);
  }

  if (d.kind == TaskKind::kService) {
    // Long-running services spread their ranks evenly across their nodes
    // (never packing a node solid), leaving each node's reserved monitor
    // core and leftover capacity usable — the paper's shared mode depends
    // on this headroom.
    int total = 0;
    for (const auto& [node_id, fit] : capacity) total += fit;
    if (total < ranks_left) return std::nullopt;
    std::vector<int> assigned(capacity.size(), 0);
    std::size_t cursor = 0;
    while (ranks_left > 0) {
      const std::size_t i = cursor % capacity.size();
      if (assigned[i] < capacity[i].second) {
        ++assigned[i];
        --ranks_left;
      }
      ++cursor;
    }
    for (std::size_t i = 0; i < capacity.size(); ++i) {
      if (assigned[i] > 0) plan.emplace_back(capacity[i].first, assigned[i]);
    }
  } else {
    // RP "continuous" policy: walk nodes in order, claiming what fits.
    for (const auto& [node_id, fit_cap] : capacity) {
      if (ranks_left == 0) break;
      const int fit = std::min(fit_cap, ranks_left);
      plan.emplace_back(node_id, fit);
      ranks_left -= fit;
    }
    if (ranks_left > 0) return std::nullopt;
  }

  // Second pass: claim. The claims cannot fail because nothing else runs
  // between the passes (single-threaded event loop).
  for (const auto& [node_id, rank_count] : plan) {
    auto& node = platform_.node(node_id);
    for (int r = 0; r < rank_count; ++r) {
      RankPlacement rank;
      rank.node = node_id;
      auto cores = node.allocate_cores(cores_per_rank, d.uid, d.cpu_activity);
      check(cores.has_value(), "scheduler: core claim failed unexpectedly");
      rank.cores = std::move(*cores);
      if (d.gpus_per_rank > 0) {
        auto gpus = node.allocate_gpus(d.gpus_per_rank, d.uid);
        check(gpus.has_value(), "scheduler: gpu claim failed unexpectedly");
        rank.gpus = std::move(*gpus);
      }
      node.claim_ram(d.mem_per_rank_mib);
      placement.ranks.push_back(std::move(rank));
    }
  }
  return placement;
}

void AgentScheduler::submit(std::shared_ptr<Task> task) {
  check(task != nullptr, "scheduler: null task");
  check(task->state() == TaskState::kAgentScheduling,
        "scheduler: task must be in AGENT_SCHEDULING");
  task->record_event(events::kScheduleStart, simulation_.now());
  waitlist_.push_back(std::move(task));
  schedule_pass();
}

void AgentScheduler::task_completed(Task& task) {
  const auto& placement = task.placement();
  check(placement.has_value(), "task_completed: task has no placement");
  const TaskDescription& d = task.description();
  for (const auto& rank : placement->ranks) {
    auto& node = platform_.node(rank.node);
    node.release_cores(rank.cores, d.uid);
    if (!rank.gpus.empty()) node.release_gpus(rank.gpus, d.uid);
    node.release_ram(d.mem_per_rank_mib);
  }
  schedule_pass();
}

void AgentScheduler::schedule_pass() {
  // Scan the whole waitlist: RP places any task that fits as soon as enough
  // resources are free, so a large head-of-line task does not block small
  // ones (paper §4.2). Once a task with a given resource shape fails to
  // place, any task needing at least as much of everything must fail too —
  // skip it without re-scanning the platform (ensemble waitlists are
  // thousands of identical tasks).
  int failed_cores = std::numeric_limits<int>::max();
  int failed_gpus = std::numeric_limits<int>::max();
  bool failed_pinned = false;
  for (auto it = waitlist_.begin(); it != waitlist_.end();) {
    std::shared_ptr<Task>& task = *it;
    const TaskDescription& d = (*it)->description();
    const int need_cores = d.ranks * std::max(1, d.cores_per_rank);
    const int need_gpus = d.ranks * d.gpus_per_rank;
    const bool skippable = !d.pinned_node && d.kind == TaskKind::kApplication;
    if (skippable && failed_pinned == false && need_cores >= failed_cores &&
        need_gpus >= failed_gpus) {
      ++it;
      continue;
    }
    auto placement = try_place(*task);
    if (!placement) {
      if (skippable) {
        failed_cores = std::min(failed_cores, need_cores);
        failed_gpus = std::min(failed_gpus, need_gpus);
      }
      ++it;
      continue;
    }
    task->set_placement(std::move(*placement));
    task->record_event(events::kSlotsClaimed, simulation_.now());

    // Serial decision process: the placement becomes effective after the
    // decision cost, queued behind earlier decisions.
    const double slowdown = slowdown_ ? std::max(1.0, slowdown_()) : 1.0;
    const Duration cost =
        Duration::seconds(rng_.lognormal(
            config_.decision_cost_median.to_seconds() * slowdown,
            config_.decision_cost_sigma));
    const SimTime start = std::max(simulation_.now(), decision_busy_until_);
    decision_busy_until_ = start + cost;

    std::shared_ptr<Task> placed = std::move(task);
    it = waitlist_.erase(it);
    simulation_.schedule_at(decision_busy_until_, [this, placed] {
      placed->record_event(events::kScheduleOk, simulation_.now());
      if (on_placed_) on_placed_(placed);
    });
  }
}

int AgentScheduler::free_app_cores() const {
  int total = 0;
  for (NodeId id : nodes_) {
    const bool service = service_nodes_.contains(id);
    if (service && !shared_service_nodes_) continue;
    total += platform_.node(id).free_cores();
  }
  return total;
}

int AgentScheduler::free_app_gpus() const {
  int total = 0;
  for (NodeId id : nodes_) {
    const bool service = service_nodes_.contains(id);
    if (service && !shared_service_nodes_) continue;
    total += platform_.node(id).free_gpus();
  }
  return total;
}

}  // namespace soma::rp
