// Task and Pilot descriptions and runtime records (paper §2.1).
//
// RP implements two abstractions: Pilot (a placeholder for resources) and
// Task (a unit of work plus its resource requirements). TaskDescription is
// what the user supplies; Task is the runtime record that accumulates state
// transitions, timestamped events, and the placement it received.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "rp/states.hpp"

namespace soma::rp {

class ExecutionModel;

/// Where one rank landed: a node plus the specific cores/GPUs it holds.
struct RankPlacement {
  NodeId node = -1;
  std::vector<CoreId> cores;
  std::vector<GpuId> gpus;
};

/// Placement of a whole task.
struct Placement {
  std::vector<RankPlacement> ranks;

  /// Number of distinct compute nodes the ranks span.
  [[nodiscard]] int nodes_spanned() const;
  /// Distinct node ids, ascending.
  [[nodiscard]] std::vector<NodeId> nodes() const;
};

/// What kind of entity this task is within the workflow (paper Fig. 2).
enum class TaskKind {
  kApplication,      ///< regular workload task
  kService,          ///< long-running service (the SOMA server)
  kMonitor,          ///< long-running monitoring client (RP / hardware)
  kWorker,           ///< long-running worker-pool member (RAPTOR): placed
                     ///< like an application task, lives until stopped
};

struct TaskDescription {
  std::string uid;
  TaskKind kind = TaskKind::kApplication;

  int ranks = 1;
  int cores_per_rank = 1;
  int gpus_per_rank = 0;
  double mem_per_rank_mib = 1024.0;

  /// Fraction of each allocated core the task keeps busy (drives /proc
  /// utilization). MPI solvers ~1.0; GPU-offloaded stages much lower.
  double cpu_activity = 1.0;

  /// Execution-time model; when null, `fixed_duration` is used. Service and
  /// monitor tasks ignore both (they run until stopped).
  std::shared_ptr<const ExecutionModel> model;
  Duration fixed_duration = Duration::seconds(1.0);

  /// Pin every rank to this node (monitor tasks; co-location with the
  /// agent). The scheduler fails the task if the node cannot hold it.
  std::optional<NodeId> pinned_node;

  /// Probability that the task crashes mid-execution (node fault, OOM,
  /// application abort). A failing task releases its resources and ends in
  /// FAILED at a uniformly random point of its nominal duration.
  double failure_probability = 0.0;

  /// Data staged in from the shared filesystem before launch and staged
  /// back out after execution (paper Fig. 1: "after staging files when
  /// required"). Zero skips the staging phases.
  double input_staging_mib = 0.0;
  double output_staging_mib = 0.0;

  /// Label used for grouping in analyses ("openfoam-82", "ddmd-sim", ...).
  std::string label;
};

/// Runtime record of a task.
class ProfileStore;

class Task {
 public:
  explicit Task(TaskDescription description)
      : description_(std::move(description)) {}

  /// Mirror every transition/event into `store` (RP writes .prof files as it
  /// goes; the SOMA RP monitor tails them). Pass nullptr to detach.
  void attach_profile(ProfileStore* store) { profile_ = store; }

  [[nodiscard]] const TaskDescription& description() const {
    return description_;
  }
  [[nodiscard]] const std::string& uid() const { return description_.uid; }

  [[nodiscard]] TaskState state() const { return state_; }
  /// Advance the state machine; records the transition time. Throws
  /// InternalError on an illegal transition.
  void advance(TaskState to, SimTime at);

  /// Timestamped fine-grained events (Listing 1).
  void record_event(std::string_view event, SimTime at);
  [[nodiscard]] const std::vector<std::pair<SimTime, std::string>>& event_log()
      const {
    return events_;
  }
  /// Time of the first occurrence of `event`, if recorded.
  [[nodiscard]] std::optional<SimTime> event_time(
      std::string_view event) const;

  /// State-entry timestamps, in transition order.
  [[nodiscard]] const std::vector<std::pair<SimTime, TaskState>>&
  state_history() const {
    return state_history_;
  }
  [[nodiscard]] std::optional<SimTime> state_entered(TaskState state) const;

  [[nodiscard]] const std::optional<Placement>& placement() const {
    return placement_;
  }
  void set_placement(Placement placement) {
    placement_ = std::move(placement);
  }

  /// rank_start -> rank_stop span, when both are recorded.
  [[nodiscard]] std::optional<Duration> rank_duration() const;
  /// launch_start -> launch_stop span, when both are recorded.
  [[nodiscard]] std::optional<Duration> launch_duration() const;

 private:
  TaskDescription description_;
  TaskState state_ = TaskState::kNew;
  std::vector<std::pair<SimTime, TaskState>> state_history_{
      {SimTime::zero(), TaskState::kNew}};
  std::vector<std::pair<SimTime, std::string>> events_;
  std::optional<Placement> placement_;
  ProfileStore* profile_ = nullptr;
};

struct PilotDescription {
  std::string uid = "pilot.0000";
  int nodes = 1;
  Duration runtime = Duration::minutes(120);
};

}  // namespace soma::rp
