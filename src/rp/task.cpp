#include "rp/task.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rp/profile.hpp"

namespace soma::rp {

int Placement::nodes_spanned() const {
  return static_cast<int>(nodes().size());
}

std::vector<NodeId> Placement::nodes() const {
  std::vector<NodeId> ids;
  ids.reserve(ranks.size());
  for (const auto& r : ranks) ids.push_back(r.node);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

void Task::advance(TaskState to, SimTime at) {
  if (!is_valid_transition(state_, to)) {
    throw InternalError("illegal task state transition: " +
                        std::string(to_string(state_)) + " -> " +
                        std::string(to_string(to)) + " (task " + uid() + ")");
  }
  state_ = to;
  state_history_.emplace_back(at, to);
  if (profile_ != nullptr) profile_->record(at, uid(), to_string(to));
}

void Task::record_event(std::string_view event, SimTime at) {
  events_.emplace_back(at, std::string(event));
  if (profile_ != nullptr) profile_->record(at, uid(), event);
}

std::optional<SimTime> Task::event_time(std::string_view event) const {
  for (const auto& [time, name] : events_) {
    if (name == event) return time;
  }
  return std::nullopt;
}

std::optional<SimTime> Task::state_entered(TaskState state) const {
  for (const auto& [time, s] : state_history_) {
    if (s == state) return time;
  }
  return std::nullopt;
}

std::optional<Duration> Task::rank_duration() const {
  const auto start = event_time(events::kRankStart);
  const auto stop = event_time(events::kRankStop);
  if (!start || !stop) return std::nullopt;
  return *stop - *start;
}

std::optional<Duration> Task::launch_duration() const {
  const auto start = event_time(events::kLaunchStart);
  const auto stop = event_time(events::kLaunchStop);
  if (!start || !stop) return std::nullopt;
  return *stop - *start;
}

}  // namespace soma::rp
