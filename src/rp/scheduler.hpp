// Agent-side scheduler (paper Fig. 1, step 7).
//
// Implements RP's "continuous" placement policy: walk the pilot's nodes in
// index order and claim free cores/GPUs rank by rank, splitting a task
// across nodes when no single node can hold it. This is the mechanism behind
// paper Fig. 6 (the same 20/41-rank task lands on 1..5 nodes depending on
// what was free).
//
// The scheduler is a *serial* decision process: each successful placement
// costs decision time, so a storm of small tasks queues up — the purple
// "scheduling" bands of paper Fig. 8. A slowdown hook lets co-located
// monitoring work (RP monitor on the agent node) inflate decision cost, the
// mechanism behind the frequent-monitoring overhead of Fig. 11.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cluster/platform.hpp"
#include "common/rng.hpp"
#include "rp/task.hpp"
#include "sim/simulation.hpp"

namespace soma::rp {

/// Node-ordering policy for placement (paper §4.2: "RP could adapt its
/// scheduling decisions, prioritizing the use of the free CPUs on a node
/// with comparably lower overall CPU utilization").
enum class PlacementPolicy {
  kContinuous,     ///< RP default: walk nodes in index order
  kLeastUtilized,  ///< prefer nodes with the lowest observed utilization
};

struct SchedulerConfig {
  /// Median cost of one placement decision (state update, slot bookkeeping,
  /// launcher handshake).
  Duration decision_cost_median = Duration::milliseconds(15);
  double decision_cost_sigma = 0.25;
  PlacementPolicy policy = PlacementPolicy::kContinuous;
};

class AgentScheduler {
 public:
  using PlacedCallback =
      std::function<void(const std::shared_ptr<Task>&)>;
  using SlowdownFn = std::function<double()>;

  AgentScheduler(sim::Simulation& simulation, cluster::Platform& platform,
                 std::vector<NodeId> nodes, Rng rng,
                 SchedulerConfig config = {});

  /// Nodes reserved for services (the SOMA nodes). In exclusive mode
  /// application tasks never land there; in shared mode their leftover
  /// cores/GPUs are fair game (paper §4.3, shared vs exclusive).
  void set_service_nodes(std::vector<NodeId> nodes, bool shared);

  /// Nodes hosting the RP client/agent: never used for application tasks
  /// (regardless of the shared flag), but service/monitor tasks may land
  /// there (the OpenFOAM runs co-locate the SOMA service with the agent).
  void set_agent_nodes(std::vector<NodeId> nodes);

  /// Callback fired when a task's placement decision completes and its
  /// resources are claimed; the executor takes over from here.
  void set_on_placed(PlacedCallback callback) {
    on_placed_ = std::move(callback);
  }

  /// Multiplier (>= 1) applied to decision cost; supplied by the session to
  /// model contention on the agent node.
  void set_decision_slowdown(SlowdownFn fn) { slowdown_ = std::move(fn); }

  /// Utilization estimate used by the kLeastUtilized policy. Defaults to
  /// the platform's ground truth; experiments wire SOMA's *observed*
  /// utilization here to close the paper's feedback loop.
  using UtilizationFn = std::function<double(NodeId)>;
  void set_utilization_source(UtilizationFn fn) {
    utilization_ = std::move(fn);
  }

  void set_policy(PlacementPolicy policy) { config_.policy = policy; }
  [[nodiscard]] PlacementPolicy policy() const { return config_.policy; }

  /// Enqueue a task for placement. The task must be in AGENT_SCHEDULING.
  void submit(std::shared_ptr<Task> task);

  /// Release a completed/stopped task's resources and re-run placement.
  void task_completed(Task& task);

  [[nodiscard]] std::size_t waitlist_size() const { return waitlist_.size(); }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

  /// Cores/GPUs currently free on nodes eligible for application tasks.
  [[nodiscard]] int free_app_cores() const;
  [[nodiscard]] int free_app_gpus() const;

 private:
  /// Attempt to place `task` right now; claims resources on success.
  std::optional<Placement> try_place(const Task& task);
  /// Scan the waitlist and start decisions for everything that fits.
  void schedule_pass();
  [[nodiscard]] bool node_eligible(NodeId node, const Task& task) const;
  /// Nodes in the order the current policy wants them considered.
  [[nodiscard]] std::vector<NodeId> placement_order() const;

  sim::Simulation& simulation_;
  cluster::Platform& platform_;
  std::vector<NodeId> nodes_;
  std::unordered_set<NodeId> service_nodes_;
  std::unordered_set<NodeId> agent_nodes_;
  bool shared_service_nodes_ = false;
  Rng rng_;
  SchedulerConfig config_;
  PlacedCallback on_placed_;
  SlowdownFn slowdown_;
  UtilizationFn utilization_;
  std::deque<std::shared_ptr<Task>> waitlist_;
  SimTime decision_busy_until_{};
};

}  // namespace soma::rp
