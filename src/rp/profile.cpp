#include "rp/profile.hpp"

#include "common/error.hpp"

namespace soma::rp {

void ProfileStore::record(SimTime time, std::string_view uid,
                          std::string_view event) {
  records_.push_back(
      ProfileRecord{time, std::string(uid), std::string(event)});
}

const ProfileRecord& ProfileStore::at(std::size_t index) const {
  check(index < records_.size(), "profile record index out of range");
  return records_[index];
}

std::vector<ProfileRecord> ProfileStore::read_since(
    std::size_t& cursor) const {
  std::vector<ProfileRecord> out;
  if (cursor < records_.size()) {
    out.assign(records_.begin() + static_cast<std::ptrdiff_t>(cursor),
               records_.end());
    cursor = records_.size();
  }
  return out;
}

std::vector<ProfileRecord> ProfileStore::for_uid(std::string_view uid) const {
  std::vector<ProfileRecord> out;
  for (const auto& r : records_) {
    if (r.uid == uid) out.push_back(r);
  }
  return out;
}

}  // namespace soma::rp
