#include "cluster/proc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace soma::cluster {
namespace {

// stat array layout: [user, nice, system, idle, iowait, irq]
constexpr std::size_t kStatFields = 6;

std::vector<std::int64_t> make_stat(double busy_seconds, double total_seconds,
                                    double background_seconds,
                                    double jiffies_per_second, Rng& rng) {
  // Split busy time between user (dominant for HPC codes) and system, with
  // slight per-snapshot jitter so different cores don't look identical.
  const double user_fraction = 0.92 + 0.02 * rng.uniform();
  const double user = busy_seconds * user_fraction;
  const double system = busy_seconds - user + background_seconds * 0.5;
  const double nice = 0.0;
  const double irq = background_seconds * 0.1;
  const double iowait = background_seconds * 0.4;
  const double idle =
      std::max(0.0, total_seconds - busy_seconds - background_seconds);

  auto jiffies = [&](double seconds) {
    return static_cast<std::int64_t>(seconds * jiffies_per_second);
  };
  return {jiffies(user), jiffies(nice),   jiffies(system),
          jiffies(idle), jiffies(iowait), jiffies(irq)};
}

}  // namespace

datamodel::Node make_proc_snapshot(const ComputeNode& node, SimTime now,
                                   Rng& rng, const ProcConfig& config) {
  datamodel::Node snapshot;
  datamodel::Node& host = snapshot[node.hostname()];
  datamodel::Node& at = host[std::to_string(now.nanos())];

  const double uptime = now.to_seconds();
  at["Uptime"].set(static_cast<std::int64_t>(uptime));
  at["Num Processes"].set(static_cast<std::int64_t>(
      config.baseline_processes + node.num_processes()));
  at["Available RAM"].set(static_cast<std::int64_t>(node.available_ram_mib()));

  datamodel::Node& stat = at["stat"];
  const double background = uptime * config.background_activity;

  // Aggregate row over all usable cores.
  stat["cpu"].set(make_stat(node.busy_core_seconds(),
                            uptime * node.usable_cores(),
                            background * node.usable_cores(),
                            config.jiffies_per_second, rng));
  // Per-core rows.
  for (int c = 0; c < node.usable_cores(); ++c) {
    stat["cpu" + std::to_string(c)].set(
        make_stat(node.core_busy_seconds(static_cast<CoreId>(c)), uptime,
                  background, config.jiffies_per_second, rng));
  }
  return snapshot;
}

double utilization_from_stat(const std::vector<std::int64_t>& before,
                             const std::vector<std::int64_t>& after) {
  check(before.size() == kStatFields && after.size() == kStatFields,
        "utilization_from_stat: malformed stat arrays");
  std::int64_t busy_delta = 0;
  std::int64_t total_delta = 0;
  for (std::size_t i = 0; i < kStatFields; ++i) {
    const std::int64_t delta = after[i] - before[i];
    total_delta += delta;
    if (i != 3) busy_delta += delta;  // index 3 = idle
  }
  if (total_delta <= 0) return 0.0;
  return std::clamp(static_cast<double>(busy_delta) /
                        static_cast<double>(total_delta),
                    0.0, 1.0);
}

}  // namespace soma::cluster
