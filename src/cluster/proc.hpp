// Synthetic /proc snapshot (paper Listing 2).
//
// The hardware monitoring client reads /proc on each node. Here the snapshot
// is synthesized from the compute-node occupancy model: jiffy counters are
// derived from exact busy-time integrals, so utilization computed from two
// snapshots matches the simulation's ground truth (plus a small background
// OS activity term).
#pragma once

#include "cluster/platform.hpp"
#include "common/rng.hpp"
#include "datamodel/node.hpp"

namespace soma::cluster {

struct ProcConfig {
  /// Fraction of one core consumed by background OS daemons.
  double background_activity = 0.01;
  /// Jiffy frequency (Linux USER_HZ).
  double jiffies_per_second = 100.0;
  /// Baseline process count for an idle node.
  int baseline_processes = 2;
};

/// Build a /proc-style snapshot for `node` at the current simulated time:
///
///   cnNNNN/
///     <timestamp ns>/
///       Uptime:         <seconds>
///       Num Processes:  <count>
///       Available RAM:  <MiB>
///       stat/
///         cpu:  [user, nice, system, idle, iowait, irq]
///         cpu0: [...]   (per usable core)
///
/// Counters are cumulative, as in the real /proc/stat; the monitor diffs
/// consecutive snapshots to obtain utilization.
datamodel::Node make_proc_snapshot(const ComputeNode& node, SimTime now,
                                   Rng& rng, const ProcConfig& config = {});

/// Utilization in [0,1] from two cumulative `stat/cpu` jiffy arrays
/// (busy-delta over total-delta). Returns 0 when no time elapsed.
double utilization_from_stat(const std::vector<std::int64_t>& before,
                             const std::vector<std::int64_t>& after);

}  // namespace soma::cluster
