// Compute-platform model (Summit-like by default).
//
// Models nodes with cores, GPUs, and RAM. Occupancy is tracked with exact
// time integrals (core-seconds) so that CPU-utilization queries over any
// window reproduce what a /proc-scraping monitor would compute from jiffy
// counters. The RP agent scheduler allocates slots through this model; the
// hardware monitor samples it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace soma::cluster {

struct NodeConfig {
  int total_cores = 44;   ///< physical cores (Summit: 2 x 22 Power9)
  int system_cores = 2;   ///< reserved for the OS (not user-allocatable)
  int gpus = 6;           ///< Summit: 6 x V100
  double ram_mib = 512.0 * 1024.0;

  [[nodiscard]] int usable_cores() const { return total_cores - system_cores; }
};

struct PlatformConfig {
  std::string name = "summit";
  int nodes = 1;
  NodeConfig node{};
};

/// Summit preset: 42 usable cores and 6 GPUs per node (paper §3.1).
PlatformConfig summit(int nodes);

/// One compute node. Core/GPU slots carry an owner tag (task uid) so that
/// utilization can be attributed and bugs (double-allocation, double-free)
/// are caught immediately.
class ComputeNode {
 public:
  ComputeNode(sim::Simulation& simulation, NodeId id, NodeConfig config);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  // ---- core allocation ----
  [[nodiscard]] int usable_cores() const { return config_.usable_cores(); }
  [[nodiscard]] int busy_cores() const { return busy_cores_; }
  [[nodiscard]] int free_cores() const {
    return usable_cores() - busy_cores_;
  }
  /// Claim `count` specific free cores for `owner`. Returns the core ids, or
  /// nullopt (claiming nothing) if fewer than `count` are free.
  ///
  /// `activity` in [0, 1] is the fraction of each claimed core the owner
  /// actually keeps busy: an MPI solver spin-waiting in MPI_Recv is ~1.0,
  /// while a GPU-bound training task may only drive its host cores at ~0.2.
  /// Scheduling always sees the core as taken; /proc-style utilization
  /// integrates the activity.
  std::optional<std::vector<CoreId>> allocate_cores(int count,
                                                    const std::string& owner,
                                                    double activity = 1.0);
  /// Release cores previously allocated. Throws InternalError on a core that
  /// is not owned by `owner` (catches scheduler bugs).
  void release_cores(const std::vector<CoreId>& cores,
                     const std::string& owner);

  // ---- GPU allocation ----
  [[nodiscard]] int busy_gpus() const { return busy_gpus_; }
  [[nodiscard]] int free_gpus() const { return config_.gpus - busy_gpus_; }
  std::optional<std::vector<GpuId>> allocate_gpus(int count,
                                                  const std::string& owner);
  void release_gpus(const std::vector<GpuId>& gpus, const std::string& owner);

  // ---- memory ----
  [[nodiscard]] double used_ram_mib() const { return used_ram_mib_; }
  [[nodiscard]] double available_ram_mib() const {
    return config_.ram_mib - used_ram_mib_;
  }
  void claim_ram(double mib) { used_ram_mib_ += mib; }
  void release_ram(double mib) { used_ram_mib_ -= mib; }

  // ---- processes (for the /proc "Num Processes" field) ----
  [[nodiscard]] int num_processes() const { return num_processes_; }
  void process_started() { ++num_processes_; }
  void process_stopped() { --num_processes_; }

  /// Adjust the activity of cores already owned by `owner` (e.g. a task
  /// whose compute phase ended but still holds its slots).
  void set_core_activity(const std::vector<CoreId>& cores,
                         const std::string& owner, double activity);

  // ---- utilization ----
  /// Instantaneous activity-weighted utilization over usable cores, [0, 1].
  [[nodiscard]] double utilization_now() const;
  /// Cumulative busy core-seconds since t=0, exact to the current instant.
  [[nodiscard]] double busy_core_seconds() const;
  /// Cumulative busy seconds of one core since t=0.
  [[nodiscard]] double core_busy_seconds(CoreId core) const;
  /// Mean utilization over [from, now] given the integral at `from`.
  [[nodiscard]] double utilization_since(SimTime from,
                                         double busy_core_seconds_at_from) const;

  /// Instantaneous GPU utilization (allocated fraction), in [0, 1].
  [[nodiscard]] double gpu_utilization_now() const;
  /// Cumulative busy GPU-seconds since t=0 (allocation-weighted; a claimed
  /// GPU counts as busy, which is what nvidia-smi-style sampling reports
  /// for a kernel-resident task).
  [[nodiscard]] double busy_gpu_seconds() const;

 private:
  void integrate();

  sim::Simulation& simulation_;
  NodeId id_;
  std::string hostname_;
  NodeConfig config_;
  std::vector<std::string> core_owner_;  ///< empty string = free
  std::vector<double> core_activity_;    ///< busy fraction of each core
  std::vector<std::string> gpu_owner_;
  int busy_cores_ = 0;
  int busy_gpus_ = 0;
  double used_ram_mib_ = 0.0;
  int num_processes_ = 0;
  // Exact occupancy integrals.
  SimTime last_change_{};
  double busy_core_seconds_ = 0.0;
  std::vector<double> per_core_busy_seconds_;
  double busy_gpu_seconds_ = 0.0;
};

/// The whole machine: an indexable set of nodes.
class Platform {
 public:
  Platform(sim::Simulation& simulation, PlatformConfig config);

  [[nodiscard]] const PlatformConfig& config() const { return config_; }
  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] ComputeNode& node(NodeId id);
  [[nodiscard]] const ComputeNode& node(NodeId id) const;

  /// Total free cores across a node range.
  [[nodiscard]] int total_free_cores() const;
  [[nodiscard]] int total_free_gpus() const;

 private:
  sim::Simulation& simulation_;
  PlatformConfig config_;
  std::vector<ComputeNode> nodes_;
};

}  // namespace soma::cluster
