#include "cluster/platform.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace soma::cluster {

PlatformConfig summit(int nodes) {
  PlatformConfig config;
  config.name = "summit";
  config.nodes = nodes;
  config.node = NodeConfig{};  // 44 cores (42 usable), 6 GPUs
  return config;
}

ComputeNode::ComputeNode(sim::Simulation& simulation, NodeId id,
                         NodeConfig config)
    : simulation_(simulation),
      id_(id),
      config_(config),
      core_owner_(static_cast<std::size_t>(config.usable_cores())),
      core_activity_(static_cast<std::size_t>(config.usable_cores()), 0.0),
      gpu_owner_(static_cast<std::size_t>(config.gpus)),
      per_core_busy_seconds_(static_cast<std::size_t>(config.usable_cores()),
                             0.0) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "cn%04d", id);
  hostname_ = buffer;
}

void ComputeNode::integrate() {
  const SimTime now = simulation_.now();
  const double dt = (now - last_change_).to_seconds();
  if (dt > 0.0) {
    for (std::size_t c = 0; c < core_owner_.size(); ++c) {
      if (!core_owner_[c].empty()) {
        const double busy = dt * core_activity_[c];
        per_core_busy_seconds_[c] += busy;
        busy_core_seconds_ += busy;
      }
    }
    busy_gpu_seconds_ += dt * static_cast<double>(busy_gpus_);
  }
  last_change_ = now;
}

std::optional<std::vector<CoreId>> ComputeNode::allocate_cores(
    int count, const std::string& owner, double activity) {
  check(count >= 0, "allocate_cores: negative count");
  check(activity >= 0.0 && activity <= 1.0,
        "allocate_cores: activity outside [0, 1]");
  if (count > free_cores()) return std::nullopt;
  integrate();
  std::vector<CoreId> claimed;
  claimed.reserve(static_cast<std::size_t>(count));
  for (std::size_t c = 0; c < core_owner_.size() &&
                          claimed.size() < static_cast<std::size_t>(count);
       ++c) {
    if (core_owner_[c].empty()) {
      core_owner_[c] = owner;
      core_activity_[c] = activity;
      claimed.push_back(static_cast<CoreId>(c));
    }
  }
  busy_cores_ += count;
  return claimed;
}

void ComputeNode::set_core_activity(const std::vector<CoreId>& cores,
                                    const std::string& owner,
                                    double activity) {
  check(activity >= 0.0 && activity <= 1.0,
        "set_core_activity: activity outside [0, 1]");
  integrate();
  for (CoreId c : cores) {
    check(c >= 0 && static_cast<std::size_t>(c) < core_owner_.size(),
          "set_core_activity: core id out of range");
    check(core_owner_[static_cast<std::size_t>(c)] == owner,
          "set_core_activity: core not owned by caller");
    core_activity_[static_cast<std::size_t>(c)] = activity;
  }
}

void ComputeNode::release_cores(const std::vector<CoreId>& cores,
                                const std::string& owner) {
  integrate();
  for (CoreId c : cores) {
    check(c >= 0 && static_cast<std::size_t>(c) < core_owner_.size(),
          "release_cores: core id out of range");
    check(core_owner_[static_cast<std::size_t>(c)] == owner,
          "release_cores: core not owned by releaser");
    core_owner_[static_cast<std::size_t>(c)].clear();
    core_activity_[static_cast<std::size_t>(c)] = 0.0;
  }
  busy_cores_ -= static_cast<int>(cores.size());
  check(busy_cores_ >= 0, "release_cores: busy count underflow");
}

std::optional<std::vector<GpuId>> ComputeNode::allocate_gpus(
    int count, const std::string& owner) {
  check(count >= 0, "allocate_gpus: negative count");
  if (count > free_gpus()) return std::nullopt;
  integrate();
  std::vector<GpuId> claimed;
  claimed.reserve(static_cast<std::size_t>(count));
  for (std::size_t g = 0; g < gpu_owner_.size() &&
                          claimed.size() < static_cast<std::size_t>(count);
       ++g) {
    if (gpu_owner_[g].empty()) {
      gpu_owner_[g] = owner;
      claimed.push_back(static_cast<GpuId>(g));
    }
  }
  busy_gpus_ += count;
  return claimed;
}

void ComputeNode::release_gpus(const std::vector<GpuId>& gpus,
                               const std::string& owner) {
  integrate();
  for (GpuId g : gpus) {
    check(g >= 0 && static_cast<std::size_t>(g) < gpu_owner_.size(),
          "release_gpus: gpu id out of range");
    check(gpu_owner_[static_cast<std::size_t>(g)] == owner,
          "release_gpus: gpu not owned by releaser");
    gpu_owner_[static_cast<std::size_t>(g)].clear();
  }
  busy_gpus_ -= static_cast<int>(gpus.size());
  check(busy_gpus_ >= 0, "release_gpus: busy count underflow");
}

double ComputeNode::utilization_now() const {
  if (usable_cores() == 0) return 0.0;
  double active = 0.0;
  for (std::size_t c = 0; c < core_owner_.size(); ++c) {
    if (!core_owner_[c].empty()) active += core_activity_[c];
  }
  return active / static_cast<double>(usable_cores());
}

double ComputeNode::busy_core_seconds() const {
  const double dt = (simulation_.now() - last_change_).to_seconds();
  double total = busy_core_seconds_;
  for (std::size_t c = 0; c < core_owner_.size(); ++c) {
    if (!core_owner_[c].empty()) total += dt * core_activity_[c];
  }
  return total;
}

double ComputeNode::core_busy_seconds(CoreId core) const {
  check(core >= 0 && static_cast<std::size_t>(core) < core_owner_.size(),
        "core_busy_seconds: core id out of range");
  const auto index = static_cast<std::size_t>(core);
  double busy = per_core_busy_seconds_[index];
  if (!core_owner_[index].empty()) {
    busy += (simulation_.now() - last_change_).to_seconds() *
            core_activity_[index];
  }
  return busy;
}

double ComputeNode::gpu_utilization_now() const {
  if (config_.gpus == 0) return 0.0;
  return static_cast<double>(busy_gpus_) / static_cast<double>(config_.gpus);
}

double ComputeNode::busy_gpu_seconds() const {
  const double dt = (simulation_.now() - last_change_).to_seconds();
  return busy_gpu_seconds_ + dt * static_cast<double>(busy_gpus_);
}

double ComputeNode::utilization_since(SimTime from,
                                      double busy_core_seconds_at_from) const {
  const double window = (simulation_.now() - from).to_seconds();
  if (window <= 0.0 || usable_cores() == 0) return utilization_now();
  const double busy = busy_core_seconds() - busy_core_seconds_at_from;
  return busy / (window * static_cast<double>(usable_cores()));
}

Platform::Platform(sim::Simulation& simulation, PlatformConfig config)
    : simulation_(simulation), config_(config) {
  check(config_.nodes > 0, "platform must have at least one node");
  nodes_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    nodes_.emplace_back(simulation_, static_cast<NodeId>(i), config_.node);
  }
}

ComputeNode& Platform::node(NodeId id) {
  check(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
        "platform: node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

const ComputeNode& Platform::node(NodeId id) const {
  check(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
        "platform: node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

int Platform::total_free_cores() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.free_cores();
  return total;
}

int Platform::total_free_gpus() const {
  int total = 0;
  for (const auto& n : nodes_) total += n.free_gpus();
  return total;
}

}  // namespace soma::cluster
