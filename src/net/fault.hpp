// Deterministic network fault injection.
//
// The simulated fabric is perfect by default; production interconnects and
// the services riding on them are not. A `FaultInjector` attached to a
// `Network` (via `Network::install_faults`) perturbs message delivery with
// four failure modes, all driven by seeded `common::rng` streams so that two
// runs at the same seed produce bit-identical traces:
//
//   * per-link random drops       — each (src, dst) node pair loses a message
//                                   with a configurable probability;
//   * per-link latency spikes     — a message occasionally arrives late by a
//                                   fixed penalty (congestion, retransmit);
//   * endpoint crash/restart      — an address is unreachable during declared
//                                   outage windows (messages arriving while it
//                                   is down are lost, as are messages it sends);
//   * partition windows           — a node island is cut from the rest of the
//                                   fabric for a time window, both directions.
//
// Determinism contract: every (src, dst) link owns an independent rng stream
// split from the base seed, and exactly two uniforms are drawn per cross-node
// send on a stochastic link (spike first, then drop). Adding crash windows or
// partitions never consumes randomness, so schedule changes do not perturb
// the random drop pattern of unrelated links. Intra-node (loopback) messages
// are exempt from link faults and partitions but not from endpoint crashes.
//
// With no injector installed — or an injector whose probabilities are all
// zero and with no schedules — a run is byte-identical to the fault-free
// baseline (the fig10/fig11 calibration contract).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace soma::net {

/// Endpoint address (same alias as net/network.hpp, kept header-local to
/// avoid a circular include: Network owns the injector).
using Address = std::string;

/// Stochastic faults of one directed (src, dst) node link.
struct LinkFaults {
  /// Probability a message on this link is silently lost.
  double drop_probability = 0.0;
  /// Probability a delivered message is delayed by `spike_latency`.
  double spike_probability = 0.0;
  Duration spike_latency = Duration::microseconds(50);

  [[nodiscard]] bool stochastic() const {
    return drop_probability > 0.0 || spike_probability > 0.0;
  }
};

struct FaultConfig {
  /// Base seed for the per-link rng streams (experiments: `--fault-seed`).
  std::uint64_t seed = 1;
  /// Faults applied to every cross-node link without an override.
  LinkFaults default_link{};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config = {});

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Override the fault profile of one directed node link.
  void set_link_faults(NodeId src, NodeId dst, LinkFaults faults);

  /// Declare an outage window [from, until) during which `address` is
  /// unreachable: messages arriving in the window are dropped, and messages
  /// the endpoint sends while down are dropped too. Windows may be stacked.
  void crash_endpoint(const Address& address, SimTime from, SimTime until);

  /// Cut `island` off from every node outside it during [from, until);
  /// messages crossing the cut in either direction are dropped.
  void partition(std::vector<NodeId> island, SimTime from, SimTime until);

  [[nodiscard]] bool endpoint_down(const Address& address, SimTime at) const;
  [[nodiscard]] bool partitioned(NodeId a, NodeId b, SimTime at) const;

  /// Verdict for one message. Consulted by Network::send after it computed
  /// the fault-free arrival time; `extra_latency` (spikes) applies only when
  /// the message is delivered.
  struct Decision {
    enum class Cause : std::uint8_t { kNone, kRandom, kCrash, kPartition };
    bool drop = false;
    Cause cause = Cause::kNone;
    Duration extra_latency = Duration::zero();
  };
  Decision decide(NodeId src, NodeId dst, const Address& from,
                  const Address& to, SimTime send_time, SimTime arrival);

  struct Stats {
    std::uint64_t random_drops = 0;
    std::uint64_t crash_drops = 0;
    std::uint64_t partition_drops = 0;
    std::uint64_t latency_spikes = 0;

    [[nodiscard]] std::uint64_t total_drops() const {
      return random_drops + crash_drops + partition_drops;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Outage {
    SimTime from;
    SimTime until;  // exclusive
  };
  struct PartitionWindow {
    std::vector<NodeId> island;
    SimTime from;
    SimTime until;  // exclusive
  };

  [[nodiscard]] const LinkFaults& link(NodeId src, NodeId dst) const;
  Rng& stream(NodeId src, NodeId dst);

  FaultConfig config_;
  Rng base_rng_;
  std::map<std::pair<NodeId, NodeId>, LinkFaults> link_overrides_;
  std::map<std::pair<NodeId, NodeId>, Rng> streams_;
  std::map<Address, std::vector<Outage>> crashes_;
  std::vector<PartitionWindow> partitions_;
  Stats stats_;
};

}  // namespace soma::net
