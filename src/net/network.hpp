// Simulated interconnect fabric.
//
// Models the message-transport substrate that Mochi's Mercury RPC library
// rides on (paper §2.2). A message from node A to node B arrives after
//   latency + size / bandwidth
// plus per-link serialization: each endpoint NIC transmits messages one at a
// time, so bursts queue. Intra-node messages pay a (much smaller) loopback
// latency and no bandwidth charge.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace soma::net {

class FaultInjector;
struct FaultConfig;

/// Endpoint address, Mercury-style URI ("sim://node3:7777").
using Address = std::string;

/// Build an address from a node id and port.
Address make_address(NodeId node, int port);
/// Parse the node id back out of an address. Throws ConfigError on a
/// malformed address.
NodeId address_node(const Address& address);

struct NetworkConfig {
  /// One-way wire latency between distinct nodes (EDR InfiniBand-class).
  Duration latency = Duration::microseconds(2);
  /// Loopback latency for same-node messages (shared-memory transport).
  Duration loopback_latency = Duration::nanoseconds(500);
  /// Link bandwidth in bytes/second (Summit: dual EDR ~ 25 GB/s practical).
  double bandwidth_bytes_per_sec = 12.5e9;
};

/// The fabric. Endpoints register a delivery callback keyed by address;
/// `send` schedules delivery through the simulation.
class Network {
 public:
  using Delivery = std::function<void(const Address& from,
                                      std::vector<std::byte> payload)>;

  Network(sim::Simulation& simulation, NetworkConfig config = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulation& simulation() { return simulation_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Attach a deterministic fault injector (see net/fault.hpp). Replaces any
  /// previously installed injector; returns it for schedule setup. With no
  /// injector the fabric is perfect, as before.
  FaultInjector& install_faults(FaultConfig config);
  [[nodiscard]] FaultInjector* faults() { return faults_.get(); }
  [[nodiscard]] const FaultInjector* faults() const { return faults_.get(); }

  /// Register an endpoint. Throws ConfigError if the address is taken.
  void bind(const Address& address, Delivery delivery);
  /// Remove an endpoint. Messages in flight to it are dropped (mirroring a
  /// closed Mercury endpoint) — the drops are counted per destination and
  /// visible through drops_by_endpoint(), no longer silent.
  void unbind(const Address& address);

  [[nodiscard]] bool is_bound(const Address& address) const;

  /// Transmit `payload` from `from` to `to`. Delivery time accounts for
  /// latency, bandwidth, and per-source-NIC serialization. Returns the
  /// simulated delivery time.
  SimTime send(const Address& from, const Address& to,
               std::vector<std::byte> payload);

  // ---- accounting ----
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  /// Drops broken down by destination address — unbound endpoints, injected
  /// faults, everything that bumps messages_dropped(). Ordered for
  /// deterministic iteration in tests and exports.
  [[nodiscard]] const std::map<Address, std::uint64_t>& drops_by_endpoint()
      const {
    return drops_by_endpoint_;
  }

 private:
  sim::Simulation& simulation_;
  NetworkConfig config_;
  std::unordered_map<Address, Delivery> endpoints_;
  // Per-source-node NIC availability: next time the NIC is free to start
  // transmitting. Models serialization of back-to-back sends.
  std::unordered_map<NodeId, SimTime> nic_free_at_;
  std::unique_ptr<FaultInjector> faults_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::map<Address, std::uint64_t> drops_by_endpoint_;
};

}  // namespace soma::net
