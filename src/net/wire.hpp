// Framed binary wire format for the RPC engine.
//
// A frame is a fixed header decoded in place, followed by the request/response
// body packed directly with Node::pack — no envelope tree is built on either
// side:
//
//   offset  size       field
//   0       4          magic "SOM1"
//   4       1          kind (0 = request, 1 = response)
//   5       8          request id (little-endian)
//   13      4          rpc-name length L (little-endian; 0 for responses)
//   17      L          rpc-name bytes
//   17+L    R          reserved (zero) — models the Mercury/Margo protocol
//                      headers; see below
//   17+L+R  rest       body, Node::pack encoding
//
// The reserved region is sized so that a frame occupies exactly as many
// simulated bytes as the legacy envelope-Node encoding did (57 + L + body
// for requests, 45 + body for responses). The figure benches are calibrated
// against those byte counts — network transfer times, service ingest costs
// and bulk thresholds all key off payload size — so the zero-copy rewrite
// keeps the modeled bytes bit-for-bit identical and only removes host-side
// tree construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datamodel/node.hpp"

namespace soma::net::wire {

enum class Kind : std::uint8_t { kRequest = 0, kResponse = 1 };

/// magic + kind + request id + rpc-name length.
inline constexpr std::size_t kFixedHeaderBytes = 4 + 1 + 8 + 4;
/// Reserved bytes appended after the rpc name, per frame kind (keeps the
/// simulated frame size equal to the legacy envelope encoding).
inline constexpr std::size_t kReservedRequestBytes = 40;
inline constexpr std::size_t kReservedResponseBytes = 28;

[[nodiscard]] constexpr std::size_t reserved_bytes(Kind kind) {
  return kind == Kind::kRequest ? kReservedRequestBytes
                                : kReservedResponseBytes;
}

/// Exact frame size for an rpc name of `rpc_len` bytes and a body whose
/// Node::pack encoding occupies `body_size` bytes.
[[nodiscard]] constexpr std::size_t frame_size(Kind kind, std::size_t rpc_len,
                                               std::size_t body_size) {
  return kFixedHeaderBytes + rpc_len + reserved_bytes(kind) + body_size;
}

/// Decoded header. `rpc` views into the frame buffer (no copy); `body` is
/// the trailing Node::pack region, also viewing the frame buffer.
struct FrameHeader {
  Kind kind;
  std::uint64_t request_id;
  /// Retransmission counter, stored in the first reserved byte of request
  /// frames (always 0 for responses). The reserved region was zero-filled
  /// before retries existed, so attempt 0 — every frame of a fault-free run —
  /// keeps frames byte-identical to the pre-retry encoding.
  std::uint8_t attempt;
  std::string_view rpc;
  std::span<const std::byte> body;
};

/// Append the header (including the reserved region) to `out`; the caller
/// packs the body right behind it. `rpc` must be empty for responses.
void append_header(std::vector<std::byte>& out, Kind kind, std::uint64_t id,
                   std::string_view rpc);

/// Stamp the retransmission counter into an already-encoded request frame
/// (the retry path rewrites the counter without re-encoding the body).
/// Throws soma::LookupError if `frame` is not a well-formed request.
void set_request_attempt(std::vector<std::byte>& frame, std::uint8_t attempt);

/// Decode a frame header in place. Throws soma::LookupError on a truncated
/// frame, bad magic, or an unknown kind. The returned views are valid only
/// as long as `frame`'s storage is.
[[nodiscard]] FrameHeader decode_header(std::span<const std::byte> frame);

// ---------------------------------------------------------------------------
// Batch frames
//
// A batch body packs N publish records into one request frame, behind the
// ordinary frame header (rpc "soma.publish_batch"). Sources repeat heavily
// within one client's window — a monitor publishes the same hostname every
// tick — so source strings are stored once in a dictionary and referenced by
// index. Layout (all integers little-endian):
//
//   u32  ns_len, ns bytes               target namespace tag
//   u32  record count
//   u32  dictionary count
//   dictionary entries:  u32 len, bytes
//   records:             u32 source dict index
//                        i64 publish time (nanos)
//                        u32 payload len, Node::pack payload
// ---------------------------------------------------------------------------

/// Incremental batch-body encoder. Records are packed as they are added so
/// the coalescing layer can enforce a byte budget without a second pass;
/// `encode` only copies the already-packed region behind the frame header.
class BatchBodyWriter {
 public:
  explicit BatchBodyWriter(std::string ns);

  /// Pack one record. Returns the record count after the add.
  std::size_t add(const std::string& source, std::int64_t t_nanos,
                  const datamodel::Node& data);

  [[nodiscard]] std::size_t record_count() const { return count_; }
  /// Exact size of the encoded body in bytes.
  [[nodiscard]] std::size_t body_size() const;
  /// Append the body encoding to `out` (behind an already-written header).
  void encode(std::vector<std::byte>& out) const;

 private:
  std::string ns_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, std::uint32_t> dict_index_;
  std::size_t dict_bytes_ = 0;
  std::vector<std::byte> records_;
  std::size_t count_ = 0;
};

/// One decoded record; `source` and `payload` view into the frame buffer.
struct BatchRecordView {
  std::string_view source;
  std::int64_t t_nanos = 0;
  std::span<const std::byte> payload;  ///< Node::pack encoding
};

/// Decoded batch body; views are valid as long as the frame's storage is.
struct BatchView {
  std::string_view ns;
  std::vector<BatchRecordView> records;
};

/// Decode a batch body (the `body` span of a decoded frame header). Throws
/// soma::LookupError on truncation or a dictionary index out of range.
[[nodiscard]] BatchView decode_batch_body(std::span<const std::byte> body);

}  // namespace soma::net::wire
