// Mochi/Margo-style RPC engine on top of the simulated fabric.
//
// An `Engine` is one RPC endpoint — in SOMA terms, one service rank or one
// client stub. Servers `define` named handlers; clients `call` them with a
// datamodel::Node argument and receive a Node response asynchronously.
//
// Service cost model: a server engine executes requests *serially* (one
// Margo progress loop / one process). Each request costs
//   base_cost + per_kib_cost * payload_KiB
// of engine time; requests arriving while the engine is busy queue up. The
// queueing delay is the mechanism by which an under-provisioned SOMA service
// falls behind at high monitoring frequency (paper Fig. 11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datamodel/node.hpp"
#include "net/network.hpp"

namespace soma::net {

/// Cost of ingesting one request at a server engine.
///
/// Payloads above `bulk_threshold` follow Mercury's bulk (RDMA) path: the
/// receiver only registers the region and the NIC moves the bytes, so the
/// per-KiB CPU charge drops to `bulk_per_kib` after a fixed registration
/// cost. This mirrors how Mochi services absorb large TAU profiles without
/// stalling their progress loop.
struct ServiceCost {
  Duration base = Duration::microseconds(25);
  Duration per_kib = Duration::microseconds(3);

  std::size_t bulk_threshold = 64 * 1024;
  Duration bulk_registration = Duration::microseconds(40);
  Duration bulk_per_kib = Duration::nanoseconds(250);

  [[nodiscard]] bool is_bulk(std::size_t payload_bytes) const {
    return payload_bytes >= bulk_threshold;
  }

  [[nodiscard]] Duration cost_for(std::size_t payload_bytes) const {
    const double kib = static_cast<double>(payload_bytes) / 1024.0;
    if (is_bulk(payload_bytes)) {
      return base + bulk_registration + bulk_per_kib * kib;
    }
    return base + per_kib * kib;
  }
};

/// Client-side reliability policy for one call. The default policy (no
/// timeout) reproduces the engine's historical behaviour exactly: the frame
/// is sent once and the caller waits forever.
///
/// With a timeout set, the call is retransmitted with exponential backoff —
/// attempt k waits timeout * backoff_multiplier^k (capped at max_timeout when
/// set) — until a response arrives or max_attempts transmissions have timed
/// out, at which point the error callback fires. Retries reuse the original
/// request id (at-least-once semantics); a late response racing a retry is
/// delivered once and subsequent duplicates are suppressed and counted.
struct RetryPolicy {
  /// Total transmissions (1 = no retries).
  int max_attempts = 1;
  /// Per-attempt timeout; zero disables the reliability layer entirely.
  Duration timeout = Duration::zero();
  double backoff_multiplier = 2.0;
  /// Cap on the backed-off per-attempt timeout; zero = uncapped.
  Duration max_timeout = Duration::zero();

  [[nodiscard]] bool enabled() const { return timeout > Duration::zero(); }
  [[nodiscard]] Duration timeout_for(int attempt) const {
    Duration t = timeout;
    for (int i = 0; i < attempt; ++i) t = t * backoff_multiplier;
    if (max_timeout > Duration::zero() && t > max_timeout) t = max_timeout;
    return t;
  }
};

/// Aggregate statistics for one engine (exposed to the overhead analysis).
struct EngineStats {
  std::uint64_t requests_handled = 0;
  std::uint64_t bulk_transfers = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  // Reliability layer (all zero when every call uses the default policy).
  std::uint64_t timeouts = 0;             ///< per-attempt timer expiries
  std::uint64_t retries = 0;              ///< retransmissions sent
  std::uint64_t calls_failed = 0;         ///< calls that exhausted retries
  std::uint64_t duplicate_responses = 0;  ///< late replies after settlement
  std::uint64_t retried_requests = 0;     ///< server side: attempt > 0 arrivals
  Duration total_queue_delay;
  Duration max_queue_delay;
  Duration total_service_time;
  Duration busy_time() const { return total_service_time; }
};

class Engine {
 public:
  /// A server-side handler: caller address + request payload -> response.
  using Handler = std::function<datamodel::Node(const Address& caller,
                                                const datamodel::Node& args)>;
  /// A client-side completion callback.
  using ResponseCallback = std::function<void(datamodel::Node response)>;
  /// Fired when a call exhausts its retry budget without a response.
  using ErrorCallback = std::function<void(const std::string& error)>;
  /// A server-side handler over the raw frame body (no Node::unpack on the
  /// receive path); the handler owns the decode. Used by batch RPCs whose
  /// bodies are not a single packed Node.
  using RawHandler = std::function<datamodel::Node(
      const Address& caller, std::span<const std::byte> body)>;
  /// Packs a call body straight behind an already-written frame header.
  using BodyEncoder = std::function<void(std::vector<std::byte>& frame)>;

  Engine(Network& network, Address address, ServiceCost cost = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] const Address& address() const { return address_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] Network& network() { return network_; }

  /// Register a named RPC. Throws ConfigError on duplicate names.
  void define(const std::string& rpc, Handler handler);

  /// Register a raw-body RPC: the handler receives the undecoded body span
  /// and decodes it itself. Shares the name space with `define`.
  void define_raw(const std::string& rpc, RawHandler handler);

  /// Invoke `rpc` at `dest` with a caller-encoded body. `body_size` must be
  /// the exact number of bytes `append_body` appends (it sizes the single
  /// frame allocation). Reliability semantics match the Node-body `call`.
  void call_raw(const Address& dest, const std::string& rpc,
                std::size_t body_size, const BodyEncoder& append_body,
                ResponseCallback on_response = nullptr, RetryPolicy policy = {},
                ErrorCallback on_error = nullptr);

  /// Invoke `rpc` at `dest`. `on_response` (optional) fires when the reply
  /// arrives back at this engine. Fire-and-forget calls still receive and
  /// count an acknowledgement, as Margo's forward/respond pair does.
  void call(const Address& dest, const std::string& rpc, datamodel::Node args,
            ResponseCallback on_response = nullptr);

  /// Reliable variant: `policy` arms a per-attempt timeout with bounded
  /// exponential-backoff retransmission; `on_error` fires on exhaustion.
  /// A disabled policy (zero timeout) behaves exactly like the plain call.
  void call(const Address& dest, const std::string& rpc, datamodel::Node args,
            ResponseCallback on_response, RetryPolicy policy,
            ErrorCallback on_error = nullptr);

  /// Time at which this engine finishes its current backlog. Equal to now
  /// when idle; used by tests and the saturation analysis.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }

 private:
  /// Client-side state of one in-flight call.
  struct PendingCall {
    ResponseCallback on_response;
    ErrorCallback on_error;
    Address dest;
    RetryPolicy policy;
    /// Encoded request, kept for retransmission (empty unless the policy is
    /// enabled — plain calls never pay the copy).
    std::vector<std::byte> frame;
    int attempt = 0;
    sim::EventHandle timeout;
  };

  void on_message(const Address& from, std::vector<std::byte> payload);
  void handle_request(const Address& from, std::uint64_t request_id,
                      const std::string& rpc, datamodel::Node args,
                      std::size_t payload_bytes);
  /// Raw-handler variant: keeps the whole frame alive and hands the handler
  /// the body span at dispatch time (decode happens after the queueing
  /// delay, as the Node path's unpack-then-queue does in reverse).
  void handle_request_raw(const Address& from, std::uint64_t request_id,
                          const RawHandler* handler,
                          std::vector<std::byte> payload,
                          std::size_t body_offset);
  /// Shared client-side send path: registers the pending call (and retry
  /// timer) and puts the encoded frame on the wire.
  void send_request(std::uint64_t id, const Address& dest,
                    std::vector<std::byte> frame, ResponseCallback on_response,
                    RetryPolicy policy, ErrorCallback on_error);
  void on_timeout(std::uint64_t request_id);

  Network& network_;
  Address address_;
  ServiceCost cost_;
  std::unordered_map<std::string, Handler> handlers_;
  std::unordered_map<std::string, RawHandler> raw_handlers_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  /// Ids of retried or exhausted calls, for duplicate-response suppression.
  /// Plain single-shot ids never enter, so fire-and-forget acks stay cheap.
  std::unordered_set<std::uint64_t> settled_retries_;
  std::uint64_t next_request_id_ = 1;
  SimTime busy_until_{};
  EngineStats stats_;
};

}  // namespace soma::net
