#include "net/fault.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soma::net {
namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw ConfigError(std::string(what) + " must be in [0, 1]");
  }
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), base_rng_(config_.seed) {
  check_probability(config_.default_link.drop_probability,
                    "default drop_probability");
  check_probability(config_.default_link.spike_probability,
                    "default spike_probability");
}

void FaultInjector::set_link_faults(NodeId src, NodeId dst,
                                    LinkFaults faults) {
  check_probability(faults.drop_probability, "drop_probability");
  check_probability(faults.spike_probability, "spike_probability");
  link_overrides_[{src, dst}] = faults;
}

void FaultInjector::crash_endpoint(const Address& address, SimTime from,
                                   SimTime until) {
  check(until > from, "crash window must end after it starts");
  crashes_[address].push_back(Outage{from, until});
}

void FaultInjector::partition(std::vector<NodeId> island, SimTime from,
                              SimTime until) {
  check(until > from, "partition window must end after it starts");
  check(!island.empty(), "partition island must not be empty");
  std::sort(island.begin(), island.end());
  partitions_.push_back(PartitionWindow{std::move(island), from, until});
}

bool FaultInjector::endpoint_down(const Address& address, SimTime at) const {
  const auto it = crashes_.find(address);
  if (it == crashes_.end()) return false;
  for (const Outage& outage : it->second) {
    if (at >= outage.from && at < outage.until) return true;
  }
  return false;
}

bool FaultInjector::partitioned(NodeId a, NodeId b, SimTime at) const {
  if (a == b) return false;
  for (const PartitionWindow& window : partitions_) {
    if (at < window.from || at >= window.until) continue;
    const bool a_in = std::binary_search(window.island.begin(),
                                         window.island.end(), a);
    const bool b_in = std::binary_search(window.island.begin(),
                                         window.island.end(), b);
    if (a_in != b_in) return true;
  }
  return false;
}

const LinkFaults& FaultInjector::link(NodeId src, NodeId dst) const {
  const auto it = link_overrides_.find({src, dst});
  return it == link_overrides_.end() ? config_.default_link : it->second;
}

Rng& FaultInjector::stream(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  const auto it = streams_.find(key);
  if (it != streams_.end()) return it->second;
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  return streams_.emplace(key, base_rng_.split(salt)).first->second;
}

FaultInjector::Decision FaultInjector::decide(NodeId src, NodeId dst,
                                              const Address& from,
                                              const Address& to,
                                              SimTime send_time,
                                              SimTime arrival) {
  Decision decision;

  // Fixed draw order (spike, then drop) on every stochastic cross-node send
  // keeps each link's stream independent of outcomes and of other links.
  double u_spike = 2.0;
  double u_drop = 2.0;
  const LinkFaults& faults = link(src, dst);
  if (src != dst && faults.stochastic()) {
    Rng& rng = stream(src, dst);
    u_spike = rng.uniform();
    u_drop = rng.uniform();
    if (u_spike < faults.spike_probability) {
      decision.extra_latency = faults.spike_latency;
      ++stats_.latency_spikes;
    }
  }
  const SimTime effective_arrival = arrival + decision.extra_latency;

  if (src != dst && partitioned(src, dst, send_time)) {
    decision.drop = true;
    decision.cause = Decision::Cause::kPartition;
    ++stats_.partition_drops;
  } else if (endpoint_down(from, send_time) ||
             endpoint_down(to, effective_arrival)) {
    decision.drop = true;
    decision.cause = Decision::Cause::kCrash;
    ++stats_.crash_drops;
  } else if (u_drop < faults.drop_probability) {
    decision.drop = true;
    decision.cause = Decision::Cause::kRandom;
    ++stats_.random_drops;
  }
  return decision;
}

}  // namespace soma::net
