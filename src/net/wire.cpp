#include "net/wire.hpp"

#include <cstring>

#include "common/error.hpp"

namespace soma::net::wire {
namespace {

constexpr std::byte kMagic[4] = {std::byte{'S'}, std::byte{'O'},
                                 std::byte{'M'}, std::byte{'1'}};

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void append_header(std::vector<std::byte>& out, Kind kind, std::uint64_t id,
                   std::string_view rpc) {
  const std::size_t header = kFixedHeaderBytes + rpc.size() +
                             reserved_bytes(kind);
  const std::size_t base = out.size();
  out.resize(base + header);  // reserved region zero-filled by resize
  std::byte* p = out.data() + base;
  std::memcpy(p, kMagic, sizeof(kMagic));
  p[4] = static_cast<std::byte>(kind);
  put_u64(p + 5, id);
  put_u32(p + 13, static_cast<std::uint32_t>(rpc.size()));
  if (!rpc.empty()) std::memcpy(p + kFixedHeaderBytes, rpc.data(), rpc.size());
}

void set_request_attempt(std::vector<std::byte>& frame, std::uint8_t attempt) {
  if (frame.size() < kFixedHeaderBytes) {
    throw soma::LookupError("wire: truncated frame header");
  }
  const std::byte* p = frame.data();
  if (static_cast<Kind>(p[4]) != Kind::kRequest) {
    throw soma::LookupError("wire: attempt counter on non-request frame");
  }
  const std::uint32_t rpc_len = get_u32(p + 13);
  const std::size_t offset = kFixedHeaderBytes + rpc_len;
  if (offset >= frame.size()) {
    throw soma::LookupError("wire: truncated frame");
  }
  frame[offset] = std::byte{attempt};
}

FrameHeader decode_header(std::span<const std::byte> frame) {
  if (frame.size() < kFixedHeaderBytes) {
    throw soma::LookupError("wire: truncated frame header");
  }
  const std::byte* p = frame.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    throw soma::LookupError("wire: bad frame magic");
  }
  const auto raw_kind = static_cast<std::uint8_t>(p[4]);
  if (raw_kind > static_cast<std::uint8_t>(Kind::kResponse)) {
    throw soma::LookupError("wire: unknown frame kind");
  }
  const Kind kind{raw_kind};
  const std::uint64_t id = get_u64(p + 5);
  const std::uint32_t rpc_len = get_u32(p + 13);
  const std::size_t body_offset =
      kFixedHeaderBytes + rpc_len + reserved_bytes(kind);
  if (rpc_len > frame.size() - kFixedHeaderBytes ||
      body_offset > frame.size()) {
    throw soma::LookupError("wire: truncated frame");
  }
  const std::uint8_t attempt =
      kind == Kind::kRequest
          ? static_cast<std::uint8_t>(p[kFixedHeaderBytes + rpc_len])
          : std::uint8_t{0};
  return FrameHeader{
      kind, id, attempt,
      std::string_view(reinterpret_cast<const char*>(p + kFixedHeaderBytes),
                       rpc_len),
      frame.subspan(body_offset)};
}

// ---------------------------------------------------------------------------
// Batch bodies
// ---------------------------------------------------------------------------

namespace {

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t base = out.size();
  out.resize(base + 4);
  put_u32(out.data() + base, v);
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t base = out.size();
  out.resize(base + 8);
  put_u64(out.data() + base, v);
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t size) {
  const std::size_t base = out.size();
  out.resize(base + size);
  if (size != 0) std::memcpy(out.data() + base, data, size);
}

/// Bounds-checked cursor over a batch body.
struct Reader {
  std::span<const std::byte> buffer;
  std::size_t offset = 0;

  void need(std::size_t n) const {
    if (offset + n > buffer.size()) {
      throw soma::LookupError("wire: truncated batch body");
    }
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = get_u32(buffer.data() + offset);
    offset += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = get_u64(buffer.data() + offset);
    offset += 8;
    return v;
  }
  std::string_view str(std::size_t n) {
    need(n);
    const auto* p = reinterpret_cast<const char*>(buffer.data() + offset);
    offset += n;
    return std::string_view(p, n);
  }
  std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    const auto view = buffer.subspan(offset, n);
    offset += n;
    return view;
  }
};

}  // namespace

BatchBodyWriter::BatchBodyWriter(std::string ns) : ns_(std::move(ns)) {}

std::size_t BatchBodyWriter::add(const std::string& source,
                                 std::int64_t t_nanos,
                                 const datamodel::Node& data) {
  const auto [it, inserted] =
      dict_index_.emplace(source, static_cast<std::uint32_t>(dict_.size()));
  if (inserted) {
    dict_.push_back(source);
    dict_bytes_ += 4 + source.size();
  }
  append_u32(records_, it->second);
  append_u64(records_, static_cast<std::uint64_t>(t_nanos));
  append_u32(records_, static_cast<std::uint32_t>(data.packed_size()));
  data.pack(records_);
  return ++count_;
}

std::size_t BatchBodyWriter::body_size() const {
  // ns (len + bytes) + record count + dict count + dict + records.
  return 4 + ns_.size() + 4 + 4 + dict_bytes_ + records_.size();
}

void BatchBodyWriter::encode(std::vector<std::byte>& out) const {
  append_u32(out, static_cast<std::uint32_t>(ns_.size()));
  append_bytes(out, ns_.data(), ns_.size());
  append_u32(out, static_cast<std::uint32_t>(count_));
  append_u32(out, static_cast<std::uint32_t>(dict_.size()));
  for (const std::string& source : dict_) {
    append_u32(out, static_cast<std::uint32_t>(source.size()));
    append_bytes(out, source.data(), source.size());
  }
  append_bytes(out, records_.data(), records_.size());
}

BatchView decode_batch_body(std::span<const std::byte> body) {
  Reader reader{body};
  BatchView view;
  view.ns = reader.str(reader.u32());
  const std::uint32_t record_count = reader.u32();
  const std::uint32_t dict_count = reader.u32();
  std::vector<std::string_view> dict;
  dict.reserve(dict_count);
  for (std::uint32_t i = 0; i < dict_count; ++i) {
    dict.push_back(reader.str(reader.u32()));
  }
  view.records.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    BatchRecordView record;
    const std::uint32_t source_index = reader.u32();
    if (source_index >= dict.size()) {
      throw soma::LookupError("wire: batch source index out of range");
    }
    record.source = dict[source_index];
    record.t_nanos = static_cast<std::int64_t>(reader.u64());
    record.payload = reader.bytes(reader.u32());
    view.records.push_back(record);
  }
  return view;
}

}  // namespace soma::net::wire
