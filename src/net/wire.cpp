#include "net/wire.hpp"

#include <cstring>

#include "common/error.hpp"

namespace soma::net::wire {
namespace {

constexpr std::byte kMagic[4] = {std::byte{'S'}, std::byte{'O'},
                                 std::byte{'M'}, std::byte{'1'}};

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void append_header(std::vector<std::byte>& out, Kind kind, std::uint64_t id,
                   std::string_view rpc) {
  const std::size_t header = kFixedHeaderBytes + rpc.size() +
                             reserved_bytes(kind);
  const std::size_t base = out.size();
  out.resize(base + header);  // reserved region zero-filled by resize
  std::byte* p = out.data() + base;
  std::memcpy(p, kMagic, sizeof(kMagic));
  p[4] = static_cast<std::byte>(kind);
  put_u64(p + 5, id);
  put_u32(p + 13, static_cast<std::uint32_t>(rpc.size()));
  if (!rpc.empty()) std::memcpy(p + kFixedHeaderBytes, rpc.data(), rpc.size());
}

void set_request_attempt(std::vector<std::byte>& frame, std::uint8_t attempt) {
  if (frame.size() < kFixedHeaderBytes) {
    throw soma::LookupError("wire: truncated frame header");
  }
  const std::byte* p = frame.data();
  if (static_cast<Kind>(p[4]) != Kind::kRequest) {
    throw soma::LookupError("wire: attempt counter on non-request frame");
  }
  const std::uint32_t rpc_len = get_u32(p + 13);
  const std::size_t offset = kFixedHeaderBytes + rpc_len;
  if (offset >= frame.size()) {
    throw soma::LookupError("wire: truncated frame");
  }
  frame[offset] = std::byte{attempt};
}

FrameHeader decode_header(std::span<const std::byte> frame) {
  if (frame.size() < kFixedHeaderBytes) {
    throw soma::LookupError("wire: truncated frame header");
  }
  const std::byte* p = frame.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    throw soma::LookupError("wire: bad frame magic");
  }
  const auto raw_kind = static_cast<std::uint8_t>(p[4]);
  if (raw_kind > static_cast<std::uint8_t>(Kind::kResponse)) {
    throw soma::LookupError("wire: unknown frame kind");
  }
  const Kind kind{raw_kind};
  const std::uint64_t id = get_u64(p + 5);
  const std::uint32_t rpc_len = get_u32(p + 13);
  const std::size_t body_offset =
      kFixedHeaderBytes + rpc_len + reserved_bytes(kind);
  if (rpc_len > frame.size() - kFixedHeaderBytes ||
      body_offset > frame.size()) {
    throw soma::LookupError("wire: truncated frame");
  }
  const std::uint8_t attempt =
      kind == Kind::kRequest
          ? static_cast<std::uint8_t>(p[kFixedHeaderBytes + rpc_len])
          : std::uint8_t{0};
  return FrameHeader{
      kind, id, attempt,
      std::string_view(reinterpret_cast<const char*>(p + kFixedHeaderBytes),
                       rpc_len),
      frame.subspan(body_offset)};
}

}  // namespace soma::net::wire
