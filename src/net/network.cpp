#include "net/network.hpp"

#include <algorithm>
#include <charconv>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/fault.hpp"

namespace soma::net {

namespace {
constexpr std::string_view kScheme = "sim://node";
}

Address make_address(NodeId node, int port) {
  return std::string(kScheme) + std::to_string(node) + ":" +
         std::to_string(port);
}

NodeId address_node(const Address& address) {
  if (address.rfind(kScheme, 0) != 0) {
    throw ConfigError("malformed address: " + address);
  }
  const std::size_t start = kScheme.size();
  const std::size_t colon = address.find(':', start);
  if (colon == std::string::npos) {
    throw ConfigError("malformed address (no port): " + address);
  }
  NodeId node = -1;
  const auto result = std::from_chars(address.data() + start,
                                      address.data() + colon, node);
  if (result.ec != std::errc{} || node < 0) {
    throw ConfigError("malformed address (bad node id): " + address);
  }
  return node;
}

Network::Network(sim::Simulation& simulation, NetworkConfig config)
    : simulation_(simulation), config_(config) {
  check(config_.bandwidth_bytes_per_sec > 0, "bandwidth must be positive");
}

Network::~Network() = default;

FaultInjector& Network::install_faults(FaultConfig config) {
  faults_ = std::make_unique<FaultInjector>(std::move(config));
  return *faults_;
}

void Network::bind(const Address& address, Delivery delivery) {
  address_node(address);  // validate format
  const auto [it, inserted] = endpoints_.emplace(address, std::move(delivery));
  (void)it;
  if (!inserted) throw ConfigError("address already bound: " + address);
}

void Network::unbind(const Address& address) { endpoints_.erase(address); }

bool Network::is_bound(const Address& address) const {
  return endpoints_.contains(address);
}

SimTime Network::send(const Address& from, const Address& to,
                      std::vector<std::byte> payload) {
  const NodeId src = address_node(from);
  const NodeId dst = address_node(to);
  const auto size = static_cast<double>(payload.size());

  const bool local = src == dst;
  const Duration wire_latency =
      local ? config_.loopback_latency : config_.latency;
  const Duration transfer =
      local ? Duration::zero()
            : Duration::seconds(size / config_.bandwidth_bytes_per_sec);

  // NIC serialization: a send may not start before the previous send from
  // the same node finished putting bits on the wire.
  SimTime start = simulation_.now();
  if (!local) {
    auto& free_at = nic_free_at_[src];
    start = std::max(start, free_at);
    free_at = start + transfer;
  }
  SimTime arrival = start + transfer + wire_latency;

  ++messages_sent_;
  bytes_sent_ += payload.size();

  if (faults_) {
    const FaultInjector::Decision verdict =
        faults_->decide(src, dst, from, to, simulation_.now(), arrival);
    if (verdict.drop) {
      ++messages_dropped_;
      ++drops_by_endpoint_[to];
      SOMA_DEBUG() << "network: fault dropped message " << from << " -> "
                   << to;
      return arrival;
    }
    arrival = arrival + verdict.extra_latency;
  }

  simulation_.schedule_at(
      arrival, [this, from, to, data = std::move(payload)]() mutable {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end()) {
          ++messages_dropped_;
          ++drops_by_endpoint_[to];
          SOMA_DEBUG() << "network: dropped message to unbound " << to;
          return;
        }
        it->second(from, std::move(data));
      });
  return arrival;
}

}  // namespace soma::net
