#include "net/rpc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"

namespace soma::net {
namespace {

// Encode one frame: header + body packed straight behind it. One allocation,
// exactly frame_size bytes; no envelope tree on either side of the wire.
std::vector<std::byte> encode_frame(wire::Kind kind, std::uint64_t request_id,
                                    std::string_view rpc,
                                    const datamodel::Node& body) {
  std::vector<std::byte> frame;
  frame.reserve(wire::frame_size(kind, rpc.size(), body.packed_size()));
  wire::append_header(frame, kind, request_id, rpc);
  body.pack(frame);
  return frame;
}

}  // namespace

Engine::Engine(Network& network, Address address, ServiceCost cost)
    : network_(network), address_(std::move(address)), cost_(cost) {
  network_.bind(address_, [this](const Address& from,
                                 std::vector<std::byte> payload) {
    on_message(from, std::move(payload));
  });
}

Engine::~Engine() { network_.unbind(address_); }

void Engine::define(const std::string& rpc, Handler handler) {
  const auto [it, inserted] = handlers_.emplace(rpc, std::move(handler));
  (void)it;
  if (!inserted) throw ConfigError("rpc already defined: " + rpc);
}

void Engine::call(const Address& dest, const std::string& rpc,
                  datamodel::Node args, ResponseCallback on_response) {
  const std::uint64_t id = next_request_id_++;
  if (on_response) pending_.emplace(id, std::move(on_response));

  std::vector<std::byte> frame =
      encode_frame(wire::Kind::kRequest, id, rpc, args);
  stats_.bytes_out += frame.size();
  ++stats_.requests_sent;
  network_.send(address_, dest, std::move(frame));
}

void Engine::on_message(const Address& from, std::vector<std::byte> payload) {
  const std::size_t payload_bytes = payload.size();
  const wire::FrameHeader header = wire::decode_header(payload);

  if (header.kind == wire::Kind::kRequest) {
    handle_request(from, header.request_id, std::string(header.rpc),
                   datamodel::Node::unpack(header.body), payload_bytes);
  } else {
    ++stats_.responses_received;
    const auto it = pending_.find(header.request_id);
    if (it == pending_.end()) return;  // fire-and-forget ack: body never read
    ResponseCallback callback = std::move(it->second);
    pending_.erase(it);
    callback(datamodel::Node::unpack(header.body));
  }
}

void Engine::handle_request(const Address& from, std::uint64_t request_id,
                            const std::string& rpc, datamodel::Node args,
                            std::size_t payload_bytes) {
  stats_.bytes_in += payload_bytes;
  if (cost_.is_bulk(payload_bytes)) ++stats_.bulk_transfers;

  // Serial service: the request waits until the engine has drained its
  // backlog, then occupies it for the ingest cost.
  sim::Simulation& simulation = network_.simulation();
  const SimTime now = simulation.now();
  const SimTime start = std::max(now, busy_until_);
  const Duration service = cost_.cost_for(payload_bytes);
  busy_until_ = start + service;

  const Duration queue_delay = start - now;
  stats_.total_queue_delay += queue_delay;
  stats_.max_queue_delay = std::max(stats_.max_queue_delay, queue_delay);
  stats_.total_service_time += service;

  simulation.schedule_at(
      busy_until_,
      [this, from, request_id, rpc, args = std::move(args)]() mutable {
        ++stats_.requests_handled;
        datamodel::Node response;
        const auto it = handlers_.find(rpc);
        if (it != handlers_.end()) {
          response = it->second(from, args);
        } else {
          SOMA_WARN() << "rpc engine " << address_ << ": unknown rpc '" << rpc
                      << "'";
          response["error"].set("unknown rpc: " + rpc);
        }
        std::vector<std::byte> frame =
            encode_frame(wire::Kind::kResponse, request_id, {}, response);
        stats_.bytes_out += frame.size();
        network_.send(address_, from, std::move(frame));
      });
}

}  // namespace soma::net
