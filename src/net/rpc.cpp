#include "net/rpc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"

namespace soma::net {
namespace {

// Encode one frame: header + body packed straight behind it. One allocation,
// exactly frame_size bytes; no envelope tree on either side of the wire.
std::vector<std::byte> encode_frame(wire::Kind kind, std::uint64_t request_id,
                                    std::string_view rpc,
                                    const datamodel::Node& body) {
  std::vector<std::byte> frame;
  frame.reserve(wire::frame_size(kind, rpc.size(), body.packed_size()));
  wire::append_header(frame, kind, request_id, rpc);
  body.pack(frame);
  return frame;
}

}  // namespace

Engine::Engine(Network& network, Address address, ServiceCost cost)
    : network_(network), address_(std::move(address)), cost_(cost) {
  network_.bind(address_, [this](const Address& from,
                                 std::vector<std::byte> payload) {
    on_message(from, std::move(payload));
  });
}

Engine::~Engine() {
  for (auto& [id, call] : pending_) call.timeout.cancel();
  network_.unbind(address_);
}

void Engine::define(const std::string& rpc, Handler handler) {
  if (raw_handlers_.contains(rpc)) {
    throw ConfigError("rpc already defined: " + rpc);
  }
  const auto [it, inserted] = handlers_.emplace(rpc, std::move(handler));
  (void)it;
  if (!inserted) throw ConfigError("rpc already defined: " + rpc);
}

void Engine::define_raw(const std::string& rpc, RawHandler handler) {
  if (handlers_.contains(rpc)) {
    throw ConfigError("rpc already defined: " + rpc);
  }
  const auto [it, inserted] = raw_handlers_.emplace(rpc, std::move(handler));
  (void)it;
  if (!inserted) throw ConfigError("rpc already defined: " + rpc);
}

void Engine::call(const Address& dest, const std::string& rpc,
                  datamodel::Node args, ResponseCallback on_response) {
  call(dest, rpc, std::move(args), std::move(on_response), RetryPolicy{});
}

void Engine::call(const Address& dest, const std::string& rpc,
                  datamodel::Node args, ResponseCallback on_response,
                  RetryPolicy policy, ErrorCallback on_error) {
  check(policy.max_attempts >= 1, "retry policy needs at least one attempt");
  const std::uint64_t id = next_request_id_++;
  send_request(id, dest, encode_frame(wire::Kind::kRequest, id, rpc, args),
               std::move(on_response), policy, std::move(on_error));
}

void Engine::call_raw(const Address& dest, const std::string& rpc,
                      std::size_t body_size, const BodyEncoder& append_body,
                      ResponseCallback on_response, RetryPolicy policy,
                      ErrorCallback on_error) {
  check(policy.max_attempts >= 1, "retry policy needs at least one attempt");
  const std::uint64_t id = next_request_id_++;

  std::vector<std::byte> frame;
  frame.reserve(wire::frame_size(wire::Kind::kRequest, rpc.size(), body_size));
  wire::append_header(frame, wire::Kind::kRequest, id, rpc);
  append_body(frame);

  send_request(id, dest, std::move(frame), std::move(on_response), policy,
               std::move(on_error));
}

void Engine::send_request(std::uint64_t id, const Address& dest,
                          std::vector<std::byte> frame,
                          ResponseCallback on_response, RetryPolicy policy,
                          ErrorCallback on_error) {
  if (on_response || on_error || policy.enabled()) {
    PendingCall pending;
    pending.on_response = std::move(on_response);
    pending.on_error = std::move(on_error);
    pending.dest = dest;
    pending.policy = policy;
    if (policy.enabled()) {
      pending.frame = frame;  // retransmission copy
      pending.timeout = network_.simulation().schedule(
          policy.timeout_for(0), [this, id] { on_timeout(id); });
    }
    pending_.emplace(id, std::move(pending));
  }

  stats_.bytes_out += frame.size();
  ++stats_.requests_sent;
  network_.send(address_, dest, std::move(frame));
}

void Engine::on_timeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  ++stats_.timeouts;

  if (call.attempt + 1 >= call.policy.max_attempts) {
    // Retry budget exhausted: settle the call and surface the failure.
    ++stats_.calls_failed;
    settled_retries_.insert(request_id);
    ErrorCallback on_error = std::move(call.on_error);
    const int attempts = call.attempt + 1;
    const Address dest = call.dest;
    pending_.erase(it);
    SOMA_DEBUG() << "rpc engine " << address_ << ": call to " << dest
                 << " failed after " << attempts << " attempt(s)";
    if (on_error) {
      on_error("rpc to " + dest + " timed out after " +
               std::to_string(attempts) + " attempt(s)");
    }
    return;
  }

  ++call.attempt;
  ++stats_.retries;
  std::vector<std::byte> frame = call.frame;
  wire::set_request_attempt(frame, static_cast<std::uint8_t>(call.attempt));
  call.timeout = network_.simulation().schedule(
      call.policy.timeout_for(call.attempt),
      [this, request_id] { on_timeout(request_id); });
  stats_.bytes_out += frame.size();
  ++stats_.requests_sent;
  network_.send(address_, call.dest, std::move(frame));
}

void Engine::on_message(const Address& from, std::vector<std::byte> payload) {
  const std::size_t payload_bytes = payload.size();
  const wire::FrameHeader header = wire::decode_header(payload);

  if (header.kind == wire::Kind::kRequest) {
    if (header.attempt > 0) ++stats_.retried_requests;
    if (!raw_handlers_.empty()) {
      const auto raw = raw_handlers_.find(std::string(header.rpc));
      if (raw != raw_handlers_.end()) {
        const auto body_offset =
            static_cast<std::size_t>(header.body.data() - payload.data());
        handle_request_raw(from, header.request_id, &raw->second,
                           std::move(payload), body_offset);
        return;
      }
    }
    handle_request(from, header.request_id, std::string(header.rpc),
                   datamodel::Node::unpack(header.body), payload_bytes);
  } else {
    ++stats_.responses_received;
    const auto it = pending_.find(header.request_id);
    if (it == pending_.end()) {
      // Fire-and-forget ack (body never read) — or a duplicate reply to a
      // call that already settled via an earlier response or exhaustion.
      if (settled_retries_.contains(header.request_id)) {
        ++stats_.duplicate_responses;
      }
      return;
    }
    PendingCall call = std::move(it->second);
    pending_.erase(it);
    call.timeout.cancel();
    // Only retried calls can see duplicates; remember them for suppression.
    if (call.attempt > 0) settled_retries_.insert(header.request_id);
    if (call.on_response) call.on_response(datamodel::Node::unpack(header.body));
  }
}

void Engine::handle_request(const Address& from, std::uint64_t request_id,
                            const std::string& rpc, datamodel::Node args,
                            std::size_t payload_bytes) {
  stats_.bytes_in += payload_bytes;
  if (cost_.is_bulk(payload_bytes)) ++stats_.bulk_transfers;

  // Serial service: the request waits until the engine has drained its
  // backlog, then occupies it for the ingest cost.
  sim::Simulation& simulation = network_.simulation();
  const SimTime now = simulation.now();
  const SimTime start = std::max(now, busy_until_);
  const Duration service = cost_.cost_for(payload_bytes);
  busy_until_ = start + service;

  const Duration queue_delay = start - now;
  stats_.total_queue_delay += queue_delay;
  stats_.max_queue_delay = std::max(stats_.max_queue_delay, queue_delay);
  stats_.total_service_time += service;

  simulation.schedule_at(
      busy_until_,
      [this, from, request_id, rpc, args = std::move(args)]() mutable {
        ++stats_.requests_handled;
        datamodel::Node response;
        const auto it = handlers_.find(rpc);
        if (it != handlers_.end()) {
          response = it->second(from, args);
        } else {
          SOMA_WARN() << "rpc engine " << address_ << ": unknown rpc '" << rpc
                      << "'";
          response["error"].set("unknown rpc: " + rpc);
        }
        std::vector<std::byte> frame =
            encode_frame(wire::Kind::kResponse, request_id, {}, response);
        stats_.bytes_out += frame.size();
        network_.send(address_, from, std::move(frame));
      });
}

void Engine::handle_request_raw(const Address& from, std::uint64_t request_id,
                                const RawHandler* handler,
                                std::vector<std::byte> payload,
                                std::size_t body_offset) {
  const std::size_t payload_bytes = payload.size();
  stats_.bytes_in += payload_bytes;
  if (cost_.is_bulk(payload_bytes)) ++stats_.bulk_transfers;

  sim::Simulation& simulation = network_.simulation();
  const SimTime now = simulation.now();
  const SimTime start = std::max(now, busy_until_);
  const Duration service = cost_.cost_for(payload_bytes);
  busy_until_ = start + service;

  const Duration queue_delay = start - now;
  stats_.total_queue_delay += queue_delay;
  stats_.max_queue_delay = std::max(stats_.max_queue_delay, queue_delay);
  stats_.total_service_time += service;

  simulation.schedule_at(
      busy_until_, [this, from, request_id, handler,
                    payload = std::move(payload), body_offset]() mutable {
        ++stats_.requests_handled;
        const std::span<const std::byte> body =
            std::span<const std::byte>(payload).subspan(body_offset);
        datamodel::Node response = (*handler)(from, body);
        std::vector<std::byte> frame =
            encode_frame(wire::Kind::kResponse, request_id, {}, response);
        stats_.bytes_out += frame.size();
        network_.send(address_, from, std::move(frame));
      });
}

}  // namespace soma::net
