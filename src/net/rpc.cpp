#include "net/rpc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::net {
namespace {

// Message envelope carried over the fabric. kind: 0 = request, 1 = response.
datamodel::Node make_envelope(std::int64_t kind, std::uint64_t request_id,
                              const std::string& rpc, datamodel::Node body) {
  datamodel::Node envelope;
  envelope["kind"].set(kind);
  envelope["id"].set(static_cast<std::int64_t>(request_id));
  if (!rpc.empty()) envelope["rpc"].set(rpc);
  envelope["body"] = std::move(body);
  return envelope;
}

}  // namespace

Engine::Engine(Network& network, Address address, ServiceCost cost)
    : network_(network), address_(std::move(address)), cost_(cost) {
  network_.bind(address_, [this](const Address& from,
                                 std::vector<std::byte> payload) {
    on_message(from, std::move(payload));
  });
}

Engine::~Engine() { network_.unbind(address_); }

void Engine::define(const std::string& rpc, Handler handler) {
  const auto [it, inserted] = handlers_.emplace(rpc, std::move(handler));
  (void)it;
  if (!inserted) throw ConfigError("rpc already defined: " + rpc);
}

void Engine::call(const Address& dest, const std::string& rpc,
                  datamodel::Node args, ResponseCallback on_response) {
  const std::uint64_t id = next_request_id_++;
  if (on_response) pending_.emplace(id, std::move(on_response));

  datamodel::Node envelope = make_envelope(0, id, rpc, std::move(args));
  std::vector<std::byte> wire = envelope.pack();
  stats_.bytes_out += wire.size();
  ++stats_.requests_sent;
  network_.send(address_, dest, std::move(wire));
}

void Engine::on_message(const Address& from, std::vector<std::byte> payload) {
  const std::size_t payload_bytes = payload.size();
  datamodel::Node envelope = datamodel::Node::unpack(payload);
  const std::int64_t kind = envelope.fetch_existing("kind").as_int64();
  const auto request_id =
      static_cast<std::uint64_t>(envelope.fetch_existing("id").as_int64());

  if (kind == 0) {
    const std::string rpc = envelope.fetch_existing("rpc").as_string();
    datamodel::Node body;
    if (auto* b = envelope.find_child("body")) body = std::move(*b);
    handle_request(from, request_id, rpc, std::move(body), payload_bytes);
  } else {
    ++stats_.responses_received;
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // fire-and-forget ack
    ResponseCallback callback = std::move(it->second);
    pending_.erase(it);
    datamodel::Node body;
    if (auto* b = envelope.find_child("body")) body = std::move(*b);
    callback(std::move(body));
  }
}

void Engine::handle_request(const Address& from, std::uint64_t request_id,
                            const std::string& rpc, datamodel::Node args,
                            std::size_t payload_bytes) {
  stats_.bytes_in += payload_bytes;
  if (cost_.is_bulk(payload_bytes)) ++stats_.bulk_transfers;

  // Serial service: the request waits until the engine has drained its
  // backlog, then occupies it for the ingest cost.
  sim::Simulation& simulation = network_.simulation();
  const SimTime now = simulation.now();
  const SimTime start = std::max(now, busy_until_);
  const Duration service = cost_.cost_for(payload_bytes);
  busy_until_ = start + service;

  const Duration queue_delay = start - now;
  stats_.total_queue_delay += queue_delay;
  stats_.max_queue_delay = std::max(stats_.max_queue_delay, queue_delay);
  stats_.total_service_time += service;

  simulation.schedule_at(
      busy_until_,
      [this, from, request_id, rpc, args = std::move(args)]() mutable {
        ++stats_.requests_handled;
        datamodel::Node response;
        const auto it = handlers_.find(rpc);
        if (it != handlers_.end()) {
          response = it->second(from, args);
        } else {
          SOMA_WARN() << "rpc engine " << address_ << ": unknown rpc '" << rpc
                      << "'";
          response["error"].set("unknown rpc: " + rpc);
        }
        datamodel::Node envelope =
            make_envelope(1, request_id, "", std::move(response));
        std::vector<std::byte> wire = envelope.pack();
        stats_.bytes_out += wire.size();
        network_.send(address_, from, std::move(wire));
      });
}

}  // namespace soma::net
