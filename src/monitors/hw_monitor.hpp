// The hardware monitoring client (paper §2.3.2, "Hardware Namespace").
//
// One per compute node, running on a reserved core for the workflow's whole
// duration. Each tick it reads a /proc snapshot, computes the CPU
// utilization over the last window online (jiffy diff), and publishes the
// snapshot plus the derived utilization to the SOMA hardware instance.
//
// The scrape+publish work costs CPU on the node; although the client has a
// reserved core, frequent scraping perturbs application ranks through shared
// caches/OS jitter. This is exported as a noise fraction the session feeds
// into the executor (the overhead mechanism of paper Fig. 11).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/platform.hpp"
#include "cluster/proc.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"

namespace soma::monitors {

struct HwMonitorConfig {
  Duration period = Duration::seconds(60.0);
  /// Cost of one /proc scrape + Node build + publish on the host (reads
  /// ~44 per-cpu stat rows, meminfo, the process table).
  Duration scrape_cost = Duration::milliseconds(100);
  /// Fraction of scrape work that perturbs co-located application ranks
  /// (cache pollution, interrupts); the rest stays on the reserved core.
  double interference_fraction = 0.50;
  cluster::ProcConfig proc{};
};

class HwMonitor {
 public:
  HwMonitor(sim::Simulation& simulation, cluster::ComputeNode& node,
            core::SomaClient& client, Rng rng, HwMonitorConfig config = {});

  void start(Duration initial_delay = Duration::zero());
  void stop();

  /// Multiplicative slowdown this monitor imposes on application ranks
  /// sharing its node: interference_fraction * scrape_cost / period.
  [[nodiscard]] double noise_fraction() const;

  /// The locally computed utilization series (time, utilization in [0,1]) —
  /// what the client also publishes; kept for test cross-checks.
  struct Sample {
    SimTime time;
    double utilization;      ///< CPU, window mean
    double gpu_utilization;  ///< GPU, window mean
  };
  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Ticks taken while the client was in degraded mode (collector down,
  /// publishes buffered or redirected) — the graceful-degradation signal.
  [[nodiscard]] std::uint64_t degraded_ticks() const {
    return degraded_ticks_;
  }
  [[nodiscard]] const HwMonitorConfig& config() const { return config_; }
  [[nodiscard]] const cluster::ComputeNode& node() const { return node_; }

 private:
  void tick();

  sim::Simulation& simulation_;
  cluster::ComputeNode& node_;
  core::SomaClient& client_;
  Rng rng_;
  HwMonitorConfig config_;
  std::unique_ptr<sim::PeriodicTask> periodic_;
  std::uint64_t ticks_ = 0;
  std::uint64_t degraded_ticks_ = 0;
  std::vector<std::int64_t> last_cpu_stat_;
  SimTime last_tick_;
  double last_gpu_busy_seconds_ = 0.0;
  std::vector<Sample> samples_;
};

}  // namespace soma::monitors
