// The RP workflow-monitoring client (paper §2.3.2, "Workflow Namespace").
//
// One per workflow, co-located with the RP agent. At a configurable
// frequency it tails RP's profile stream, computes summary statistics (task
// counts by state, throughput, state dwell times) plus the raw new events,
// and publishes the result to the SOMA workflow instance.
//
// Cost model: summarizing n tracked tasks costs base + per_task * n of agent
// -node CPU per tick. The resulting CPU share is exported so the session can
// inflate agent scheduler decision cost — the mechanism behind the
// frequent-monitoring overhead at scale (paper Fig. 11).
#pragma once

#include <cstdint>
#include <memory>

#include "rp/session.hpp"
#include "sim/simulation.hpp"
#include "soma/client.hpp"

namespace soma::monitors {

struct RpMonitorConfig {
  Duration period = Duration::seconds(60.0);
  /// Fixed cost per tick (read profiles, build the Node).
  Duration summarize_base_cost = Duration::milliseconds(20);
  /// Additional cost per tracked task per tick.
  Duration summarize_per_task_cost = Duration::milliseconds(2);
  /// The monitor is a single-threaded daemon: its CPU share saturates well
  /// below one core once ticks start overrunning the period.
  double cpu_share_cap = 0.30;
};

/// Snapshot of workflow state the monitor publishes each tick.
struct WorkflowSummary {
  std::int64_t tasks_total = 0;
  std::int64_t tasks_pending = 0;    ///< NEW/TMGR/AGENT scheduling
  std::int64_t tasks_executing = 0;
  std::int64_t tasks_done = 0;
  std::int64_t tasks_failed = 0;
  double throughput_per_min = 0.0;   ///< completions in the last window
  double mean_exec_seconds = 0.0;    ///< mean rank duration of done tasks

  // Mean time spent in each state by tasks that left it (paper §2.3.2:
  // "calculates the time spent in each state, and sends it via RPC").
  double mean_tmgr_wait_seconds = 0.0;    ///< TMGR_SCHEDULING dwell
  double mean_agent_wait_seconds = 0.0;   ///< AGENT_SCHEDULING dwell
  double mean_launch_overhead_seconds = 0.0;  ///< launch_start -> rank_start
};

class RpMonitor {
 public:
  RpMonitor(rp::Session& session, core::SomaClient& client,
            RpMonitorConfig config = {});

  void start(Duration initial_delay = Duration::zero());
  void stop();

  /// Fraction of one agent-node core this monitor consumes (cost / period);
  /// the session reads this to derive scheduler contention.
  [[nodiscard]] double cpu_share() const;

  [[nodiscard]] const WorkflowSummary& last_summary() const {
    return last_summary_;
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// Ticks taken while the client was in degraded mode (collector down,
  /// publishes buffered or redirected) — the graceful-degradation signal.
  [[nodiscard]] std::uint64_t degraded_ticks() const {
    return degraded_ticks_;
  }
  [[nodiscard]] const RpMonitorConfig& config() const { return config_; }

  /// Compute the summary without publishing (used by tests/advisor).
  [[nodiscard]] WorkflowSummary compute_summary() const;

 private:
  void tick();

  rp::Session& session_;
  core::SomaClient& client_;
  RpMonitorConfig config_;
  std::unique_ptr<sim::PeriodicTask> periodic_;
  std::size_t profile_cursor_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t degraded_ticks_ = 0;
  std::int64_t done_at_last_tick_ = 0;
  WorkflowSummary last_summary_;
};

}  // namespace soma::monitors
