#include "monitors/hw_monitor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soma::monitors {

HwMonitor::HwMonitor(sim::Simulation& simulation, cluster::ComputeNode& node,
                     core::SomaClient& client, Rng rng, HwMonitorConfig config)
    : simulation_(simulation),
      node_(node),
      client_(client),
      rng_(rng),
      config_(config) {
  check(client_.target_namespace() == core::Namespace::kHardware,
        "hardware monitor requires a hardware-namespace client");
  periodic_ = std::make_unique<sim::PeriodicTask>(
      simulation_, config_.period, [this] { tick(); });
}

void HwMonitor::start(Duration initial_delay) {
  periodic_->start(initial_delay);
}

void HwMonitor::stop() {
  periodic_->stop();
  // Ship any snapshots still coalescing in the client's batcher; a no-op
  // when batching is off.
  client_.flush_batches();
}

double HwMonitor::noise_fraction() const {
  return config_.interference_fraction * config_.scrape_cost.to_seconds() /
         config_.period.to_seconds();
}

void HwMonitor::tick() {
  ++ticks_;
  if (client_.degraded()) ++degraded_ticks_;
  const SimTime now = simulation_.now();
  datamodel::Node snapshot =
      cluster::make_proc_snapshot(node_, now, rng_, config_.proc);

  // Online utilization: diff this tick's cumulative jiffies against the
  // previous tick's (the first tick diffs against boot, i.e. t=0).
  const datamodel::Node& stat_cpu =
      snapshot.fetch_existing(node_.hostname())
          .child_at(0)
          .fetch_existing("stat/cpu");
  const std::vector<std::int64_t>& cpu_now = stat_cpu.as_int64_array();
  double utilization = 0.0;
  if (last_cpu_stat_.empty()) {
    utilization = cluster::utilization_from_stat(
        std::vector<std::int64_t>(cpu_now.size(), 0), cpu_now);
  } else {
    utilization = cluster::utilization_from_stat(last_cpu_stat_, cpu_now);
  }
  last_cpu_stat_ = cpu_now;

  // GPU utilization over the same window (nvidia-smi-style sampling of the
  // node's allocation-resident kernels).
  const double gpu_busy = node_.busy_gpu_seconds();
  const double window = (now - last_tick_).to_seconds();
  double gpu_utilization = 0.0;
  if (window > 0.0 && node_.config().gpus > 0) {
    gpu_utilization = std::clamp((gpu_busy - last_gpu_busy_seconds_) /
                                     (window * node_.config().gpus),
                                 0.0, 1.0);
  }
  last_gpu_busy_seconds_ = gpu_busy;
  last_tick_ = now;
  samples_.push_back(Sample{now, utilization, gpu_utilization});

  // Attach the derived values so the service stores them alongside the raw
  // counters (paper: "calculates the current CPU utilization online"; §4.2
  // extends the idea to "overall CPU (or GPU) utilization").
  snapshot[node_.hostname()]["cpu_utilization"].set(utilization);
  snapshot[node_.hostname()]["gpu_utilization"].set(gpu_utilization);

  client_.publish(node_.hostname(), std::move(snapshot));
}

}  // namespace soma::monitors
