#include "monitors/rp_monitor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace soma::monitors {

RpMonitor::RpMonitor(rp::Session& session, core::SomaClient& client,
                     RpMonitorConfig config)
    : session_(session), client_(client), config_(config) {
  check(client_.target_namespace() == core::Namespace::kWorkflow,
        "RP monitor requires a workflow-namespace client");
  periodic_ = std::make_unique<sim::PeriodicTask>(
      session_.simulation(), config_.period, [this] { tick(); });
}

void RpMonitor::start(Duration initial_delay) {
  periodic_->start(initial_delay);
}

void RpMonitor::stop() {
  // Final flush: publish the end-of-workflow state (completions that landed
  // since the last periodic tick would otherwise never be reported).
  if (periodic_->running()) tick();
  periodic_->stop();
  // ... and ship it, if the client is coalescing publishes into batches.
  client_.flush_batches();
}

double RpMonitor::cpu_share() const {
  const double tracked = static_cast<double>(session_.tasks().size());
  const double cost_seconds =
      config_.summarize_base_cost.to_seconds() +
      config_.summarize_per_task_cost.to_seconds() * tracked;
  return std::min(config_.cpu_share_cap,
                  cost_seconds / config_.period.to_seconds());
}

WorkflowSummary RpMonitor::compute_summary() const {
  WorkflowSummary summary;
  double exec_sum = 0.0;
  std::int64_t exec_count = 0;
  double tmgr_sum = 0.0, agent_sum = 0.0, launch_sum = 0.0;
  std::int64_t tmgr_count = 0, agent_count = 0, launch_count = 0;
  for (const auto& task : session_.tasks()) {
    // State dwell times for every task that progressed past the state.
    const auto tmgr = task->state_entered(rp::TaskState::kTmgrScheduling);
    const auto agent = task->state_entered(rp::TaskState::kAgentScheduling);
    const auto executing = task->state_entered(rp::TaskState::kExecuting);
    if (tmgr && agent) {
      tmgr_sum += (*agent - *tmgr).to_seconds();
      ++tmgr_count;
    }
    if (agent && executing) {
      agent_sum += (*executing - *agent).to_seconds();
      ++agent_count;
    }
    const auto launch_start = task->event_time(rp::events::kLaunchStart);
    const auto rank_start = task->event_time(rp::events::kRankStart);
    if (launch_start && rank_start) {
      launch_sum += (*rank_start - *launch_start).to_seconds();
      ++launch_count;
    }
    ++summary.tasks_total;
    switch (task->state()) {
      case rp::TaskState::kNew:
      case rp::TaskState::kTmgrScheduling:
      case rp::TaskState::kAgentScheduling:
        ++summary.tasks_pending;
        break;
      case rp::TaskState::kExecuting:
        ++summary.tasks_executing;
        break;
      case rp::TaskState::kDone: {
        ++summary.tasks_done;
        if (const auto d = task->rank_duration()) {
          exec_sum += d->to_seconds();
          ++exec_count;
        }
        break;
      }
      case rp::TaskState::kFailed:
      case rp::TaskState::kCanceled:
        ++summary.tasks_failed;
        break;
    }
  }
  if (exec_count > 0) {
    summary.mean_exec_seconds = exec_sum / static_cast<double>(exec_count);
  }
  if (tmgr_count > 0) {
    summary.mean_tmgr_wait_seconds =
        tmgr_sum / static_cast<double>(tmgr_count);
  }
  if (agent_count > 0) {
    summary.mean_agent_wait_seconds =
        agent_sum / static_cast<double>(agent_count);
  }
  if (launch_count > 0) {
    summary.mean_launch_overhead_seconds =
        launch_sum / static_cast<double>(launch_count);
  }
  return summary;
}

void RpMonitor::tick() {
  ++ticks_;
  if (client_.degraded()) ++degraded_ticks_;
  WorkflowSummary summary = compute_summary();
  summary.throughput_per_min =
      static_cast<double>(summary.tasks_done - done_at_last_tick_) /
      (config_.period.to_seconds() / 60.0);
  done_at_last_tick_ = summary.tasks_done;
  last_summary_ = summary;

  // Build the workflow-namespace record: a summary block plus the raw new
  // profile events since the last tick (Listing 1 layout:
  // <uid>/<timestamp> = <event>).
  datamodel::Node data;
  datamodel::Node& s = data["summary"];
  s["tasks_total"].set(summary.tasks_total);
  s["tasks_pending"].set(summary.tasks_pending);
  s["tasks_executing"].set(summary.tasks_executing);
  s["tasks_done"].set(summary.tasks_done);
  s["tasks_failed"].set(summary.tasks_failed);
  s["throughput_per_min"].set(summary.throughput_per_min);
  s["mean_exec_seconds"].set(summary.mean_exec_seconds);
  s["mean_tmgr_wait_seconds"].set(summary.mean_tmgr_wait_seconds);
  s["mean_agent_wait_seconds"].set(summary.mean_agent_wait_seconds);
  s["mean_launch_overhead_seconds"].set(
      summary.mean_launch_overhead_seconds);

  datamodel::Node& events = data["events"];
  for (const auto& record :
       session_.profiles().read_since(profile_cursor_)) {
    events[record.uid][std::to_string(record.time.nanos())].set(record.event);
  }

  client_.publish("rp_monitor", std::move(data));
}

}  // namespace soma::monitors
