// Batch system model (the PSI/J + LSF layer of paper Fig. 2, step 1).
//
// A pilot job is submitted to the platform's batch queue; after a queue wait
// it is granted a contiguous set of whole nodes for a walltime limit. Only
// behaviour observable to the workflow is modelled: the wait, the node
// grant, and forced termination at the walltime limit.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace soma::batch {

using JobId = std::uint64_t;

struct JobRequest {
  int nodes = 1;
  Duration walltime = Duration::minutes(120);
  std::string name = "pilot";
};

struct Allocation {
  JobId job = 0;
  std::vector<NodeId> nodes;
  SimTime granted_at;
  SimTime deadline;
};

struct BatchConfig {
  /// Median queue wait. Kept short by default: the experiments measure
  /// workflow-internal behaviour, not facility queue pressure.
  Duration median_queue_wait = Duration::seconds(5.0);
  /// Shape of the lognormal queue-wait noise.
  double queue_wait_sigma = 0.3;
};

/// FIFO whole-node batch allocator over a fixed pool [0, total_nodes).
class BatchSystem {
 public:
  using GrantCallback = std::function<void(const Allocation&)>;
  using WalltimeCallback = std::function<void(JobId)>;

  BatchSystem(sim::Simulation& simulation, int total_nodes, Rng rng,
              BatchConfig config = {});

  /// Submit a job; `on_grant` fires when nodes are allocated, and
  /// `on_walltime` (optional) fires if the job hits its walltime limit
  /// before being released. Throws ConfigError if the request can never be
  /// satisfied.
  JobId submit(const JobRequest& request, GrantCallback on_grant,
               WalltimeCallback on_walltime = nullptr);

  /// Release a running job's nodes (normal completion). Idempotent.
  void release(JobId job);

  [[nodiscard]] int free_nodes() const;
  [[nodiscard]] std::size_t queued_jobs() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_jobs() const { return running_.size(); }

 private:
  struct PendingJob {
    JobId id;
    JobRequest request;
    GrantCallback on_grant;
    WalltimeCallback on_walltime;
    SimTime eligible_at;  ///< submit time + queue wait
  };
  struct RunningJob {
    Allocation allocation;
    WalltimeCallback on_walltime;
    sim::EventHandle walltime_event;
  };

  void try_start_jobs();

  sim::Simulation& simulation_;
  int total_nodes_;
  Rng rng_;
  BatchConfig config_;
  JobId next_job_id_ = 1;
  std::vector<PendingJob> queue_;
  std::vector<RunningJob> running_;
  std::vector<bool> node_busy_;
};

}  // namespace soma::batch
