#include "batch/batch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace soma::batch {

BatchSystem::BatchSystem(sim::Simulation& simulation, int total_nodes, Rng rng,
                         BatchConfig config)
    : simulation_(simulation),
      total_nodes_(total_nodes),
      rng_(rng),
      config_(config),
      node_busy_(static_cast<std::size_t>(total_nodes), false) {
  check(total_nodes > 0, "batch system needs at least one node");
}

JobId BatchSystem::submit(const JobRequest& request, GrantCallback on_grant,
                          WalltimeCallback on_walltime) {
  if (request.nodes <= 0 || request.nodes > total_nodes_) {
    throw ConfigError("batch job requests " + std::to_string(request.nodes) +
                      " nodes; machine has " + std::to_string(total_nodes_));
  }
  const JobId id = next_job_id_++;
  const Duration wait = Duration::seconds(rng_.lognormal(
      config_.median_queue_wait.to_seconds(), config_.queue_wait_sigma));
  queue_.push_back(PendingJob{id, request, std::move(on_grant),
                              std::move(on_walltime),
                              simulation_.now() + wait});
  simulation_.schedule(wait, [this] { try_start_jobs(); });
  return id;
}

int BatchSystem::free_nodes() const {
  return static_cast<int>(
      std::count(node_busy_.begin(), node_busy_.end(), false));
}

void BatchSystem::try_start_jobs() {
  const SimTime now = simulation_.now();
  // Strict FIFO over eligible jobs: the head blocks later jobs, as a
  // conservative backfill-free scheduler would.
  while (!queue_.empty()) {
    auto head = std::min_element(queue_.begin(), queue_.end(),
                                 [](const PendingJob& a, const PendingJob& b) {
                                   return a.id < b.id;
                                 });
    if (head->eligible_at > now) return;
    if (head->request.nodes > free_nodes()) return;

    Allocation allocation;
    allocation.job = head->id;
    allocation.granted_at = now;
    allocation.deadline = now + head->request.walltime;
    for (std::size_t n = 0;
         n < node_busy_.size() &&
         allocation.nodes.size() < static_cast<std::size_t>(head->request.nodes);
         ++n) {
      if (!node_busy_[n]) {
        node_busy_[n] = true;
        allocation.nodes.push_back(static_cast<NodeId>(n));
      }
    }

    RunningJob running;
    running.allocation = allocation;
    running.on_walltime = std::move(head->on_walltime);
    const JobId job_id = head->id;
    running.walltime_event =
        simulation_.schedule(head->request.walltime, [this, job_id] {
          const auto it = std::find_if(
              running_.begin(), running_.end(), [&](const RunningJob& j) {
                return j.allocation.job == job_id;
              });
          if (it == running_.end()) return;
          SOMA_WARN() << "batch job " << job_id << " hit walltime limit";
          WalltimeCallback callback = std::move(it->on_walltime);
          release(job_id);
          if (callback) callback(job_id);
        });

    GrantCallback on_grant = std::move(head->on_grant);
    queue_.erase(head);
    running_.push_back(std::move(running));
    on_grant(allocation);
  }
}

void BatchSystem::release(JobId job) {
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [&](const RunningJob& j) { return j.allocation.job == job; });
  if (it == running_.end()) return;
  for (NodeId n : it->allocation.nodes) {
    node_busy_[static_cast<std::size_t>(n)] = false;
  }
  it->walltime_event.cancel();
  running_.erase(it);
  // Freed nodes may unblock queued jobs.
  try_start_jobs();
}

}  // namespace soma::batch
