// Hierarchical, typed data model in the spirit of LLNL Conduit.
//
// SOMA represents every monitoring record as a `Node` tree: the top level is
// a namespace tag ("RP", "PROC", "TAU", "APP"), below that are source tags
// (task uid, hostname), and leaves carry typed values. See paper §2.3.2,
// Listings 1 and 2. The model supports:
//   * object nodes with ordered, named children,
//   * leaf nodes of type int64 / float64 / string / int64[] / float64[],
//   * path access ("RP/task.000000/1698435412.606"),
//   * deep merge (`update`), equality, JSON rendering, and a compact binary
//     wire format used by the RPC transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

namespace soma::datamodel {

class Node {
 public:
  enum class Type {
    kEmpty,
    kObject,
    kInt64,
    kFloat64,
    kString,
    kInt64Array,
    kFloat64Array,
  };

  Node() = default;
  Node(const Node& other);
  Node(Node&& other) noexcept;
  Node& operator=(const Node& other);
  Node& operator=(Node&& other) noexcept;
  ~Node() = default;

  // ---- type ----
  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_empty() const { return type() == Type::kEmpty; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }
  [[nodiscard]] bool is_leaf() const {
    return !is_object() && !is_empty();
  }

  // ---- leaf value setters (clear any children) ----
  void set(std::int64_t value);
  void set(double value);
  void set(std::string value);
  void set(std::vector<std::int64_t> values);
  void set(std::vector<double> values);
  void set(const char* value) { set(std::string{value}); }
  // Guard against the int64 overload being picked for bool by accident.
  void set(bool) = delete;

  // ---- leaf value getters (throw LookupError on type mismatch) ----
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] double as_float64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<std::int64_t>& as_int64_array() const;
  [[nodiscard]] const std::vector<double>& as_float64_array() const;

  /// Numeric coercion: int64 or float64 leaf -> double.
  [[nodiscard]] double to_float64() const;

  // ---- hierarchy ----
  /// Child by name, created (empty) if absent. Converts this node to an
  /// object, discarding any leaf value.
  Node& child(std::string_view name);
  /// Child by name or nullptr. Never creates.
  [[nodiscard]] const Node* find_child(std::string_view name) const;
  [[nodiscard]] Node* find_child(std::string_view name);

  /// Path access with '/'-separated components; creates missing levels.
  Node& fetch(std::string_view path);
  /// Path access that throws LookupError when any component is missing.
  [[nodiscard]] const Node& fetch_existing(std::string_view path) const;

  [[nodiscard]] bool has_child(std::string_view name) const;
  [[nodiscard]] bool has_path(std::string_view path) const;

  /// Remove a direct child; returns true if it existed.
  bool remove_child(std::string_view name);

  [[nodiscard]] std::size_t number_of_children() const {
    return children_.size();
  }
  [[nodiscard]] const std::vector<std::string>& child_names() const {
    return child_names_;
  }
  /// Child access by insertion index (with bounds check).
  [[nodiscard]] const Node& child_at(std::size_t index) const;
  [[nodiscard]] Node& child_at(std::size_t index);

  /// Sugar: node["a"]["b"] — equivalent to child(name).
  Node& operator[](std::string_view name) { return child(name); }

  /// Reset to empty (no value, no children).
  void reset();

  // ---- merge ----
  /// Deep merge: leaves in `other` overwrite, objects merge recursively.
  /// Matches Conduit's Node::update semantics.
  void update(const Node& other);

  // ---- equality (deep, exact) ----
  bool operator==(const Node& other) const;

  // ---- introspection ----
  /// Total number of leaf values in the subtree.
  [[nodiscard]] std::size_t leaf_count() const;
  /// Serialized size in bytes (matches pack() exactly). Memoized: the first
  /// call walks the subtree, repeat calls are O(1) until the node is mutated.
  /// Any non-const child access (child(), operator[], fetch(), mutable
  /// find_child()/child_at()) conservatively invalidates this node's cache,
  /// since the caller may mutate through the returned reference. Unsupported:
  /// holding a mutable child pointer across a packed_size() call on an
  /// ancestor and mutating through it afterwards.
  [[nodiscard]] std::size_t packed_size() const;

  // ---- serialization ----
  /// Render as JSON. `indent` > 0 pretty-prints.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Parse JSON produced by to_json (null / integer / double / string /
  /// homogeneous numeric array / object). Throws LookupError on malformed
  /// or unrepresentable input.
  static Node parse_json(std::string_view json);

  /// Compact binary wire format (tag/length/value). Appends to `out`.
  void pack(std::vector<std::byte>& out) const;
  [[nodiscard]] std::vector<std::byte> pack() const;
  /// Parse a buffer produced by pack(). Throws LookupError on malformed
  /// input (truncation, unknown tags).
  static Node unpack(std::span<const std::byte> buffer);

 private:
  using Value = std::variant<std::monostate, std::int64_t, double, std::string,
                             std::vector<std::int64_t>, std::vector<double>>;

  static constexpr std::size_t kSizeNotCached = ~std::size_t{0};

  void clear_value() { value_ = std::monostate{}; }
  void clear_children();
  void invalidate_size() { packed_size_cache_ = kSizeNotCached; }
  /// Write this subtree's pack() encoding at `p` (which must have
  /// packed_size() bytes of room); returns one past the last byte written.
  std::byte* pack_into(std::byte* p) const;
  static Node unpack_one(std::span<const std::byte> buffer,
                         std::size_t& offset);

  Value value_;
  // Insertion-ordered children with an index for O(1) name lookup.
  std::vector<std::unique_ptr<Node>> children_;
  std::vector<std::string> child_names_;
  std::unordered_map<std::string, std::size_t> child_index_;
  mutable std::size_t packed_size_cache_ = kSizeNotCached;
};

/// Human-readable name of a node type ("int64", "object", ...).
std::string_view type_name(Node::Type type);

}  // namespace soma::datamodel
