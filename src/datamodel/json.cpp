// JSON parsing for the data model: the inverse of Node::to_json for the
// subset of JSON the data model can represent (null, integers, doubles,
// strings, homogeneous numeric arrays, objects). Used by the store
// import/export path.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "datamodel/node.hpp"

namespace soma::datamodel {
namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Node parse() {
    Node node = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw soma::LookupError("Node::parse_json: " + why + " at offset " +
                            std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    skip_whitespace();
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          default: fail("unsupported escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  /// Parse a number; sets exactly one of the outputs.
  void parse_number(bool& is_integer, std::int64_t& as_int,
                    double& as_double) {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool has_fraction = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        has_fraction = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    if (!has_fraction) {
      is_integer = true;
      as_int = std::strtoll(token.c_str(), nullptr, 10);
    } else {
      is_integer = false;
      as_double = std::strtod(token.c_str(), nullptr);
    }
  }

  Node parse_array() {
    expect('[');
    // The data model only represents homogeneous numeric arrays; promote to
    // float64[] as soon as any element is fractional.
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
    bool all_integers = true;
    if (peek() == ']') {
      ++pos_;
      Node node;
      node.set(std::vector<std::int64_t>{});
      return node;
    }
    while (true) {
      bool is_integer = false;
      std::int64_t as_int = 0;
      double as_double = 0.0;
      parse_number(is_integer, as_int, as_double);
      if (is_integer) {
        ints.push_back(as_int);
        doubles.push_back(static_cast<double>(as_int));
      } else {
        all_integers = false;
        doubles.push_back(as_double);
      }
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        break;
      }
      fail("expected ',' or ']' in array");
    }
    Node node;
    if (all_integers) {
      node.set(std::move(ints));
    } else {
      node.set(std::move(doubles));
    }
    return node;
  }

  Node parse_object() {
    expect('{');
    Node node;
    if (peek() == '}') {
      ++pos_;
      // An empty JSON object round-trips as an empty node.
      return node;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      node.child(key) = parse_value();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        break;
      }
      fail("expected ',' or '}' in object");
    }
    return node;
  }

  Node parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Node node;
      node.set(parse_string());
      return node;
    }
    if (consume_literal("null")) return Node{};
    bool is_integer = false;
    std::int64_t as_int = 0;
    double as_double = 0.0;
    parse_number(is_integer, as_int, as_double);
    Node node;
    if (is_integer) {
      node.set(as_int);
    } else {
      node.set(as_double);
    }
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Node Node::parse_json(std::string_view json) {
  return JsonParser(json).parse();
}

}  // namespace soma::datamodel
