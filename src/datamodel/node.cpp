#include "datamodel/node.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace soma::datamodel {
namespace {

[[noreturn]] void type_error(std::string_view wanted, Node::Type actual) {
  throw soma::LookupError("node type mismatch: wanted " + std::string(wanted) +
                          ", node is " + std::string(type_name(actual)));
}

std::pair<std::string_view, std::string_view> split_first(
    std::string_view path) {
  const std::size_t pos = path.find('/');
  if (pos == std::string_view::npos) return {path, {}};
  return {path.substr(0, pos), path.substr(pos + 1)};
}

void json_escape(const std::string& in, std::ostringstream& out) {
  out << '"';
  for (char c : in) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default: out << c;
    }
  }
  out << '"';
}

void json_number(double v, std::ostringstream& out) {
  if (std::isfinite(v)) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    out << buffer;
  } else {
    out << "null";
  }
}

// ---- binary wire helpers ----

enum class Tag : std::uint8_t {
  kEmpty = 0,
  kObject = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
  kInt64Array = 5,
  kFloat64Array = 6,
};

// Raw little-endian stores into a pre-sized buffer (pack() resizes once to
// the exact packed_size, then writes through a bare pointer — no per-byte
// capacity checks).

std::byte* store_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
  return p + 4;
}

std::byte* store_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
  return p + 8;
}

std::byte* store_f64(std::byte* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return store_u64(p, bits);
}

std::byte* store_string(std::byte* p, const std::string& s) {
  p = store_u32(p, static_cast<std::uint32_t>(s.size()));
  std::memcpy(p, s.data(), s.size());
  return p + s.size();
}

class Reader {
 public:
  Reader(std::span<const std::byte> buffer, std::size_t& offset)
      : buffer_(buffer), offset_(offset) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buffer_[offset_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buffer_[offset_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buffer_[offset_++]) << (8 * i);
    }
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string string() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(n, '\0');
    std::memcpy(s.data(), buffer_.data() + offset_, n);
    offset_ += n;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (offset_ + n > buffer_.size()) {
      throw soma::LookupError("Node::unpack: truncated buffer");
    }
  }
  std::span<const std::byte> buffer_;
  std::size_t& offset_;
};

}  // namespace

std::string_view type_name(Node::Type type) {
  switch (type) {
    case Node::Type::kEmpty: return "empty";
    case Node::Type::kObject: return "object";
    case Node::Type::kInt64: return "int64";
    case Node::Type::kFloat64: return "float64";
    case Node::Type::kString: return "string";
    case Node::Type::kInt64Array: return "int64_array";
    case Node::Type::kFloat64Array: return "float64_array";
  }
  return "?";
}

Node::Node(const Node& other) { *this = other; }

Node& Node::operator=(const Node& other) {
  if (this == &other) return *this;
  value_ = other.value_;
  clear_children();
  children_.reserve(other.children_.size());
  for (std::size_t i = 0; i < other.children_.size(); ++i) {
    children_.push_back(std::make_unique<Node>(*other.children_[i]));
    child_names_.push_back(other.child_names_[i]);
    child_index_.emplace(other.child_names_[i], i);
  }
  packed_size_cache_ = other.packed_size_cache_;
  return *this;
}

Node::Node(Node&& other) noexcept
    : value_(std::move(other.value_)),
      children_(std::move(other.children_)),
      child_names_(std::move(other.child_names_)),
      child_index_(std::move(other.child_index_)),
      packed_size_cache_(other.packed_size_cache_) {
  // The moved-from node is valid-but-unspecified; its stale cache must not
  // survive into any later reuse.
  other.packed_size_cache_ = kSizeNotCached;
}

Node& Node::operator=(Node&& other) noexcept {
  if (this == &other) return *this;
  value_ = std::move(other.value_);
  children_ = std::move(other.children_);
  child_names_ = std::move(other.child_names_);
  child_index_ = std::move(other.child_index_);
  packed_size_cache_ = other.packed_size_cache_;
  other.packed_size_cache_ = kSizeNotCached;
  return *this;
}

Node::Type Node::type() const {
  if (!children_.empty()) return Type::kObject;
  switch (value_.index()) {
    case 0: return Type::kEmpty;
    case 1: return Type::kInt64;
    case 2: return Type::kFloat64;
    case 3: return Type::kString;
    case 4: return Type::kInt64Array;
    case 5: return Type::kFloat64Array;
  }
  return Type::kEmpty;
}

void Node::clear_children() {
  children_.clear();
  child_names_.clear();
  child_index_.clear();
  invalidate_size();
}

void Node::reset() {
  clear_value();
  clear_children();
}

void Node::set(std::int64_t value) {
  clear_children();
  value_ = value;
}
void Node::set(double value) {
  clear_children();
  value_ = value;
}
void Node::set(std::string value) {
  clear_children();
  value_ = std::move(value);
}
void Node::set(std::vector<std::int64_t> values) {
  clear_children();
  value_ = std::move(values);
}
void Node::set(std::vector<double> values) {
  clear_children();
  value_ = std::move(values);
}

std::int64_t Node::as_int64() const {
  if (const auto* v = std::get_if<std::int64_t>(&value_)) return *v;
  type_error("int64", type());
}
double Node::as_float64() const {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  type_error("float64", type());
}
const std::string& Node::as_string() const {
  if (const auto* v = std::get_if<std::string>(&value_)) return *v;
  type_error("string", type());
}
const std::vector<std::int64_t>& Node::as_int64_array() const {
  if (const auto* v = std::get_if<std::vector<std::int64_t>>(&value_)) {
    return *v;
  }
  type_error("int64_array", type());
}
const std::vector<double>& Node::as_float64_array() const {
  if (const auto* v = std::get_if<std::vector<double>>(&value_)) return *v;
  type_error("float64_array", type());
}

double Node::to_float64() const {
  if (const auto* v = std::get_if<double>(&value_)) return *v;
  if (const auto* v = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*v);
  }
  type_error("numeric", type());
}

Node& Node::child(std::string_view name) {
  if (Node* existing = find_child(name)) return *existing;
  // Becoming an object discards any leaf value this node held.
  clear_value();
  children_.push_back(std::make_unique<Node>());
  child_names_.emplace_back(name);
  child_index_.emplace(std::string(name), children_.size() - 1);
  invalidate_size();
  return *children_.back();
}

const Node* Node::find_child(std::string_view name) const {
  const auto it = child_index_.find(std::string(name));
  if (it == child_index_.end()) return nullptr;
  return children_[it->second].get();
}

Node* Node::find_child(std::string_view name) {
  const auto it = child_index_.find(std::string(name));
  if (it == child_index_.end()) return nullptr;
  // The caller may mutate through the returned reference.
  invalidate_size();
  return children_[it->second].get();
}

Node& Node::fetch(std::string_view path) {
  if (path.empty()) return *this;
  const auto [head, rest] = split_first(path);
  Node& c = child(head);
  return rest.empty() ? c : c.fetch(rest);
}

const Node& Node::fetch_existing(std::string_view path) const {
  if (path.empty()) return *this;
  const auto [head, rest] = split_first(path);
  const Node* c = find_child(head);
  if (c == nullptr) {
    throw soma::LookupError("Node::fetch_existing: no child '" +
                            std::string(head) + "'");
  }
  return rest.empty() ? *c : c->fetch_existing(rest);
}

bool Node::has_child(std::string_view name) const {
  return find_child(name) != nullptr;
}

bool Node::has_path(std::string_view path) const {
  if (path.empty()) return true;
  const auto [head, rest] = split_first(path);
  const Node* c = find_child(head);
  if (c == nullptr) return false;
  return rest.empty() ? true : c->has_path(rest);
}

bool Node::remove_child(std::string_view name) {
  const auto it = child_index_.find(std::string(name));
  if (it == child_index_.end()) return false;
  invalidate_size();
  const std::size_t index = it->second;
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(index));
  child_names_.erase(child_names_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  child_index_.erase(it);
  // Reindex the children that shifted down.
  for (auto& [key, value] : child_index_) {
    if (value > index) --value;
  }
  return true;
}

const Node& Node::child_at(std::size_t index) const {
  check(index < children_.size(), "child_at: index out of range");
  return *children_[index];
}

Node& Node::child_at(std::size_t index) {
  check(index < children_.size(), "child_at: index out of range");
  invalidate_size();
  return *children_[index];
}

void Node::update(const Node& other) {
  if (other.is_object()) {
    for (std::size_t i = 0; i < other.children_.size(); ++i) {
      child(other.child_names_[i]).update(*other.children_[i]);
    }
  } else if (!other.is_empty()) {
    clear_children();
    value_ = other.value_;
  }
}

bool Node::operator==(const Node& other) const {
  if (value_ != other.value_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (child_names_[i] != other.child_names_[i]) return false;
    if (!(*children_[i] == *other.children_[i])) return false;
  }
  return true;
}

std::size_t Node::leaf_count() const {
  if (is_leaf()) return 1;
  std::size_t total = 0;
  for (const auto& c : children_) total += c->leaf_count();
  return total;
}

std::size_t Node::packed_size() const {
  if (packed_size_cache_ != kSizeNotCached) return packed_size_cache_;
  std::size_t total = 1;  // tag
  switch (type()) {
    case Type::kEmpty:
      break;
    case Type::kObject:
      total += 4;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        total += 4 + child_names_[i].size() + children_[i]->packed_size();
      }
      break;
    case Type::kInt64:
    case Type::kFloat64:
      total += 8;
      break;
    case Type::kString:
      total += 4 + as_string().size();
      break;
    case Type::kInt64Array:
      total += 4 + 8 * as_int64_array().size();
      break;
    case Type::kFloat64Array:
      total += 4 + 8 * as_float64_array().size();
      break;
  }
  packed_size_cache_ = total;
  return total;
}

namespace {
void to_json_impl(const Node& node, std::ostringstream& out, int indent,
                  int depth) {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth + 1),
                                      ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (node.type()) {
    case Node::Type::kEmpty:
      out << "null";
      break;
    case Node::Type::kInt64:
      out << node.as_int64();
      break;
    case Node::Type::kFloat64:
      json_number(node.as_float64(), out);
      break;
    case Node::Type::kString:
      json_escape(node.as_string(), out);
      break;
    case Node::Type::kInt64Array: {
      out << '[';
      const auto& values = node.as_int64_array();
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out << (indent > 0 ? ", " : ",");
        out << values[i];
      }
      out << ']';
      break;
    }
    case Node::Type::kFloat64Array: {
      out << '[';
      const auto& values = node.as_float64_array();
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out << (indent > 0 ? ", " : ",");
        json_number(values[i], out);
      }
      out << ']';
      break;
    }
    case Node::Type::kObject: {
      out << '{';
      for (std::size_t i = 0; i < node.number_of_children(); ++i) {
        if (i > 0) out << ',';
        out << pad;
        json_escape(node.child_names()[i], out);
        out << (indent > 0 ? ": " : ":");
        to_json_impl(node.child_at(i), out, indent, depth + 1);
      }
      out << close_pad << '}';
      break;
    }
  }
}
}  // namespace

std::string Node::to_json(int indent) const {
  std::ostringstream out;
  to_json_impl(*this, out, indent, 0);
  return out.str();
}

std::byte* Node::pack_into(std::byte* p) const {
  switch (type()) {
    case Type::kEmpty:
      *p++ = static_cast<std::byte>(Tag::kEmpty);
      break;
    case Type::kObject:
      *p++ = static_cast<std::byte>(Tag::kObject);
      p = store_u32(p, static_cast<std::uint32_t>(children_.size()));
      for (std::size_t i = 0; i < children_.size(); ++i) {
        p = store_string(p, child_names_[i]);
        p = children_[i]->pack_into(p);
      }
      break;
    case Type::kInt64:
      *p++ = static_cast<std::byte>(Tag::kInt64);
      p = store_u64(p, static_cast<std::uint64_t>(as_int64()));
      break;
    case Type::kFloat64:
      *p++ = static_cast<std::byte>(Tag::kFloat64);
      p = store_f64(p, as_float64());
      break;
    case Type::kString:
      *p++ = static_cast<std::byte>(Tag::kString);
      p = store_string(p, as_string());
      break;
    case Type::kInt64Array: {
      *p++ = static_cast<std::byte>(Tag::kInt64Array);
      const auto& values = as_int64_array();
      p = store_u32(p, static_cast<std::uint32_t>(values.size()));
      for (std::int64_t v : values) {
        p = store_u64(p, static_cast<std::uint64_t>(v));
      }
      break;
    }
    case Type::kFloat64Array: {
      *p++ = static_cast<std::byte>(Tag::kFloat64Array);
      const auto& values = as_float64_array();
      p = store_u32(p, static_cast<std::uint32_t>(values.size()));
      for (double v : values) p = store_f64(p, v);
      break;
    }
  }
  return p;
}

void Node::pack(std::vector<std::byte>& out) const {
  const std::size_t size = packed_size();
  const std::size_t base = out.size();
  out.resize(base + size);
  std::byte* end = pack_into(out.data() + base);
  check(end == out.data() + base + size,
        "Node::pack: packed_size out of sync with encoder");
}

std::vector<std::byte> Node::pack() const {
  std::vector<std::byte> out;
  pack(out);
  return out;
}

Node Node::unpack_one(std::span<const std::byte> buffer,
                      std::size_t& offset) {
  Reader reader(buffer, offset);
  Node node;
  switch (static_cast<Tag>(reader.u8())) {
    case Tag::kEmpty:
      break;
    case Tag::kObject: {
      const std::uint32_t n = reader.u32();
      // Child count is known up front; a bounded reserve avoids rehash and
      // regrowth churn while staying safe against hostile counts.
      const std::uint32_t plausible =
          std::min<std::uint32_t>(n, static_cast<std::uint32_t>(std::min<
                                         std::size_t>(buffer.size(), 1u << 20)));
      node.children_.reserve(plausible);
      node.child_names_.reserve(plausible);
      node.child_index_.reserve(plausible);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = reader.string();
        node.child(name) = unpack_one(buffer, offset);
      }
      break;
    }
    case Tag::kInt64:
      node.set(static_cast<std::int64_t>(reader.u64()));
      break;
    case Tag::kFloat64:
      node.set(reader.f64());
      break;
    case Tag::kString:
      node.set(reader.string());
      break;
    case Tag::kInt64Array: {
      const std::uint32_t n = reader.u32();
      std::vector<std::int64_t> values;
      values.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        values.push_back(static_cast<std::int64_t>(reader.u64()));
      }
      node.set(std::move(values));
      break;
    }
    case Tag::kFloat64Array: {
      const std::uint32_t n = reader.u32();
      std::vector<double> values;
      values.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) values.push_back(reader.f64());
      node.set(std::move(values));
      break;
    }
    default:
      throw soma::LookupError("Node::unpack: unknown tag");
  }
  return node;
}

Node Node::unpack(std::span<const std::byte> buffer) {
  std::size_t offset = 0;
  Node node = unpack_one(buffer, offset);
  if (offset != buffer.size()) {
    throw soma::LookupError("Node::unpack: trailing bytes");
  }
  return node;
}

}  // namespace soma::datamodel
