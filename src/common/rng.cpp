#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace soma {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::split(std::uint64_t salt) const {
  // Mix the current state with the salt through SplitMix64 so sibling
  // streams are decorrelated regardless of how many values were drawn.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3];
  std::uint64_t sm = mix ^ (salt * 0xda942042e4dd58b5ULL);
  return Rng{splitmix64(sm)};
}

Rng Rng::split(std::string_view salt) const { return split(fnv1a(salt)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  // Box-Muller; always consumes exactly two uniforms.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace soma
