#include "common/types.hpp"

#include <cstdio>

namespace soma {

std::string format_seconds(double seconds, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, seconds);
  return buffer;
}

std::string format_time(SimTime t, int precision) {
  return format_seconds(t.to_seconds(), precision);
}

}  // namespace soma
