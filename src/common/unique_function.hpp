// Move-only callable wrapper with small-buffer optimization.
//
// `std::function` requires copyable targets and, for capture lists beyond a
// couple of pointers, heap-allocates. The DES hot loop stores one callback
// per event, so both costs are paid millions of times per run. UniqueFunction
// accepts move-only targets (so captures can own Nodes, strings, handles
// without shared_ptr indirection) and stores captures up to `kInlineSize`
// bytes inline in the event record itself; only oversized captures fall back
// to one heap allocation.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace soma::common {

template <class Signature>
class UniqueFunction;  // undefined; only the R(Args...) partial below exists

template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Captures up to this many bytes live inline in the UniqueFunction object
  /// (sized for the common "this + a couple of values" lambda).
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Target = std::decay_t<F>;
    if constexpr (sizeof(Target) <= kInlineSize &&
                  alignof(Target) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Target>) {
      ::new (static_cast<void*>(storage_)) Target(std::forward<F>(f));
      invoke_ = [](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Target*>(self)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* self, void* dst) {
        Target* target = std::launder(reinterpret_cast<Target*>(self));
        if (dst != nullptr) {
          ::new (dst) Target(std::move(*target));
        }
        target->~Target();
      };
    } else {
      // Oversized capture: one owning heap cell, moved by pointer swap.
      auto* cell = new Target(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) Target*(cell);
      invoke_ = [](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Target**>(self)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* self, void* dst) {
        Target** slot = std::launder(reinterpret_cast<Target**>(self));
        if (dst != nullptr) {
          ::new (dst) Target*(*slot);
        } else {
          delete *slot;
        }
      };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { destroy(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    check(invoke_ != nullptr, "UniqueFunction: called while empty");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  using InvokeFn = R (*)(void*, Args&&...);
  /// dst == nullptr: destroy target. dst != nullptr: move-construct the
  /// target into dst, then destroy the source.
  using ManageFn = void (*)(void* self, void* dst);

  void destroy() {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(UniqueFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (other.manage_ != nullptr) other.manage_(other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace soma::common
