#include "common/log.hpp"

#include <cstdio>

namespace soma {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
    };
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  if (enabled(level)) sink_(level, message);
}

}  // namespace soma
