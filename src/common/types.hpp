// Core value types shared by every module: simulated time, durations, ids.
//
// All simulation timestamps are carried as `SimTime`, a strong type over a
// signed 64-bit nanosecond count. Using an integral representation (rather
// than double seconds) keeps event ordering exact and runs reproducible:
// two events scheduled at the same instant compare equal on every platform.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace soma {

/// A span of simulated time, nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
  static constexpr Duration microseconds(std::int64_t us) {
    return Duration{us * 1'000};
  }
  static constexpr Duration milliseconds(std::int64_t ms) {
    return Duration{ms * 1'000'000};
  }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Duration minutes(double m) { return seconds(m * 60.0); }

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const {
    return Duration{nanos_ + other.nanos_};
  }
  constexpr Duration operator-(Duration other) const {
    return Duration{nanos_ - other.nanos_};
  }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(nanos_) * f)};
  }
  constexpr Duration operator/(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(nanos_) / f)};
  }
  constexpr Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    nanos_ -= other.nanos_;
    return *this;
  }

 private:
  std::int64_t nanos_ = 0;
};

/// An instant on the simulated clock, nanosecond resolution since t=0.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime{nanos_ + d.nanos()};
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime{nanos_ - d.nanos()};
  }
  constexpr Duration operator-(SimTime other) const {
    return Duration{nanos_ - other.nanos_};
  }
  constexpr SimTime& operator+=(Duration d) {
    nanos_ += d.nanos();
    return *this;
  }

 private:
  std::int64_t nanos_ = 0;
};

/// Identifier types. Plain integers wrapped for readability at call sites;
/// each subsystem owns allocation of its own id space.
using NodeId = std::int32_t;   ///< compute-node index within a platform
using CoreId = std::int32_t;   ///< core index within a node
using GpuId = std::int32_t;    ///< GPU index within a node
using RankId = std::int32_t;   ///< MPI rank index within a task

/// Format seconds with fixed precision for reports ("12.345").
std::string format_seconds(double seconds, int precision = 3);

/// Format a SimTime as seconds-since-start.
std::string format_time(SimTime t, int precision = 3);

}  // namespace soma
