// Deterministic random-number generation for the simulation.
//
// Every stochastic element (task-duration noise, scheduling jitter, hardware
// metric noise) draws from an `Rng` seeded from the experiment seed. Streams
// can be split so that adding a consumer does not perturb the draws seen by
// existing consumers — essential for comparable baseline/variant runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace soma {

/// xoshiro256** PRNG with SplitMix64 seeding. Fast, high-quality, and fully
/// deterministic across platforms (unlike std::normal_distribution, whose
/// algorithm is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent stream; `salt` distinguishes sibling streams.
  [[nodiscard]] Rng split(std::uint64_t salt) const;
  /// Derive an independent stream keyed by a string (e.g. a task uid).
  [[nodiscard]] Rng split(std::string_view salt) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic; no cached spare so the
  /// draw count per call is fixed at two uniforms).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal such that the *median* of the distribution is `median` and
  /// sigma is the shape parameter of the underlying normal. Used for task
  /// execution-time noise where multiplicative variation is natural.
  double lognormal(double median, double sigma);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace soma
