// Summary statistics over samples. Used by the analysis layer and by every
// bench that reports distributions (means, percentiles, box plots).
#pragma once

#include <cstddef>
#include <vector>

namespace soma {

/// Descriptive statistics of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// Compute a Summary. An empty input yields an all-zero Summary.
Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated percentile, q in [0, 100]. Empty input yields 0.
double percentile(std::vector<double> samples, double q);

/// Coefficient of variation (stddev / mean); 0 when mean is 0.
double coefficient_of_variation(const std::vector<double>& samples);

/// Load-imbalance metric across ranks: max / mean - 1. Zero means perfectly
/// balanced. Empty or zero-mean input yields 0.
double load_imbalance(const std::vector<double>& per_rank_values);

/// Running (online) mean/variance accumulator (Welford). Suitable for the
/// SOMA service, which must digest metrics incrementally.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace soma
