// Error types. The library throws exceptions only for programmer errors and
// unrecoverable configuration mistakes; expected runtime conditions (a task
// that cannot be placed yet, a queue that is empty) are communicated through
// return values (std::optional / status enums).
#pragma once

#include <stdexcept>
#include <string>

namespace soma {

/// Base class for all library exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid configuration supplied by the caller (bad experiment parameters,
/// inconsistent resource requests, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A path or key lookup failed where the caller asserted it must succeed.
class LookupError : public Error {
 public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

/// Internal invariant violated — indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throw InternalError if `condition` is false. Used for invariants that are
/// cheap enough to keep on in release builds.
inline void check(bool condition, const char* message) {
  if (!condition) throw InternalError(message);
}

}  // namespace soma
