#include "common/table.hpp"

#include <algorithm>
#include <sstream>

namespace soma {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    out << "|";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  render_row(headers_, out);
  out << "|";
  for (std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

std::string ascii_bar(double value, double max_value, int width, char fill) {
  if (max_value <= 0.0 || value <= 0.0 || width <= 0) return {};
  const double frac = std::min(1.0, value / max_value);
  const int n = static_cast<int>(frac * width + 0.5);
  return std::string(static_cast<std::size_t>(n), fill);
}

}  // namespace soma
