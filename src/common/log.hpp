// Minimal leveled logger.
//
// Simulation code logs through this instead of writing to std::cout so that
// benches and tests can silence or capture output. The logger is a process
// singleton; levels below the threshold cost one branch.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace soma {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace soma

#define SOMA_LOG(level)                                  \
  if (!::soma::Logger::instance().enabled(level)) {      \
  } else                                                 \
    ::soma::detail::LogLine(level)

#define SOMA_TRACE() SOMA_LOG(::soma::LogLevel::kTrace)
#define SOMA_DEBUG() SOMA_LOG(::soma::LogLevel::kDebug)
#define SOMA_INFO() SOMA_LOG(::soma::LogLevel::kInfo)
#define SOMA_WARN() SOMA_LOG(::soma::LogLevel::kWarn)
#define SOMA_ERROR() SOMA_LOG(::soma::LogLevel::kError)
