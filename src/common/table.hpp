// ASCII table rendering for bench/report output. Every bench binary prints
// its table/figure data through this so the output format is uniform and
// greppable.
#pragma once

#include <string>
#include <vector>

namespace soma {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal ASCII bar of `value` scaled so that `max_value`
/// occupies `width` characters. Used for in-terminal "figures".
std::string ascii_bar(double value, double max_value, int width = 48,
                      char fill = '#');

}  // namespace soma
