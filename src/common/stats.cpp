#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace soma {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  if (q >= 100.0) return samples.back();
  const double pos = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - frac) + samples[lower + 1] * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  double sq = 0.0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile(sorted, 50.0);
  s.p25 = percentile(sorted, 25.0);
  s.p75 = percentile(sorted, 75.0);
  s.p95 = percentile(sorted, 95.0);
  return s;
}

double coefficient_of_variation(const std::vector<double>& samples) {
  const Summary s = summarize(samples);
  if (s.mean == 0.0) return 0.0;
  return s.stddev / s.mean;
}

double load_imbalance(const std::vector<double>& per_rank_values) {
  if (per_rank_values.empty()) return 0.0;
  const double sum = std::accumulate(per_rank_values.begin(),
                                     per_rank_values.end(), 0.0);
  const double mean = sum / static_cast<double>(per_rank_values.size());
  if (mean == 0.0) return 0.0;
  const double max =
      *std::max_element(per_rank_values.begin(), per_rank_values.end());
  return max / mean - 1.0;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace soma
