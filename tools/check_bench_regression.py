#!/usr/bin/env python3
"""Guard the micro-bench baseline: fail CI when key benchmarks regress.

Compares a freshly generated BENCH_micro.json against the checked-in
baseline and exits non-zero when any guarded benchmark's ns/op grew by
more than the allowed fraction (default 20%). Guarded by default: the
event-loop and RPC round-trip benches (the stable spine of the simulator)
plus the two end-to-end publish paths, BM_BatchPublish and
BM_ReplicatedPublish — a regression there means the ingest or replication
pipeline got slower, not just the host noisier. Remaining entries are
recorded for trend-watching but too machine-sensitive to gate on.

Usage:
  python3 tools/check_bench_regression.py \
      --baseline BENCH_micro.json --candidate /tmp/bench/BENCH_micro.json \
      [--threshold 0.20] [--guard BM_EventDispatch --guard BM_RpcRoundTrip]
"""

import argparse
import json
import sys

DEFAULT_GUARDS = [
    "BM_EventDispatch",
    "BM_RpcRoundTrip",
    "BM_BatchPublish",
    "BM_ReplicatedPublish",
]


def load_suite(path, suite):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if suite not in document:
        sys.exit(f"error: no '{suite}' suite in {path}")
    return document[suite]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_micro.json")
    parser.add_argument("--candidate", required=True,
                        help="freshly generated BENCH_micro.json")
    parser.add_argument("--suite", default="micro_rpc")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional ns/op growth (default 0.20)")
    parser.add_argument("--guard", action="append", default=None,
                        help="benchmark name prefix to guard (repeatable; "
                             f"default: {', '.join(DEFAULT_GUARDS)})")
    args = parser.parse_args()
    guards = args.guard or DEFAULT_GUARDS

    baseline = load_suite(args.baseline, args.suite)
    candidate = load_suite(args.candidate, args.suite)

    failures = []
    checked = 0
    for name, base_entry in sorted(baseline.items()):
        if not any(name.startswith(guard) for guard in guards):
            continue
        if name not in candidate:
            failures.append(f"{name}: missing from candidate run")
            continue
        base_ns = float(base_entry["ns_per_op"])
        cand_ns = float(candidate[name]["ns_per_op"])
        ratio = cand_ns / base_ns if base_ns > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSED"
            failures.append(
                f"{name}: {base_ns:.0f} ns/op -> {cand_ns:.0f} ns/op "
                f"({(ratio - 1.0) * 100.0:+.1f}%, limit "
                f"+{args.threshold * 100.0:.0f}%)")
        print(f"  {name}: {base_ns:.0f} -> {cand_ns:.0f} ns/op "
              f"({(ratio - 1.0) * 100.0:+.1f}%) {status}")
        checked += 1

    if checked == 0:
        sys.exit("error: no guarded benchmarks found in baseline")
    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({checked} benchmarks "
          f"within +{args.threshold * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
