// soma_inspect — post-mortem inspection of an exported SOMA store.
//
// Reads a JSON-lines file produced by core::export_store (see the
// md_figure_of_merit example or your own workflow) and prints what an
// operator wants to know after a run: per-namespace volumes, workflow
// progress, per-host utilization, host anomalies, and — when the workflow
// namespace carries task events — observed task starts.
//
// Usage:
//   soma_inspect <store.jsonl> [--progress] [--hosts] [--starts] [--json]
// With no flags, prints everything.

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/advisor.hpp"
#include "analysis/anomaly.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "soma/export.hpp"

using namespace soma;

namespace {

void print_volumes(const core::StoreView& store) {
  std::printf("\n== namespace volumes ==\n");
  TextTable table({"namespace", "records", "sources", "bytes"});
  for (core::Namespace ns : core::kAllNamespaces) {
    table.add_row({std::string(core::to_string(ns)),
                   std::to_string(store.record_count(ns)),
                   std::to_string(store.sources(ns).size()),
                   std::to_string(store.ingested_bytes(ns))});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_progress(const core::StoreView& store) {
  const auto progress = analysis::workflow_progress(store);
  if (progress.empty()) {
    std::printf("\n== workflow progress == (no workflow summaries)\n");
    return;
  }
  std::printf("\n== workflow progress ==\n");
  TextTable table({"t (s)", "pending", "executing", "done", "thr/min"});
  for (const auto& point : progress) {
    table.add_row({format_seconds(point.time.to_seconds(), 0),
                   std::to_string(point.pending),
                   std::to_string(point.executing),
                   std::to_string(point.done),
                   format_seconds(point.throughput_per_min, 1)});
  }
  std::printf("%s", table.to_string().c_str());
}

void print_hosts(const core::StoreView& store) {
  const auto report = analysis::analyze_hardware(store);
  if (report.nodes.empty()) {
    std::printf("\n== hosts == (no hardware records)\n");
    return;
  }
  std::printf("\n== hosts ==\n");
  TextTable table({"host", "mean util", "last util", "free RAM (MiB)"});
  for (const auto& node : report.nodes) {
    table.add_row({node.hostname, format_seconds(node.mean_utilization, 3),
                   format_seconds(node.last_utilization, 3),
                   std::to_string(node.available_ram_mib)});
  }
  std::printf("%s", table.to_string().c_str());

  const auto anomalies = analysis::detect_host_anomalies(report);
  for (const auto& anomaly : anomalies) {
    std::printf("  ANOMALY: %s mean utilization %.1f%% (z=%.1f)\n",
                anomaly.hostname.c_str(), anomaly.utilization * 100.0,
                anomaly.robust_z);
  }
}

void print_starts(const core::StoreView& store) {
  const auto starts = analysis::observed_task_starts(store);
  std::printf("\n== observed task starts (%zu) ==\n", starts.size());
  for (const auto& [time, uid] : starts) {
    std::printf("  %10.1fs  %s\n", time.to_seconds(), uid.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <store.jsonl> [--progress] [--hosts] [--starts]\n",
                 argv[0]);
    return 2;
  }

  core::DataStore store;
  std::size_t loaded = 0;
  try {
    loaded = core::import_store_from_file(store, argv[1]);
  } catch (const soma::Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::printf("loaded %zu records from %s\n", loaded, argv[1]);

  bool any_flag = false;
  bool want_progress = false, want_hosts = false, want_starts = false;
  for (int i = 2; i < argc; ++i) {
    any_flag = true;
    if (std::strcmp(argv[i], "--progress") == 0) want_progress = true;
    else if (std::strcmp(argv[i], "--hosts") == 0) want_hosts = true;
    else if (std::strcmp(argv[i], "--starts") == 0) want_starts = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (!any_flag) want_progress = want_hosts = want_starts = true;

  const core::StoreView view = store.view();
  print_volumes(view);
  if (want_progress) print_progress(view);
  if (want_hosts) print_hosts(view);
  if (want_starts) print_starts(view);
  return 0;
}
