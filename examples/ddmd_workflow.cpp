// DeepDriveMD mini-app workflow example (paper §3.2, Fig. 3).
//
// Shows the EnTK-level API directly: build a pipeline of DDMD phases
// (Simulation -> Training -> Selection -> Agent), run several pipelines
// concurrently under RP with SOMA monitoring, and read back per-stage
// timings and the utilization SOMA recorded.
//
// Run:  ./build/examples/ddmd_workflow [pipelines] [phases]

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "entk/entk.hpp"
#include "experiments/deployment.hpp"
#include "workloads/ddmd.hpp"

using namespace soma;

int main(int argc, char** argv) {
  const int pipelines = argc > 1 ? std::atoi(argv[1]) : 2;
  const int phases = argc > 2 ? std::atoi(argv[2]) : 2;

  // Platform: 1 agent node + enough app nodes for the pipelines + 1 SOMA
  // node.
  const int app_nodes = std::max(2, pipelines);
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(app_nodes + 2);
  session_config.pilot.nodes = app_nodes + 2;
  session_config.seed = 7;
  rp::Session session(session_config);

  workloads::DdmdParams params;
  std::unique_ptr<experiments::SomaDeployment> deployment;
  entk::AppManager manager(session);

  // Build the pipelines: each phase contributes its four stages.
  for (int p = 0; p < pipelines; ++p) {
    entk::Pipeline pipeline;
    pipeline.name = "pipeline-" + std::to_string(p);
    for (int phase = 0; phase < phases; ++phase) {
      for (const auto& spec : workloads::ddmd_phase_stages(
               params, /*cores_per_sim_task=*/3, /*train_tasks=*/1,
               /*cores_per_train_task=*/7)) {
        entk::Stage stage;
        stage.name = std::string(workloads::to_string(spec.stage));
        stage.tasks = workloads::make_ddmd_stage_tasks(spec, params, p, phase,
                                                       /*train_tasks=*/1);
        pipeline.stages.push_back(std::move(stage));
      }
    }
    manager.add_pipeline(std::move(pipeline));
  }

  session.start([&] {
    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = {session.pilot_nodes().back()};
    config.service.namespaces = {core::Namespace::kWorkflow,
                                 core::Namespace::kHardware};
    config.rp_monitor.period = Duration::seconds(30.0);
    config.hw_monitor.period = Duration::seconds(30.0);
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);
    deployment->deploy([&] {
      std::printf("SOMA deployed; launching %d pipeline(s) x %d phase(s)\n",
                  pipelines, phases);
      manager.run([&] {
        deployment->shutdown();
        session.finalize();
      });
    });
  });
  session.run();

  std::printf("\nper-pipeline, per-stage timings:\n");
  TextTable table({"pipeline", "stage", "span (s)"});
  const char* stage_names[] = {"sim", "train", "select", "agent"};
  for (const auto& result : manager.results()) {
    for (std::size_t s = 0; s < result.stage_spans.size(); ++s) {
      const auto& [begin, end] = result.stage_spans[s];
      table.add_row({result.name,
                     std::string(stage_names[s % 4]) + ".ph" +
                         std::to_string(s / 4),
                     format_seconds((end - begin).to_seconds(), 1)});
    }
    table.add_row({result.name, "TOTAL",
                   format_seconds(result.duration_seconds(), 1)});
  }
  std::printf("%s", table.to_string().c_str());

  const core::DataStore& store = deployment->service().store();
  std::printf("\nSOMA captured %llu workflow records and %llu hardware "
              "records across %zu hosts\n",
              static_cast<unsigned long long>(
                  store.record_count(core::Namespace::kWorkflow)),
              static_cast<unsigned long long>(
                  store.record_count(core::Namespace::kHardware)),
              store.sources(core::Namespace::kHardware).size());
  return 0;
}
