// OpenFOAM-workflow example (paper §3.1).
//
// Runs the ExaAM-style OpenFOAM ensemble under RADICAL-Pilot with full SOMA
// monitoring (proc + rp + tau), then walks through everything the
// observability stack captured: strong-scaling statistics, the TAU MPI
// breakdown of one task, per-node utilization, and the RP core-state map.
//
// Run:  ./build/examples/openfoam_workflow [tuning|overload]

#include <cstdio>
#include <cstring>

#include "common/table.hpp"
#include "analysis/anomaly.hpp"
#include "experiments/openfoam_experiment.hpp"

using namespace soma;
using namespace soma::experiments;

int main(int argc, char** argv) {
  const bool overload = argc > 1 && std::strcmp(argv[1], "overload") == 0;
  const OpenFoamExperimentConfig config =
      overload ? OpenFoamExperimentConfig::overloaded()
               : OpenFoamExperimentConfig::tuning();

  std::printf("running the %s OpenFOAM workflow (%d worker nodes, %zu tasks, "
              "monitors: proc, rp, tau)...\n",
              overload ? "overloaded" : "tuning", config.worker_nodes,
              config.rank_configs.size() *
                  static_cast<std::size_t>(config.instances_per_config));

  const OpenFoamResult result = run_openfoam_experiment(config);

  std::printf("\nworkflow finished: makespan %.1f s, %llu SOMA publishes, "
              "%llu TAU profiles\n",
              result.makespan_seconds,
              static_cast<unsigned long long>(result.soma_publishes),
              static_cast<unsigned long long>(result.tau_profiles));

  std::printf("\n[1] task strong scaling (what an adaptive RP would use to "
              "pick rank counts):\n");
  TextTable scaling({"ranks", "instances", "mean (s)", "sigma", "bar"});
  double max_mean = 0.0;
  for (const auto& [ranks, summary] : result.scaling) {
    max_mean = std::max(max_mean, summary.mean);
  }
  for (const auto& [ranks, summary] : result.scaling) {
    scaling.add_row({std::to_string(ranks), std::to_string(summary.count),
                     format_seconds(summary.mean, 1),
                     format_seconds(summary.stddev, 1),
                     ascii_bar(summary.mean, max_mean, 32)});
  }
  std::printf("%s", scaling.to_string().c_str());

  std::printf("\n[2] TAU view of one %zu-rank task (rank 0 vs mid rank):\n",
              result.sample_profile.ranks.size());
  if (!result.sample_profile.ranks.empty()) {
    const auto& ranks = result.sample_profile.ranks;
    for (const auto* rank : {&ranks.front(), &ranks[ranks.size() / 2]}) {
      std::printf("  rank %4d on %s:", rank->rank, rank->hostname.c_str());
      for (const auto& [fn, seconds] : rank->inclusive_seconds) {
        std::printf("  %s=%.1fs", fn.c_str(), seconds);
      }
      std::printf("\n");
    }
  }

  std::printf("\n[3] per-node CPU utilization (SOMA hardware namespace):\n");
  for (const auto& [host, series] : result.node_utilization) {
    double mean = 0.0;
    for (const auto& [t, u] : series) mean += u;
    if (!series.empty()) mean /= static_cast<double>(series.size());
    std::printf("  %s: %zu samples, mean %.0f%%  %s\n", host.c_str(),
                series.size(), mean * 100.0,
                ascii_bar(mean, 1.0, 30).c_str());
  }

  std::printf("\n[4] RP core-state map (b=bootstrap s=scheduling #=running "
              ".=idle):\n%s",
              result.timeline_render.c_str());
  std::printf("fractions: bootstrap %.1f%%, scheduling %.1f%%, running "
              "%.1f%%, idle %.1f%%\n",
              result.frac_bootstrap * 100.0, result.frac_scheduling * 100.0,
              result.frac_running * 100.0, result.frac_idle * 100.0);

  std::printf("\n[5] straggler scan (robust z-score per configuration):\n");
  std::vector<analysis::TaskSample> samples;
  for (const auto& record : result.tasks) {
    samples.push_back({record.uid, "openfoam-" + std::to_string(record.ranks),
                       record.exec_seconds});
  }
  const auto anomalies = analysis::detect_task_anomalies(samples, 2.5);
  if (anomalies.empty()) {
    std::printf("  no stragglers at |z| >= 2.5 (expected for a healthy "
                "run)\n");
  }
  for (const auto& anomaly : anomalies) {
    std::printf("  %s: %.1fs vs group median %.1fs (z=%.1f, %s)\n",
                anomaly.sample.uid.c_str(), anomaly.sample.exec_seconds,
                anomaly.group_median, anomaly.robust_z,
                anomaly.kind == analysis::AnomalyKind::kStraggler
                    ? "straggler"
                    : "unexpectedly fast");
  }
  return 0;
}
