// Application-namespace example (paper §2.3.2, "Application Namespace").
//
// "A molecular dynamics code might want to capture the atom-timesteps per
// second as the figure of merit." This example instruments a synthetic MD
// application with SOMA's AppInstrument API: the app reports its figure of
// merit and progress as it steps; the records land in the APP namespace;
// afterwards the whole store is exported to a JSON-lines file and re-loaded
// to show the post-mortem path.
//
// Run:  ./build/examples/md_figure_of_merit

#include <cstdio>
#include <sstream>

#include "common/table.hpp"
#include "experiments/deployment.hpp"
#include "soma/app_instrument.hpp"
#include "soma/export.hpp"

using namespace soma;

int main() {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  session_config.seed = 99;
  rp::Session session(session_config);

  std::unique_ptr<experiments::SomaDeployment> deployment;
  std::unique_ptr<core::SomaClient> app_client;
  std::unique_ptr<core::AppInstrument> instrument;
  std::unique_ptr<sim::PeriodicTask> md_step;

  session.start([&] {
    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = session.agent_node_ids();
    config.enable_hw_monitors = false;  // this example is about APP only
    config.enable_rp_monitor = false;
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);

    deployment->deploy([&] {
      // The "MD application": a 30-minute task stepping a 2M-atom system.
      rp::TaskDescription md;
      md.uid = "md.run42";
      md.ranks = 42;
      md.label = "md";
      md.fixed_duration = Duration::minutes(30.0);
      session.submit(md);

      // Its SOMA instrumentation: every simulated minute, report the
      // figure of merit and progress, as the paper's MD example would.
      app_client = deployment->make_client(
          core::Namespace::kApplication, session.worker_node_ids().front());
      instrument =
          std::make_unique<core::AppInstrument>(*app_client, "md.run42");

      auto step = std::make_shared<int>(0);
      md_step = std::make_unique<sim::PeriodicTask>(
          session.simulation(), Duration::minutes(1.0), [&, step] {
            ++*step;
            const double atoms = 2.0e6;
            // Warm-up, then steady state with slow degradation (neighbor
            // lists growing): the kind of signal an adaptive consumer
            // watches for.
            const double steps_per_s =
                *step < 3 ? 40.0 + 12.0 * *step : 75.0 - 0.4 * *step;
            instrument->report_metric("atom_timesteps_per_s",
                                      atoms * steps_per_s);
            instrument->report_metric("md_step",
                                      static_cast<std::int64_t>(*step * 500));
            instrument->report_progress(*step / 30.0);
            instrument->commit();
          });
      md_step->start(Duration::minutes(1.0));

      session.add_task_completion_listener(
          [&](const std::shared_ptr<rp::Task>& task) {
            if (task->uid() != "md.run42") return;
            md_step->stop();
            deployment->shutdown();
            session.finalize();
          });
    });
  });
  session.run();

  // ---- read the figure-of-merit series back out of the APP namespace ----
  const core::StoreView store = deployment->service().store_view();
  std::printf("figure-of-merit series (APP namespace, %llu commits):\n",
              static_cast<unsigned long long>(instrument->commits()));
  TextTable table({"t (min)", "atom-timesteps/s", "progress", "trend"});
  const auto series =
      store.series(core::Namespace::kApplication, "md.run42");
  double previous = 0.0;
  for (const auto* record : series) {
    const auto& metrics =
        record->data.fetch_existing("md.run42").child_at(0);
    const double fom =
        metrics.fetch_existing("atom_timesteps_per_s").as_float64();
    table.add_row(
        {format_seconds(record->time.to_seconds() / 60.0, 1),
         format_seconds(fom / 1e6, 1) + "M",
         format_seconds(metrics.fetch_existing("progress").as_float64(), 2),
         previous == 0.0 ? "" : (fom >= previous ? "up" : "down")});
    previous = fom;
  }
  std::printf("%s", table.to_string().c_str());

  // ---- post-mortem path: export, reload, verify ----
  std::stringstream archive;
  const std::size_t exported = core::export_store(store, archive);
  core::DataStore reloaded;
  const std::size_t imported = core::import_store(reloaded, archive);
  std::printf("\nexported %zu records to JSONL and reloaded %zu — offline "
              "series length %zu\n",
              exported, imported,
              reloaded.series(core::Namespace::kApplication, "md.run42")
                  .size());
  return 0;
}
