// Quickstart: monitor a small RP workflow with SOMA.
//
// Builds a 3-node "cluster", starts an RP session, deploys the SOMA service
// plus the RP and hardware monitors, runs a handful of tasks, and then reads
// the collected observability data back out of the service: workflow
// progress, per-node CPU utilization, and service-side accounting.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "analysis/advisor.hpp"
#include "common/table.hpp"
#include "experiments/deployment.hpp"
#include "soma/export.hpp"
#include "rp/session.hpp"

using namespace soma;

namespace {

/// Place the exported store next to the binary (under the build tree), not
/// in whatever directory the example happens to be run from.
std::string output_path(const char* argv0, const std::string& filename) {
  const std::string self(argv0);
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return filename;
  return self.substr(0, slash + 1) + filename;
}

}  // namespace

int main(int /*argc*/, char** argv) {
  // A 3-node machine: node 0 hosts the RP agent + SOMA service, nodes 1-2
  // run application tasks.
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(3);
  session_config.pilot.nodes = 3;
  session_config.seed = 42;
  rp::Session session(session_config);

  std::unique_ptr<experiments::SomaDeployment> deployment;
  int outstanding = 0;

  session.add_task_completion_listener(
      [&](const std::shared_ptr<rp::Task>& task) {
        if (task->description().kind != rp::TaskKind::kApplication) return;
        std::printf("[%8.2fs] %s done (ran %.2fs on %d node(s))\n",
                    session.simulation().now().to_seconds(),
                    task->uid().c_str(),
                    task->rank_duration()->to_seconds(),
                    task->placement()->nodes_spanned());
        if (--outstanding == 0) {
          deployment->shutdown();
          session.finalize();
        }
      });

  session.start([&] {
    std::printf("[%8.2fs] RP agent ready on %zu nodes\n",
                session.simulation().now().to_seconds(),
                session.pilot_nodes().size());

    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = session.agent_node_ids();
    config.rp_monitor.period = Duration::seconds(10.0);
    config.hw_monitor.period = Duration::seconds(10.0);
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);

    deployment->deploy([&] {
      std::printf("[%8.2fs] SOMA service + monitors deployed\n",
                  session.simulation().now().to_seconds());
      // Six CPU tasks of varying width and duration.
      for (int i = 0; i < 6; ++i) {
        rp::TaskDescription desc;
        desc.uid = "demo." + std::to_string(i);
        desc.ranks = 8 + 8 * (i % 3);
        desc.cores_per_rank = 1;
        desc.fixed_duration = Duration::seconds(30.0 + 10.0 * i);
        ++outstanding;
        session.submit(desc);
      }
    });
  });

  session.run();

  // ---- read the observability data back out of SOMA ----
  const core::StoreView store = deployment->service().store_view();

  std::printf("\nWorkflow progress (from the SOMA workflow namespace):\n");
  TextTable progress({"t (s)", "pending", "executing", "done", "thr/min"});
  for (const auto& point : analysis::workflow_progress(store)) {
    progress.add_row({format_seconds(point.time.to_seconds(), 1),
                      std::to_string(point.pending),
                      std::to_string(point.executing),
                      std::to_string(point.done),
                      format_seconds(point.throughput_per_min, 1)});
  }
  std::printf("%s", progress.to_string().c_str());

  std::printf("\nPer-node CPU utilization (from the hardware namespace):\n");
  const auto hardware = analysis::analyze_hardware(store);
  TextTable util({"host", "mean util", "last util", "free RAM (MiB)"});
  for (const auto& node : hardware.nodes) {
    util.add_row({node.hostname, format_seconds(node.mean_utilization, 3),
                  format_seconds(node.last_utilization, 3),
                  std::to_string(node.available_ram_mib)});
  }
  std::printf("%s", util.to_string().c_str());

  std::printf("\nSOMA service: %llu publishes, max queue delay %.3f ms, "
              "mean ack %.3f ms\n",
              static_cast<unsigned long long>(
                  deployment->service().publishes_received()),
              deployment->service().max_queue_delay().to_seconds() * 1e3,
              deployment->mean_client_ack_latency_ms());

  // Post-mortem: archive the store for tools/soma_inspect.
  const std::string path = output_path(argv[0], "quickstart_store.jsonl");
  const std::size_t exported = core::export_store_to_file(store, path);
  std::printf("exported %zu records to %s "
              "(inspect with: ./build/tools/soma_inspect %s)\n",
              exported, path.c_str(), path.c_str());
  return 0;
}
