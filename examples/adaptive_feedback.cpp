// Adaptive-feedback example — the paper's future work (§6), implemented.
//
// "The idea is to analyze performance metrics ... to make smart scheduling
// and configuration decisions, including the altering of the workflow
// configuration on-the-fly."
//
// This example closes the loop: a DDMD-style workflow runs phase by phase;
// between phases the advisor queries SOMA (a real RPC query against the
// service, not a backdoor read), sees that CPU utilization is low and GPUs
// are idle, and reconfigures the next phase — parallelizing training across
// more tasks. A static run with the same seed shows what the adaptation
// buys.
//
// Run:  ./build/examples/adaptive_feedback

#include <cstdio>
#include <functional>

#include "analysis/advisor.hpp"
#include "common/table.hpp"
#include "experiments/deployment.hpp"
#include "workloads/ddmd.hpp"

using namespace soma;

namespace {

struct PhaseRecord {
  int phase = 0;
  int train_tasks = 1;
  double span_seconds = 0.0;
  std::string advice;
};

/// Drives one workflow: `phases` DDMD phases in sequence, with an optional
/// between-phase adaptation hook that picks the next phase's training
/// parallelism.
class AdaptiveWorkflow {
 public:
  AdaptiveWorkflow(rp::Session& session,
                   experiments::SomaDeployment& deployment, int phases,
                   bool adaptive)
      : session_(session),
        deployment_(deployment),
        phases_(phases),
        adaptive_(adaptive) {
    session_.add_task_completion_listener(
        [this](const std::shared_ptr<rp::Task>& task) {
          on_complete(task);
        });
  }

  void run(std::function<void()> on_done) {
    on_done_ = std::move(on_done);
    start_phase();
  }

  [[nodiscard]] const std::vector<PhaseRecord>& records() const {
    return records_;
  }

 private:
  void start_phase() {
    phase_started_ = session_.simulation().now();
    const auto stages = workloads::ddmd_phase_stages(
        params_, /*cores_per_sim_task=*/1, train_tasks_,
        /*cores_per_train_task=*/1);
    current_stage_ = 0;
    stage_specs_ = stages;
    submit_stage();
  }

  void submit_stage() {
    const auto tasks = workloads::make_ddmd_stage_tasks(
        stage_specs_[current_stage_], params_, adaptive_ ? 1 : 0, phase_,
        train_tasks_);
    outstanding_ = tasks.size();
    for (const auto& description : tasks) session_.submit(description);
  }

  void on_complete(const std::shared_ptr<rp::Task>& task) {
    if (task->description().kind != rp::TaskKind::kApplication) return;
    if (outstanding_ == 0 || --outstanding_ > 0) return;

    if (++current_stage_ < stage_specs_.size()) {
      submit_stage();
      return;
    }

    // Phase complete: record it, consult SOMA, maybe adapt.
    PhaseRecord record;
    record.phase = phase_;
    record.train_tasks = train_tasks_;
    record.span_seconds =
        (session_.simulation().now() - phase_started_).to_seconds();

    if (adaptive_) {
      // In-situ analysis on the data SOMA already holds...
      const auto hardware =
          analysis::analyze_hardware(deployment_.service().store_view());
      const auto advice = analysis::advise_ddmd(
          hardware, session_.scheduler().free_app_gpus(), train_tasks_);
      record.advice = advice.rationale;
      train_tasks_ = advice.train_tasks;
      // ...and a genuine online RPC query, as a remote consumer would do.
      std::shared_ptr<core::SomaClient> client = deployment_.make_client(
          core::Namespace::kWorkflow, session_.agent_node_ids().front());
      datamodel::Node request;
      request["kind"].set("stats");
      client->query(std::move(request), [client](datamodel::Node reply) {
        (void)reply;  // delivery demonstrates online access
      });
    }
    records_.push_back(std::move(record));

    if (++phase_ < phases_) {
      start_phase();
    } else if (on_done_) {
      on_done_();
    }
  }

  rp::Session& session_;
  experiments::SomaDeployment& deployment_;
  workloads::DdmdParams params_;
  int phases_;
  bool adaptive_;
  int phase_ = 0;
  int train_tasks_ = 1;
  std::vector<workloads::DdmdStageSpec> stage_specs_;
  std::size_t current_stage_ = 0;
  std::size_t outstanding_ = 0;
  SimTime phase_started_;
  std::vector<PhaseRecord> records_;
  std::function<void()> on_done_;
};

std::vector<PhaseRecord> run_workflow(bool adaptive) {
  rp::SessionConfig session_config;
  session_config.platform = cluster::summit(4);  // agent + 2 app + 1 SOMA
  session_config.pilot.nodes = 4;
  session_config.seed = 17;
  rp::Session session(session_config);

  std::unique_ptr<experiments::SomaDeployment> deployment;
  std::unique_ptr<AdaptiveWorkflow> workflow;
  session.start([&] {
    experiments::DeploymentConfig config;
    config.mode = experiments::SomaMode::kExclusive;
    config.service_nodes = {session.pilot_nodes().back()};
    config.service.namespaces = {core::Namespace::kWorkflow,
                                 core::Namespace::kHardware};
    config.rp_monitor.period = Duration::seconds(30.0);
    config.hw_monitor.period = Duration::seconds(30.0);
    deployment = std::make_unique<experiments::SomaDeployment>(session, config);
    deployment->deploy([&] {
      workflow = std::make_unique<AdaptiveWorkflow>(session, *deployment,
                                                    /*phases=*/4, adaptive);
      workflow->run([&] {
        deployment->shutdown();
        session.finalize();
      });
    });
  });
  session.run();
  return workflow->records();
}

}  // namespace

int main() {
  std::printf("running the static workflow (training parallelism fixed at "
              "1)...\n");
  const auto static_records = run_workflow(false);
  std::printf("running the adaptive workflow (SOMA analysis reconfigures "
              "each phase)...\n");
  const auto adaptive_records = run_workflow(true);

  TextTable table({"phase", "static train", "static span (s)",
                   "adaptive train", "adaptive span (s)", "gain"});
  double static_total = 0.0, adaptive_total = 0.0;
  for (std::size_t p = 0; p < static_records.size(); ++p) {
    const auto& s = static_records[p];
    const auto& a = adaptive_records[p];
    static_total += s.span_seconds;
    adaptive_total += a.span_seconds;
    const double gain = (1.0 - a.span_seconds / s.span_seconds) * 100.0;
    table.add_row({std::to_string(s.phase), std::to_string(s.train_tasks),
                   format_seconds(s.span_seconds, 1),
                   std::to_string(a.train_tasks),
                   format_seconds(a.span_seconds, 1),
                   format_seconds(gain, 1) + "%"});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\ntotal: static %.1f s, adaptive %.1f s (%.1f%% faster)\n",
              static_total, adaptive_total,
              (1.0 - adaptive_total / static_total) * 100.0);

  std::printf("\nadvice trail (what SOMA's in-situ analysis said after each "
              "phase):\n");
  for (const auto& record : adaptive_records) {
    std::printf("  after phase %d: %s\n", record.phase,
                record.advice.c_str());
  }
  return 0;
}
