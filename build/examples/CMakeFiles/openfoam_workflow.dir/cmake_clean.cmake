file(REMOVE_RECURSE
  "CMakeFiles/openfoam_workflow.dir/openfoam_workflow.cpp.o"
  "CMakeFiles/openfoam_workflow.dir/openfoam_workflow.cpp.o.d"
  "openfoam_workflow"
  "openfoam_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openfoam_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
