# Empty dependencies file for openfoam_workflow.
# This may be replaced when dependencies are built.
