file(REMOVE_RECURSE
  "CMakeFiles/adaptive_feedback.dir/adaptive_feedback.cpp.o"
  "CMakeFiles/adaptive_feedback.dir/adaptive_feedback.cpp.o.d"
  "adaptive_feedback"
  "adaptive_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
