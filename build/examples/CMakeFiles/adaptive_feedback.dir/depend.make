# Empty dependencies file for adaptive_feedback.
# This may be replaced when dependencies are built.
