# Empty compiler generated dependencies file for md_figure_of_merit.
# This may be replaced when dependencies are built.
