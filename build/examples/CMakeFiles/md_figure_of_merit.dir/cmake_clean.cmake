file(REMOVE_RECURSE
  "CMakeFiles/md_figure_of_merit.dir/md_figure_of_merit.cpp.o"
  "CMakeFiles/md_figure_of_merit.dir/md_figure_of_merit.cpp.o.d"
  "md_figure_of_merit"
  "md_figure_of_merit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_figure_of_merit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
