# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for md_figure_of_merit.
