file(REMOVE_RECURSE
  "CMakeFiles/ddmd_workflow.dir/ddmd_workflow.cpp.o"
  "CMakeFiles/ddmd_workflow.dir/ddmd_workflow.cpp.o.d"
  "ddmd_workflow"
  "ddmd_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddmd_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
