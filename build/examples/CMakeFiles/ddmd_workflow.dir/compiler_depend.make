# Empty compiler generated dependencies file for ddmd_workflow.
# This may be replaced when dependencies are built.
