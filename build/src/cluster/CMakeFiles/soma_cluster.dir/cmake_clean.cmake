file(REMOVE_RECURSE
  "CMakeFiles/soma_cluster.dir/platform.cpp.o"
  "CMakeFiles/soma_cluster.dir/platform.cpp.o.d"
  "CMakeFiles/soma_cluster.dir/proc.cpp.o"
  "CMakeFiles/soma_cluster.dir/proc.cpp.o.d"
  "libsoma_cluster.a"
  "libsoma_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
