
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/platform.cpp" "src/cluster/CMakeFiles/soma_cluster.dir/platform.cpp.o" "gcc" "src/cluster/CMakeFiles/soma_cluster.dir/platform.cpp.o.d"
  "/root/repo/src/cluster/proc.cpp" "src/cluster/CMakeFiles/soma_cluster.dir/proc.cpp.o" "gcc" "src/cluster/CMakeFiles/soma_cluster.dir/proc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/datamodel/CMakeFiles/soma_datamodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
