# Empty dependencies file for soma_cluster.
# This may be replaced when dependencies are built.
