file(REMOVE_RECURSE
  "libsoma_cluster.a"
)
