file(REMOVE_RECURSE
  "libsoma_datamodel.a"
)
