# Empty dependencies file for soma_datamodel.
# This may be replaced when dependencies are built.
