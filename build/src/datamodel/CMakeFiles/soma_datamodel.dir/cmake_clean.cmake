file(REMOVE_RECURSE
  "CMakeFiles/soma_datamodel.dir/json.cpp.o"
  "CMakeFiles/soma_datamodel.dir/json.cpp.o.d"
  "CMakeFiles/soma_datamodel.dir/node.cpp.o"
  "CMakeFiles/soma_datamodel.dir/node.cpp.o.d"
  "libsoma_datamodel.a"
  "libsoma_datamodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_datamodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
