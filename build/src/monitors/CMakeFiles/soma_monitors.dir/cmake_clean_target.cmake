file(REMOVE_RECURSE
  "libsoma_monitors.a"
)
