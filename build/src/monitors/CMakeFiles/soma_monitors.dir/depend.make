# Empty dependencies file for soma_monitors.
# This may be replaced when dependencies are built.
