file(REMOVE_RECURSE
  "CMakeFiles/soma_monitors.dir/hw_monitor.cpp.o"
  "CMakeFiles/soma_monitors.dir/hw_monitor.cpp.o.d"
  "CMakeFiles/soma_monitors.dir/rp_monitor.cpp.o"
  "CMakeFiles/soma_monitors.dir/rp_monitor.cpp.o.d"
  "libsoma_monitors.a"
  "libsoma_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
