# Empty dependencies file for soma_common.
# This may be replaced when dependencies are built.
