file(REMOVE_RECURSE
  "CMakeFiles/soma_common.dir/log.cpp.o"
  "CMakeFiles/soma_common.dir/log.cpp.o.d"
  "CMakeFiles/soma_common.dir/rng.cpp.o"
  "CMakeFiles/soma_common.dir/rng.cpp.o.d"
  "CMakeFiles/soma_common.dir/stats.cpp.o"
  "CMakeFiles/soma_common.dir/stats.cpp.o.d"
  "CMakeFiles/soma_common.dir/table.cpp.o"
  "CMakeFiles/soma_common.dir/table.cpp.o.d"
  "CMakeFiles/soma_common.dir/types.cpp.o"
  "CMakeFiles/soma_common.dir/types.cpp.o.d"
  "libsoma_common.a"
  "libsoma_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
