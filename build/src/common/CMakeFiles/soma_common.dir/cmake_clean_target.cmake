file(REMOVE_RECURSE
  "libsoma_common.a"
)
