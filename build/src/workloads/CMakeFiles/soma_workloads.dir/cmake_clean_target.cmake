file(REMOVE_RECURSE
  "libsoma_workloads.a"
)
