file(REMOVE_RECURSE
  "CMakeFiles/soma_workloads.dir/ddmd.cpp.o"
  "CMakeFiles/soma_workloads.dir/ddmd.cpp.o.d"
  "CMakeFiles/soma_workloads.dir/openfoam.cpp.o"
  "CMakeFiles/soma_workloads.dir/openfoam.cpp.o.d"
  "libsoma_workloads.a"
  "libsoma_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
