# Empty dependencies file for soma_workloads.
# This may be replaced when dependencies are built.
