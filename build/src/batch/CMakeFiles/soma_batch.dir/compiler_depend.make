# Empty compiler generated dependencies file for soma_batch.
# This may be replaced when dependencies are built.
