file(REMOVE_RECURSE
  "CMakeFiles/soma_batch.dir/batch.cpp.o"
  "CMakeFiles/soma_batch.dir/batch.cpp.o.d"
  "libsoma_batch.a"
  "libsoma_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
