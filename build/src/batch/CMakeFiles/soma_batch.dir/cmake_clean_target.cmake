file(REMOVE_RECURSE
  "libsoma_batch.a"
)
