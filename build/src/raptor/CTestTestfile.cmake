# CMake generated Testfile for 
# Source directory: /root/repo/src/raptor
# Build directory: /root/repo/build/src/raptor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
