file(REMOVE_RECURSE
  "libsoma_raptor.a"
)
