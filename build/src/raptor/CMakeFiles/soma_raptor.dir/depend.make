# Empty dependencies file for soma_raptor.
# This may be replaced when dependencies are built.
