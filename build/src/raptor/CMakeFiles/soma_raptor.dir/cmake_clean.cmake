file(REMOVE_RECURSE
  "CMakeFiles/soma_raptor.dir/raptor.cpp.o"
  "CMakeFiles/soma_raptor.dir/raptor.cpp.o.d"
  "libsoma_raptor.a"
  "libsoma_raptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_raptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
