# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("datamodel")
subdirs("comm")
subdirs("net")
subdirs("cluster")
subdirs("batch")
subdirs("rp")
subdirs("entk")
subdirs("raptor")
subdirs("soma")
subdirs("workloads")
subdirs("profiler")
subdirs("monitors")
subdirs("analysis")
subdirs("experiments")
