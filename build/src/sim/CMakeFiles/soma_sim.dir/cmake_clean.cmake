file(REMOVE_RECURSE
  "CMakeFiles/soma_sim.dir/simulation.cpp.o"
  "CMakeFiles/soma_sim.dir/simulation.cpp.o.d"
  "libsoma_sim.a"
  "libsoma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
