file(REMOVE_RECURSE
  "libsoma_sim.a"
)
