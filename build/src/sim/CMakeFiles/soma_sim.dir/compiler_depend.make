# Empty compiler generated dependencies file for soma_sim.
# This may be replaced when dependencies are built.
