file(REMOVE_RECURSE
  "CMakeFiles/soma_analysis.dir/advisor.cpp.o"
  "CMakeFiles/soma_analysis.dir/advisor.cpp.o.d"
  "CMakeFiles/soma_analysis.dir/anomaly.cpp.o"
  "CMakeFiles/soma_analysis.dir/anomaly.cpp.o.d"
  "CMakeFiles/soma_analysis.dir/timeline.cpp.o"
  "CMakeFiles/soma_analysis.dir/timeline.cpp.o.d"
  "libsoma_analysis.a"
  "libsoma_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
