# Empty compiler generated dependencies file for soma_analysis.
# This may be replaced when dependencies are built.
