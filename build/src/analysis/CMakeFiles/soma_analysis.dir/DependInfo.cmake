
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/advisor.cpp" "src/analysis/CMakeFiles/soma_analysis.dir/advisor.cpp.o" "gcc" "src/analysis/CMakeFiles/soma_analysis.dir/advisor.cpp.o.d"
  "/root/repo/src/analysis/anomaly.cpp" "src/analysis/CMakeFiles/soma_analysis.dir/anomaly.cpp.o" "gcc" "src/analysis/CMakeFiles/soma_analysis.dir/anomaly.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/analysis/CMakeFiles/soma_analysis.dir/timeline.cpp.o" "gcc" "src/analysis/CMakeFiles/soma_analysis.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rp/CMakeFiles/soma_rp.dir/DependInfo.cmake"
  "/root/repo/build/src/soma/CMakeFiles/soma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/soma_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/soma_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/datamodel/CMakeFiles/soma_datamodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soma_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
