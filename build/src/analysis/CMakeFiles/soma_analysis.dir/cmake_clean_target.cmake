file(REMOVE_RECURSE
  "libsoma_analysis.a"
)
