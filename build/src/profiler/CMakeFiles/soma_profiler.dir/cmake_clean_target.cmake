file(REMOVE_RECURSE
  "libsoma_profiler.a"
)
