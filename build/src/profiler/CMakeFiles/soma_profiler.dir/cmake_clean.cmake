file(REMOVE_RECURSE
  "CMakeFiles/soma_profiler.dir/tau.cpp.o"
  "CMakeFiles/soma_profiler.dir/tau.cpp.o.d"
  "libsoma_profiler.a"
  "libsoma_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
