# Empty dependencies file for soma_profiler.
# This may be replaced when dependencies are built.
