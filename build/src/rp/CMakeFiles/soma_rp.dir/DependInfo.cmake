
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rp/executor.cpp" "src/rp/CMakeFiles/soma_rp.dir/executor.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/executor.cpp.o.d"
  "/root/repo/src/rp/profile.cpp" "src/rp/CMakeFiles/soma_rp.dir/profile.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/profile.cpp.o.d"
  "/root/repo/src/rp/scheduler.cpp" "src/rp/CMakeFiles/soma_rp.dir/scheduler.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/scheduler.cpp.o.d"
  "/root/repo/src/rp/session.cpp" "src/rp/CMakeFiles/soma_rp.dir/session.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/session.cpp.o.d"
  "/root/repo/src/rp/states.cpp" "src/rp/CMakeFiles/soma_rp.dir/states.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/states.cpp.o.d"
  "/root/repo/src/rp/task.cpp" "src/rp/CMakeFiles/soma_rp.dir/task.cpp.o" "gcc" "src/rp/CMakeFiles/soma_rp.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/soma_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/soma_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datamodel/CMakeFiles/soma_datamodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
