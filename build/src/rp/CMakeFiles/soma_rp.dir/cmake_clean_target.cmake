file(REMOVE_RECURSE
  "libsoma_rp.a"
)
