file(REMOVE_RECURSE
  "CMakeFiles/soma_rp.dir/executor.cpp.o"
  "CMakeFiles/soma_rp.dir/executor.cpp.o.d"
  "CMakeFiles/soma_rp.dir/profile.cpp.o"
  "CMakeFiles/soma_rp.dir/profile.cpp.o.d"
  "CMakeFiles/soma_rp.dir/scheduler.cpp.o"
  "CMakeFiles/soma_rp.dir/scheduler.cpp.o.d"
  "CMakeFiles/soma_rp.dir/session.cpp.o"
  "CMakeFiles/soma_rp.dir/session.cpp.o.d"
  "CMakeFiles/soma_rp.dir/states.cpp.o"
  "CMakeFiles/soma_rp.dir/states.cpp.o.d"
  "CMakeFiles/soma_rp.dir/task.cpp.o"
  "CMakeFiles/soma_rp.dir/task.cpp.o.d"
  "libsoma_rp.a"
  "libsoma_rp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
