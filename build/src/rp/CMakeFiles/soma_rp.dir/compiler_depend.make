# Empty compiler generated dependencies file for soma_rp.
# This may be replaced when dependencies are built.
