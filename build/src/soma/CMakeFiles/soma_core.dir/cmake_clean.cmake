file(REMOVE_RECURSE
  "CMakeFiles/soma_core.dir/app_instrument.cpp.o"
  "CMakeFiles/soma_core.dir/app_instrument.cpp.o.d"
  "CMakeFiles/soma_core.dir/client.cpp.o"
  "CMakeFiles/soma_core.dir/client.cpp.o.d"
  "CMakeFiles/soma_core.dir/export.cpp.o"
  "CMakeFiles/soma_core.dir/export.cpp.o.d"
  "CMakeFiles/soma_core.dir/namespaces.cpp.o"
  "CMakeFiles/soma_core.dir/namespaces.cpp.o.d"
  "CMakeFiles/soma_core.dir/service.cpp.o"
  "CMakeFiles/soma_core.dir/service.cpp.o.d"
  "CMakeFiles/soma_core.dir/store.cpp.o"
  "CMakeFiles/soma_core.dir/store.cpp.o.d"
  "libsoma_core.a"
  "libsoma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
