# Empty compiler generated dependencies file for soma_core.
# This may be replaced when dependencies are built.
