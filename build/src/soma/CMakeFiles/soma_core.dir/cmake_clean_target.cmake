file(REMOVE_RECURSE
  "libsoma_core.a"
)
