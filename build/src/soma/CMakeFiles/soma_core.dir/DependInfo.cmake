
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soma/app_instrument.cpp" "src/soma/CMakeFiles/soma_core.dir/app_instrument.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/app_instrument.cpp.o.d"
  "/root/repo/src/soma/client.cpp" "src/soma/CMakeFiles/soma_core.dir/client.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/client.cpp.o.d"
  "/root/repo/src/soma/export.cpp" "src/soma/CMakeFiles/soma_core.dir/export.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/export.cpp.o.d"
  "/root/repo/src/soma/namespaces.cpp" "src/soma/CMakeFiles/soma_core.dir/namespaces.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/namespaces.cpp.o.d"
  "/root/repo/src/soma/service.cpp" "src/soma/CMakeFiles/soma_core.dir/service.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/service.cpp.o.d"
  "/root/repo/src/soma/store.cpp" "src/soma/CMakeFiles/soma_core.dir/store.cpp.o" "gcc" "src/soma/CMakeFiles/soma_core.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soma_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datamodel/CMakeFiles/soma_datamodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
