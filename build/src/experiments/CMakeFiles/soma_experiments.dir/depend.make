# Empty dependencies file for soma_experiments.
# This may be replaced when dependencies are built.
