file(REMOVE_RECURSE
  "libsoma_experiments.a"
)
