file(REMOVE_RECURSE
  "CMakeFiles/soma_experiments.dir/ddmd_experiment.cpp.o"
  "CMakeFiles/soma_experiments.dir/ddmd_experiment.cpp.o.d"
  "CMakeFiles/soma_experiments.dir/deployment.cpp.o"
  "CMakeFiles/soma_experiments.dir/deployment.cpp.o.d"
  "CMakeFiles/soma_experiments.dir/openfoam_experiment.cpp.o"
  "CMakeFiles/soma_experiments.dir/openfoam_experiment.cpp.o.d"
  "libsoma_experiments.a"
  "libsoma_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
