# Empty compiler generated dependencies file for soma_entk.
# This may be replaced when dependencies are built.
