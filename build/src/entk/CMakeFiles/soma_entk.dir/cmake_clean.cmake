file(REMOVE_RECURSE
  "CMakeFiles/soma_entk.dir/entk.cpp.o"
  "CMakeFiles/soma_entk.dir/entk.cpp.o.d"
  "libsoma_entk.a"
  "libsoma_entk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_entk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
