file(REMOVE_RECURSE
  "libsoma_entk.a"
)
