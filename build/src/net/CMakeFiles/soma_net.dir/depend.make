# Empty dependencies file for soma_net.
# This may be replaced when dependencies are built.
