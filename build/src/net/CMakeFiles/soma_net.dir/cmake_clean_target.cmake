file(REMOVE_RECURSE
  "libsoma_net.a"
)
