file(REMOVE_RECURSE
  "CMakeFiles/soma_net.dir/network.cpp.o"
  "CMakeFiles/soma_net.dir/network.cpp.o.d"
  "CMakeFiles/soma_net.dir/rpc.cpp.o"
  "CMakeFiles/soma_net.dir/rpc.cpp.o.d"
  "libsoma_net.a"
  "libsoma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
