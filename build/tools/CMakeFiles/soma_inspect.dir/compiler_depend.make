# Empty compiler generated dependencies file for soma_inspect.
# This may be replaced when dependencies are built.
