file(REMOVE_RECURSE
  "CMakeFiles/soma_inspect.dir/soma_inspect.cpp.o"
  "CMakeFiles/soma_inspect.dir/soma_inspect.cpp.o.d"
  "soma_inspect"
  "soma_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soma_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
