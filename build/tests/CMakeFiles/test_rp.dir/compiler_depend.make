# Empty compiler generated dependencies file for test_rp.
# This may be replaced when dependencies are built.
