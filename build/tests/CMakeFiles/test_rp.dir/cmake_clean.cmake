file(REMOVE_RECURSE
  "CMakeFiles/test_rp.dir/test_rp.cpp.o"
  "CMakeFiles/test_rp.dir/test_rp.cpp.o.d"
  "test_rp"
  "test_rp.pdb"
  "test_rp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
