file(REMOVE_RECURSE
  "CMakeFiles/test_raptor.dir/test_raptor.cpp.o"
  "CMakeFiles/test_raptor.dir/test_raptor.cpp.o.d"
  "test_raptor"
  "test_raptor.pdb"
  "test_raptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
