# Empty compiler generated dependencies file for test_raptor.
# This may be replaced when dependencies are built.
