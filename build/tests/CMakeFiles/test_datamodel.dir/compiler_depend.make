# Empty compiler generated dependencies file for test_datamodel.
# This may be replaced when dependencies are built.
