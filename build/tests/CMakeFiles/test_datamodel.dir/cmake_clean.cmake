file(REMOVE_RECURSE
  "CMakeFiles/test_datamodel.dir/test_datamodel.cpp.o"
  "CMakeFiles/test_datamodel.dir/test_datamodel.cpp.o.d"
  "test_datamodel"
  "test_datamodel.pdb"
  "test_datamodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datamodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
