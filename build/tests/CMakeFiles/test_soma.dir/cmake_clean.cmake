file(REMOVE_RECURSE
  "CMakeFiles/test_soma.dir/test_soma.cpp.o"
  "CMakeFiles/test_soma.dir/test_soma.cpp.o.d"
  "test_soma"
  "test_soma.pdb"
  "test_soma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
