# Empty dependencies file for test_soma.
# This may be replaced when dependencies are built.
