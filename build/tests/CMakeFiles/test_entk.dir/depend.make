# Empty dependencies file for test_entk.
# This may be replaced when dependencies are built.
