file(REMOVE_RECURSE
  "CMakeFiles/test_entk.dir/test_entk.cpp.o"
  "CMakeFiles/test_entk.dir/test_entk.cpp.o.d"
  "test_entk"
  "test_entk.pdb"
  "test_entk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
