# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_datamodel[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
include("/root/repo/build/tests/test_rp[1]_include.cmake")
include("/root/repo/build/tests/test_soma[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_entk[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_monitors[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_raptor[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
