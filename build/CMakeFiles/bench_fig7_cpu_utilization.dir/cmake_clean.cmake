file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cpu_utilization.dir/bench/bench_fig7_cpu_utilization.cpp.o"
  "CMakeFiles/bench_fig7_cpu_utilization.dir/bench/bench_fig7_cpu_utilization.cpp.o.d"
  "bench/bench_fig7_cpu_utilization"
  "bench/bench_fig7_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
