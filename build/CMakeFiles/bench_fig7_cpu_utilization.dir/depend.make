# Empty dependencies file for bench_fig7_cpu_utilization.
# This may be replaced when dependencies are built.
