# Empty compiler generated dependencies file for bench_micro_datamodel.
# This may be replaced when dependencies are built.
