file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_datamodel.dir/bench/bench_micro_datamodel.cpp.o"
  "CMakeFiles/bench_micro_datamodel.dir/bench/bench_micro_datamodel.cpp.o.d"
  "bench/bench_micro_datamodel"
  "bench/bench_micro_datamodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_datamodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
