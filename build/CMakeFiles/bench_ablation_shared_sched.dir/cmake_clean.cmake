file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_sched.dir/bench/bench_ablation_shared_sched.cpp.o"
  "CMakeFiles/bench_ablation_shared_sched.dir/bench/bench_ablation_shared_sched.cpp.o.d"
  "bench/bench_ablation_shared_sched"
  "bench/bench_ablation_shared_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
