file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ddmd_summary.dir/bench/bench_table2_ddmd_summary.cpp.o"
  "CMakeFiles/bench_table2_ddmd_summary.dir/bench/bench_table2_ddmd_summary.cpp.o.d"
  "bench/bench_table2_ddmd_summary"
  "bench/bench_table2_ddmd_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ddmd_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
