file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scaling_a.dir/bench/bench_fig10_scaling_a.cpp.o"
  "CMakeFiles/bench_fig10_scaling_a.dir/bench/bench_fig10_scaling_a.cpp.o.d"
  "bench/bench_fig10_scaling_a"
  "bench/bench_fig10_scaling_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scaling_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
