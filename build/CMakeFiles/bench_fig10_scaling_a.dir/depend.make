# Empty dependencies file for bench_fig10_scaling_a.
# This may be replaced when dependencies are built.
