# Empty dependencies file for bench_micro_rpc.
# This may be replaced when dependencies are built.
