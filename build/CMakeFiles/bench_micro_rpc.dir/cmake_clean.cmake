file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rpc.dir/bench/bench_micro_rpc.cpp.o"
  "CMakeFiles/bench_micro_rpc.dir/bench/bench_micro_rpc.cpp.o.d"
  "bench/bench_micro_rpc"
  "bench/bench_micro_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
