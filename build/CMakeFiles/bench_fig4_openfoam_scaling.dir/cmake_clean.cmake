file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_openfoam_scaling.dir/bench/bench_fig4_openfoam_scaling.cpp.o"
  "CMakeFiles/bench_fig4_openfoam_scaling.dir/bench/bench_fig4_openfoam_scaling.cpp.o.d"
  "bench/bench_fig4_openfoam_scaling"
  "bench/bench_fig4_openfoam_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_openfoam_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
