file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_placement_policy.dir/bench/bench_ablation_placement_policy.cpp.o"
  "CMakeFiles/bench_ablation_placement_policy.dir/bench/bench_ablation_placement_policy.cpp.o.d"
  "bench/bench_ablation_placement_policy"
  "bench/bench_ablation_placement_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_placement_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
