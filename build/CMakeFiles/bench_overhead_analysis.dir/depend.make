# Empty dependencies file for bench_overhead_analysis.
# This may be replaced when dependencies are built.
