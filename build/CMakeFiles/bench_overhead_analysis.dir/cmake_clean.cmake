file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_analysis.dir/bench/bench_overhead_analysis.cpp.o"
  "CMakeFiles/bench_overhead_analysis.dir/bench/bench_overhead_analysis.cpp.o.d"
  "bench/bench_overhead_analysis"
  "bench/bench_overhead_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
