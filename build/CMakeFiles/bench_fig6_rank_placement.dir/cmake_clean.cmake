file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rank_placement.dir/bench/bench_fig6_rank_placement.cpp.o"
  "CMakeFiles/bench_fig6_rank_placement.dir/bench/bench_fig6_rank_placement.cpp.o.d"
  "bench/bench_fig6_rank_placement"
  "bench/bench_fig6_rank_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rank_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
