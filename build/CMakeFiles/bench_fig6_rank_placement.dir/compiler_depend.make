# Empty compiler generated dependencies file for bench_fig6_rank_placement.
# This may be replaced when dependencies are built.
