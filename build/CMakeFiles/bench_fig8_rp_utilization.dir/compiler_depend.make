# Empty compiler generated dependencies file for bench_fig8_rp_utilization.
# This may be replaced when dependencies are built.
