# Empty dependencies file for bench_raptor_throughput.
# This may be replaced when dependencies are built.
