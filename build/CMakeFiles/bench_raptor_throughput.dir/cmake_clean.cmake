file(REMOVE_RECURSE
  "CMakeFiles/bench_raptor_throughput.dir/bench/bench_raptor_throughput.cpp.o"
  "CMakeFiles/bench_raptor_throughput.dir/bench/bench_raptor_throughput.cpp.o.d"
  "bench/bench_raptor_throughput"
  "bench/bench_raptor_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raptor_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
