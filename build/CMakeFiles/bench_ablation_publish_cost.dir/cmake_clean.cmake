file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_publish_cost.dir/bench/bench_ablation_publish_cost.cpp.o"
  "CMakeFiles/bench_ablation_publish_cost.dir/bench/bench_ablation_publish_cost.cpp.o.d"
  "bench/bench_ablation_publish_cost"
  "bench/bench_ablation_publish_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_publish_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
