# Empty dependencies file for bench_ablation_publish_cost.
# This may be replaced when dependencies are built.
