# Empty dependencies file for bench_fig5_tau_mpi_breakdown.
# This may be replaced when dependencies are built.
