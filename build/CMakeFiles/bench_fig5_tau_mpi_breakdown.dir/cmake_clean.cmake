file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tau_mpi_breakdown.dir/bench/bench_fig5_tau_mpi_breakdown.cpp.o"
  "CMakeFiles/bench_fig5_tau_mpi_breakdown.dir/bench/bench_fig5_tau_mpi_breakdown.cpp.o.d"
  "bench/bench_fig5_tau_mpi_breakdown"
  "bench/bench_fig5_tau_mpi_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tau_mpi_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
