# Empty dependencies file for bench_fig11_scaling_b.
# This may be replaced when dependencies are built.
