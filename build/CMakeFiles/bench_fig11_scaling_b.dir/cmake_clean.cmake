file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scaling_b.dir/bench/bench_fig11_scaling_b.cpp.o"
  "CMakeFiles/bench_fig11_scaling_b.dir/bench/bench_fig11_scaling_b.cpp.o.d"
  "bench/bench_fig11_scaling_b"
  "bench/bench_fig11_scaling_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scaling_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
