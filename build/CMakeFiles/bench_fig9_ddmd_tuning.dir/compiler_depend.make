# Empty compiler generated dependencies file for bench_fig9_ddmd_tuning.
# This may be replaced when dependencies are built.
