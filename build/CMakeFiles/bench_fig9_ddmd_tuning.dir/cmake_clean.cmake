file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ddmd_tuning.dir/bench/bench_fig9_ddmd_tuning.cpp.o"
  "CMakeFiles/bench_fig9_ddmd_tuning.dir/bench/bench_fig9_ddmd_tuning.cpp.o.d"
  "bench/bench_fig9_ddmd_tuning"
  "bench/bench_fig9_ddmd_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ddmd_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
